//! In-network compression up close: drive the raw NoC + DISCO layer
//! without the cache hierarchy and watch the mechanism work.
//!
//! A hotspot traffic pattern (every node sends data packets to node 0)
//! congests the mesh; the DISCO engines find the idling packets, compress
//! them during their queuing time, and the run reports how much traffic
//! disappeared and how the arbitrator behaved.
//!
//! Run with: `cargo run --release --example in_network`

use disco::compress::{CacheLine, Codec};
use disco::core::protocol::{Msg, Op};
use disco::core::{DiscoLayer, DiscoParams};
use disco::noc::{Mesh, Network, NocConfig, NodeId, PacketClass, Payload, SchedulingPolicy};

fn main() {
    let mesh = Mesh::new(4, 4);
    let config = NocConfig {
        scheduling: SchedulingPolicy {
            prioritize_critical: true,
            demote_uncompressed: true,
        },
        ..NocConfig::default()
    };
    let mut net = Network::new(mesh, config);
    let mut layer = DiscoLayer::new(DiscoParams::default(), Codec::delta(), mesh.nodes());

    // Compressible payload: a strided pointer array.
    let line = CacheLine::from_u64_words([
        0x7000_0000,
        0x7000_0040,
        0x7000_0080,
        0x7000_00c0,
        0x7000_0100,
        0x7000_0140,
        0x7000_0180,
        0x7000_01c0,
    ]);

    // Hotspot: every other node streams writebacks toward node 0.
    let mut sent = 0u32;
    for wave in 0..20u64 {
        for src in 1..mesh.nodes() {
            let tag = Msg::new(Op::Writeback, 0, wave * 64 + src as u64).encode();
            net.send(
                NodeId(src),
                NodeId(0),
                PacketClass::Response,
                Payload::Raw(line),
                true,
                tag,
            );
            sent += 1;
        }
    }
    let mut delivered = 0;
    let mut compressed_on_arrival = 0;
    while delivered < sent {
        net.tick();
        layer.tick(&mut net);
        for pkt in net.take_delivered(NodeId(0)) {
            delivered += 1;
            if pkt.payload.is_compressed() {
                compressed_on_arrival += 1;
            }
        }
        assert!(net.now() < 100_000, "hotspot must drain");
    }

    let stats = *layer.stats();
    let net_stats = *net.stats();
    println!("hotspot drained in {} cycles", net.now());
    println!("packets delivered:        {delivered}");
    println!(
        "arrived compressed:       {compressed_on_arrival} ({:.0}%)",
        100.0 * compressed_on_arrival as f64 / delivered as f64
    );
    println!("flits on links:           {}", net_stats.link_flits);
    println!("flits saved in-network:   {}", stats.flits_saved);
    println!();
    println!("engine starts:            {}", stats.started);
    println!(
        "  completed compressions: {} ({} in the NI queue)",
        stats.compressions, stats.queue_compressions
    );
    println!("  non-blocking aborts:    {}", stats.aborts);
    println!("  incompressible:         {}", stats.incompressible);
    println!("  rejected (confidence):  {}", stats.low_confidence);
    println!();
    println!(
        "avg packet latency:       {:.1} cycles",
        net_stats.avg_packet_latency()
    );

    println!("\nde/compressions per router (the hotspot's neighbourhood works hardest):");
    for row in 0..4 {
        print!("  ");
        for col in 0..4 {
            print!("{:>6}", layer.per_node_ops()[row * 4 + col]);
        }
        println!();
    }
}
