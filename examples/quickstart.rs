//! Quickstart: simulate one benchmark under every compression placement
//! and print the normalized on-chip data access latency (the Fig. 5
//! metric for a single workload).
//!
//! Run with: `cargo run --release --example quickstart`

use disco::core::{CompressionPlacement, SimBuilder, SimError};
use disco::workloads::Benchmark;

fn main() -> Result<(), SimError> {
    let benchmark = Benchmark::Dedup;
    println!("DISCO quickstart — {benchmark} on a 4x4 mesh, delta codec\n");
    println!(
        "{:<10} {:>14} {:>12} {:>12} {:>14}",
        "config", "cycles/miss", "normalized", "LLC miss%", "NoC flits"
    );

    let ideal = run(benchmark, CompressionPlacement::Ideal)?;
    for placement in CompressionPlacement::ALL {
        let r = run(benchmark, placement)?;
        println!(
            "{:<10} {:>14.1} {:>12.3} {:>12.1} {:>14}",
            placement.name(),
            r.avg_access_latency(),
            r.avg_access_latency() / ideal.avg_access_latency(),
            100.0 * r.banks.miss_rate(),
            r.network.link_flits,
        );
    }
    Ok(())
}

fn run(
    benchmark: Benchmark,
    placement: CompressionPlacement,
) -> Result<disco::core::SimReport, SimError> {
    SimBuilder::new()
        .mesh(4, 4)
        .placement(placement)
        .benchmark(benchmark)
        .trace_len(4_000)
        .seed(7)
        .run()
}
