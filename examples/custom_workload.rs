//! Bring your own workload: build a custom profile, generate (or load)
//! traces, archive them, and replay them bit-identically through the
//! full system under two placements.
//!
//! Run with: `cargo run --release --example custom_workload`

use disco::core::{CompressionPlacement, SimBuilder, SimError};
use disco::workloads::{
    read_traces, write_traces, Benchmark, TraceGenerator, ValueProfile, WorkloadProfile,
};

fn main() -> Result<(), SimError> {
    // A hand-rolled profile: a streaming, zero-heavy producer/consumer
    // workload that is not in the PARSEC set.
    let profile = WorkloadProfile {
        benchmark: Benchmark::Vips, // used only for labeling the value seed
        working_set_lines: 20_000,
        intensity: 4.0,
        write_frac: 0.40,
        shared_frac: 0.35,
        stride_frac: 0.80,
        locality: 1.2,
        value: ValueProfile {
            zero: 0.45,
            near_base: 0.10,
            small_int: 0.20,
            repeated: 0.05,
            float_like: 0.05,
        },
    };

    // Generate traces once and archive them to a buffer (a file works the
    // same way) so the exact run can be replayed anywhere.
    let traces = TraceGenerator::new(profile, 16, 77).generate(4_000);
    let mut archive = Vec::new();
    write_traces(&mut archive, &traces).expect("in-memory write cannot fail");
    println!(
        "archived trace: {} KiB, {} accesses",
        archive.len() / 1024,
        16 * 4_000
    );

    let replayed = read_traces(archive.as_slice()).expect("round-trip");
    assert_eq!(replayed, traces, "replay is bit-identical");

    for placement in [CompressionPlacement::Baseline, CompressionPlacement::Disco] {
        let report = SimBuilder::new()
            .mesh(4, 4)
            .placement(placement)
            .profile(profile)
            .traces(replayed.clone())
            .seed(77)
            .run()?;
        println!(
            "{:<9} on-chip {:.1} cyc/miss | energy {:.2} uJ | LLC miss {:.1}% | ratio {:.2}",
            placement.name(),
            report.avg_onchip_latency(),
            report.total_energy_pj() / 1e6,
            100.0 * report.banks.miss_rate(),
            report.compression.mean_ratio(),
        );
    }
    Ok(())
}
