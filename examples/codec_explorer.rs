//! Codec explorer: how well does each compression scheme do on each
//! PARSEC workload's data?
//!
//! This is the §3.2/§4.1 design question — DISCO is codec-agnostic, so a
//! designer picks the scheme whose ratio/latency trade-off suits the
//! workload mix. The explorer compresses 400 lines from every
//! benchmark's value model with every codec and prints the ratio matrix.
//!
//! Run with: `cargo run --release --example codec_explorer`

use disco::compress::{scheme::Compressor, Codec, CompressionStats, SchemeKind};
use disco::workloads::{Benchmark, ValueModel};

fn main() {
    println!("compression ratio by benchmark x scheme (400 lines each)\n");
    print!("{:<14}", "benchmark");
    for kind in SchemeKind::ALL {
        print!(" {:>8}", kind.name());
    }
    println!();

    let mut per_scheme: Vec<Vec<f64>> = vec![Vec::new(); SchemeKind::ALL.len()];
    for bench in Benchmark::ALL {
        let model = ValueModel::new(bench.profile().value, 11);
        let lines: Vec<_> = (0..400u64)
            .map(|a| model.line(a * 5 + 2, (a % 3) as u32))
            .collect();
        print!("{:<14}", bench.name());
        for (i, kind) in SchemeKind::ALL.into_iter().enumerate() {
            // SC2 trains on the workload it serves, as its hardware does.
            let codec = if kind == SchemeKind::Sc2 {
                Codec::Sc2(disco::compress::sc2::Sc2Codec::train(&lines))
            } else {
                Codec::from_kind(kind)
            };
            let mut stats = CompressionStats::new();
            for line in &lines {
                stats.record(&codec.compress(line));
            }
            per_scheme[i].push(stats.mean_ratio());
            print!(" {:>8.2}", stats.mean_ratio());
        }
        println!();
    }
    println!();
    print!("{:<14}", "mean");
    for ratios in &per_scheme {
        let mean: f64 = ratios.iter().sum::<f64>() / ratios.len() as f64;
        print!(" {mean:>8.2}");
    }
    println!();
    println!("\nTable 1 reference ratios: FPC 1.5, SFPC 1.33, BDI 1.57, SC2 2.4");
}
