#![warn(missing_docs)]

//! # DISCO — a DIStributed in-network data COmpressor
//!
//! Facade crate for the DISCO reproduction (Wang et al., DAC 2016). DISCO
//! merges a cache-line compressor into the routers of a mesh Network-on-Chip
//! and uses the *queuing* time of stalled packets to hide compression and
//! decompression latency, unifying cache compression and NoC compression for
//! NUCA chip multi-processors.
//!
//! This crate re-exports the workspace members:
//!
//! - [`compress`] — bit-level cache-line codecs (delta, FPC, SFPC, BDI, SC²,
//!   C-Pack) with latency/area models.
//! - [`noc`] — a cycle-stepped mesh NoC simulator (3-stage routers, virtual
//!   channels, credit-based wormhole/VCT/SAF flow control).
//! - [`cache`] — L1 caches, a banked NUCA L2 with compressed segmented
//!   storage, MOESI directory coherence, and a DRAM model.
//! - [`workloads`] — synthetic PARSEC-2.1-like trace generators.
//! - [`energy`] — 45 nm event-based energy and area models.
//! - [`core`] — the DISCO router/arbitrator, the CC/CNC/Ideal baselines, and
//!   the full-system simulator.
//!
//! # Quickstart
//!
//! ```
//! use disco::core::{SimBuilder, CompressionPlacement};
//! use disco::workloads::Benchmark;
//!
//! # fn main() -> Result<(), disco::core::SimError> {
//! let report = SimBuilder::new()
//!     .mesh(4, 4)
//!     .placement(CompressionPlacement::Disco)
//!     .benchmark(Benchmark::Blackscholes)
//!     .trace_len(20_000)
//!     .seed(42)
//!     .run()?;
//! println!("avg access latency: {:.1} cycles", report.avg_access_latency());
//! # Ok(())
//! # }
//! ```

pub use disco_cache as cache;
pub use disco_compress as compress;
pub use disco_core as core;
pub use disco_energy as energy;
/// Deterministic fault plans, integrity checksums, and fault accounting
/// (`faults` feature).
#[cfg(feature = "faults")]
pub use disco_faults as faults;
pub use disco_noc as noc;
/// Versioned binary checkpoint encoding (the `Snap` trait, writer /
/// reader, snapshot header) behind [`core::System::snapshot`].
pub use disco_snapshot as snapshot;
/// Deterministic event tracing + latency provenance (`trace` feature).
#[cfg(feature = "trace")]
pub use disco_trace as trace;
pub use disco_workloads as workloads;
