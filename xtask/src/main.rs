//! Workspace task runner: `cargo xtask verify` drives the `disco-verify`
//! analysis suite and fails the build on any finding.
//!
//! Six analyses run in order: channel-dependency-graph deadlock freedom,
//! MOESI transition-table exhaustiveness + message-class composition,
//! bounded protocol model checking against the live directory, the
//! credit/buffer conservation proof, and the AST-grade source lints.
//! `--json PATH` additionally writes a machine-readable report (one
//! record per analysis with pass/fail, state counts where applicable,
//! and wall time) that CI uploads as an artifact next to BENCH_*.json.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use disco_noc::routing::RoutingAlgorithm;
use disco_noc::topology::{Mesh, TopologyChoice, TopologySpec};
use disco_noc::NocConfig;
use disco_verify::explorer::{explore, ExploreOptions};
use disco_verify::model::{LiveDir, ProtocolModel};
use disco_verify::{cdg, credits, lints, protocol};

/// The documented acceptance floor for the model pass: the default
/// configuration must explore at least this many deduplicated states
/// (see ARCHITECTURE.md "Model checking & symbolic analyses").
const MODEL_STATE_FLOOR: u64 = 100_000;

/// Ledger depth for the credit conservation proof, matching the default
/// `NocConfig` buffer depth.
const CREDIT_DEPTH: i16 = 8;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("verify") => match VerifyOpts::parse(&args[1..]) {
            Ok(opts) => verify(&opts),
            Err(e) => {
                eprintln!("xtask: {e}");
                usage();
                ExitCode::FAILURE
            }
        },
        Some(other) => {
            eprintln!("xtask: unknown task `{other}`");
            usage();
            ExitCode::FAILURE
        }
        None => {
            usage();
            ExitCode::FAILURE
        }
    }
}

fn usage() {
    eprintln!("usage: cargo xtask verify [--json PATH] [--workers N] [--depth N]");
    eprintln!();
    eprintln!("  verify   run the static analyses: channel-dependency-graph");
    eprintln!("           deadlock freedom, MOESI transition-table exhaustiveness");
    eprintln!("           and message-class composition, bounded coherence model");
    eprintln!("           checking, the credit conservation proof, and AST-grade");
    eprintln!("           source lints");
    eprintln!();
    eprintln!("  --json PATH   also write a machine-readable report to PATH");
    eprintln!("  --workers N   model-checker worklist workers (default 4; the");
    eprintln!("                report is byte-identical at any worker count)");
    eprintln!("  --depth N     model-checker depth bound (default 64)");
}

/// Options for the `verify` task.
struct VerifyOpts {
    json: Option<PathBuf>,
    workers: usize,
    depth: usize,
}

impl VerifyOpts {
    fn parse(args: &[String]) -> Result<Self, String> {
        let mut opts = VerifyOpts {
            json: None,
            workers: 4,
            depth: 64,
        };
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--json" => {
                    let path = it.next().ok_or("--json needs a path argument")?;
                    opts.json = Some(PathBuf::from(path));
                }
                "--workers" => {
                    let n = it.next().ok_or("--workers needs a count argument")?;
                    opts.workers = n
                        .parse::<usize>()
                        .ok()
                        .filter(|&n| n >= 1)
                        .ok_or_else(|| format!("--workers: invalid count `{n}`"))?;
                }
                "--depth" => {
                    let n = it.next().ok_or("--depth needs a bound argument")?;
                    opts.depth = n
                        .parse::<usize>()
                        .ok()
                        .filter(|&n| n >= 1)
                        .ok_or_else(|| format!("--depth: invalid bound `{n}`"))?;
                }
                other => return Err(format!("unknown verify option `{other}`")),
            }
        }
        Ok(opts)
    }
}

/// Outcome of one analysis, for the human summary and the JSON report.
struct AnalysisResult {
    name: &'static str,
    pass: bool,
    /// One-line summary (what passed, or how many findings).
    detail: String,
    /// Deduplicated states explored, for the exhaustive analyses.
    states: Option<u64>,
    /// Transitions executed, for the exhaustive analyses.
    transitions: Option<u64>,
    /// Wall time of the analysis. Kept out of every analysis's own
    /// rendering so pass output stays byte-identical run to run; the
    /// JSON wrapper is the only place timing appears.
    ms: u128,
}

fn verify(opts: &VerifyOpts) -> ExitCode {
    let t0 = Instant::now();
    let results = vec![
        timed("cdg", run_cdg),
        timed("protocol", run_protocol),
        timed_with("model", || run_model(opts)),
        timed_with("credits", run_credits),
        timed("lints", run_lints),
    ];
    let total_ms = t0.elapsed().as_millis();
    let pass = results.iter().all(|r| r.pass);

    if let Some(path) = &opts.json {
        let json = render_json(&results, pass, total_ms);
        if let Err(e) = std::fs::write(path, json) {
            eprintln!(
                "verify: cannot write JSON report to {}: {e}",
                path.display()
            );
            return ExitCode::FAILURE;
        }
        println!("verify: JSON report written to {}", path.display());
    }

    if pass {
        println!("verify: all analyses passed");
        ExitCode::SUCCESS
    } else {
        let failed: Vec<&str> = results.iter().filter(|r| !r.pass).map(|r| r.name).collect();
        eprintln!("verify: FAILED analyses: {}", failed.join(", "));
        ExitCode::FAILURE
    }
}

/// Runs a simple pass (no state counts) under a wall-time measurement.
fn timed(name: &'static str, run: fn() -> (bool, String)) -> AnalysisResult {
    timed_with(name, move || {
        let (pass, detail) = run();
        (pass, detail, None, None)
    })
}

/// Runs a pass that may report explored-state counts.
fn timed_with<F>(name: &'static str, run: F) -> AnalysisResult
where
    F: FnOnce() -> (bool, String, Option<u64>, Option<u64>),
{
    let t0 = Instant::now();
    let (pass, detail, states, transitions) = run();
    AnalysisResult {
        name,
        pass,
        detail,
        states,
        transitions,
        ms: t0.elapsed().as_millis(),
    }
}

/// Channel-dependency-graph pass: every shipped topology must be
/// acyclic under its default routing (with dateline VC narrowing on the
/// wrapped shapes), and every deterministic/turn-model algorithm must
/// be acyclic on the Table 2 mesh. Known-cyclic configurations are
/// reported as notes, proving the analysis has teeth without failing
/// the build.
fn run_cdg() -> (bool, String) {
    let mut failures = 0usize;
    let config = NocConfig::default();
    for choice in TopologyChoice::ALL {
        let topo = choice.build(4, 4);
        let opts = cdg::CdgOptions {
            vcs: config.vcs.max(topo.min_vcs()),
            routing: config.routing,
            use_datelines: true,
            lock_partial_packets: false,
        };
        let report = cdg::analyze(&topo, &opts);
        match report.cycle_trace() {
            None => println!(
                "cdg: {} ({} routers, radix {}) at {} VCs: acyclic ({} channels, {} dependencies)",
                topo.name(),
                topo.routers(),
                topo.radix(),
                opts.vcs,
                report.channels,
                report.edges
            ),
            Some(trace) => {
                eprintln!(
                    "cdg: FAIL {} at {} VCs: cycle {trace}",
                    topo.name(),
                    opts.vcs
                );
                failures += 1;
            }
        }
    }
    let mesh = Mesh::new(4, 4).build();
    for routing in [RoutingAlgorithm::Yx, RoutingAlgorithm::WestFirst] {
        let opts = cdg::CdgOptions {
            vcs: config.vcs,
            routing,
            use_datelines: true,
            lock_partial_packets: false,
        };
        let report = cdg::analyze(&mesh, &opts);
        match report.cycle_trace() {
            None => println!(
                "cdg: {routing:?} on 4x4 mesh/{} VCs: acyclic ({} channels, {} dependencies)",
                config.vcs, report.channels, report.edges
            ),
            Some(trace) => {
                eprintln!(
                    "cdg: FAIL {routing:?} on 4x4 mesh/{} VCs: cycle {trace}",
                    config.vcs
                );
                failures += 1;
            }
        }
    }
    let o1 = cdg::analyze(
        &mesh,
        &cdg::CdgOptions {
            vcs: config.vcs,
            routing: RoutingAlgorithm::O1Turn,
            use_datelines: true,
            lock_partial_packets: false,
        },
    );
    if !o1.is_deadlock_free() {
        println!(
            "cdg: note: O1Turn sharing the class VC groups is cyclic (needs one virtual \
             network per dimension order); it is not part of the default configuration"
        );
    }
    let locked = cdg::analyze(
        &mesh,
        &cdg::CdgOptions {
            vcs: config.vcs,
            routing: config.routing,
            use_datelines: true,
            lock_partial_packets: true,
        },
    );
    if !locked.is_deadlock_free() {
        println!(
            "cdg: note: locking partially resident packets would close a cycle — the \
             engine therefore locks whole-resident packets only"
        );
    }
    let undatelined = cdg::analyze(
        &TopologyChoice::Torus.build(4, 4),
        &cdg::CdgOptions {
            vcs: 4,
            routing: config.routing,
            use_datelines: false,
            lock_partial_packets: false,
        },
    );
    if !undatelined.is_deadlock_free() {
        println!(
            "cdg: note: the torus without dateline VC narrowing is cyclic — the wrapped \
             shapes are safe only because the datelines are machine-checked above"
        );
    }
    if failures == 0 {
        (
            true,
            format!(
                "{} topologies acyclic (datelined); Xy/Yx/WestFirst acyclic on 4x4 mesh",
                TopologyChoice::ALL.len()
            ),
        )
    } else {
        (false, format!("{failures} routing configuration(s) cyclic"))
    }
}

/// Protocol pass: the extracted MOESI table must be total and fully
/// reachable, the `Msg` tag encoding must roundtrip every `Op`, and the
/// op → class mapping must compose with the VC groups and CDG results.
fn run_protocol() -> (bool, String) {
    let mut failures = 0usize;
    let table = protocol::extract_directory_table();
    let report = protocol::check_table(&table);
    if report.is_complete() {
        println!(
            "protocol: MOESI table total over {} transitions, every state reachable",
            table.transitions.len()
        );
    } else {
        for (state, event) in &report.missing {
            eprintln!(
                "protocol: FAIL unhandled ({} x {})",
                state.name(),
                event.name()
            );
        }
        for state in &report.unreachable {
            eprintln!(
                "protocol: FAIL state {} unreachable from Uncached",
                state.name()
            );
        }
        failures += 1;
    }
    let op_errors = protocol::check_ops();
    if op_errors.is_empty() {
        println!("protocol: Msg tag encoding roundtrips all ops, rejects stray codes");
    } else {
        for e in &op_errors {
            eprintln!("protocol: FAIL {e}");
        }
        failures += 1;
    }
    let mut class_errors = Vec::new();
    for choice in TopologyChoice::ALL {
        let topo = choice.build(4, 4);
        let config = NocConfig {
            vcs: NocConfig::default().vcs.max(topo.min_vcs()),
            ..NocConfig::default()
        };
        class_errors.extend(protocol::check_message_classes(&config, &topo));
    }
    if class_errors.is_empty() {
        println!(
            "protocol: op → class mapping pinned, VC groups partition, only documented \
             dependency cycles, CDG composition holds on every topology"
        );
    } else {
        for e in &class_errors {
            eprintln!("protocol: FAIL {e}");
        }
        failures += 1;
    }
    if failures == 0 {
        (
            true,
            format!(
                "MOESI table total ({} transitions); tag encoding exhaustive; \
                 class composition holds",
                table.transitions.len()
            ),
        )
    } else {
        (false, format!("{failures} protocol check(s) failed"))
    }
}

/// Model pass: exhaustively explore every delivery interleaving of the
/// default three-core configuration against the live `Directory`, to the
/// configured depth bound. Fails on any invariant violation, on
/// truncation, and on exploring fewer than `MODEL_STATE_FLOOR` states
/// (the documented acceptance bound).
fn run_model(opts: &VerifyOpts) -> (bool, String, Option<u64>, Option<u64>) {
    let model = ProtocolModel::default_config(LiveDir::default());
    let explore_opts = ExploreOptions {
        max_depth: opts.depth,
        max_states: 4_000_000,
        workers: opts.workers,
        max_violations: 8,
    };
    let report = explore(&model, &explore_opts);
    // render() is deterministic (no wall time, no worker count), so this
    // output is byte-identical run to run — tests/determinism.rs pins it.
    print!("{}", report.render("model"));
    let mut pass = true;
    if !report.clean() {
        eprintln!(
            "model: FAIL {} invariant violation(s); schedules above are replayable",
            report.violations.len()
        );
        pass = false;
    }
    if report.truncated {
        eprintln!(
            "model: FAIL search truncated at depth {} / {} states; raise --depth or the \
             state bound so the space is covered",
            report.max_depth_reached, report.states
        );
        pass = false;
    }
    if report.states < MODEL_STATE_FLOOR {
        eprintln!(
            "model: FAIL explored {} states, below the documented floor of {}",
            report.states, MODEL_STATE_FLOOR
        );
        pass = false;
    }
    let detail = if pass {
        format!(
            "0 violations over {} states to depth {} (complete)",
            report.states, report.max_depth_reached
        )
    } else {
        format!(
            "{} violation(s), truncated={}, {} states",
            report.violations.len(),
            report.truncated,
            report.states
        )
    };
    (pass, detail, Some(report.states), Some(report.transitions))
}

/// Credits pass: the symbolic conservation proof over the router
/// pipeline's ledger operations, plus exact conformance of the live
/// network at quiescence.
fn run_credits() -> (bool, String, Option<u64>, Option<u64>) {
    let mut failures = 0usize;
    let ledger = credits::CreditLedger::live(CREDIT_DEPTH);
    let report = credits::check_conservation(&ledger);
    if report.clean() && !report.truncated {
        println!(
            "credits: conservation proven at depth {CREDIT_DEPTH}: {} reachable ledger \
             states, {} transitions, no leak or double-free",
            report.states, report.transitions
        );
    } else {
        print!("{}", report.render("credits"));
        eprintln!("credits: FAIL conservation violated (see schedules above)");
        failures += 1;
    }
    match credits::verify_live_credits() {
        Ok(summary) => println!("credits: live conformance: {summary}"),
        Err(errors) => {
            for e in &errors {
                eprintln!("credits: FAIL {e}");
            }
            failures += 1;
        }
    }
    let detail = if failures == 0 {
        format!(
            "ledger conservation proven at depth {CREDIT_DEPTH} ({} states); live network \
             conserves exactly",
            report.states
        )
    } else {
        format!("{failures} credit check(s) failed")
    };
    (
        failures == 0,
        detail,
        Some(report.states),
        Some(report.transitions),
    )
}

/// Lint pass: AST-grade panic/confinement/wall-clock/purity checks plus
/// the stats-surfacing and fault-kind-coverage scans.
fn run_lints() -> (bool, String) {
    let root = lints::repo_root();
    let mut failures = 0usize;
    let mut check =
        |name: &str, outcome: std::io::Result<Vec<lints::Violation>>, ok_msg: &str| match outcome {
            Ok(violations) if violations.is_empty() => println!("lints: {ok_msg}"),
            Ok(violations) => {
                for v in &violations {
                    eprintln!("lints: FAIL [{name}] {v}");
                }
                failures += 1;
            }
            Err(e) => {
                eprintln!("lints: FAIL [{name}] cannot read sources: {e}");
                failures += 1;
            }
        };
    check(
        "hot-paths",
        lints::scan_hot_paths_ast(&root),
        &format!(
            "{} hot-path files are panic-API free (AST scan)",
            lints::HOT_PATHS.len()
        ),
    );
    check(
        "stats",
        lints::check_stats_surfaced(&root),
        "every NetworkStats/DiscoStats/ProvenanceTotals/EnergyCounts/EnergyBreakdown \
         counter is surfaced in report.rs",
    );
    check(
        "pareto-axes",
        lints::check_pareto_axes(&root),
        "every DesignSpace axis is named in the rendered frontier JSON schema",
    );
    check(
        "confinement",
        lints::check_commit_confinement_ast(&root),
        "Router mutations (direct, helper-method, and &mut-borrow) are confined to the \
         serial commit context (AST scan)",
    );
    check(
        "wall-clock",
        lints::check_no_wallclock_ast(&root),
        "trace crate and emission sites are wall-clock free (AST scan)",
    );
    check(
        "purity",
        lints::check_compute_purity(&root),
        "compute phase keeps its &Router signature and uses no interior mutability",
    );
    check(
        "fault-coverage",
        lints::check_fault_kind_coverage(&root),
        "every FaultKind has an injection site and a test",
    );
    check(
        "snapshot-manifest",
        lints::check_snapshot_manifest(&root),
        "every field of every snapshotted struct is accounted state|derived in the manifest",
    );
    if failures == 0 {
        (true, "8 lint families clean (AST-grade)".to_string())
    } else {
        (false, format!("{failures} lint famil(ies) failed"))
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders the machine-readable report. Schema `disco-verify/1`:
/// top-level pass/total_ms plus one record per analysis.
fn render_json(results: &[AnalysisResult], pass: bool, total_ms: u128) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"schema\":\"disco-verify/1\",\"pass\":{pass},\"total_ms\":{total_ms},\"analyses\":["
    );
    for (i, r) in results.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"pass\":{},\"detail\":\"{}\"",
            json_escape(r.name),
            r.pass,
            json_escape(&r.detail)
        );
        if let Some(states) = r.states {
            let _ = write!(out, ",\"states\":{states}");
        }
        if let Some(transitions) = r.transitions {
            let _ = write!(out, ",\"transitions\":{transitions}");
        }
        let _ = write!(out, ",\"ms\":{}}}", r.ms);
    }
    out.push_str("]}\n");
    out
}
