//! Workspace task runner: `cargo xtask verify` drives the `disco-verify`
//! static-analysis pass and fails the build on any finding.

use disco_noc::routing::RoutingAlgorithm;
use disco_noc::topology::Mesh;
use disco_noc::NocConfig;
use disco_verify::{cdg, lints, protocol};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("verify") => verify(),
        Some(other) => {
            eprintln!("xtask: unknown task `{other}`");
            usage();
            ExitCode::FAILURE
        }
        None => {
            usage();
            ExitCode::FAILURE
        }
    }
}

fn usage() {
    eprintln!("usage: cargo xtask verify");
    eprintln!();
    eprintln!("  verify   run the static analyses: channel-dependency-graph");
    eprintln!("           deadlock freedom, MOESI transition-table");
    eprintln!("           exhaustiveness, and source-convention lints");
}

fn verify() -> ExitCode {
    let mut failures = 0usize;
    failures += verify_cdg();
    failures += verify_protocol();
    failures += verify_lints();
    if failures == 0 {
        println!("verify: all analyses passed");
        ExitCode::SUCCESS
    } else {
        eprintln!("verify: {failures} analysis failure(s)");
        ExitCode::FAILURE
    }
}

/// Channel-dependency-graph pass: the default configuration and every
/// deterministic/turn-model algorithm must be acyclic on the Table 2
/// mesh. Known-cyclic configurations are reported as notes, proving the
/// analysis has teeth without failing the build.
fn verify_cdg() -> usize {
    let mut failures = 0;
    let config = NocConfig::default();
    let mesh = Mesh::new(4, 4);
    for routing in [
        RoutingAlgorithm::Xy,
        RoutingAlgorithm::Yx,
        RoutingAlgorithm::WestFirst,
    ] {
        let opts = cdg::CdgOptions {
            vcs: config.vcs,
            routing,
            lock_partial_packets: false,
        };
        let report = cdg::analyze_mesh(&mesh, &opts);
        match report.cycle_trace() {
            None => println!(
                "cdg: {routing:?} on 4x4/{} VCs: acyclic ({} channels, {} dependencies)",
                config.vcs, report.channels, report.edges
            ),
            Some(trace) => {
                eprintln!(
                    "cdg: FAIL {routing:?} on 4x4/{} VCs: cycle {trace}",
                    config.vcs
                );
                failures += 1;
            }
        }
    }
    let o1 = cdg::analyze_mesh(
        &mesh,
        &cdg::CdgOptions {
            vcs: config.vcs,
            routing: RoutingAlgorithm::O1Turn,
            lock_partial_packets: false,
        },
    );
    if !o1.is_deadlock_free() {
        println!(
            "cdg: note: O1Turn sharing the class VC groups is cyclic (needs one virtual \
             network per dimension order); it is not part of the default configuration"
        );
    }
    let locked = cdg::analyze_mesh(
        &mesh,
        &cdg::CdgOptions {
            vcs: config.vcs,
            routing: config.routing,
            lock_partial_packets: true,
        },
    );
    if !locked.is_deadlock_free() {
        println!(
            "cdg: note: locking partially resident packets would close a cycle — the \
             engine therefore locks whole-resident packets only"
        );
    }
    failures
}

/// Protocol pass: the extracted MOESI table must be total and fully
/// reachable, and the `Msg` tag encoding must roundtrip every `Op`.
fn verify_protocol() -> usize {
    let mut failures = 0;
    let table = protocol::extract_directory_table();
    let report = protocol::check_table(&table);
    if report.is_complete() {
        println!(
            "protocol: MOESI table total over {} transitions, every state reachable",
            table.transitions.len()
        );
    } else {
        for (state, event) in &report.missing {
            eprintln!(
                "protocol: FAIL unhandled ({} x {})",
                state.name(),
                event.name()
            );
        }
        for state in &report.unreachable {
            eprintln!(
                "protocol: FAIL state {} unreachable from Uncached",
                state.name()
            );
        }
        failures += 1;
    }
    let op_errors = protocol::check_ops();
    if op_errors.is_empty() {
        println!("protocol: Msg tag encoding roundtrips all ops, rejects stray codes");
    } else {
        for e in &op_errors {
            eprintln!("protocol: FAIL {e}");
        }
        failures += 1;
    }
    failures
}

/// Lint pass: panic-API-free hot paths, fully surfaced stats,
/// Router-mutation confinement to the commit pass, a wall-clock-free
/// trace path, and fault-kind injection/test coverage.
fn verify_lints() -> usize {
    let root = lints::repo_root();
    let mut failures = 0;
    match lints::scan_hot_paths(&root) {
        Ok(violations) if violations.is_empty() => {
            println!(
                "lints: {} hot-path files are panic-API free",
                lints::HOT_PATHS.len()
            );
        }
        Ok(violations) => {
            for v in &violations {
                eprintln!("lints: FAIL {v}");
            }
            failures += 1;
        }
        Err(e) => {
            eprintln!("lints: FAIL cannot read sources: {e}");
            failures += 1;
        }
    }
    match lints::check_stats_surfaced(&root) {
        Ok(violations) if violations.is_empty() => {
            println!(
                "lints: every NetworkStats/DiscoStats/ProvenanceTotals counter is surfaced in report.rs"
            );
        }
        Ok(violations) => {
            for v in &violations {
                eprintln!("lints: FAIL {v}");
            }
            failures += 1;
        }
        Err(e) => {
            eprintln!("lints: FAIL cannot read sources: {e}");
            failures += 1;
        }
    }
    match lints::check_commit_confinement(&root) {
        Ok(violations) if violations.is_empty() => {
            println!("lints: Router mutations are confined to the commit pass");
        }
        Ok(violations) => {
            for v in &violations {
                eprintln!("lints: FAIL {v}");
            }
            failures += 1;
        }
        Err(e) => {
            eprintln!("lints: FAIL cannot read sources: {e}");
            failures += 1;
        }
    }
    match lints::check_no_wallclock(&root) {
        Ok(violations) if violations.is_empty() => {
            println!("lints: trace crate and emission sites are wall-clock free");
        }
        Ok(violations) => {
            for v in &violations {
                eprintln!("lints: FAIL {v}");
            }
            failures += 1;
        }
        Err(e) => {
            eprintln!("lints: FAIL cannot read sources: {e}");
            failures += 1;
        }
    }
    match lints::check_fault_kind_coverage(&root) {
        Ok(violations) if violations.is_empty() => {
            println!("lints: every FaultKind has an injection site and a test");
        }
        Ok(violations) => {
            for v in &violations {
                eprintln!("lints: FAIL {v}");
            }
            failures += 1;
        }
        Err(e) => {
            eprintln!("lints: FAIL cannot read sources: {e}");
            failures += 1;
        }
    }
    failures
}
