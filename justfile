# Offline mirror of .github/workflows/ci.yml. `just ci` is the full gate.

# Run the complete CI gate locally.
ci: fmt-check clippy verify test

# Check formatting without rewriting.
fmt-check:
    cargo fmt --all --check

# Rewrite formatting in place.
fmt:
    cargo fmt --all

# Workspace lints, warnings denied.
clippy:
    cargo clippy --workspace --all-targets -- -D warnings

# The disco-verify analysis suite: bounded protocol model checking,
# credit-conservation proof, CDG deadlock freedom, MOESI exhaustiveness,
# message-class composition, AST-grade lints.
verify:
    cargo xtask verify

# Same analyses, plus the machine-readable report CI uploads as the
# VERIFY_REPORT artifact (schema disco-verify/1).
verify-json:
    cargo xtask verify --json VERIFY_REPORT.json

# Workspace tests, plus the NoC suite with per-cycle invariant validation
# and the tracing determinism/golden legs.
test:
    cargo test --workspace -q
    cargo test -q -p disco-noc --features validate
    cargo test -q -p disco -p disco-noc -p disco-core --features "parallel,trace"

# Regenerate the EXPERIMENTS.md provenance tables and the sample trace
# exports (results/trace_disco_4x4.json / .jsonl, untracked).
provenance:
    cargo run --release -p disco-bench --features trace --bin provenance

# Measure tracing overhead and cross-check feature-off/on stats identity.
trace-overhead:
    cargo run --release -p disco-bench --bin trace_overhead -- --out BENCH_pr4_off.json
    cargo run --release -p disco-bench --features trace --bin trace_overhead -- \
        --out BENCH_pr4.json --baseline BENCH_pr4_off.json

# Regenerate tests/golden_stats.txt after report.rs changes.
update-golden:
    UPDATE_GOLDEN=1 cargo test -q --test golden
