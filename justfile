# Offline mirror of .github/workflows/ci.yml. `just ci` is the full gate.

# Run the complete CI gate locally.
ci: fmt-check clippy verify test

# Check formatting without rewriting.
fmt-check:
    cargo fmt --all --check

# Rewrite formatting in place.
fmt:
    cargo fmt --all

# Workspace lints, warnings denied.
clippy:
    cargo clippy --workspace --all-targets -- -D warnings

# Static analyses: CDG deadlock freedom, MOESI exhaustiveness, source lints.
verify:
    cargo xtask verify

# Workspace tests, plus the NoC suite with per-cycle invariant validation.
test:
    cargo test --workspace -q
    cargo test -q -p disco-noc --features validate

# Regenerate tests/golden_stats.txt after report.rs changes.
update-golden:
    UPDATE_GOLDEN=1 cargo test -q --test golden
