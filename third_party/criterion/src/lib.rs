//! Offline drop-in subset of the [`criterion`](https://docs.rs/criterion)
//! benchmarking API, vendored so the workspace builds with no registry
//! access.
//!
//! Covers what this repository's benches use: `Criterion`,
//! `benchmark_group` / `bench_function` / `bench_with_input`,
//! `BenchmarkId`, `Throughput`, `Bencher::iter`, and the
//! `criterion_group!` / `criterion_main!` macros. Measurement is a
//! simple warm-up + timed-batch wall-clock loop printing mean
//! time-per-iteration (and throughput when configured); there is no
//! statistical analysis, HTML report, or baseline comparison.

use std::fmt;
use std::time::{Duration, Instant};

/// Target measurement time per benchmark.
const MEASURE_FOR: Duration = Duration::from_millis(200);
/// Warm-up time before measurement.
const WARM_UP_FOR: Duration = Duration::from_millis(50);

/// Throughput units attached to a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier, e.g. `BenchmarkId::from_parameter("fpc")`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// An id made of the parameter alone (the group supplies the name).
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Runs the closure under timing. Passed to every benchmark body.
pub struct Bencher {
    mean_ns: f64,
}

impl Bencher {
    /// Times `routine`: warm-up, then repeated timed batches.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < WARM_UP_FOR {
            std::hint::black_box(routine());
            warm_iters += 1;
        }
        // Batch size from the warm-up rate, at least 1.
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        let batch = ((MEASURE_FOR.as_secs_f64() / 10.0 / per_iter) as u64).max(1);
        let mut iters: u64 = 0;
        let measure_start = Instant::now();
        while measure_start.elapsed() < MEASURE_FOR {
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            iters += batch;
        }
        self.mean_ns = measure_start.elapsed().as_nanos() as f64 / iters as f64;
    }
}

fn run_one(full_id: &str, throughput: Option<Throughput>, f: impl FnOnce(&mut Bencher)) {
    let mut bencher = Bencher { mean_ns: f64::NAN };
    f(&mut bencher);
    let mut line = format!("{full_id:<48} {:>14.1} ns/iter", bencher.mean_ns);
    match throughput {
        Some(Throughput::Bytes(bytes)) => {
            let gib = bytes as f64 / bencher.mean_ns * 1e9 / (1u64 << 30) as f64;
            line.push_str(&format!("  {gib:>8.3} GiB/s"));
        }
        Some(Throughput::Elements(n)) => {
            let meps = n as f64 / bencher.mean_ns * 1e9 / 1e6;
            line.push_str(&format!("  {meps:>8.3} Melem/s"));
        }
        None => {}
    }
    println!("{line}");
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Attaches throughput units to subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for API compatibility; sampling is time-based here.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Benchmarks `routine` with a borrowed input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        routine: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        let full = format!("{}/{id}", self.name);
        run_one(&full, self.throughput, |b| routine(b, input));
        self
    }

    /// Benchmarks a plain routine within the group.
    pub fn bench_function(
        &mut self,
        id: impl fmt::Display,
        routine: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        let full = format!("{}/{id}", self.name);
        run_one(&full, self.throughput, routine);
        self
    }

    /// Ends the group (a no-op beyond matching the real API).
    pub fn finish(self) {}
}

/// The benchmark driver handed to every `criterion_group!` function.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl fmt::Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            throughput: None,
            _criterion: self,
        }
    }

    /// Benchmarks a standalone routine.
    pub fn bench_function(
        &mut self,
        id: impl fmt::Display,
        routine: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        run_one(&id.to_string(), None, routine);
        self
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
