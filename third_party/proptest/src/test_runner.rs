//! Case scheduling, deterministic RNG, and failure reporting.

use std::fmt;

/// Per-test configuration. Only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` generated inputs.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real crate defaults to 256; 64 keeps simulation-heavy
        // suites fast while still exercising a meaningful input space.
        ProptestConfig { cases: 64 }
    }
}

/// A failed property within a test case.
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(message: String) -> Self {
        TestCaseError { message }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Drives the per-case loop inside the `proptest!` expansion.
#[derive(Debug)]
pub struct TestRunner {
    config: ProptestConfig,
}

impl TestRunner {
    /// Builds a runner for `config`.
    pub fn new(config: ProptestConfig) -> Self {
        TestRunner { config }
    }

    /// How many cases to run.
    pub fn cases(&self) -> u32 {
        self.config.cases
    }

    /// Deterministic per-case RNG: runs are exactly reproducible.
    pub fn rng_for(&self, case: u32) -> TestRng {
        TestRng::seed_from_u64(0xd15c_0000_0000_0000 ^ u64::from(case))
    }
}

/// SplitMix64-seeded xoshiro256++ generator backing all strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl TestRng {
    /// Builds a generator whose stream is a pure function of `seed`.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        TestRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let m = (self.next_u64() as u128) * (bound as u128);
            if (m as u64) >= threshold {
                return (m >> 64) as u64;
            }
        }
    }
}
