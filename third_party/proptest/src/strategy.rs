//! The `Strategy` trait and the combinators this repo's tests rely on.

use crate::test_runner::TestRng;
use std::ops::Range;

/// A recipe for generating values of one type.
///
/// Unlike the real crate there is no value tree and no shrinking: a
/// strategy simply produces a value per case from the deterministic RNG.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Produces one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Always yields a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}

/// Weighted choice between type-erased alternatives (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
}

impl<T> Union<T> {
    /// Builds a union; weights must not all be zero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(
            arms.iter().map(|(w, _)| u64::from(*w)).sum::<u64>() > 0,
            "prop_oneof! needs at least one positive weight"
        );
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let total: u64 = self.arms.iter().map(|(w, _)| u64::from(*w)).sum();
        let mut pick = rng.below(total);
        for (w, strat) in &self.arms {
            let w = u64::from(*w);
            if pick < w {
                return strat.generate(rng);
            }
            pick -= w;
        }
        unreachable!("weighted pick within total")
    }
}
