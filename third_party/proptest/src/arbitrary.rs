//! `any::<T>()` — full-domain strategies for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary {
    /// Draws one uniformly distributed value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct AnyStrategy<T>(PhantomData<fn() -> T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-domain strategy for `T`, e.g. `any::<u32>()`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}
