//! Variable-size collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// Generates `Vec<S::Value>` with a length drawn from `sizes`.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    sizes: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        assert!(self.sizes.start < self.sizes.end, "empty size range");
        let span = (self.sizes.end - self.sizes.start) as u64;
        let len = self.sizes.start + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// A strategy for vectors whose length lies in `sizes`.
pub fn vec<S: Strategy>(element: S, sizes: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, sizes }
}
