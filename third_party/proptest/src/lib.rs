//! Offline drop-in subset of the [`proptest`](https://docs.rs/proptest)
//! API, vendored so the workspace builds with no registry access.
//!
//! Supports exactly what this repository's tests use: the `proptest!`
//! macro (with an optional `#![proptest_config(..)]` inner attribute),
//! `any::<T>()`, integer-range strategies, `Just`, tuple strategies,
//! `prop_oneof!` (weighted and unweighted), `proptest::array::uniformN`,
//! `proptest::collection::vec`, and the `prop_assert*` macros.
//!
//! Differences from the real crate: cases are generated from a fixed
//! deterministic seed (fully reproducible runs), and failing inputs are
//! reported but **not shrunk**.

pub mod arbitrary;
pub mod array;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Everything a `proptest!` test typically imports.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Declares property tests: each `fn name(arg in strategy, ..) { body }`
/// item becomes a `#[test]` that runs the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { @cfg ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            @cfg ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (@cfg ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let runner = $crate::test_runner::TestRunner::new(config);
                for case in 0..runner.cases() {
                    let mut rng = runner.rng_for(case);
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::core::result::Result::Ok(()) })();
                    if let ::core::result::Result::Err(e) = outcome {
                        panic!("proptest case {case} failed: {e}");
                    }
                }
            }
        )*
    };
}

/// `prop_assert!(cond)` / `prop_assert!(cond, "msg {}", arg)`: fails the
/// current case (without aborting the whole test binary mid-panic
/// machinery) when `cond` is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

/// Inequality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, $($fmt)+);
    }};
}

/// Picks one of several strategies per case, optionally weighted:
/// `prop_oneof![a, b]` or `prop_oneof![3 => a, 1 => b]`.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}
