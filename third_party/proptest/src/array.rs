//! Fixed-size array strategies (`uniform8` / `uniform16` / `uniform32`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Generates `[S::Value; N]` by running the element strategy N times.
#[derive(Debug, Clone)]
pub struct UniformArray<S, const N: usize>(S);

impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N> {
    type Value = [S::Value; N];

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        std::array::from_fn(|_| self.0.generate(rng))
    }
}

macro_rules! uniform_fn {
    ($($name:ident => $n:literal),*) => {$(
        /// An array strategy applying `strategy` to every element.
        pub fn $name<S: Strategy>(strategy: S) -> UniformArray<S, $n> {
            UniformArray(strategy)
        }
    )*};
}

uniform_fn!(uniform4 => 4, uniform8 => 8, uniform16 => 16, uniform32 => 32);
