//! Minimal JSON helpers shared by the DSE journal and the bench
//! harnesses: string escaping for emission, and a flat-object scanner
//! for parsing journal lines back. No external crates; the formats are
//! ours, so the subset is deliberately small.

use std::collections::BTreeMap;

/// Minimal JSON string escaping (the only strings we emit are axis
/// names and file-safe labels, but stay correct anyway).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Parses one flat JSON object — `{"key":value,...}` with string, number,
/// and boolean values, no nesting — into key → raw-token pairs. String
/// values are unescaped; numbers and booleans come back as their exact
/// source token so `f64::from_str` round-trips the shortest
/// representation `{:?}` emitted.
///
/// Returns `None` on anything malformed (a truncated journal tail line
/// after a kill is data, not a bug, so this never panics).
pub fn parse_flat_object(line: &str) -> Option<BTreeMap<String, String>> {
    let inner = line.trim().strip_prefix('{')?.strip_suffix('}')?;
    let mut out = BTreeMap::new();
    let mut rest = inner.trim();
    while !rest.is_empty() {
        rest = rest.strip_prefix('"')?;
        let (key, after) = take_string(rest)?;
        rest = after.trim_start().strip_prefix(':')?.trim_start();
        let (value, after) = if let Some(s) = rest.strip_prefix('"') {
            let (v, a) = take_string(s)?;
            (v, a)
        } else {
            let end = rest.find([',', ' ', '\t']).unwrap_or(rest.len());
            let (v, a) = rest.split_at(end);
            if v.is_empty() {
                return None;
            }
            (v.to_string(), a)
        };
        if out.insert(key, value).is_some() {
            return None; // duplicate key: corrupt line
        }
        rest = after.trim_start();
        match rest.strip_prefix(',') {
            Some(r) => rest = r.trim_start(),
            None if rest.is_empty() => break,
            None => return None,
        }
    }
    Some(out)
}

/// Consumes an escaped JSON string body up to its closing quote,
/// returning (unescaped value, remainder after the quote).
fn take_string(s: &str) -> Option<(String, &str)> {
    let mut out = String::new();
    let mut chars = s.char_indices();
    while let Some((i, c)) = chars.next() {
        match c {
            '"' => return Some((out, &s[i + 1..])),
            '\\' => match chars.next()?.1 {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                'n' => out.push('\n'),
                'u' => {
                    let start = chars.next()?.0;
                    let mut end = start;
                    for _ in 0..3 {
                        end = chars.next()?.0;
                    }
                    let code = u32::from_str_radix(s.get(start..=end)?, 16).ok()?;
                    out.push(char::from_u32(code)?);
                }
                _ => return None,
            },
            c => out.push(c),
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn flat_object_roundtrips() {
        let line = r#"{"id":3,"latency":12.625,"name":"mesh","ok":true}"#;
        let map = parse_flat_object(line).expect("parses");
        assert_eq!(map["id"], "3");
        assert_eq!(map["latency"], "12.625");
        assert_eq!(map["name"], "mesh");
        assert_eq!(map["ok"], "true");
    }

    #[test]
    fn escaped_strings_unescape() {
        let map = parse_flat_object(r#"{"k":"a\"b\\c\ndA"}"#).expect("parses");
        assert_eq!(map["k"], "a\"b\\c\ndA");
    }

    #[test]
    fn shortest_float_representation_roundtrips_exactly() {
        for v in [0.1_f64, 1.0 / 3.0, 1e-300, -2.5e17, f64::MIN_POSITIVE] {
            let line = format!("{{\"v\":{v:?}}}");
            let map = parse_flat_object(&line).expect("parses");
            let back: f64 = map["v"].parse().expect("float");
            assert_eq!(back.to_bits(), v.to_bits(), "{v:?} must round-trip");
        }
    }

    #[test]
    fn truncated_lines_are_rejected_not_panicked() {
        for bad in [
            "",
            "{",
            r#"{"id":3"#,
            r#"{"id":3,"#,
            r#"{"id":}"#,
            r#"{"id""#,
            r#"{"a":1,"a":2}"#,
            r#"{"k":"unterminated}"#,
        ] {
            assert_eq!(parse_flat_object(bad), None, "{bad:?} must be rejected");
        }
    }

    #[test]
    fn empty_object_parses() {
        assert!(parse_flat_object("{}").expect("parses").is_empty());
    }
}
