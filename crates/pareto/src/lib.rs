#![warn(missing_docs)]

//! Resumable Pareto design-space exploration over the DISCO energy and
//! area models.
//!
//! The paper's pitch is energy efficiency per unit of NoC performance;
//! this crate asks the system-level question behind it: *which*
//! {topology, codec, thresholds, buffers, placement} configurations are
//! latency/energy/area-optimal? Following the Pareto-optimization
//! framing of automated NoC design (arxiv 1807.11607), a declared
//! [`space::DesignSpace`] is enumerated into deterministic points, each
//! point runs a full-system simulation under the energy model, and the
//! exact three-objective frontier is computed with dominance proofs —
//! every dominated point names its dominator.
//!
//! The moving parts:
//!
//! - [`space`] — the declared axes and their deterministic cartesian
//!   enumeration (ids are enumeration order, forever).
//! - [`exec`] — the worker fan-out (shared with `disco-bench`'s sweep
//!   harness) and the configuration warnings.
//! - [`frontier`] — weak/epsilon dominance and the frontier census.
//! - [`journal`] — append-only JSONL of completed points; a killed
//!   exploration resumes without re-running them.
//! - [`driver`] — runs the points, journals, and renders the versioned
//!   `disco-pareto/1` frontier JSON.
//!
//! Determinism contract: the rendered frontier JSON is **byte-identical**
//! for any worker count and across any kill-and-resume of the journal,
//! because results are keyed and sorted by point id and every journaled
//! float round-trips exactly (Rust's shortest-representation `{:?}`).

pub mod driver;
pub mod exec;
pub mod frontier;
pub mod journal;
pub mod json;
pub mod space;

pub use driver::{explore, ExploreConfig, ExploreOutcome};
pub use frontier::{dominates, epsilon_dominates, Frontier, Objectives};
pub use journal::{write_atomic, Journal, JournalEntry};
pub use space::{DesignPoint, DesignSpace};
