//! The batch exploration driver: enumerate the space, skip journaled
//! points, fan the rest across workers, journal completions in chunks,
//! and — once the space is exhausted — compute the frontier and render
//! the versioned `disco-pareto/1` JSON.
//!
//! Everything downstream of the journal is a pure function of the
//! design space, so the rendered JSON is byte-identical for any worker
//! count and across any kill-and-resume sequence. No wall-clock value
//! ever reaches the journal or the JSON.

use std::path::PathBuf;

use disco_core::{CompressionPlacement, SimBuilder};
use disco_energy::AreaModel;
use disco_noc::NocConfig;

use crate::exec::{fan_out, oversubscription_warning, run_point_checked};
use crate::frontier::{self, Frontier};
use crate::journal::{Journal, JournalEntry};
use crate::json::json_escape;
use crate::space::{DesignPoint, DesignSpace};

/// One exploration request.
#[derive(Debug, Clone)]
pub struct ExploreConfig {
    /// The declared space.
    pub space: DesignSpace,
    /// Worker threads fanning over points (≤ 1 = serial).
    pub workers: usize,
    /// Compute shards for the *checked* leg of each point's
    /// serial-vs-parallel divergence test (≤ 1 skips the second run; the
    /// journaled result is always the serial reference either way).
    pub shards: usize,
    /// Journal path; `None` explores entirely in memory (no resume).
    pub journal: Option<PathBuf>,
    /// Budget: at most this many *new* points this invocation (0 =
    /// unlimited). An exhausted budget leaves the journal resumable.
    pub max_points: usize,
}

impl ExploreConfig {
    /// A serial, un-journaled exploration of `space`.
    pub fn new(space: DesignSpace) -> Self {
        ExploreConfig {
            space,
            workers: 1,
            shards: 1,
            journal: None,
            max_points: 0,
        }
    }
}

/// What one `explore` invocation accomplished.
#[derive(Debug, Clone)]
pub struct ExploreOutcome {
    /// Points in the declared space.
    pub total: usize,
    /// Points newly simulated by this invocation.
    pub completed: usize,
    /// Points still missing afterwards (> 0 means the budget ran out:
    /// rerun with the same journal to continue).
    pub remaining: usize,
    /// Configuration warnings (JSON lines; empty when sound).
    pub warnings: Vec<String>,
    /// The frontier census, once the space is fully explored.
    pub frontier: Option<Frontier>,
    /// The rendered `disco-pareto/1` JSON, once fully explored.
    pub json: Option<String>,
}

/// Journal-append chunk size: a kill forfeits at most this many
/// finished points, and entries still land in id order because the
/// fan-out preserves item order within each chunk.
const CHUNK: usize = 8;

/// Runs (or resumes) one exploration. See [`ExploreConfig`] and the
/// crate docs for the determinism contract.
///
/// # Panics
///
/// Panics if a design point fails to simulate or journal I/O fails —
/// batch-driver conditions where continuing would corrupt the census.
pub fn explore(cfg: &ExploreConfig) -> ExploreOutcome {
    let points = cfg.space.points();
    let journal = cfg.journal.as_ref().map(Journal::new);
    let mut done = journal.as_ref().map(|j| j.load()).unwrap_or_default();
    // A stale journal with ids beyond the space means the space shrank
    // under an existing journal file: refuse to blend two explorations.
    if let Some(max) = done.keys().next_back() {
        assert!(
            (*max as usize) < points.len(),
            "journal contains point id {max} but the space has only {} points — \
             stale journal for a different space?",
            points.len()
        );
    }

    let mut warnings = Vec::new();
    let host = std::thread::available_parallelism().map_or(0, |n| n.get());
    if let Some(w) = oversubscription_warning("pareto", cfg.workers, cfg.shards, host) {
        warnings.push(w);
    }

    let mut pending: Vec<&DesignPoint> = points
        .iter()
        .filter(|p| !done.contains_key(&p.id))
        .collect();
    if cfg.max_points > 0 {
        pending.truncate(cfg.max_points);
    }

    let mut completed = 0;
    for chunk in pending.chunks(CHUNK.max(cfg.workers)) {
        let entries = fan_out(chunk, cfg.workers, |p| run_point(&cfg.space, p, cfg.shards));
        if let Some(j) = &journal {
            j.append(&entries);
        }
        completed += entries.len();
        for e in entries {
            done.insert(e.id, e);
        }
    }

    let remaining = points.len() - done.len();
    let (frontier, json) = if remaining == 0 {
        let objectives: Vec<_> = done.values().map(|e| (e.id, e.objectives())).collect();
        let frontier = frontier::compute(&objectives);
        let json = render(&cfg.space, &points, &done, &frontier);
        (Some(frontier), Some(json))
    } else {
        (None, None)
    };

    ExploreOutcome {
        total: points.len(),
        completed,
        remaining,
        warnings,
        frontier,
        json,
    }
}

/// Simulates one point: the serial reference run, optionally re-run
/// sharded for the divergence check, then objectives + energy breakdown.
fn run_point(space: &DesignSpace, point: &DesignPoint, shards: usize) -> JournalEntry {
    let run = |compute_shards: usize| {
        let noc = NocConfig {
            vcs: point
                .vcs
                .max(point.topology.build(space.cols, space.rows).min_vcs()),
            buffer_depth: point.buffer_depth,
            compute_shards,
            ..NocConfig::default()
        };
        let report = SimBuilder::new()
            .mesh(space.cols, space.rows)
            .topology(point.topology)
            .placement(point.placement)
            .scheme(point.scheme)
            .benchmark(point.benchmark)
            .trace_len(space.trace_len)
            .seed(space.seed)
            .disco_params(point.disco_params())
            .noc(noc)
            .run()
            .unwrap_or_else(|e| panic!("point {} ({}) failed: {e:?}", point.id, point.label()));
        let mut stats = Vec::new();
        report.write_stats(&mut stats).expect("in-memory write");
        (report, stats)
    };
    let (report, deterministic) = if shards > 1 {
        let ((report, _), agreed) =
            run_point_checked(|| run(1), || run(shards), |(_, stats)| stats.clone());
        (report, agreed)
    } else {
        (run(1).0, true)
    };

    let er = report.energy_report();
    JournalEntry {
        id: point.id,
        latency: report.avg_onchip_latency(),
        pj_per_cycle: er.pj_per_cycle(),
        area_mm2: added_area(space, point),
        noc_dynamic_pj: er.breakdown.noc_dynamic_pj,
        noc_static_pj: er.breakdown.noc_static_pj,
        cache_dynamic_pj: er.breakdown.cache_dynamic_pj,
        cache_static_pj: er.breakdown.cache_static_pj,
        compressor_pj: er.breakdown.compressor_pj,
        deterministic,
    }
}

/// Silicon this point adds over the uncompressed plain-mesh baseline:
/// compression hardware per the placement's §4.3 cost, plus the
/// express-channel overlay when the topology has long-range links.
fn added_area(space: &DesignSpace, point: &DesignPoint) -> f64 {
    let tiles = space.cols * space.rows;
    let model = AreaModel::default();
    let compression = match point.placement {
        CompressionPlacement::Baseline | CompressionPlacement::Ideal => 0.0,
        CompressionPlacement::CacheOnly => model.cc(tiles).added_mm2,
        CompressionPlacement::CacheAndNi => model.cnc(tiles).added_mm2,
        CompressionPlacement::Disco => model.disco(tiles).added_mm2,
    };
    let topo = point.topology.build(space.cols, space.rows);
    compression + model.express(tiles, topo.express_link_count()).added_mm2
}

fn floats(values: &[f64]) -> String {
    values
        .iter()
        .map(|v| format!("{v:?}"))
        .collect::<Vec<_>>()
        .join(",")
}

fn names<T: Copy>(values: &[T], name: impl Fn(T) -> &'static str) -> String {
    values
        .iter()
        .map(|&v| format!("\"{}\"", json_escape(name(v))))
        .collect::<Vec<_>>()
        .join(",")
}

fn ints(values: &[usize]) -> String {
    values
        .iter()
        .map(|v| v.to_string())
        .collect::<Vec<_>>()
        .join(",")
}

/// Renders the versioned frontier JSON. Every declared axis of
/// [`DesignSpace`] appears by name in the `space` block — `cargo xtask
/// verify` checks this pairing against the struct definition.
fn render(
    space: &DesignSpace,
    points: &[DesignPoint],
    done: &std::collections::BTreeMap<u64, JournalEntry>,
    frontier: &Frontier,
) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    out.push_str("{\n  \"format\": \"disco-pareto/1\",\n  \"space\": {\n");
    let _ = writeln!(out, "    \"cols\": {},", space.cols);
    let _ = writeln!(out, "    \"rows\": {},", space.rows);
    let _ = writeln!(out, "    \"trace_len\": {},", space.trace_len);
    let _ = writeln!(out, "    \"seed\": {},", space.seed);
    let _ = writeln!(
        out,
        "    \"topologies\": [{}],",
        names(&space.topologies, |t| t.name())
    );
    let _ = writeln!(out, "    \"vcs\": [{}],", ints(&space.vcs));
    let _ = writeln!(
        out,
        "    \"buffer_depths\": [{}],",
        ints(&space.buffer_depths)
    );
    let _ = writeln!(
        out,
        "    \"placements\": [{}],",
        names(&space.placements, |p| p.name())
    );
    let _ = writeln!(
        out,
        "    \"schemes\": [{}],",
        names(&space.schemes, |s| s.name())
    );
    let _ = writeln!(
        out,
        "    \"cc_thresholds\": [{}],",
        floats(&space.cc_thresholds)
    );
    let _ = writeln!(
        out,
        "    \"cd_thresholds\": [{}],",
        floats(&space.cd_thresholds)
    );
    let _ = writeln!(out, "    \"gammas\": [{}],", floats(&space.gammas));
    let _ = writeln!(out, "    \"alphas\": [{}],", floats(&space.alphas));
    let _ = writeln!(out, "    \"betas\": [{}],", floats(&space.betas));
    let _ = writeln!(
        out,
        "    \"benchmarks\": [{}]",
        names(&space.benchmarks, |b| b.name())
    );
    out.push_str("  },\n  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        let e = &done[&p.id];
        let _ = write!(
            out,
            "    {{\"id\":{},\"topology\":\"{}\",\"vcs\":{},\"buffer_depth\":{},\
             \"placement\":\"{}\",\"scheme\":\"{}\",\"cc_threshold\":{:?},\
             \"cd_threshold\":{:?},\"gamma\":{:?},\"alpha\":{:?},\"beta\":{:?},\
             \"benchmark\":\"{}\",\"latency\":{:?},\"pj_per_cycle\":{:?},\
             \"area_mm2\":{:?},\"energy\":{{\"noc_dynamic_pj\":{:?},\
             \"noc_static_pj\":{:?},\"cache_dynamic_pj\":{:?},\"cache_static_pj\":{:?},\
             \"compressor_pj\":{:?}}},\"deterministic\":{}}}",
            p.id,
            json_escape(p.topology.name()),
            p.vcs,
            p.buffer_depth,
            json_escape(p.placement.name()),
            json_escape(p.scheme.name()),
            p.cc_threshold,
            p.cd_threshold,
            p.gamma,
            p.alpha,
            p.beta,
            json_escape(p.benchmark.name()),
            e.latency,
            e.pj_per_cycle,
            e.area_mm2,
            e.noc_dynamic_pj,
            e.noc_static_pj,
            e.cache_dynamic_pj,
            e.cache_static_pj,
            e.compressor_pj,
            e.deterministic,
        );
        out.push_str(if i + 1 < points.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ],\n");
    let _ = writeln!(
        out,
        "  \"frontier\": [{}],",
        frontier
            .frontier
            .iter()
            .map(|id| id.to_string())
            .collect::<Vec<_>>()
            .join(",")
    );
    let _ = writeln!(
        out,
        "  \"dominated\": [{}]",
        frontier
            .dominated
            .iter()
            .map(|d| format!("{{\"id\":{},\"dominator\":{}}}", d.id, d.dominator))
            .collect::<Vec<_>>()
            .join(",")
    );
    out.push_str("}\n");
    out
}
