//! The append-only exploration journal: one JSONL line per completed
//! design point. A killed exploration resumes by loading the journal and
//! skipping every point already recorded; a truncated tail line (the
//! kill landed mid-write) is tolerated and simply re-run.
//!
//! Floats are journaled with Rust's shortest-roundtrip `{:?}` formatting
//! and parsed back with `f64::from_str`, which recovers the exact bits —
//! a resumed exploration therefore renders byte-identical output to an
//! uninterrupted one.

use std::collections::BTreeMap;
use std::fs;
use std::io::Write as _;
use std::path::Path;

use crate::frontier::Objectives;
use crate::json::parse_flat_object;

/// Writes `bytes` to `path` atomically: write a `.tmp` sibling, then
/// rename over the destination. Readers never observe a half-written
/// file. (The `disco-serve` checkpoint/stats writer delegates here.)
///
/// # Errors
///
/// Propagates I/O errors from the write or the rename.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let tmp = path.with_extension("tmp");
    fs::write(&tmp, bytes)?;
    fs::rename(&tmp, path)
}

/// One journaled point: the measured objectives plus the per-point
/// energy breakdown and the serial-vs-sharded divergence verdict. No
/// wall-clock anywhere — the journal must be byte-stable across reruns.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JournalEntry {
    /// Design-point id (enumeration order within the space).
    pub id: u64,
    /// Mean on-chip data access latency, cycles.
    pub latency: f64,
    /// Mean energy per cycle, picojoules.
    pub pj_per_cycle: f64,
    /// Added silicon over the uncompressed mesh, mm².
    pub area_mm2: f64,
    /// NoC dynamic energy, pJ.
    pub noc_dynamic_pj: f64,
    /// NoC static energy, pJ.
    pub noc_static_pj: f64,
    /// Cache dynamic energy, pJ.
    pub cache_dynamic_pj: f64,
    /// Cache static energy, pJ.
    pub cache_static_pj: f64,
    /// Compressor/decompressor energy, pJ.
    pub compressor_pj: f64,
    /// Whether the sharded rerun of this point matched the serial
    /// reference stat-for-stat.
    pub deterministic: bool,
}

impl JournalEntry {
    /// The three minimized objectives of this entry.
    pub fn objectives(&self) -> Objectives {
        Objectives {
            latency: self.latency,
            pj_per_cycle: self.pj_per_cycle,
            area_mm2: self.area_mm2,
        }
    }

    /// Renders the entry as one JSONL line (no trailing newline).
    pub fn to_line(&self) -> String {
        format!(
            "{{\"id\":{},\"latency\":{:?},\"pj_per_cycle\":{:?},\"area_mm2\":{:?},\
             \"noc_dynamic_pj\":{:?},\"noc_static_pj\":{:?},\"cache_dynamic_pj\":{:?},\
             \"cache_static_pj\":{:?},\"compressor_pj\":{:?},\"deterministic\":{}}}",
            self.id,
            self.latency,
            self.pj_per_cycle,
            self.area_mm2,
            self.noc_dynamic_pj,
            self.noc_static_pj,
            self.cache_dynamic_pj,
            self.cache_static_pj,
            self.compressor_pj,
            self.deterministic,
        )
    }

    /// Parses one journal line. `None` on anything malformed — a
    /// truncated tail after a kill is data, not a bug.
    pub fn parse_line(line: &str) -> Option<Self> {
        let map = parse_flat_object(line)?;
        let f = |k: &str| map.get(k)?.parse::<f64>().ok().filter(|v| v.is_finite());
        Some(JournalEntry {
            id: map.get("id")?.parse().ok()?,
            latency: f("latency")?,
            pj_per_cycle: f("pj_per_cycle")?,
            area_mm2: f("area_mm2")?,
            noc_dynamic_pj: f("noc_dynamic_pj")?,
            noc_static_pj: f("noc_static_pj")?,
            cache_dynamic_pj: f("cache_dynamic_pj")?,
            cache_static_pj: f("cache_static_pj")?,
            compressor_pj: f("compressor_pj")?,
            deterministic: match map.get("deterministic")?.as_str() {
                "true" => true,
                "false" => false,
                _ => return None,
            },
        })
    }
}

/// An append-only JSONL journal of completed points.
pub struct Journal {
    path: std::path::PathBuf,
}

impl Journal {
    /// Opens (or designates) a journal at `path`. Nothing is created
    /// until the first append.
    pub fn new(path: impl Into<std::path::PathBuf>) -> Self {
        Journal { path: path.into() }
    }

    /// The journal's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Loads every well-formed entry, keyed by point id. Malformed
    /// lines (the truncated tail of a killed run) are skipped; a later
    /// entry for the same id wins (idempotent reruns may re-append).
    /// A missing file is an empty journal.
    pub fn load(&self) -> BTreeMap<u64, JournalEntry> {
        let Ok(text) = fs::read_to_string(&self.path) else {
            return BTreeMap::new();
        };
        text.lines()
            .filter_map(JournalEntry::parse_line)
            .map(|e| (e.id, e))
            .collect()
    }

    /// Appends entries as one buffered write (one `write` syscall per
    /// batch keeps lines from interleaving if two drivers ever share a
    /// journal, and bounds the torn-tail window to the final line). If
    /// the file ends mid-line — a previous run was killed mid-write —
    /// a newline is emitted first, so the new entries never merge into
    /// the torn tail.
    ///
    /// # Panics
    ///
    /// Panics on I/O failure.
    pub fn append(&self, entries: &[JournalEntry]) {
        if entries.is_empty() {
            return;
        }
        let mut buf = String::new();
        if let Ok(text) = fs::read_to_string(&self.path) {
            if !text.is_empty() && !text.ends_with('\n') {
                buf.push('\n');
            }
        }
        for e in entries {
            buf.push_str(&e.to_line());
            buf.push('\n');
        }
        let mut file = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)
            .unwrap_or_else(|e| panic!("open {}: {e}", self.path.display()));
        file.write_all(buf.as_bytes())
            .unwrap_or_else(|e| panic!("append {}: {e}", self.path.display()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(id: u64) -> JournalEntry {
        JournalEntry {
            id,
            latency: 12.25 + id as f64 / 3.0,
            pj_per_cycle: 0.1 * id as f64 + 1.0 / 7.0,
            area_mm2: 1e-3 * id as f64,
            noc_dynamic_pj: 100.5,
            noc_static_pj: 7.0,
            cache_dynamic_pj: 300.125,
            cache_static_pj: 11.0,
            compressor_pj: 0.75,
            deterministic: id.is_multiple_of(2),
        }
    }

    #[test]
    fn entries_roundtrip_bit_exactly() {
        for id in 0..10 {
            let e = entry(id);
            let back = JournalEntry::parse_line(&e.to_line()).expect("parses");
            assert_eq!(back.id, e.id);
            assert_eq!(back.deterministic, e.deterministic);
            for (a, b) in [
                (back.latency, e.latency),
                (back.pj_per_cycle, e.pj_per_cycle),
                (back.area_mm2, e.area_mm2),
                (back.noc_dynamic_pj, e.noc_dynamic_pj),
                (back.noc_static_pj, e.noc_static_pj),
                (back.cache_dynamic_pj, e.cache_dynamic_pj),
                (back.cache_static_pj, e.cache_static_pj),
                (back.compressor_pj, e.compressor_pj),
            ] {
                assert_eq!(a.to_bits(), b.to_bits(), "floats must round-trip exactly");
            }
        }
    }

    #[test]
    fn journal_loads_what_it_appended_and_skips_torn_tail() {
        let dir = std::env::temp_dir().join("disco-pareto-journal-test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("j1.jsonl");
        let _ = fs::remove_file(&path);
        let j = Journal::new(&path);
        assert!(j.load().is_empty(), "missing file is an empty journal");
        j.append(&[entry(0), entry(3)]);
        j.append(&[entry(1)]);
        // Simulate a kill mid-write: append a torn tail by hand.
        let mut file = fs::OpenOptions::new().append(true).open(&path).unwrap();
        file.write_all(b"{\"id\":9,\"latency\":1.").unwrap();
        drop(file);
        let loaded = j.load();
        assert_eq!(loaded.keys().copied().collect::<Vec<_>>(), vec![0, 1, 3]);
        assert_eq!(loaded[&3], entry(3));
        // An append after the torn tail must start on a fresh line —
        // not merge into the garbage — and idempotent re-appends must
        // not confuse the load.
        j.append(&[entry(1), entry(5)]);
        let loaded = j.load();
        assert_eq!(loaded.keys().copied().collect::<Vec<_>>(), vec![0, 1, 3, 5]);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn write_atomic_replaces_whole_file() {
        let dir = std::env::temp_dir().join("disco-pareto-journal-test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("atomic.json");
        write_atomic(&path, b"first").unwrap();
        write_atomic(&path, b"second").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"second");
        assert!(
            !path.with_extension("tmp").exists(),
            "tmp must be renamed away"
        );
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn non_finite_journal_values_are_rejected() {
        let line = "{\"id\":1,\"latency\":NaN,\"pj_per_cycle\":1.0,\"area_mm2\":0.0,\
                    \"noc_dynamic_pj\":1.0,\"noc_static_pj\":1.0,\"cache_dynamic_pj\":1.0,\
                    \"cache_static_pj\":1.0,\"compressor_pj\":1.0,\"deterministic\":true}";
        assert_eq!(JournalEntry::parse_line(line), None);
    }
}
