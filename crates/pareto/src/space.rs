//! The declared design space and its deterministic enumeration.
//!
//! A [`DesignSpace`] names every axis the exploration sweeps; `points()`
//! expands the cartesian product into [`DesignPoint`]s with sequential
//! ids. The enumeration order is part of the format: point ids key the
//! journal and the rendered frontier JSON, so the loops below are
//! ordered outermost-to-innermost exactly as the fields are declared and
//! must never be reordered without bumping the output version.
//!
//! Axes that a placement cannot express are *not* multiplied out —
//! Baseline carries no codec, and only DISCO consults the arbitration
//! thresholds — so the space never contains two ids that describe the
//! same simulation.

use disco_compress::SchemeKind;
use disco_core::{CompressionPlacement, DiscoParams};
use disco_noc::TopologyChoice;
use disco_workloads::Benchmark;

/// The declared axes of one exploration.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignSpace {
    /// Mesh columns (fixed per space; the grid is not an axis because
    /// latency across different tile counts is not comparable).
    pub cols: usize,
    /// Mesh rows.
    pub rows: usize,
    /// Accesses per core.
    pub trace_len: usize,
    /// RNG seed shared by every point (points differ by configuration,
    /// not by luck).
    pub seed: u64,
    /// NoC topologies.
    pub topologies: Vec<TopologyChoice>,
    /// Virtual channels per input port (raised to the topology's
    /// deadlock-freedom minimum at run time).
    pub vcs: Vec<usize>,
    /// Buffer depth per VC, flits.
    pub buffer_depths: Vec<usize>,
    /// Compression placements.
    pub placements: Vec<CompressionPlacement>,
    /// Codecs (skipped for Baseline, which carries none).
    pub schemes: Vec<SchemeKind>,
    /// `CC_th` candidates (DISCO only).
    pub cc_thresholds: Vec<f64>,
    /// `CD_th` candidates (DISCO only).
    pub cd_thresholds: Vec<f64>,
    /// γ candidates (DISCO only).
    pub gammas: Vec<f64>,
    /// α candidates (DISCO only).
    pub alphas: Vec<f64>,
    /// β candidates (DISCO only).
    pub betas: Vec<f64>,
    /// Workloads.
    pub benchmarks: Vec<Benchmark>,
}

/// One fully-specified simulation configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DesignPoint {
    /// Enumeration-order id — the stable key of the journal and the
    /// frontier JSON.
    pub id: u64,
    /// NoC topology.
    pub topology: TopologyChoice,
    /// Declared VCs per input port.
    pub vcs: usize,
    /// Buffer depth per VC, flits.
    pub buffer_depth: usize,
    /// Compression placement.
    pub placement: CompressionPlacement,
    /// Codec.
    pub scheme: SchemeKind,
    /// `CC_th`.
    pub cc_threshold: f64,
    /// `CD_th`.
    pub cd_threshold: f64,
    /// γ (Eq. 1 local coefficient).
    pub gamma: f64,
    /// α (Eq. 2 local coefficient).
    pub alpha: f64,
    /// β (Eq. 2 distance coefficient).
    pub beta: f64,
    /// Workload.
    pub benchmark: Benchmark,
}

impl DesignPoint {
    /// The DISCO arbitration parameters this point requests (defaults
    /// for everything the space does not sweep). Meaningful only when
    /// `placement` is DISCO; harmless otherwise.
    pub fn disco_params(&self) -> DiscoParams {
        DiscoParams {
            cc_threshold: self.cc_threshold,
            cd_threshold: self.cd_threshold,
            gamma: self.gamma,
            alpha: self.alpha,
            beta: self.beta,
            ..DiscoParams::default()
        }
    }

    /// A human-readable configuration label for logs and the JSON.
    pub fn label(&self) -> String {
        format!(
            "{}/{}/vc{}/d{}/{}/{}",
            self.topology.name(),
            self.placement.name(),
            self.vcs,
            self.buffer_depth,
            self.scheme.name(),
            self.benchmark.name(),
        )
    }
}

impl DesignSpace {
    /// The CI smoke space: two topologies (plain mesh vs express mesh),
    /// every placement family from the paper's §4.1 comparison, two
    /// codecs, one threshold setting — small enough to explore in
    /// minutes, wide enough that the frontier shows a real trade-off.
    /// 4x4 so the span-2 express links of `xmesh` actually exist (at
    /// 2x2 the overlay is empty and `xmesh` degenerates to `mesh`).
    pub fn smoke() -> Self {
        DesignSpace {
            cols: 4,
            rows: 4,
            trace_len: 300,
            seed: 7,
            topologies: vec![TopologyChoice::Mesh, TopologyChoice::XMesh],
            vcs: vec![2],
            buffer_depths: vec![4],
            placements: vec![
                CompressionPlacement::Baseline,
                CompressionPlacement::CacheOnly,
                CompressionPlacement::CacheAndNi,
                CompressionPlacement::Disco,
            ],
            schemes: vec![SchemeKind::Bdi, SchemeKind::Fpc],
            cc_thresholds: vec![0.5],
            cd_thresholds: vec![0.5],
            gammas: vec![0.5],
            alphas: vec![0.5],
            betas: vec![1.5],
            benchmarks: vec![Benchmark::Swaptions],
        }
    }

    /// The full overnight space: every topology and placement, every
    /// codec, and a threshold/coefficient grid around the paper's
    /// operating point. Thousands of points — meant for `disco-pareto`
    /// batch runs with a journal, not for tests.
    pub fn full() -> Self {
        DesignSpace {
            cols: 4,
            rows: 4,
            trace_len: 2_000,
            seed: 7,
            topologies: TopologyChoice::ALL.to_vec(),
            vcs: vec![2, 4],
            buffer_depths: vec![4, 8],
            placements: CompressionPlacement::ALL.to_vec(),
            schemes: SchemeKind::ALL.to_vec(),
            cc_thresholds: vec![0.4, 0.6],
            cd_thresholds: vec![0.4, 0.6],
            gammas: vec![0.25, 0.5],
            alphas: vec![0.5],
            betas: vec![1.0, 1.5],
            benchmarks: vec![
                Benchmark::Swaptions,
                Benchmark::Canneal,
                Benchmark::Fluidanimate,
            ],
        }
    }

    /// Expands the axes into design points with sequential ids.
    ///
    /// Collapse rules (each skipped axis pins its *first* declared
    /// value): Baseline takes one scheme slot — it compresses nothing,
    /// so codecs are indistinguishable; every non-DISCO placement takes
    /// one threshold/coefficient slot — nothing else consults
    /// [`DiscoParams`]. Two distinct ids therefore always describe two
    /// distinct simulations.
    ///
    /// # Panics
    ///
    /// Panics if any axis is empty — an empty axis silently explores
    /// nothing, which is never what a batch driver wants.
    pub fn points(&self) -> Vec<DesignPoint> {
        for (name, len) in [
            ("topologies", self.topologies.len()),
            ("vcs", self.vcs.len()),
            ("buffer_depths", self.buffer_depths.len()),
            ("placements", self.placements.len()),
            ("schemes", self.schemes.len()),
            ("cc_thresholds", self.cc_thresholds.len()),
            ("cd_thresholds", self.cd_thresholds.len()),
            ("gammas", self.gammas.len()),
            ("alphas", self.alphas.len()),
            ("betas", self.betas.len()),
            ("benchmarks", self.benchmarks.len()),
        ] {
            assert!(len > 0, "design-space axis `{name}` is empty");
        }
        let mut out = Vec::new();
        let defaults = (
            self.cc_thresholds[0],
            self.cd_thresholds[0],
            self.gammas[0],
            self.alphas[0],
            self.betas[0],
        );
        for &topology in &self.topologies {
            for &vcs in &self.vcs {
                for &buffer_depth in &self.buffer_depths {
                    for &placement in &self.placements {
                        let schemes: &[SchemeKind] = if placement.compressed_storage() {
                            &self.schemes
                        } else {
                            &self.schemes[..1]
                        };
                        for &scheme in schemes {
                            let mut push = |cc, cd, gamma, alpha, beta, bench| {
                                out.push(DesignPoint {
                                    id: out.len() as u64,
                                    topology,
                                    vcs,
                                    buffer_depth,
                                    placement,
                                    scheme,
                                    cc_threshold: cc,
                                    cd_threshold: cd,
                                    gamma,
                                    alpha,
                                    beta,
                                    benchmark: bench,
                                });
                            };
                            if placement == CompressionPlacement::Disco {
                                for &cc in &self.cc_thresholds {
                                    for &cd in &self.cd_thresholds {
                                        for &gamma in &self.gammas {
                                            for &alpha in &self.alphas {
                                                for &beta in &self.betas {
                                                    for &bench in &self.benchmarks {
                                                        push(cc, cd, gamma, alpha, beta, bench);
                                                    }
                                                }
                                            }
                                        }
                                    }
                                }
                            } else {
                                let (cc, cd, gamma, alpha, beta) = defaults;
                                for &bench in &self.benchmarks {
                                    push(cc, cd, gamma, alpha, beta, bench);
                                }
                            }
                        }
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_sequential_and_enumeration_is_stable() {
        let space = DesignSpace::smoke();
        let points = space.points();
        for (i, p) in points.iter().enumerate() {
            assert_eq!(p.id, i as u64);
        }
        assert_eq!(points, space.points(), "enumeration must be deterministic");
        // Smoke space: 2 topologies × (Baseline·1 + CC·2 + CNC·2 +
        // DISCO·2 schemes) = 14 points.
        assert_eq!(points.len(), 14);
    }

    #[test]
    fn baseline_and_thresholds_do_not_multiply() {
        let mut space = DesignSpace::smoke();
        space.cc_thresholds = vec![0.3, 0.5, 0.7];
        let points = space.points();
        // Only DISCO points expand the threshold axis.
        let disco = points
            .iter()
            .filter(|p| p.placement == CompressionPlacement::Disco)
            .count();
        let baseline = points
            .iter()
            .filter(|p| p.placement == CompressionPlacement::Baseline)
            .count();
        assert_eq!(disco, 2 * 2 * 3, "topologies × schemes × cc_thresholds");
        assert_eq!(baseline, 2, "one Baseline point per topology");
        // No two ids describe the same simulation.
        for a in &points {
            for b in &points {
                if a.id != b.id {
                    assert_ne!(
                        (
                            a.topology,
                            a.vcs,
                            a.buffer_depth,
                            a.placement,
                            a.scheme,
                            a.cc_threshold.to_bits(),
                            a.cd_threshold.to_bits(),
                            a.gamma.to_bits(),
                            a.alpha.to_bits(),
                            a.beta.to_bits(),
                            a.benchmark
                        ),
                        (
                            b.topology,
                            b.vcs,
                            b.buffer_depth,
                            b.placement,
                            b.scheme,
                            b.cc_threshold.to_bits(),
                            b.cd_threshold.to_bits(),
                            b.gamma.to_bits(),
                            b.alpha.to_bits(),
                            b.beta.to_bits(),
                            b.benchmark
                        ),
                        "ids {} and {} collapse to one simulation",
                        a.id,
                        b.id
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "axis `benchmarks` is empty")]
    fn empty_axes_are_rejected() {
        let mut space = DesignSpace::smoke();
        space.benchmarks.clear();
        let _ = space.points();
    }

    #[test]
    fn full_space_covers_every_declared_variant() {
        let points = DesignSpace::full().points();
        for t in TopologyChoice::ALL {
            assert!(
                points.iter().any(|p| p.topology == t),
                "{} missing",
                t.name()
            );
        }
        for pl in CompressionPlacement::ALL {
            assert!(points.iter().any(|p| p.placement == pl), "{pl} missing");
        }
        for s in SchemeKind::ALL {
            assert!(points.iter().any(|p| p.scheme == s), "{} missing", s.name());
        }
    }
}
