//! Point execution machinery shared by the DSE driver and the
//! `disco-bench` sweep harness: the order-preserving worker fan-out,
//! the per-point serial-vs-parallel divergence check, and the
//! configuration warnings (shard over-subscription, expected-injection)
//! that used to live in two places.

/// Runs `f` over every item, fanning round-robin across `workers` OS
/// threads (≤ 1 = fully serial). Results come back **in item order**
/// regardless of the worker count: items share no state, so the fan-out
/// needs no synchronization beyond joining, and the round-robin
/// assignment (`skip(t).step_by(workers)`) plus a final index sort make
/// the output order a pure function of the input.
///
/// # Panics
///
/// Propagates a worker panic.
pub fn fan_out<T: Sync, R: Send>(
    items: &[T],
    workers: usize,
    f: impl Fn(&T) -> R + Sync,
) -> Vec<R> {
    let workers = workers.max(1).min(items.len().max(1));
    if workers <= 1 {
        return items.iter().map(f).collect();
    }
    let f = &f;
    let mut indexed: Vec<(usize, R)> = Vec::with_capacity(items.len());
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|t| {
                s.spawn(move || {
                    items
                        .iter()
                        .enumerate()
                        .skip(t)
                        .step_by(workers)
                        .map(|(i, item)| (i, f(item)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for handle in handles {
            match handle.join() {
                Ok(part) => indexed.extend(part),
                Err(_) => panic!("fan-out worker panicked"),
            }
        }
    });
    indexed.sort_by_key(|&(i, _)| i);
    indexed.into_iter().map(|(_, r)| r).collect()
}

/// Runs one point twice — the serial reference, then the parallel
/// configuration under test — and reports whether they agree on `key`
/// (typically the full rendered stats): the `sweep.rs`
/// serial-vs-parallel divergence check, applied per point. Returns the
/// reference result and the verdict (the reference is kept either way,
/// so a divergence is *reported*, never silently shipped).
pub fn run_point_checked<T, K: PartialEq>(
    serial: impl FnOnce() -> T,
    parallel: impl FnOnce() -> T,
    key: impl Fn(&T) -> K,
) -> (T, bool) {
    let reference = serial();
    let agreed = key(&parallel()) == key(&reference);
    (reference, agreed)
}

/// The structured warning for worker/shard over-subscription: asking
/// for more concurrent OS threads than the host has cores measures
/// scheduler noise, not the simulator. Returns a single JSON line, or
/// `None` when the configuration is sound.
pub fn oversubscription_warning(
    label: &str,
    workers: usize,
    shards_per_worker: usize,
    host_cores: usize,
) -> Option<String> {
    let requested = workers.max(1) * shards_per_worker.max(1);
    if host_cores == 0 || requested <= host_cores {
        return None;
    }
    Some(format!(
        "{{\"warning\":\"thread_oversubscription\",\"harness\":\"{}\",\
         \"workers\":{},\"shards_per_worker\":{},\"requested_threads\":{requested},\
         \"host_cores\":{host_cores},\"hint\":\"throughput numbers will measure \
         scheduler contention; lower --workers or --shards\"}}",
        crate::json::json_escape(label),
        workers.max(1),
        shards_per_worker.max(1),
    ))
}

/// Expected fault injections of a run: rate × cycles × sites.
pub fn expected_injections(rate: f64, cycles: u64, sites: u64) -> f64 {
    rate * cycles as f64 * sites as f64
}

/// The structured warning for the silent "0 faults injected looks like
/// 100% recovery" trap: a positive fault rate whose expected injection
/// count rounds to ~0 over the run needs a long-run/resume simulation,
/// not a bench-length one. Returns a single JSON line, or `None` when
/// the configuration is sound.
pub fn injection_warning(label: &str, rate: f64, cycles: u64, sites: u64) -> Option<String> {
    if rate <= 0.0 {
        return None;
    }
    let expected = expected_injections(rate, cycles, sites);
    if expected >= 1.0 {
        return None;
    }
    Some(format!(
        "{{\"warning\":\"expected_injections_rounds_to_zero\",\"job\":\"{}\",\
         \"rate\":{rate:e},\"cycles\":{cycles},\"sites\":{sites},\
         \"expected\":{expected:.6},\"hint\":\"a rate this low injects ~0 faults \
         over this run; use disco-serve long-run/resume mode (or more cycles) \
         for a meaningful recovery measurement\"}}",
        crate::json::json_escape(label),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fan_out_preserves_order_at_any_worker_count() {
        let items: Vec<u64> = (0..23).collect();
        let expect: Vec<u64> = items.iter().map(|i| i * i).collect();
        for workers in [1, 2, 4, 16, 64] {
            assert_eq!(fan_out(&items, workers, |&i| i * i), expect);
        }
        assert_eq!(fan_out(&[] as &[u64], 4, |&i| i), Vec::<u64>::new());
    }

    #[test]
    fn divergence_check_reports_disagreement() {
        let (v, ok) = run_point_checked(|| 7, || 7, |&x: &i32| x);
        assert!(ok);
        assert_eq!(v, 7);
        let (v, ok) = run_point_checked(|| 7, || 8, |&x: &i32| x);
        assert!(!ok, "disagreement must be reported");
        assert_eq!(v, 7, "the serial reference is kept");
        // The key projection lets uncomparable payloads ride along.
        let (v, ok) = run_point_checked(|| (7, "meta"), || (7, "other"), |t| t.0);
        assert!(ok, "only the key is compared");
        assert_eq!(v, (7, "meta"));
    }

    #[test]
    fn oversubscription_warns_only_past_host_cores() {
        assert!(oversubscription_warning("sweep", 4, 1, 8).is_none());
        assert!(oversubscription_warning("sweep", 8, 1, 8).is_none());
        let w = oversubscription_warning("sweep", 8, 2, 8).expect("warns");
        assert!(w.contains("\"requested_threads\":16"));
        assert!(w.contains("thread_oversubscription"));
        // Unknown host parallelism: stay quiet rather than guess.
        assert!(oversubscription_warning("sweep", 64, 4, 0).is_none());
    }

    #[test]
    fn injection_warning_fires_below_one_expected() {
        assert!(injection_warning("j", 0.0, 1000, 80).is_none());
        assert!(injection_warning("j", 1e-3, 1000, 80).is_none());
        let w = injection_warning("j", 1e-9, 1000, 80).expect("warns");
        assert!(w.contains("expected_injections_rounds_to_zero"));
    }
}
