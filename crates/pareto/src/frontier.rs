//! Exact Pareto dominance over the three objectives the DISCO trade
//! study minimizes: latency, energy, and area.
//!
//! Dominance is **weak**: `a` dominates `b` when `a` is no worse on
//! every objective and strictly better on at least one. Equal points
//! therefore dominate neither direction and both sit on the frontier —
//! the census never hides a tie. Every dominated point carries a
//! *proof*: the id of its lowest-id dominator, so the result is
//! deterministic and machine-checkable without re-deriving the
//! comparison.

/// One design point's objective vector. All three are minimized.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Objectives {
    /// Mean on-chip data access latency, cycles (the Fig. 5/6/8 axis).
    pub latency: f64,
    /// Mean memory-subsystem energy per cycle, picojoules (a power
    /// proxy; total energy would double-count speed, which latency
    /// already scores).
    pub pj_per_cycle: f64,
    /// Silicon added over the uncompressed mesh baseline, mm²
    /// (compression hardware + express-channel overlay).
    pub area_mm2: f64,
}

impl Objectives {
    fn as_array(&self) -> [f64; 3] {
        [self.latency, self.pj_per_cycle, self.area_mm2]
    }
}

/// Weak Pareto dominance: `a` ≤ `b` on every objective, `a` < `b` on at
/// least one. Irreflexive (a point never dominates itself or an equal
/// point).
pub fn dominates(a: &Objectives, b: &Objectives) -> bool {
    epsilon_dominates(a, b, 0.0)
}

/// Epsilon-dominance: `a` dominates `b` when `a - eps` weakly dominates
/// it — i.e. `a` may be up to `eps` *worse* per objective and still
/// count, which coarsens the frontier for reporting. `eps = 0` is exact
/// dominance.
pub fn epsilon_dominates(a: &Objectives, b: &Objectives, eps: f64) -> bool {
    debug_assert!(eps >= 0.0, "epsilon must be non-negative");
    let (a, b) = (a.as_array(), b.as_array());
    let mut strictly = false;
    for i in 0..3 {
        let shifted = a[i] - eps;
        if shifted > b[i] {
            return false;
        }
        if shifted < b[i] {
            strictly = true;
        }
    }
    strictly
}

/// One dominated point and its proof.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dominated {
    /// The dominated point.
    pub id: u64,
    /// The lowest-id point that dominates it — re-checkable evidence,
    /// and deterministic regardless of evaluation order.
    pub dominator: u64,
}

/// The frontier and the dominated census over one point set.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Frontier {
    /// Ids of the non-dominated points, ascending.
    pub frontier: Vec<u64>,
    /// Every dominated point with its dominator, ascending by id.
    pub dominated: Vec<Dominated>,
}

/// Computes the exact frontier over `(id, objectives)` pairs.
///
/// Ids must be unique; the input order does not matter (points are
/// sorted by id first), so any worker interleaving yields the identical
/// result. O(n²) pairwise — exact, and the design spaces this serves
/// are thousands of points, not millions.
///
/// # Panics
///
/// Panics if two points share an id or an objective is not finite —
/// both are driver bugs, never data conditions.
pub fn compute(points: &[(u64, Objectives)]) -> Frontier {
    let mut sorted: Vec<&(u64, Objectives)> = points.iter().collect();
    sorted.sort_by_key(|(id, _)| *id);
    for pair in sorted.windows(2) {
        assert_ne!(pair[0].0, pair[1].0, "duplicate point id {}", pair[0].0);
    }
    for (id, o) in &sorted {
        assert!(
            o.as_array().iter().all(|v| v.is_finite()),
            "point {id} has a non-finite objective: {o:?}"
        );
    }
    let mut out = Frontier::default();
    for (id, obj) in &sorted {
        // Lowest-id dominator: scan in ascending id order, stop at the
        // first hit.
        match sorted
            .iter()
            .find(|(oid, other)| oid != id && dominates(other, obj))
        {
            Some((dominator, _)) => out.dominated.push(Dominated {
                id: *id,
                dominator: *dominator,
            }),
            None => out.frontier.push(*id),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn o(latency: f64, energy: f64, area: f64) -> Objectives {
        Objectives {
            latency,
            pj_per_cycle: energy,
            area_mm2: area,
        }
    }

    #[test]
    fn strict_improvement_dominates() {
        assert!(dominates(&o(1.0, 1.0, 1.0), &o(2.0, 2.0, 2.0)));
        assert!(!dominates(&o(2.0, 2.0, 2.0), &o(1.0, 1.0, 1.0)));
    }

    #[test]
    fn single_objective_improvement_suffices() {
        // Better on one axis, equal on the rest: weak dominance.
        assert!(dominates(&o(1.0, 5.0, 5.0), &o(2.0, 5.0, 5.0)));
    }

    #[test]
    fn equal_points_dominate_neither_way() {
        let a = o(3.0, 3.0, 3.0);
        assert!(!dominates(&a, &a));
        let f = compute(&[(0, a), (1, a)]);
        assert_eq!(f.frontier, vec![0, 1], "ties stay on the frontier");
        assert!(f.dominated.is_empty());
    }

    #[test]
    fn trade_offs_are_incomparable() {
        // Faster but hungrier vs slower but frugal: neither dominates.
        let fast = o(1.0, 9.0, 1.0);
        let frugal = o(9.0, 1.0, 1.0);
        assert!(!dominates(&fast, &frugal));
        assert!(!dominates(&frugal, &fast));
        let f = compute(&[(0, fast), (1, frugal)]);
        assert_eq!(f.frontier, vec![0, 1]);
    }

    #[test]
    fn dominated_points_name_their_lowest_dominator() {
        // Point 2 is dominated by both 0 and 1; the proof must name 0.
        let f = compute(&[
            (0, o(1.0, 1.0, 1.0)),
            (1, o(2.0, 2.0, 2.0)),
            (2, o(3.0, 3.0, 3.0)),
        ]);
        assert_eq!(f.frontier, vec![0]);
        assert_eq!(
            f.dominated,
            vec![
                Dominated {
                    id: 1,
                    dominator: 0
                },
                Dominated {
                    id: 2,
                    dominator: 0
                },
            ]
        );
    }

    #[test]
    fn result_is_input_order_invariant() {
        let pts = [
            (3, o(1.0, 4.0, 2.0)),
            (0, o(2.0, 2.0, 2.0)),
            (7, o(2.0, 2.0, 3.0)),
            (1, o(5.0, 1.0, 1.0)),
        ];
        let forward = compute(&pts);
        let mut reversed = pts;
        reversed.reverse();
        assert_eq!(forward, compute(&reversed));
    }

    #[test]
    fn single_objective_degenerate_case_is_a_total_order() {
        // When two objectives are constant the frontier is the argmin
        // of the third (plus its ties).
        let f = compute(&[
            (0, o(4.0, 1.0, 1.0)),
            (1, o(2.0, 1.0, 1.0)),
            (2, o(2.0, 1.0, 1.0)),
            (3, o(9.0, 1.0, 1.0)),
        ]);
        assert_eq!(f.frontier, vec![1, 2]);
        // Proofs name the *lowest-id* dominator, which need not be on
        // the frontier itself: 0 (latency 4) dominates 3 (latency 9)
        // and outranks the frontier point 1 by id.
        assert_eq!(
            f.dominated,
            vec![
                Dominated {
                    id: 0,
                    dominator: 1
                },
                Dominated {
                    id: 3,
                    dominator: 0
                },
            ]
        );
    }

    #[test]
    fn epsilon_coarsens_the_frontier() {
        let a = o(1.0, 1.0, 1.0);
        let b = o(1.5, 0.9, 1.0);
        // Exactly: incomparable (b is better on energy).
        assert!(!dominates(&a, &b));
        // With eps = 0.2, a - eps is no worse than b everywhere and
        // strictly better on latency.
        assert!(epsilon_dominates(&a, &b, 0.2));
        // Epsilon never makes a point dominate itself.
        assert!(epsilon_dominates(&a, &a, 0.2), "eps shifts break ties");
        assert!(!epsilon_dominates(&a, &a, 0.0));
    }

    #[test]
    #[should_panic(expected = "duplicate point id")]
    fn duplicate_ids_are_rejected() {
        let _ = compute(&[(4, o(1.0, 1.0, 1.0)), (4, o(2.0, 2.0, 2.0))]);
    }

    #[test]
    #[should_panic(expected = "non-finite objective")]
    fn non_finite_objectives_are_rejected() {
        let _ = compute(&[(0, o(f64::NAN, 1.0, 1.0))]);
    }
}
