//! End-to-end determinism contract of the exploration driver: the
//! rendered frontier JSON is byte-identical for any worker count and
//! across any kill-and-resume sequence, and every dominated point's
//! proof re-checks against the measured objectives.

use disco_pareto::frontier::dominates;
use disco_pareto::journal::Journal;
use disco_pareto::space::DesignSpace;
use disco_pareto::{explore, ExploreConfig};
use std::path::PathBuf;

/// A four-point space small enough to explore repeatedly in-test: both
/// mesh flavors, the Baseline/DISCO endpoints of the placement axis.
/// Shrunk to 2x2 (unlike the 4x4 CI smoke grid) so the repeated
/// explorations in these tests stay fast.
fn tiny_space() -> DesignSpace {
    let mut space = DesignSpace::smoke();
    space.cols = 2;
    space.rows = 2;
    space.trace_len = 150;
    space.placements = vec![
        disco_core::CompressionPlacement::Baseline,
        disco_core::CompressionPlacement::Disco,
    ];
    space.schemes = vec![disco_compress::SchemeKind::Bdi];
    space
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("disco-pareto-explore-test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join(name);
    let _ = std::fs::remove_file(&path);
    path
}

#[test]
fn frontier_json_is_byte_identical_across_worker_counts_and_resume() {
    let space = tiny_space();
    let reference = explore(&ExploreConfig::new(space.clone()));
    assert_eq!(reference.remaining, 0);
    let reference_json = reference.json.expect("complete");

    // Worker counts 1, 4, 16 over a journal: identical bytes.
    for workers in [1usize, 4, 16] {
        let journal = tmp(&format!("workers{workers}.jsonl"));
        let outcome = explore(&ExploreConfig {
            workers,
            journal: Some(journal),
            ..ExploreConfig::new(space.clone())
        });
        assert_eq!(outcome.completed, outcome.total);
        assert_eq!(
            outcome.json.as_deref(),
            Some(reference_json.as_str()),
            "worker count {workers} changed the output"
        );
    }

    // Kill-and-resume: budgeted invocations with varying worker counts
    // finish the same journal; the final render is byte-identical.
    let journal = tmp("resume.jsonl");
    let first = explore(&ExploreConfig {
        workers: 4,
        journal: Some(journal.clone()),
        max_points: 1,
        ..ExploreConfig::new(space.clone())
    });
    assert_eq!(first.completed, 1);
    assert!(first.remaining > 0, "budget must leave work");
    assert!(
        first.json.is_none(),
        "incomplete exploration renders nothing"
    );

    // Simulate the kill landing mid-append: tear the journal's tail
    // line. The torn entry is re-run, not trusted.
    let text = std::fs::read_to_string(&journal).expect("journal exists");
    std::fs::write(&journal, &text[..text.len() - 5]).expect("tear");
    assert!(
        Journal::new(&journal).load().is_empty(),
        "the torn single-entry journal must load as empty"
    );

    let mut completed = 0;
    for workers in [16usize, 1, 2] {
        let outcome = explore(&ExploreConfig {
            workers,
            journal: Some(journal.clone()),
            max_points: 2,
            ..ExploreConfig::new(space.clone())
        });
        completed += outcome.completed;
        if outcome.remaining == 0 {
            assert_eq!(
                outcome.json.as_deref(),
                Some(reference_json.as_str()),
                "resumed exploration diverged from the uninterrupted run"
            );
        }
    }
    assert_eq!(completed, reference.total, "every point ran exactly once");
}

#[test]
fn dominance_proofs_recheck_against_measured_objectives() {
    let outcome = explore(&ExploreConfig::new(tiny_space()));
    let frontier = outcome.frontier.expect("complete");
    assert_eq!(
        frontier.frontier.len() + frontier.dominated.len(),
        outcome.total,
        "census covers every point"
    );
    // Re-derive objectives from the rendered JSON's journal-equivalent:
    // re-explore into a journal and read the entries back.
    let journal = tmp("proofs.jsonl");
    let again = explore(&ExploreConfig {
        journal: Some(journal.clone()),
        ..ExploreConfig::new(tiny_space())
    });
    assert_eq!(again.frontier.as_ref(), Some(&frontier));
    let entries = Journal::new(&journal).load();
    for d in &frontier.dominated {
        let loser = entries[&d.id].objectives();
        let winner = entries[&d.dominator].objectives();
        assert!(
            dominates(&winner, &loser),
            "proof failed: {} does not dominate {}",
            d.dominator,
            d.id
        );
    }
    for id in &frontier.frontier {
        let obj = entries[id].objectives();
        for other in entries.values() {
            assert!(
                other.id == *id || !dominates(&other.objectives(), &obj),
                "frontier point {id} is actually dominated by {}",
                other.id
            );
        }
    }
}

#[test]
fn stale_journal_for_a_different_space_is_refused() {
    let journal = tmp("stale.jsonl");
    let big = explore(&ExploreConfig {
        journal: Some(journal.clone()),
        ..ExploreConfig::new(tiny_space())
    });
    assert_eq!(big.remaining, 0);
    let mut shrunk = tiny_space();
    shrunk.topologies.truncate(1);
    let result = std::panic::catch_unwind(|| {
        explore(&ExploreConfig {
            journal: Some(journal.clone()),
            ..ExploreConfig::new(shrunk)
        })
    });
    assert!(
        result.is_err(),
        "a stale journal must be refused, not blended"
    );
}
