//! Reusable experiment primitives behind the figure binaries, so
//! downstream users can regenerate any paper artifact programmatically.

use crate::{gmean, run, DEFAULT_SEED};
use disco_compress::SchemeKind;
use disco_core::CompressionPlacement;
use disco_workloads::Benchmark;

/// One benchmark's normalized CC/CNC/DISCO triple.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NormalizedRow {
    /// The workload.
    pub benchmark: Benchmark,
    /// CC (cache-only compression), normalized.
    pub cc: f64,
    /// CNC (cache + NI compression), normalized.
    pub cnc: f64,
    /// DISCO, normalized.
    pub disco: f64,
}

/// The Fig. 5/6 metric for one benchmark: mean on-chip access latency of
/// each placement, normalized to the zero-overhead Ideal configuration.
pub fn latency_row(
    benchmark: Benchmark,
    scheme: SchemeKind,
    mesh: usize,
    trace_len: usize,
) -> NormalizedRow {
    let ideal = run(
        benchmark,
        CompressionPlacement::Ideal,
        scheme,
        mesh,
        trace_len,
    )
    .avg_onchip_latency();
    let norm = |p| run(benchmark, p, scheme, mesh, trace_len).avg_onchip_latency() / ideal;
    NormalizedRow {
        benchmark,
        cc: norm(CompressionPlacement::CacheOnly),
        cnc: norm(CompressionPlacement::CacheAndNi),
        disco: norm(CompressionPlacement::Disco),
    }
}

/// The Fig. 7 metric for one benchmark: memory-subsystem energy of each
/// placement, normalized to the uncompressed baseline.
pub fn energy_row(
    benchmark: Benchmark,
    scheme: SchemeKind,
    mesh: usize,
    trace_len: usize,
) -> NormalizedRow {
    let base = run(
        benchmark,
        CompressionPlacement::Baseline,
        scheme,
        mesh,
        trace_len,
    )
    .total_energy_pj();
    let norm = |p| run(benchmark, p, scheme, mesh, trace_len).total_energy_pj() / base;
    NormalizedRow {
        benchmark,
        cc: norm(CompressionPlacement::CacheOnly),
        cnc: norm(CompressionPlacement::CacheAndNi),
        disco: norm(CompressionPlacement::Disco),
    }
}

/// Geometric means over a set of rows: `(cc, cnc, disco)`.
pub fn summarize(rows: &[NormalizedRow]) -> (f64, f64, f64) {
    let col = |f: fn(&NormalizedRow) -> f64| gmean(&rows.iter().map(f).collect::<Vec<_>>());
    (col(|r| r.cc), col(|r| r.cnc), col(|r| r.disco))
}

/// DISCO's relative improvement over a competitor's normalized value, in
/// percent (positive = DISCO better), as the paper quotes its headline
/// numbers.
pub fn improvement_pct(competitor: f64, disco: f64) -> f64 {
    100.0 * (competitor - disco) / competitor
}

/// A deterministic seed helper so library users match the recorded
/// results in `EXPERIMENTS.md`.
pub fn recorded_seed() -> u64 {
    DEFAULT_SEED
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_row_is_normalized_and_ordered() {
        let row = latency_row(Benchmark::Dedup, SchemeKind::Delta, 2, 600);
        for v in [row.cc, row.cnc, row.disco] {
            assert!(v >= 0.95, "normalized values sit at or above Ideal: {v}");
            assert!(v < 3.0, "and in a sane range: {v}");
        }
    }

    #[test]
    fn energy_row_prefers_compression() {
        let row = energy_row(Benchmark::X264, SchemeKind::Delta, 2, 800);
        assert!(
            row.disco < 1.05,
            "DISCO energy must not exceed baseline: {}",
            row.disco
        );
    }

    #[test]
    fn summarize_matches_hand_gmean() {
        let rows = vec![
            NormalizedRow {
                benchmark: Benchmark::Vips,
                cc: 2.0,
                cnc: 1.0,
                disco: 1.0,
            },
            NormalizedRow {
                benchmark: Benchmark::X264,
                cc: 8.0,
                cnc: 1.0,
                disco: 4.0,
            },
        ];
        let (cc, cnc, disco) = summarize(&rows);
        assert!((cc - 4.0).abs() < 1e-12);
        assert!((cnc - 1.0).abs() < 1e-12);
        assert!((disco - 2.0).abs() < 1e-12);
    }

    #[test]
    fn improvement_pct_signs() {
        assert!((improvement_pct(1.2, 1.08) - 10.0).abs() < 1e-9);
        assert!(improvement_pct(1.0, 1.1) < 0.0);
    }
}
