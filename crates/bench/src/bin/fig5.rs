//! **Fig. 5** — performance comparison with delta-based compression.
//!
//! Average on-chip data access latency of CC, CNC, and DISCO per PARSEC
//! benchmark, normalized to the Ideal configuration (cache compression
//! with zero de/compression overhead), on the Table 2 system (4×4 mesh,
//! 16-banked 4 MB NUCA, delta codec).
//!
//! Paper headline: DISCO surpasses CC by 12 % and CNC by 10.1 % on
//! average.
//!
//! `cargo run --release -p disco-bench --bin fig5`

use disco_bench::experiments::{improvement_pct, latency_row, summarize};
use disco_bench::{print_header, print_row, trace_len};
use disco_compress::SchemeKind;
use disco_workloads::Benchmark;

fn main() {
    let len = trace_len();
    println!("Fig. 5 — normalized on-chip data access latency, delta codec");
    println!("(4x4 mesh, trace_len={len}; lower is better; Ideal = 1.0)\n");
    print_header(&["CC", "CNC", "DISCO"]);
    let rows: Vec<_> = Benchmark::ALL
        .into_iter()
        .map(|bench| {
            let row = latency_row(bench, SchemeKind::Delta, 4, len);
            print_row(bench.name(), &[row.cc, row.cnc, row.disco]);
            row
        })
        .collect();
    let (cc, cnc, disco) = summarize(&rows);
    println!();
    print_row("gmean", &[cc, cnc, disco]);
    println!(
        "\nDISCO improves on CC by {:.1}% (paper: 12%), on CNC by {:.1}% (paper: 10.1%)",
        improvement_pct(cc, disco),
        improvement_pct(cnc, disco),
    );
}
