//! Classic NoC load–latency curves for the `disco-noc` substrate, per
//! traffic pattern — the standard validation that a router model behaves
//! like a router (low flat region, then a saturation knee).
//!
//! `cargo run --release -p disco-bench --bin noc_load_latency`

use disco_noc::traffic::{TrafficDriver, TrafficPattern};
use disco_noc::{Mesh, Network, NocConfig, NodeId};

fn measure(pattern: TrafficPattern, rate: f64) -> (f64, f64) {
    let mesh = Mesh::new(4, 4);
    let mut net = Network::new(mesh, NocConfig::default());
    let mut driver = TrafficDriver::new(pattern, rate, true, 99);
    let warmup = 2_000;
    let measure = 6_000;
    for _ in 0..warmup {
        driver.inject(&mut net);
        net.tick();
        for n in 0..16 {
            let _ = net.take_delivered(NodeId(n));
        }
    }
    let before = *net.stats();
    for _ in 0..measure {
        driver.inject(&mut net);
        net.tick();
        for n in 0..16 {
            let _ = net.take_delivered(NodeId(n));
        }
    }
    let after = *net.stats();
    let delivered = after.packets_delivered - before.packets_delivered;
    let latency =
        (after.total_packet_latency - before.total_packet_latency) as f64 / delivered.max(1) as f64;
    let throughput =
        after.link_flits.saturating_sub(before.link_flits) as f64 / (measure as f64 * 16.0);
    (latency, throughput)
}

fn main() {
    println!("NoC load-latency curves (4x4 mesh, 8-flit data packets)\n");
    for (name, pattern) in [
        ("uniform", TrafficPattern::UniformRandom),
        ("transpose", TrafficPattern::Transpose),
        ("bit-compl", TrafficPattern::BitComplement),
        ("hotspot(0)", TrafficPattern::Hotspot(NodeId(0))),
    ] {
        println!("--- {name} ---");
        println!("{:>8} {:>12} {:>14}", "load", "latency", "accepted");
        for rate in [0.05, 0.1, 0.2, 0.3, 0.4, 0.6, 0.8] {
            let (lat, thr) = measure(pattern, rate);
            println!("{rate:>8.2} {lat:>12.1} {thr:>14.3}");
            if lat > 500.0 {
                println!("{:>8} (saturated)", "...");
                break;
            }
        }
        println!();
    }
}
