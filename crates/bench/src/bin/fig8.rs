//! **Fig. 8** — scalability comparison of DISCO compression.
//!
//! Normalized on-chip data access latency of CC, CNC, and DISCO on CMPs
//! of 2×2 (4 banks), 4×4 (16 banks), and 8×8 (64 banks), with the working
//! set scaled with the core count. Paper headline: DISCO's gain over CC
//! grows from insignificant at 4 banks to ~22 % at 64 banks (longer
//! routes → more queuing to harvest, more hops of compressed traffic).
//!
//! Uses four representative benchmarks (one per compressibility/footprint
//! quadrant) to bound the 64-core runtime; set `TRACE_LEN` to adjust.
//!
//! `cargo run --release -p disco-bench --bin fig8`

use disco_bench::experiments::{improvement_pct, latency_row, summarize};
use disco_bench::trace_len;
use disco_compress::SchemeKind;
use disco_workloads::Benchmark;

const BENCHES: [Benchmark; 4] = [
    Benchmark::Canneal,
    Benchmark::Dedup,
    Benchmark::Ferret,
    Benchmark::X264,
];

fn main() {
    let len = trace_len().min(8_000); // bound the 64-core runs
    println!("Fig. 8 — scalability of DISCO (normalized latency, delta codec)");
    println!("(benchmarks: canneal/dedup/ferret/x264 gmean, trace_len={len})\n");
    println!(
        "{:<8} {:>9} {:>9} {:>9} {:>16}",
        "mesh", "CC", "CNC", "DISCO", "DISCO gain vs CC"
    );
    for mesh in [2usize, 4, 8] {
        let rows: Vec<_> = BENCHES
            .into_iter()
            .map(|bench| latency_row(bench, SchemeKind::Delta, mesh, len))
            .collect();
        let (cc, cnc, disco) = summarize(&rows);
        println!(
            "{:<8} {:>9.3} {:>9.3} {:>9.3} {:>15.1}%",
            format!("{mesh}x{mesh}"),
            cc,
            cnc,
            disco,
            improvement_pct(cc, disco),
        );
    }
    println!("\npaper: gain over CC grows from ~insignificant (4 banks) to ~22% (64 banks)");
}
