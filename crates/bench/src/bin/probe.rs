//! Developer diagnostic: detailed per-placement statistics for one
//! benchmark, used to calibrate workloads and DISCO parameters.

use disco_core::{CompressionPlacement, SimBuilder};
use disco_workloads::Benchmark;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let bench = args
        .get(1)
        .and_then(|n| Benchmark::ALL.into_iter().find(|b| b.name() == n.as_str()))
        .unwrap_or(Benchmark::Dedup);
    let trace_len: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(4_000);
    println!("{bench} trace_len={trace_len}");
    println!(
        "{:<9} {:>9} {:>8} {:>8} {:>8} {:>9} {:>8} {:>9} {:>8} {:>8}",
        "config",
        "cyc/miss",
        "cycles",
        "l1m%",
        "llcm%",
        "flits",
        "pktlat",
        "saloss",
        "eff.way",
        "ratio"
    );
    let intens: f64 = std::env::var("INTENS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.0);
    let cc_th: f64 = std::env::var("CCTH")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2.0);
    let cd_th: f64 = std::env::var("CDTH")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.0);
    let beta: f64 = std::env::var("BETA")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.5);
    for placement in CompressionPlacement::ALL {
        let r = SimBuilder::new()
            .mesh(4, 4)
            .placement(placement)
            .profile({
                let mut p = bench.profile();
                p.intensity *= intens;
                p
            })
            .trace_len(trace_len)
            .disco_params(disco_core::DiscoParams {
                cc_threshold: cc_th,
                cd_threshold: cd_th,
                beta,
                ..Default::default()
            })
            .seed(7)
            .run()
            .expect("run");
        println!(
            "{:<9} {:>9.1} {:>8} {:>8.1} {:>8.1} {:>9} {:>8.1} {:>9} {:>8.2} {:>8.2}",
            placement.name(),
            r.avg_access_latency(),
            r.cycles,
            100.0 * r.l1.miss_rate(),
            100.0 * r.banks.miss_rate(),
            r.network.link_flits,
            r.network.avg_packet_latency(),
            r.network.sa_losses,
            0.0,
            r.compression.mean_ratio(),
        );
        if let Some(d) = r.disco {
            println!("          disco: {d:?}");
        }
    }
}
