//! Parallel sweep runner: the same uniform-random load sweep executed
//! twice — once fully serial, once fanned across threads — with a
//! machine-readable `BENCH_*.json` recording wall-clock and cycles/sec
//! per point plus the overall speedup. The two passes must agree on
//! every counter; the runner exits non-zero if they diverge.
//!
//! `cargo run --release -p disco-bench --bin sweep -- \
//!     [--mesh 8] [--topology mesh|ring|hring|torus|cmesh] \
//!     [--cycles 20000] [--threads N] [--shards S] \
//!     [--rates 0.05,0.1,0.2,0.3] [--out BENCH_pr3.json]`

use disco_bench::sweep::{pattern_name, run_sweep, PointResult, SweepPoint};
use disco_noc::traffic::TrafficPattern;
use disco_noc::TopologyChoice;
use std::fmt::Write as _;
use std::process::ExitCode;
use std::time::Instant;

struct Args {
    mesh: usize,
    topology: TopologyChoice,
    cycles: u64,
    threads: usize,
    shards: usize,
    rates: Vec<f64>,
    out: String,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        mesh: 8,
        topology: TopologyChoice::Mesh,
        cycles: 20_000,
        threads: std::thread::available_parallelism().map_or(4, |n| n.get()),
        shards: 1,
        rates: vec![0.05, 0.1, 0.2, 0.3],
        out: "BENCH_pr3.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let value = it
            .next()
            .ok_or_else(|| format!("missing value for {flag}"))?;
        let bad = |what: &str| format!("invalid {what}: {value}");
        match flag.as_str() {
            "--mesh" => args.mesh = value.parse().map_err(|_| bad("--mesh"))?,
            "--topology" => {
                args.topology = TopologyChoice::parse(&value).ok_or_else(|| bad("--topology"))?;
            }
            "--cycles" => args.cycles = value.parse().map_err(|_| bad("--cycles"))?,
            "--threads" => args.threads = value.parse().map_err(|_| bad("--threads"))?,
            "--shards" => args.shards = value.parse().map_err(|_| bad("--shards"))?,
            "--rates" => {
                args.rates = value
                    .split(',')
                    .map(|r| r.trim().parse().map_err(|_| bad("--rates")))
                    .collect::<Result<_, _>>()?;
            }
            "--out" => args.out = value,
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn point_json(serial: &PointResult, fanned: &PointResult) -> String {
    let p = &serial.point;
    format!(
        "{{\"pattern\": \"{}\", \"rate\": {}, \"seed\": {}, \
         \"packets_delivered\": {}, \"avg_packet_latency\": {:.4}, \
         \"serial_wall_s\": {:.6}, \"serial_cycles_per_s\": {:.0}, \
         \"parallel_wall_s\": {:.6}, \"parallel_cycles_per_s\": {:.0}}}",
        pattern_name(p.pattern),
        p.injection_rate,
        p.seed,
        serial.stats.packets_delivered,
        serial.stats.avg_packet_latency(),
        serial.wall_secs,
        serial.cycles_per_sec,
        fanned.wall_secs,
        fanned.cycles_per_sec,
    )
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("sweep: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Make over-subscription loud: on a host with fewer cores than
    // requested threads/shards, the "parallel" pass measures
    // time-slicing, and its speedup number is not a parallelism result
    // (this is exactly how BENCH_pr3's 0.952x on a 1-core container
    // read as a regression). `host_cores` in the JSON records the truth.
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    if args.threads > host_cores {
        eprintln!(
            "sweep: WARNING: {} threads on {host_cores} host core(s) — \
             speedup will reflect time-slicing, not parallelism",
            args.threads
        );
    }
    if args.shards > host_cores {
        eprintln!(
            "sweep: WARNING: {} kernel shards on {host_cores} host core(s)",
            args.shards
        );
    }
    // The driver maps `seed` to `seed | 1`, so adjacent integers collide;
    // step by 2 to get genuinely distinct streams.
    let seeds = [disco_bench::DEFAULT_SEED, disco_bench::DEFAULT_SEED + 2];
    let points: Vec<SweepPoint> = args
        .rates
        .iter()
        .flat_map(|&rate| {
            seeds.iter().map(move |&seed| SweepPoint {
                topology: args.topology,
                pattern: TrafficPattern::UniformRandom,
                injection_rate: rate,
                seed,
                cols: args.mesh,
                rows: args.mesh,
                cycles: args.cycles,
                compute_shards: args.shards,
                trace_capacity: 0,
            })
        })
        .collect();
    println!(
        "sweep: {} points ({}x{} {}, {} cycles each), serial then {} threads",
        points.len(),
        args.mesh,
        args.mesh,
        args.topology,
        args.cycles,
        args.threads
    );

    let t0 = Instant::now();
    let serial = run_sweep(&points, 1);
    let serial_wall = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    let fanned = run_sweep(&points, args.threads);
    let parallel_wall = t1.elapsed().as_secs_f64();

    let mut diverged = false;
    for (s, f) in serial.iter().zip(&fanned) {
        if s.stats != f.stats {
            eprintln!(
                "sweep: DIVERGENCE at rate {} seed {}: serial {:?} vs parallel {:?}",
                s.point.injection_rate, s.point.seed, s.stats, f.stats
            );
            diverged = true;
        }
    }

    let speedup = serial_wall / parallel_wall.max(1e-9);
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"sweep\",");
    let _ = writeln!(json, "  \"mesh\": \"{}x{}\",", args.mesh, args.mesh);
    let _ = writeln!(json, "  \"topology\": \"{}\",", args.topology);
    let _ = writeln!(json, "  \"cycles_per_point\": {},", args.cycles);
    let _ = writeln!(json, "  \"threads\": {},", args.threads);
    let _ = writeln!(json, "  \"host_cores\": {host_cores},");
    let _ = writeln!(json, "  \"compute_shards\": {},", args.shards);
    let _ = writeln!(
        json,
        "  \"kernel_parallel_feature\": {},",
        cfg!(feature = "parallel")
    );
    let _ = writeln!(json, "  \"points\": [");
    for (i, (s, f)) in serial.iter().zip(&fanned).enumerate() {
        let sep = if i + 1 < serial.len() { "," } else { "" };
        let _ = writeln!(json, "    {}{}", point_json(s, f), sep);
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"serial_total_wall_s\": {serial_wall:.6},");
    let _ = writeln!(json, "  \"parallel_total_wall_s\": {parallel_wall:.6},");
    let _ = writeln!(json, "  \"deterministic\": {},", !diverged);
    let _ = writeln!(json, "  \"speedup\": {speedup:.3}");
    let _ = writeln!(json, "}}");
    if let Err(e) = std::fs::write(&args.out, &json) {
        eprintln!("sweep: cannot write {}: {e}", args.out);
        return ExitCode::FAILURE;
    }
    println!(
        "sweep: serial {serial_wall:.2}s, parallel {parallel_wall:.2}s, speedup {speedup:.2}x -> {}",
        args.out
    );
    if diverged {
        eprintln!("sweep: FAIL parallel pass diverged from serial pass");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
