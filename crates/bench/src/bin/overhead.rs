//! **§4.3 — overhead estimation.**
//!
//! Area of the DISCO de/compressor + arbitrator versus the router and the
//! 4 MB NUCA, compared with CC's per-bank units and CNC's bank + NI units
//! (45 nm, FreePDK45-class figures). Paper headline: DISCO adds 17.2 % of
//! a router (< 1 % of the NUCA) and saves about half of CNC's area.
//!
//! `cargo run --release -p disco-bench --bin overhead`

use disco_energy::AreaModel;

fn main() {
    let model = AreaModel::default();
    println!("§4.3 — area overhead at 45 nm (4x4 CMP, 4 MB NUCA)\n");
    println!(
        "router = {:.4} mm2, DISCO unit = {:.4} mm2, NUCA = {:.1} mm2\n",
        model.router_mm2, model.disco_unit_mm2, model.nuca_4mb_mm2
    );
    println!(
        "{:<8} {:>12} {:>14} {:>12}",
        "config", "added mm2", "% of routers", "% of cache"
    );
    for (name, area) in [
        ("CC", model.cc(16)),
        ("CNC", model.cnc(16)),
        ("DISCO", model.disco(16)),
    ] {
        println!(
            "{:<8} {:>12.4} {:>13.1}% {:>11.2}%",
            name,
            area.added_mm2,
            100.0 * area.of_routers,
            100.0 * area.of_cache
        );
    }
    let save = 1.0 - model.disco(16).added_mm2 / model.cnc(16).added_mm2;
    println!(
        "\nDISCO adds {:.1}% of router area (paper: 17.2%), {:.2}% of the cache (paper: <1%),",
        100.0 * model.disco(16).of_routers,
        100.0 * model.disco(16).of_cache
    );
    println!(
        "and saves {:.0}% of CNC's compressor area (paper: ~half)",
        100.0 * save
    );
}
