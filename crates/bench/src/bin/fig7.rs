//! **Fig. 7** — energy comparison with the delta-based compression
//! scheme.
//!
//! Memory-subsystem energy (NoC + NUCA, §4.2's Orion/CACTI-style model)
//! of CC, CNC, and DISCO per benchmark, normalized to the uncompressed
//! baseline. Paper headline: DISCO consumes 73.3 % of the baseline's
//! energy on average, 9.1 % less than CNC and 8.3 % less than CC.
//!
//! `cargo run --release -p disco-bench --bin fig7`

use disco_bench::experiments::{energy_row, improvement_pct, summarize};
use disco_bench::{print_header, print_row, trace_len};
use disco_compress::SchemeKind;
use disco_workloads::Benchmark;

fn main() {
    let len = trace_len();
    println!("Fig. 7 — normalized memory-subsystem energy, delta codec");
    println!("(4x4 mesh, trace_len={len}; lower is better; Baseline = 1.0)\n");
    print_header(&["CC", "CNC", "DISCO"]);
    let rows: Vec<_> = Benchmark::ALL
        .into_iter()
        .map(|bench| {
            let row = energy_row(bench, SchemeKind::Delta, 4, len);
            print_row(bench.name(), &[row.cc, row.cnc, row.disco]);
            row
        })
        .collect();
    let (cc, cnc, disco) = summarize(&rows);
    println!();
    print_row("gmean", &[cc, cnc, disco]);
    println!(
        "\nDISCO uses {:.1}% of baseline energy (paper: 73.3%); \
         {:.1}% less than CNC (paper: 9.1%), {:.1}% less than CC (paper: 8.3%)",
        100.0 * disco,
        improvement_pct(cnc, disco),
        improvement_pct(cc, disco),
    );
}
