//! **Ablation — routing strategies under DISCO (§3.3).**
//!
//! The paper examines "the potential benefits brought by routing
//! strategies to provide non-blocking selective de/compression". This
//! sweep runs DISCO under XY, YX, O1TURN, and west-first adaptive
//! routing: load-balancing routing spreads the contention DISCO harvests,
//! trading fewer idle windows (less hiding) for lower base queuing.
//!
//! `cargo run --release -p disco-bench --bin ablation_routing`

use disco_bench::{trace_len, DEFAULT_SEED};
use disco_core::{CompressionPlacement, SimBuilder};
use disco_noc::{NocConfig, RoutingAlgorithm};
use disco_workloads::Benchmark;

fn main() {
    let len = trace_len().min(8_000);
    println!("Ablation — routing algorithms under DISCO (trace_len={len})\n");
    println!(
        "{:<12} {:<11} {:>9} {:>9} {:>8} {:>8} {:>9}",
        "benchmark", "routing", "cyc/miss", "pkt lat", "comp", "decomp", "saloss"
    );
    for bench in [
        Benchmark::Canneal,
        Benchmark::Streamcluster,
        Benchmark::Dedup,
    ] {
        for (name, routing) in [
            ("XY", RoutingAlgorithm::Xy),
            ("YX", RoutingAlgorithm::Yx),
            ("O1TURN", RoutingAlgorithm::O1Turn),
            ("west-first", RoutingAlgorithm::WestFirst),
        ] {
            let r = SimBuilder::new()
                .mesh(4, 4)
                .placement(CompressionPlacement::Disco)
                .benchmark(bench)
                .trace_len(len)
                .noc(NocConfig {
                    routing,
                    ..NocConfig::default()
                })
                .seed(DEFAULT_SEED)
                .run()
                .expect("run");
            let d = r.disco.expect("disco stats");
            println!(
                "{:<12} {:<11} {:>9.1} {:>9.1} {:>8} {:>8} {:>9}",
                bench.name(),
                name,
                r.avg_onchip_latency(),
                r.network.avg_packet_latency(),
                d.compressions,
                d.decompressions,
                r.network.sa_losses,
            );
        }
        println!();
    }
}
