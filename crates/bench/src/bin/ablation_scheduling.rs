//! **Ablation — compression-aware packet scheduling (§3.3-B rule 2).**
//!
//! With the rule, compressible-but-uncompressed packets get the lowest
//! switch priority, so they idle next to a compressor more often (higher
//! in-network compression coverage) at the cost of their own forward
//! progress. Without it, they compete equally.
//!
//! `cargo run --release -p disco-bench --bin ablation_scheduling`

use disco_bench::{trace_len, DEFAULT_SEED};
use disco_core::{CompressionPlacement, SimBuilder};
use disco_workloads::Benchmark;

fn main() {
    let len = trace_len().min(8_000);
    println!("Ablation — §3.3-B rule-2 scheduling (demote uncompressed packets)\n");
    println!(
        "{:<12} {:<10} {:>9} {:>8} {:>10} {:>9}",
        "benchmark", "rule 2", "cyc/miss", "comp", "flitssaved", "flits"
    );
    for bench in [Benchmark::Canneal, Benchmark::Dedup, Benchmark::X264] {
        for demote in [true, false] {
            let r = SimBuilder::new()
                .mesh(4, 4)
                .placement(CompressionPlacement::Disco)
                .benchmark(bench)
                .trace_len(len)
                .demote_uncompressed(demote)
                .seed(DEFAULT_SEED)
                .run()
                .expect("run");
            let d = r.disco.expect("disco stats");
            println!(
                "{:<12} {:<10} {:>9.1} {:>8} {:>10} {:>9}",
                bench.name(),
                if demote { "on" } else { "off" },
                r.avg_access_latency(),
                d.compressions,
                d.flits_saved,
                r.network.link_flits,
            );
        }
    }
}
