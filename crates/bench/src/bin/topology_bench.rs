//! Per-topology benchmark: every shipped topology gets (a) a raw NoC
//! throughput point under uniform-random load and (b) a full-system
//! DISCO run, so the snapshot records both how fast each fabric moves
//! flits and how much codec latency DISCO hides on it. With the `trace`
//! feature the full-system leg captures latency provenance and reports
//! the hidden-codec-latency coverage directly; without it the coverage
//! field is `null` (the throughput numbers are unaffected).
//!
//! `cargo run --release --features trace -p disco-bench --bin topology_bench -- \
//!     [--mesh 4] [--cycles 5000] [--rate 0.1] [--trace-len 2000] \
//!     [--out BENCH_pr8.json]`

use disco_bench::sweep::{run_point, SweepPoint};
use disco_core::{CompressionPlacement, SimBuilder};
use disco_noc::traffic::TrafficPattern;
use disco_noc::TopologyChoice;
use disco_workloads::Benchmark;
use std::fmt::Write as _;
use std::process::ExitCode;

struct Args {
    mesh: usize,
    cycles: u64,
    rate: f64,
    trace_len: usize,
    out: String,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        mesh: 4,
        cycles: 5_000,
        rate: 0.1,
        trace_len: 2_000,
        out: "BENCH_pr8.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let value = it
            .next()
            .ok_or_else(|| format!("missing value for {flag}"))?;
        let bad = |what: &str| format!("invalid {what}: {value}");
        match flag.as_str() {
            "--mesh" => args.mesh = value.parse().map_err(|_| bad("--mesh"))?,
            "--cycles" => args.cycles = value.parse().map_err(|_| bad("--cycles"))?,
            "--rate" => args.rate = value.parse().map_err(|_| bad("--rate"))?,
            "--trace-len" => args.trace_len = value.parse().map_err(|_| bad("--trace-len"))?,
            "--out" => args.out = value,
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

struct TopologyResult {
    topology: TopologyChoice,
    routers: usize,
    radix: usize,
    cycles_per_sec: f64,
    packets_delivered: u64,
    avg_packet_latency: f64,
    avg_hops: f64,
    avg_access_latency: f64,
    compressions: u64,
    flits_saved: u64,
    hidden_coverage: Option<f64>,
}

fn run_topology(choice: TopologyChoice, args: &Args) -> Result<TopologyResult, String> {
    let topo = choice.build(args.mesh, args.mesh);
    let (routers, radix) = (topo.routers(), topo.radix());
    let point = run_point(&SweepPoint {
        topology: choice,
        pattern: TrafficPattern::UniformRandom,
        injection_rate: args.rate,
        seed: disco_bench::DEFAULT_SEED,
        cols: args.mesh,
        rows: args.mesh,
        cycles: args.cycles,
        compute_shards: 1,
        trace_capacity: 0,
    });
    let builder = SimBuilder::new()
        .mesh(args.mesh, args.mesh)
        .topology(choice)
        .placement(CompressionPlacement::Disco)
        .benchmark(Benchmark::Dedup)
        .trace_len(args.trace_len)
        .seed(disco_bench::DEFAULT_SEED);
    #[cfg(feature = "trace")]
    let builder = builder.capture_trace(true);
    let report = builder
        .run()
        .map_err(|e| format!("{choice} system run failed: {e}"))?;
    #[cfg(feature = "trace")]
    let hidden_coverage = report
        .trace
        .as_ref()
        .map(|t| t.provenance.hidden_coverage());
    #[cfg(not(feature = "trace"))]
    let hidden_coverage = None;
    let disco = report.disco.as_ref();
    Ok(TopologyResult {
        topology: choice,
        routers,
        radix,
        cycles_per_sec: point.cycles_per_sec,
        packets_delivered: point.stats.packets_delivered,
        avg_packet_latency: point.stats.avg_packet_latency(),
        avg_hops: point.stats.avg_hops(),
        avg_access_latency: report.avg_access_latency(),
        compressions: disco.map_or(0, |d| d.compressions + d.queue_compressions),
        flits_saved: disco.map_or(0, |d| d.flits_saved),
        hidden_coverage,
    })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("topology_bench: {e}");
            return ExitCode::FAILURE;
        }
    };
    if !cfg!(feature = "trace") {
        eprintln!(
            "topology_bench: WARNING: built without --features trace; \
             hidden_coverage will be null"
        );
    }
    let mut results = Vec::new();
    for choice in TopologyChoice::ALL {
        match run_topology(choice, &args) {
            Ok(r) => {
                println!(
                    "topology_bench: {}: {:.0} c/s, {} pkts, avg latency {:.2}, \
                     {} compressions, hidden coverage {}",
                    r.topology,
                    r.cycles_per_sec,
                    r.packets_delivered,
                    r.avg_packet_latency,
                    r.compressions,
                    r.hidden_coverage
                        .map_or_else(|| "n/a".to_string(), |c| format!("{c:.3}")),
                );
                results.push(r);
            }
            Err(e) => {
                eprintln!("topology_bench: FAIL {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"topology_bench\",");
    let _ = writeln!(json, "  \"mesh\": \"{0}x{0}\",", args.mesh);
    let _ = writeln!(json, "  \"noc_cycles\": {},", args.cycles);
    let _ = writeln!(json, "  \"noc_rate\": {},", args.rate);
    let _ = writeln!(json, "  \"system_trace_len\": {},", args.trace_len);
    let _ = writeln!(json, "  \"host_cores\": {host_cores},");
    let _ = writeln!(json, "  \"trace_feature\": {},", cfg!(feature = "trace"));
    let _ = writeln!(json, "  \"topologies\": [");
    for (i, r) in results.iter().enumerate() {
        let sep = if i + 1 < results.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"topology\": \"{}\", \"routers\": {}, \"radix\": {}, \
             \"noc_cycles_per_s\": {:.0}, \"packets_delivered\": {}, \
             \"avg_packet_latency\": {:.4}, \"avg_hops\": {:.4}, \
             \"avg_access_latency\": {:.4}, \"disco_compressions\": {}, \
             \"disco_flits_saved\": {}, \"hidden_coverage\": {}}}{}",
            r.topology,
            r.routers,
            r.radix,
            r.cycles_per_sec,
            r.packets_delivered,
            r.avg_packet_latency,
            r.avg_hops,
            r.avg_access_latency,
            r.compressions,
            r.flits_saved,
            r.hidden_coverage
                .map_or_else(|| "null".to_string(), |c| format!("{c:.4}")),
            sep
        );
    }
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");
    if let Err(e) = std::fs::write(&args.out, &json) {
        eprintln!("topology_bench: cannot write {}: {e}", args.out);
        return ExitCode::FAILURE;
    }
    println!(
        "topology_bench: {} topologies -> {}",
        results.len(),
        args.out
    );
    ExitCode::SUCCESS
}
