//! One-screen dashboard: a compact version of every headline result,
//! for a quick end-to-end smoke check of the whole reproduction.
//!
//! `cargo run --release -p disco-bench --bin summary` (≈ a minute; set
//! `TRACE_LEN` lower for a faster pass)

use disco_bench::{gmean, run, trace_len};
use disco_compress::SchemeKind;
use disco_core::CompressionPlacement;
use disco_energy::AreaModel;
use disco_workloads::Benchmark;

/// A fast, representative subset of the PARSEC sweep.
const BENCHES: [Benchmark; 4] = [
    Benchmark::Canneal,
    Benchmark::Dedup,
    Benchmark::Ferret,
    Benchmark::X264,
];

fn main() {
    let len = trace_len().min(6_000);
    println!("DISCO reproduction — headline summary (4 benchmarks, trace_len={len})\n");

    // Fig. 5-style latency for each codec.
    for scheme in [SchemeKind::Delta, SchemeKind::Fpc, SchemeKind::Sc2] {
        let mut cc = Vec::new();
        let mut cnc = Vec::new();
        let mut disco = Vec::new();
        for bench in BENCHES {
            let ideal = run(bench, CompressionPlacement::Ideal, scheme, 4, len);
            let base = ideal.avg_onchip_latency();
            cc.push(
                run(bench, CompressionPlacement::CacheOnly, scheme, 4, len).avg_onchip_latency()
                    / base,
            );
            cnc.push(
                run(bench, CompressionPlacement::CacheAndNi, scheme, 4, len).avg_onchip_latency()
                    / base,
            );
            disco.push(
                run(bench, CompressionPlacement::Disco, scheme, 4, len).avg_onchip_latency() / base,
            );
        }
        let (cc, cnc, disco) = (gmean(&cc), gmean(&cnc), gmean(&disco));
        println!(
            "latency {:>6}:  CC {cc:.3}  CNC {cnc:.3}  DISCO {disco:.3}  (DISCO vs CC {:+.1}%, vs CNC {:+.1}%)",
            scheme.name(),
            100.0 * (disco - cc) / cc,
            100.0 * (disco - cnc) / cnc,
        );
    }

    // Fig. 7-style energy.
    let mut e_disco = Vec::new();
    for bench in BENCHES {
        let base = run(
            bench,
            CompressionPlacement::Baseline,
            SchemeKind::Delta,
            4,
            len,
        )
        .total_energy_pj();
        e_disco.push(
            run(
                bench,
                CompressionPlacement::Disco,
                SchemeKind::Delta,
                4,
                len,
            )
            .total_energy_pj()
                / base,
        );
    }
    println!(
        "\nenergy  delta :  DISCO at {:.1}% of the uncompressed baseline (paper: 73.3%)",
        100.0 * gmean(&e_disco)
    );

    // Tail latency: the p99 story behind the means.
    let disco = run(
        Benchmark::Canneal,
        CompressionPlacement::Disco,
        SchemeKind::Delta,
        4,
        len,
    );
    let cc = run(
        Benchmark::Canneal,
        CompressionPlacement::CacheOnly,
        SchemeKind::Delta,
        4,
        len,
    );
    println!(
        "tails  canneal:  p50 {:.0} / p99 {:.0} cycles (DISCO) vs p50 {:.0} / p99 {:.0} (CC)",
        disco.latency_histogram.percentile(0.50),
        disco.latency_histogram.percentile(0.99),
        cc.latency_histogram.percentile(0.50),
        cc.latency_histogram.percentile(0.99),
    );

    // §4.3 area.
    let area = AreaModel::default();
    println!(
        "\narea          :  DISCO +{:.1}% of router, {:.2}% of 4MB NUCA, {:.0}% of CNC's units",
        100.0 * area.disco(16).of_routers,
        100.0 * area.disco(16).of_cache,
        100.0 * area.disco(16).added_mm2 / area.cnc(16).added_mm2,
    );

    // DISCO mechanism counters.
    let d = disco.disco.expect("disco stats");
    println!(
        "mechanism     :  {} compressions ({} in NI queues), {} decompressions, {} aborts, {} flits saved",
        d.compressions, d.queue_compressions, d.decompressions, d.aborts, d.flits_saved
    );
}
