//! Latency provenance: where does each packet's latency go, and how much
//! codec latency does DISCO hide inside queuing? Regenerates the
//! EXPERIMENTS.md "Latency provenance" tables for CC vs CNC vs DISCO on
//! the fig5 workloads, and exports one Perfetto-loadable sample trace.
//!
//! `cargo run --release -p disco-bench --features trace --bin provenance \
//!     [-- --out-dir results]`

use disco_bench::{mean, trace_len, DEFAULT_SEED};
use disco_compress::SchemeKind;
use disco_core::{CompressionPlacement, SimBuilder, SimReport};
use disco_trace::ProvenanceTotals;
use disco_workloads::Benchmark;
use std::process::ExitCode;

/// The three compressing placements the paper contrasts (Fig. 5).
const PLACEMENTS: [CompressionPlacement; 3] = [
    CompressionPlacement::CacheOnly,
    CompressionPlacement::CacheAndNi,
    CompressionPlacement::Disco,
];

fn run_traced(benchmark: Benchmark, placement: CompressionPlacement, retain: bool) -> SimReport {
    SimBuilder::new()
        .mesh(4, 4)
        .placement(placement)
        .scheme(SchemeKind::Delta)
        .benchmark(benchmark)
        .trace_len(trace_len())
        .seed(DEFAULT_SEED)
        .capture_trace(true)
        .retain_trace_records(retain)
        .run()
        .unwrap_or_else(|e| panic!("{benchmark}/{placement}: {e}"))
}

/// Accumulates totals across benchmarks (component sums stay exact under
/// addition, so the aggregate decomposition still sums to the aggregate
/// latency).
fn accumulate(into: &mut ProvenanceTotals, t: &ProvenanceTotals) {
    into.packets += t.packets;
    into.incomplete += t.incomplete;
    into.latency_cycles += t.latency_cycles;
    into.protocol_cycles += t.protocol_cycles;
    into.serialization_cycles += t.serialization_cycles;
    into.link_cycles += t.link_cycles;
    into.queuing_cycles += t.queuing_cycles;
    into.codec_cycles += t.codec_cycles;
    into.codec_hidden_cycles += t.codec_hidden_cycles;
    into.codec_exposed_cycles += t.codec_exposed_cycles;
    into.endpoint_codec_cycles += t.endpoint_codec_cycles;
}

fn pct(part: i64, whole: u64) -> f64 {
    if whole == 0 {
        return 0.0;
    }
    100.0 * part as f64 / whole as f64
}

fn coverage(t: &ProvenanceTotals) -> f64 {
    let denom = t.codec_hidden_cycles + t.codec_exposed_cycles + t.endpoint_codec_cycles;
    if denom == 0 {
        return 0.0;
    }
    t.codec_hidden_cycles as f64 / denom as f64
}

fn main() -> ExitCode {
    let mut out_dir = "results".to_string();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match (flag.as_str(), it.next()) {
            ("--out-dir", Some(v)) => out_dir = v,
            (other, _) => {
                eprintln!("provenance: unknown or valueless flag {other}");
                return ExitCode::FAILURE;
            }
        }
    }

    let len = trace_len();
    println!("provenance: 4x4 mesh, delta codec, {len} accesses/core, seed {DEFAULT_SEED}");
    println!();

    // Per-placement aggregate decomposition + per-benchmark coverage.
    let mut agg = [ProvenanceTotals::default(); PLACEMENTS.len()];
    let mut cov: Vec<[f64; PLACEMENTS.len()]> = Vec::new();
    for &benchmark in &Benchmark::ALL {
        let mut row = [0.0; PLACEMENTS.len()];
        for (pi, &placement) in PLACEMENTS.iter().enumerate() {
            let report = run_traced(benchmark, placement, false);
            let t = report.trace.as_ref().expect("capture requested");
            let p = &t.provenance;
            assert!(
                p.exact,
                "{benchmark}/{placement}: decomposition must sum exactly"
            );
            assert_eq!(
                p.totals.incomplete, 0,
                "{benchmark}/{placement}: lossless capture tracks every packet"
            );
            assert_eq!(
                p.totals.latency_cycles, report.network.total_packet_latency,
                "{benchmark}/{placement}: provenance must cover the NoC latency total"
            );
            accumulate(&mut agg[pi], &p.totals);
            row[pi] = p.hidden_coverage();
        }
        cov.push(row);
    }

    println!("=== where the latency goes (% of total packet latency) ===");
    println!(
        "{:<10} {:>9} {:>9} {:>9} {:>9} {:>9} {:>12}",
        "placement", "protocol", "serialize", "link", "queuing", "codec", "cycles/pkt"
    );
    for (pi, &placement) in PLACEMENTS.iter().enumerate() {
        let t = &agg[pi];
        println!(
            "{:<10} {:>8.1}% {:>8.1}% {:>8.1}% {:>8.1}% {:>8.1}% {:>12.2}",
            placement.name(),
            pct(t.protocol_cycles, t.latency_cycles),
            pct(t.serialization_cycles, t.latency_cycles),
            pct(t.link_cycles, t.latency_cycles),
            pct(t.queuing_cycles, t.latency_cycles),
            pct(t.codec_cycles, t.latency_cycles),
            t.latency_cycles as f64 / t.packets.max(1) as f64,
        );
    }
    println!();

    println!("=== hidden-latency coverage (hidden / all codec cycles) ===");
    println!(
        "{:<14} {:>9} {:>9} {:>9}",
        "benchmark", "CC", "CNC", "DISCO"
    );
    for (bi, &benchmark) in Benchmark::ALL.iter().enumerate() {
        let row = cov[bi];
        println!(
            "{:<14} {:>9.3} {:>9.3} {:>9.3}",
            benchmark.name(),
            row[0],
            row[1],
            row[2]
        );
        assert!(
            row[2] > row[1],
            "{benchmark}: DISCO must hide more codec latency than CNC"
        );
    }
    let means: Vec<f64> = (0..PLACEMENTS.len())
        .map(|pi| mean(&cov.iter().map(|r| r[pi]).collect::<Vec<_>>()))
        .collect();
    println!(
        "{:<14} {:>9.3} {:>9.3} {:>9.3}",
        "mean", means[0], means[1], means[2]
    );
    println!();
    for (pi, &placement) in PLACEMENTS.iter().enumerate() {
        println!(
            "{}: aggregate coverage {:.3} (hidden {} / exposed {} / endpoint {})",
            placement.name(),
            coverage(&agg[pi]),
            agg[pi].codec_hidden_cycles,
            agg[pi].codec_exposed_cycles,
            agg[pi].endpoint_codec_cycles,
        );
    }

    // Sample export: one DISCO run with raw records retained.
    let sample = run_traced(Benchmark::Blackscholes, CompressionPlacement::Disco, true);
    let t = sample.trace.as_ref().expect("capture requested");
    assert!(!t.records.is_empty(), "sample run must record events");
    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        eprintln!("provenance: cannot create {out_dir}: {e}");
        return ExitCode::FAILURE;
    }
    let json_path = format!("{out_dir}/trace_disco_4x4.json");
    let jsonl_path = format!("{out_dir}/trace_disco_4x4.jsonl");
    let chrome = disco_trace::export::chrome_trace_string(&t.records);
    let jsonl = disco_trace::export::jsonl_string(&t.records);
    if let Err(e) =
        std::fs::write(&json_path, chrome).and_then(|()| std::fs::write(&jsonl_path, jsonl))
    {
        eprintln!("provenance: export failed: {e}");
        return ExitCode::FAILURE;
    }
    println!();
    println!(
        "provenance: exported {} events -> {json_path} (Perfetto/chrome://tracing), {jsonl_path}",
        t.records.len()
    );
    ExitCode::SUCCESS
}
