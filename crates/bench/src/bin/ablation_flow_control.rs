//! **Ablation — flow control (§3.3-A).**
//!
//! DISCO under wormhole (separate-flit compression required), virtual
//! cut-through, and store-and-forward. VCT/SAF keep whole packets in one
//! node (easy compression) but pay latency and buffer turnaround;
//! wormhole performs best overall, which is why the paper designs the
//! separate-flit mode rather than mandating VCT.
//!
//! `cargo run --release -p disco-bench --bin ablation_flow_control`

use disco_bench::{trace_len, DEFAULT_SEED};
use disco_core::{CompressionPlacement, SimBuilder};
use disco_noc::{FlowControl, NocConfig};
use disco_workloads::Benchmark;

fn main() {
    let len = trace_len().min(8_000);
    println!("Ablation — flow control under DISCO (dedup, trace_len={len})\n");
    println!(
        "{:<18} {:>9} {:>9} {:>8} {:>8} {:>9}",
        "flow control", "cyc/miss", "pkt lat", "comp", "decomp", "flits"
    );
    for (name, fc) in [
        ("wormhole", FlowControl::Wormhole),
        ("cut-through", FlowControl::VirtualCutThrough),
        ("store-and-forward", FlowControl::StoreAndForward),
    ] {
        let r = SimBuilder::new()
            .mesh(4, 4)
            .placement(CompressionPlacement::Disco)
            .benchmark(Benchmark::Dedup)
            .trace_len(len)
            .noc(NocConfig {
                flow_control: fc,
                ..NocConfig::default()
            })
            .seed(DEFAULT_SEED)
            .run()
            .expect("run");
        let d = r.disco.expect("disco stats");
        println!(
            "{:<18} {:>9.1} {:>9.1} {:>8} {:>8} {:>9}",
            name,
            r.avg_access_latency(),
            r.network.avg_packet_latency(),
            d.compressions,
            d.decompressions,
            r.network.link_flits,
        );
    }
}
