//! Tracing-overhead benchmark: the same uniform-random sweep run with the
//! tracer off (this binary built without `--features trace`) and on (built
//! with it, across ring capacities 2^12 .. 2^20), emitting a
//! machine-readable `BENCH_pr4*.json`.
//!
//! Two invariants back the "zero behavioral impact" claim:
//!
//! - the FNV-1a fingerprint over every point's final `NetworkStats` must
//!   match between the untraced and traced builds (pass the untraced run's
//!   JSON via `--baseline` to have the traced run assert it);
//! - an untraced build of this workspace is byte-identical to one without
//!   the trace crate wired in at all, because every emission site expands
//!   to nothing (the golden stats test pins the observable half of that).
//!
//! `cargo run --release -p disco-bench --bin trace_overhead -- \
//!     [--mesh 8] [--cycles 20000] [--rates 0.05,0.1,0.2] \
//!     [--out BENCH_pr4_off.json]`
//! `cargo run --release -p disco-bench --features trace --bin trace_overhead -- \
//!     --baseline BENCH_pr4_off.json [--out BENCH_pr4.json]`

use disco_bench::sweep::{run_sweep, PointResult, SweepPoint};
use disco_noc::traffic::TrafficPattern;
use std::fmt::Write as _;
use std::process::ExitCode;

struct Args {
    mesh: usize,
    cycles: u64,
    rates: Vec<f64>,
    out: String,
    baseline: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        mesh: 8,
        cycles: 20_000,
        rates: vec![0.05, 0.1, 0.2],
        out: if cfg!(feature = "trace") {
            "BENCH_pr4.json".to_string()
        } else {
            "BENCH_pr4_off.json".to_string()
        },
        baseline: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let value = it
            .next()
            .ok_or_else(|| format!("missing value for {flag}"))?;
        let bad = |what: &str| format!("invalid {what}: {value}");
        match flag.as_str() {
            "--mesh" => args.mesh = value.parse().map_err(|_| bad("--mesh"))?,
            "--cycles" => args.cycles = value.parse().map_err(|_| bad("--cycles"))?,
            "--rates" => {
                args.rates = value
                    .split(',')
                    .map(|r| r.trim().parse().map_err(|_| bad("--rates")))
                    .collect::<Result<_, _>>()?;
            }
            "--out" => args.out = value,
            "--baseline" => args.baseline = Some(value),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn points_for(args: &Args, trace_capacity: usize) -> Vec<SweepPoint> {
    let seeds = [disco_bench::DEFAULT_SEED, disco_bench::DEFAULT_SEED + 2];
    args.rates
        .iter()
        .flat_map(|&rate| {
            seeds.iter().map(move |&seed| SweepPoint {
                topology: disco_noc::TopologyChoice::Mesh,
                pattern: TrafficPattern::UniformRandom,
                injection_rate: rate,
                seed,
                cols: args.mesh,
                rows: args.mesh,
                cycles: args.cycles,
                compute_shards: 1,
                trace_capacity,
            })
        })
        .collect()
}

/// FNV-1a over the debug rendering of every point's final counters: any
/// behavioral difference between builds moves at least one counter and
/// changes the fingerprint.
fn fingerprint(results: &[PointResult]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for r in results {
        for byte in format!("{:?}", r.stats).bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Pulls `"key": "value"` or `"key": value` out of the baseline JSON
/// without a JSON parser (we wrote the file; its shape is fixed).
fn json_field<'a>(text: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\": ");
    let start = text.find(&needle)? + needle.len();
    let rest = &text[start..];
    let end = rest.find([',', '\n', '}'])?;
    Some(rest[..end].trim().trim_matches('"'))
}

struct Leg {
    capacity: usize,
    wall_secs: f64,
    cycles_per_sec: f64,
    emitted: u64,
    dropped: u64,
}

fn run_leg(args: &Args, capacity: usize) -> (Leg, Vec<PointResult>) {
    let points = points_for(args, capacity);
    let results = run_sweep(&points, 1);
    let wall_secs: f64 = results.iter().map(|r| r.wall_secs).sum();
    let total_cycles: f64 = points.iter().map(|p| p.cycles as f64).sum();
    #[cfg(feature = "trace")]
    let (emitted, dropped) = results.iter().fold((0, 0), |(e, d), r| {
        (e + r.trace_emitted, d + r.trace_dropped)
    });
    #[cfg(not(feature = "trace"))]
    let (emitted, dropped) = (0, 0);
    (
        Leg {
            capacity,
            wall_secs,
            cycles_per_sec: total_cycles / wall_secs.max(1e-9),
            emitted,
            dropped,
        },
        results,
    )
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("trace_overhead: {e}");
            return ExitCode::FAILURE;
        }
    };
    let traced = cfg!(feature = "trace");
    // The untraced build has exactly one configuration; the traced build
    // sweeps the ring capacity (0 = the crate default, 2^16).
    let capacities: &[usize] = if traced {
        &[0, 1 << 12, 1 << 14, 1 << 16, 1 << 18, 1 << 20]
    } else {
        &[0]
    };
    println!(
        "trace_overhead: traced_build={traced}, {}x{} mesh, {} cycles/point, rates {:?}",
        args.mesh, args.mesh, args.cycles, args.rates
    );

    let mut legs = Vec::new();
    let mut fp = 0u64;
    for (i, &capacity) in capacities.iter().enumerate() {
        let (leg, results) = run_leg(&args, capacity);
        let leg_fp = fingerprint(&results);
        if i == 0 {
            fp = leg_fp;
        } else if leg_fp != fp {
            // Ring capacity only bounds the event buffer; counters must
            // not move with it.
            eprintln!("trace_overhead: FAIL capacity {capacity} changed the stats fingerprint");
            return ExitCode::FAILURE;
        }
        println!(
            "  capacity {:>8}: {:>10.0} cycles/s ({} events emitted, {} dropped)",
            if capacity == 0 {
                "default".to_string()
            } else {
                capacity.to_string()
            },
            leg.cycles_per_sec,
            leg.emitted,
            leg.dropped
        );
        legs.push(leg);
    }

    // Against the untraced baseline: stats must match exactly; report the
    // throughput delta of the default-capacity traced leg.
    let mut overhead_pct = f64::NAN;
    if let Some(path) = &args.baseline {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("trace_overhead: cannot read baseline {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let base_fp = json_field(&text, "stats_fingerprint").unwrap_or("");
        if base_fp != format!("{fp:016x}") {
            eprintln!(
                "trace_overhead: FAIL stats fingerprint {fp:016x} differs from baseline {base_fp}"
            );
            return ExitCode::FAILURE;
        }
        if let Some(base_cps) =
            json_field(&text, "default_cycles_per_s").and_then(|v| v.parse::<f64>().ok())
        {
            overhead_pct = 100.0 * (base_cps / legs[0].cycles_per_sec.max(1e-9) - 1.0);
            println!(
                "trace_overhead: stats identical to untraced baseline; tracing costs {overhead_pct:.1}% throughput at default capacity"
            );
        }
    }

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"trace_overhead\",");
    let _ = writeln!(json, "  \"traced_build\": {traced},");
    let _ = writeln!(json, "  \"mesh\": \"{}x{}\",", args.mesh, args.mesh);
    let _ = writeln!(json, "  \"cycles_per_point\": {},", args.cycles);
    let _ = writeln!(json, "  \"stats_fingerprint\": \"{fp:016x}\",");
    let _ = writeln!(
        json,
        "  \"default_cycles_per_s\": {:.0},",
        legs[0].cycles_per_sec
    );
    if overhead_pct.is_finite() {
        let _ = writeln!(json, "  \"overhead_vs_untraced_pct\": {overhead_pct:.2},");
    }
    let _ = writeln!(json, "  \"legs\": [");
    for (i, leg) in legs.iter().enumerate() {
        let sep = if i + 1 < legs.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"capacity\": {}, \"wall_s\": {:.6}, \"cycles_per_s\": {:.0}, \
             \"events_emitted\": {}, \"events_dropped\": {}}}{}",
            leg.capacity, leg.wall_secs, leg.cycles_per_sec, leg.emitted, leg.dropped, sep
        );
    }
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");
    if let Err(e) = std::fs::write(&args.out, &json) {
        eprintln!("trace_overhead: cannot write {}: {e}", args.out);
        return ExitCode::FAILURE;
    }
    println!("trace_overhead: -> {}", args.out);
    ExitCode::SUCCESS
}
