//! **Extension — online congestion-aware thresholds.**
//!
//! The paper keeps `CC_th`/`CD_th` "deterministic for simplicity" and
//! notes they really depend on the congestion condition (§3.2). This
//! extension lets each DISCO arbitrator adapt its effective thresholds
//! every epoch from its own abort/reject rates, and compares static vs
//! adaptive across light and heavy workloads — including a deliberately
//! mis-trained static baseline. The measured effect is small (≤ 1 %),
//! which is itself the §3.2 result: the confidence mechanism is robust
//! to threshold choice on these workloads, so the paper's static
//! thresholds are a sound simplification.
//!
//! `cargo run --release -p disco-bench --bin ablation_adaptive`

use disco_bench::{trace_len, DEFAULT_SEED};
use disco_core::{CompressionPlacement, DiscoParams, SimBuilder};
use disco_workloads::Benchmark;

fn run(bench: Benchmark, params: DiscoParams, len: usize) -> disco_core::SimReport {
    SimBuilder::new()
        .mesh(4, 4)
        .placement(CompressionPlacement::Disco)
        .benchmark(bench)
        .trace_len(len)
        .disco_params(params)
        .seed(DEFAULT_SEED)
        .run()
        .expect("run")
}

fn main() {
    let len = trace_len().min(8_000);
    println!("Extension — static vs adaptive confidence thresholds\n");
    println!(
        "{:<12} {:<22} {:>9} {:>8} {:>8} {:>9}",
        "benchmark", "thresholds", "cyc/miss", "comp", "aborts", "flits"
    );
    let tuned = DiscoParams::default();
    let mistuned = DiscoParams {
        cc_threshold: -4.0,
        cd_threshold: -4.0,
        ..tuned
    };
    for bench in [Benchmark::Swaptions, Benchmark::Dedup, Benchmark::Canneal] {
        for (name, params) in [
            ("static (tuned)", tuned),
            ("static (mistuned)", mistuned),
            (
                "adaptive (tuned)",
                DiscoParams {
                    adaptive: true,
                    ..tuned
                },
            ),
            (
                "adaptive (mistuned)",
                DiscoParams {
                    adaptive: true,
                    ..mistuned
                },
            ),
        ] {
            let r = run(bench, params, len);
            let d = r.disco.expect("disco stats");
            println!(
                "{:<12} {:<22} {:>9.1} {:>8} {:>8} {:>9}",
                bench.name(),
                name,
                r.avg_onchip_latency(),
                d.compressions,
                d.aborts,
                r.network.link_flits,
            );
        }
        println!();
    }
}
