//! **Ablation — compressor engines per router.**
//!
//! The paper's router carries one DISCO engine (17.2 % of router area,
//! §4.3). This sweep asks whether a second or fourth engine buys enough
//! extra in-network coverage to justify its proportional area, and where
//! the single-engine router leaves compressions on the table (engine
//! busy when a candidate idles).
//!
//! `cargo run --release -p disco-bench --bin ablation_engines`

use disco_bench::{trace_len, DEFAULT_SEED};
use disco_core::{CompressionPlacement, DiscoParams, SimBuilder};
use disco_energy::AreaModel;
use disco_workloads::Benchmark;

fn main() {
    let len = trace_len().min(8_000);
    let area = AreaModel::default();
    println!("Ablation — engines per router (canneal + streamcluster, trace_len={len})\n");
    println!(
        "{:<13} {:>8} {:>9} {:>8} {:>8} {:>9} {:>12}",
        "benchmark", "engines", "cyc/miss", "comp", "decomp", "flits", "router area"
    );
    for bench in [Benchmark::Canneal, Benchmark::Streamcluster] {
        for engines in [1usize, 2, 4] {
            let r = SimBuilder::new()
                .mesh(4, 4)
                .placement(CompressionPlacement::Disco)
                .benchmark(bench)
                .trace_len(len)
                .disco_params(DiscoParams {
                    engines_per_router: engines,
                    ..DiscoParams::default()
                })
                .seed(DEFAULT_SEED)
                .run()
                .expect("run");
            let d = r.disco.expect("disco stats");
            let overhead = engines as f64 * area.disco_unit_mm2 / area.router_mm2;
            println!(
                "{:<13} {:>8} {:>9.1} {:>8} {:>8} {:>9} {:>11.1}%",
                bench.name(),
                engines,
                r.avg_onchip_latency(),
                d.compressions,
                d.decompressions,
                r.network.link_flits,
                100.0 * overhead,
            );
        }
        println!();
    }
}
