//! `pareto` — resumable Pareto design-space exploration (PR 10).
//!
//! ```text
//! pareto --out PARETO_pr10.json [--grid smoke|full] [--workers N]
//!        [--shards N] [--journal points.jsonl] [--max-points N]
//! ```
//!
//! Enumerates the declared design space, runs every point not already
//! in the journal through the full-system simulator under the
//! energy/area model, and — once the space is exhausted — writes the
//! exact latency/energy/area frontier with dominance proofs to `--out`.
//! Kill it at any moment and rerun the same command line: journaled
//! points are skipped and the final JSON is byte-identical to an
//! uninterrupted run at any `--workers` count.
//!
//! `--max-points N` budgets how many *new* points one invocation may
//! simulate — a deterministic stand-in for a kill, used by the
//! kill-and-resume tests and the CI smoke job. Exit status: 0 on
//! success, 1 on usage errors, 3 when the budget ran out with points
//! remaining (rerun to continue).

use disco_pareto::journal::write_atomic;
use disco_pareto::space::DesignSpace;
use disco_pareto::{explore, ExploreConfig};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    out: PathBuf,
    grid: DesignSpace,
    workers: usize,
    shards: usize,
    journal: Option<PathBuf>,
    max_points: usize,
}

const USAGE: &str = "usage: pareto --out <frontier.json> [--grid smoke|full] \
                     [--workers N] [--shards N] [--journal <points.jsonl>] \
                     [--max-points N]";

fn parse_args() -> Result<Args, String> {
    let mut out = None;
    let mut grid = DesignSpace::smoke();
    let mut workers = 1;
    let mut shards = 1;
    let mut journal = None;
    let mut max_points = 0;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |what: &str| it.next().ok_or(format!("{arg} needs a {what}"));
        match arg.as_str() {
            "--out" => out = Some(PathBuf::from(value("path")?)),
            "--grid" => {
                grid = match value("name")?.as_str() {
                    "smoke" => DesignSpace::smoke(),
                    "full" => DesignSpace::full(),
                    other => return Err(format!("unknown grid {other:?} (smoke or full)")),
                };
            }
            "--workers" => {
                workers = value("count")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?;
            }
            "--shards" => {
                shards = value("count")?
                    .parse()
                    .map_err(|e| format!("--shards: {e}"))?;
            }
            "--journal" => journal = Some(PathBuf::from(value("path")?)),
            "--max-points" => {
                max_points = value("count")?
                    .parse()
                    .map_err(|e| format!("--max-points: {e}"))?;
            }
            "--help" | "-h" => return Err(USAGE.into()),
            other => return Err(format!("unknown argument {other:?}\n{USAGE}")),
        }
    }
    Ok(Args {
        out: out.ok_or(format!("--out is required\n{USAGE}"))?,
        grid,
        workers,
        shards,
        journal,
        max_points,
    })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let cfg = ExploreConfig {
        space: args.grid,
        workers: args.workers,
        shards: args.shards,
        journal: args.journal,
        max_points: args.max_points,
    };
    let outcome = explore(&cfg);
    for w in &outcome.warnings {
        eprintln!("{w}");
    }
    println!(
        "pareto: {} points, {} run now, {} remaining",
        outcome.total, outcome.completed, outcome.remaining
    );
    if outcome.remaining > 0 {
        eprintln!(
            "pareto: point budget exhausted with {} points remaining; \
             rerun with the same --journal to continue",
            outcome.remaining
        );
        return ExitCode::from(3);
    }
    let json = outcome.json.expect("fully explored");
    let frontier = outcome.frontier.expect("fully explored");
    if let Err(e) = write_atomic(&args.out, json.as_bytes()) {
        eprintln!("pareto: cannot write {}: {e}", args.out.display());
        return ExitCode::FAILURE;
    }
    println!(
        "pareto: frontier {} / dominated {} -> {}",
        frontier.frontier.len(),
        frontier.dominated.len(),
        args.out.display()
    );
    ExitCode::SUCCESS
}
