//! **Ablation — shadow packets / non-blocking de/compression (§3.2
//! step 3).**
//!
//! With non-blocking operation the shadow packet remains schedulable
//! during the codec latency window and a switch grant aborts the
//! operation; with blocking operation a mis-predicted packet is stuck in
//! the compressor even when its port frees. The paper argues the network
//! becomes "sensitive to mis-prediction" without the shadow mechanism.
//!
//! `cargo run --release -p disco-bench --bin ablation_shadow`

use disco_bench::{trace_len, DEFAULT_SEED};
use disco_core::{CompressionPlacement, DiscoParams, SimBuilder};
use disco_workloads::Benchmark;

fn main() {
    let len = trace_len().min(8_000);
    println!("Ablation — non-blocking vs blocking de/compression\n");
    println!(
        "{:<12} {:<14} {:>9} {:>9} {:>8} {:>8}",
        "benchmark", "mode", "cyc/miss", "pkt lat", "comp", "aborts"
    );
    for bench in [Benchmark::Canneal, Benchmark::Dedup, Benchmark::Ferret] {
        for (name, non_blocking) in [("non-blocking", true), ("blocking", false)] {
            let r = SimBuilder::new()
                .mesh(4, 4)
                .placement(CompressionPlacement::Disco)
                .benchmark(bench)
                .trace_len(len)
                .disco_params(DiscoParams {
                    non_blocking,
                    ..DiscoParams::default()
                })
                .seed(DEFAULT_SEED)
                .run()
                .expect("run");
            let d = r.disco.expect("disco stats");
            println!(
                "{:<12} {:<14} {:>9.1} {:>9.1} {:>8} {:>8}",
                bench.name(),
                name,
                r.avg_access_latency(),
                r.network.avg_packet_latency(),
                d.compressions,
                d.aborts,
            );
        }
    }
}
