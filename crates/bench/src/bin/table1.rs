//! **Table 1** — important parameters of different compression schemes.
//!
//! Prints, per scheme: de/compression latencies (from the codec cost
//! models), hardware overhead (from the published figures), the ratio the
//! literature reports, and the ratio *measured* by running our actual
//! codec implementations over a corpus pooled from every benchmark's
//! value model (1,800 lines: 150 per PARSEC workload).
//!
//! `cargo run --release -p disco-bench --bin table1`

use disco_compress::scheme::Compressor;
use disco_compress::{CacheLine, Codec, CompressionStats, SchemeKind, SchemeModel};
use disco_workloads::{Benchmark, ValueModel};

fn pooled_corpus() -> Vec<CacheLine> {
    let mut lines = Vec::new();
    for bench in Benchmark::ALL {
        let model = ValueModel::new(bench.profile().value, 2016);
        lines.extend((0..150u64).map(|a| model.line(a * 3 + 1, (a % 2) as u32)));
    }
    lines
}

fn main() {
    let corpus = pooled_corpus();
    println!("TABLE 1 — parameters of the compression schemes");
    println!(
        "(measured ratio: {} lines pooled over all 12 PARSEC value models)\n",
        corpus.len()
    );
    println!(
        "{:<8} {:>10} {:>12} {:>12} {:>12} {:>10} {:>10}",
        "method", "comp.lat", "decomp.lat", "hw ovh", "paper ratio", "measured", "coverage"
    );
    for kind in SchemeKind::ALL {
        let codec = if kind == SchemeKind::Sc2 {
            Codec::Sc2(disco_compress::sc2::Sc2Codec::train(&corpus))
        } else {
            Codec::from_kind(kind)
        };
        let row = SchemeModel::for_kind(kind);
        let mut stats = CompressionStats::new();
        let mut decomp_min = u64::MAX;
        let mut decomp_max = 0;
        for line in &corpus {
            let enc = codec.compress(line);
            decomp_min = decomp_min.min(codec.decompression_latency(&enc));
            decomp_max = decomp_max.max(codec.decompression_latency(&enc));
            stats.record(&enc);
        }
        let comp = row
            .compression_cycles
            .map_or("-".to_string(), |c| format!("{c}cyc"));
        let decomp = if decomp_min == decomp_max {
            format!("{decomp_min}cyc")
        } else {
            format!("{decomp_min}~{decomp_max}cyc")
        };
        let ovh = row.hardware_overhead.map_or("-".to_string(), |(lo, hi)| {
            if (lo - hi).abs() < 1e-9 {
                format!("{:.1}%", lo * 100.0)
            } else {
                format!("{:.1}-{:.1}%", lo * 100.0, hi * 100.0)
            }
        });
        let paper = row
            .reported_ratio
            .map_or("-".to_string(), |r| format!("{r:.2}"));
        println!(
            "{:<8} {:>10} {:>12} {:>12} {:>12} {:>10.2} {:>9.0}%",
            kind.name(),
            comp,
            decomp,
            ovh,
            paper,
            stats.mean_ratio(),
            stats.coverage() * 100.0,
        );
    }
}
