//! **Ablation — NoC parameters (§3.2's closing remark).**
//!
//! The paper notes the trained thresholds "are dependent on the NoC
//! congestion condition and the configuration of NoC as well, i.e. the
//! stage number, VC depth and flow-control method". This sweep varies
//! the buffer depth and pipeline depth under DISCO and reports how the
//! mechanism responds — notably, 4-flit buffers cannot hold a raw 8-flit
//! line, so in-network *decompression* disappears entirely while
//! compression keeps working.
//!
//! `cargo run --release -p disco-bench --bin ablation_noc_params`

use disco_bench::{trace_len, DEFAULT_SEED};
use disco_core::{CompressionPlacement, SimBuilder};
use disco_noc::NocConfig;
use disco_workloads::Benchmark;

fn main() {
    let len = trace_len().min(8_000);
    println!(
        "Ablation — NoC buffer depth and pipeline depth under DISCO (dedup, trace_len={len})\n"
    );
    println!(
        "{:<22} {:>9} {:>9} {:>8} {:>8} {:>9}",
        "config", "cyc/miss", "pkt lat", "comp", "decomp", "flits"
    );
    let base = NocConfig::default();
    let variants: Vec<(String, NocConfig)> = vec![
        (
            "depth=4".into(),
            NocConfig {
                buffer_depth: 4,
                ..base
            },
        ),
        ("depth=8 (Table 2)".into(), base),
        (
            "depth=16".into(),
            NocConfig {
                buffer_depth: 16,
                ..base
            },
        ),
        (
            "stages=2".into(),
            NocConfig {
                pipeline_stages: 2,
                ..base
            },
        ),
        ("stages=3 (Table 2)".into(), base),
        (
            "stages=5".into(),
            NocConfig {
                pipeline_stages: 5,
                ..base
            },
        ),
    ];
    for (name, noc) in variants {
        let r = SimBuilder::new()
            .mesh(4, 4)
            .placement(CompressionPlacement::Disco)
            .benchmark(Benchmark::Dedup)
            .trace_len(len)
            .noc(noc)
            .seed(DEFAULT_SEED)
            .run()
            .expect("run");
        let d = r.disco.expect("disco stats");
        println!(
            "{:<22} {:>9.1} {:>9.1} {:>8} {:>8} {:>9}",
            name,
            r.avg_onchip_latency(),
            r.network.avg_packet_latency(),
            d.compressions,
            d.decompressions,
            r.network.link_flits,
        );
    }
}
