//! **§3.2 — training the empirical parameters.**
//!
//! Reproduces the paper's offline training flow: α, β, γ and the
//! thresholds `CC_th`/`CD_th` are fitted on workload traces by
//! coordinate descent, then validated on workloads *not* used for
//! training.
//!
//! `cargo run --release -p disco-bench --bin train_thresholds`

use disco_bench::DEFAULT_SEED;
use disco_core::training::{train, TrainingGrid};
use disco_core::{CompressionPlacement, DiscoParams, SimBuilder};
use disco_workloads::Benchmark;

fn validate(params: DiscoParams, benchmarks: &[Benchmark], len: usize) -> f64 {
    let mut log_sum = 0.0;
    for &b in benchmarks {
        let r = SimBuilder::new()
            .mesh(4, 4)
            .placement(CompressionPlacement::Disco)
            .benchmark(b)
            .trace_len(len)
            .disco_params(params)
            .seed(DEFAULT_SEED)
            .run()
            .expect("run");
        log_sum += r.avg_onchip_latency().ln();
    }
    (log_sum / benchmarks.len() as f64).exp()
}

fn main() {
    let train_set = [Benchmark::Dedup, Benchmark::Canneal];
    let validation_set = [Benchmark::Ferret, Benchmark::X264, Benchmark::Streamcluster];
    let train_len = 2_500;
    let validate_len = 5_000;

    println!("§3.2 parameter training (train: dedup+canneal @ {train_len}/core)\n");
    let trained = train(&train_set, train_len, 7, &TrainingGrid::default());
    println!("evaluated {} configurations", trained.history.len());
    let p = trained.best.params;
    println!(
        "trained:  CC_th={:.2} CD_th={:.2} gamma={:.2} alpha={:.2} beta={:.2} (train score {:.2})",
        p.cc_threshold, p.cd_threshold, p.gamma, p.alpha, p.beta, trained.best.score
    );
    let d = DiscoParams::default();
    println!(
        "shipped:  CC_th={:.2} CD_th={:.2} gamma={:.2} alpha={:.2} beta={:.2}",
        d.cc_threshold, d.cd_threshold, d.gamma, d.alpha, d.beta
    );

    println!("\nvalidation on unseen workloads (ferret, x264, streamcluster):");
    let v_trained = validate(p, &validation_set, validate_len);
    let v_default = validate(d, &validation_set, validate_len);
    println!("  trained params : {v_trained:.2} cycles/miss (gmean)");
    println!("  shipped params : {v_default:.2} cycles/miss (gmean)");
    println!(
        "  delta          : {:+.2}%",
        100.0 * (v_trained - v_default) / v_default
    );
}
