//! `disco-serve` — a long-running simulation job-queue server.
//!
//! ```text
//! disco-serve --queue jobs.json --out results/ [--threads N]
//!             [--max-chunks N] [--validate-only]
//! ```
//!
//! Reads a JSON queue file (schema in `disco_bench::serve`), runs every
//! job not already completed in the output directory, checkpoints each
//! job every `checkpoint_every` cycles, and resumes interrupted jobs
//! from their checkpoints. Kill it at any point and rerun the same
//! command line: completed jobs are skipped, in-flight jobs resume from
//! their last checkpoint, and final per-job stats are byte-identical to
//! an uninterrupted run.
//!
//! `--max-chunks N` stops the server after N job chunks across all
//! workers — a deterministic stand-in for a kill, used by the
//! kill-and-resume tests. `--validate-only` parses and validates the
//! queue (printing any expected-injection warnings) without simulating.
//! Exit status: 0 on success, 1 on usage/queue errors or failed jobs,
//! 3 when stopped early by the chunk budget with work remaining.

use disco_bench::serve::{parse_queue, serve, ServeOpts};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    queue: PathBuf,
    out_dir: PathBuf,
    threads: usize,
    max_chunks: Option<u64>,
    validate_only: bool,
}

const USAGE: &str = "usage: disco-serve --queue <jobs.json> --out <dir> \
                     [--threads N] [--max-chunks N] [--validate-only]";

fn parse_args() -> Result<Args, String> {
    let mut queue = None;
    let mut out_dir = None;
    let mut threads = 1;
    let mut max_chunks = None;
    let mut validate_only = false;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |what: &str| it.next().ok_or(format!("{arg} needs a {what}"));
        match arg.as_str() {
            "--queue" => queue = Some(PathBuf::from(value("path")?)),
            "--out" => out_dir = Some(PathBuf::from(value("path")?)),
            "--threads" => {
                threads = value("count")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?;
            }
            "--max-chunks" => {
                max_chunks = Some(
                    value("count")?
                        .parse()
                        .map_err(|e| format!("--max-chunks: {e}"))?,
                );
            }
            "--validate-only" => validate_only = true,
            "--help" | "-h" => return Err(USAGE.into()),
            other => return Err(format!("unknown argument {other:?}\n{USAGE}")),
        }
    }
    Ok(Args {
        queue: queue.ok_or(format!("--queue is required\n{USAGE}"))?,
        out_dir: out_dir.ok_or(format!("--out is required\n{USAGE}"))?,
        threads,
        max_chunks,
        validate_only,
    })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let text = match std::fs::read_to_string(&args.queue) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("disco-serve: cannot read {}: {e}", args.queue.display());
            return ExitCode::FAILURE;
        }
    };
    let (cfg, warnings) = match parse_queue(&text) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("disco-serve: {e}");
            return ExitCode::FAILURE;
        }
    };
    for w in &warnings {
        eprintln!("{w}");
    }
    if args.validate_only {
        println!(
            "queue ok: {} jobs, checkpoint every {} cycles, {} warnings",
            cfg.jobs.len(),
            cfg.checkpoint_every,
            warnings.len()
        );
        return ExitCode::SUCCESS;
    }
    let opts = ServeOpts {
        out_dir: args.out_dir,
        threads: args.threads,
        max_chunks: args.max_chunks,
    };
    match serve(&cfg, &opts) {
        Ok(summary) => {
            println!(
                "disco-serve: {} completed, {} already done, {} resumed, \
                 {} interrupted, {} cancelled, {} failed",
                summary.completed,
                summary.already_done,
                summary.resumed,
                summary.interrupted,
                summary.cancelled,
                summary.failed
            );
            if summary.failed > 0 {
                ExitCode::FAILURE
            } else if summary.interrupted > 0 {
                ExitCode::from(3)
            } else {
                ExitCode::SUCCESS
            }
        }
        Err(e) => {
            eprintln!("disco-serve: {e}");
            ExitCode::FAILURE
        }
    }
}
