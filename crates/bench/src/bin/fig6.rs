//! **Fig. 6** — performance comparison with FPC and SC².
//!
//! The Fig. 5 sweep repeated with the heavier codecs. The paper reports a
//! 11–16 % average boost for DISCO, largest with SC² (16.7 % over CNC,
//! 15.5 % over CC) because SC²'s long de/compression latency is exactly
//! what DISCO hides; CNC lags CC because its two-level compression pays
//! that latency repeatedly.
//!
//! `cargo run --release -p disco-bench --bin fig6`

use disco_bench::experiments::{improvement_pct, latency_row, summarize};
use disco_bench::{print_header, print_row, trace_len};
use disco_compress::SchemeKind;
use disco_workloads::Benchmark;

fn main() {
    let len = trace_len();
    println!("Fig. 6 — normalized on-chip data access latency, FPC and SC2");
    println!("(4x4 mesh, trace_len={len}; lower is better; Ideal = 1.0)\n");
    for scheme in [SchemeKind::Fpc, SchemeKind::Sc2] {
        println!("--- codec: {scheme} ---");
        print_header(&["CC", "CNC", "DISCO"]);
        let rows: Vec<_> = Benchmark::ALL
            .into_iter()
            .map(|bench| {
                let row = latency_row(bench, scheme, 4, len);
                print_row(bench.name(), &[row.cc, row.cnc, row.disco]);
                row
            })
            .collect();
        let (cc, cnc, disco) = summarize(&rows);
        println!();
        print_row("gmean", &[cc, cnc, disco]);
        println!(
            "DISCO vs CC: {:.1}%; vs CNC: {:.1}% (paper with SC2: 15.5% / 16.7%)\n",
            improvement_pct(cc, disco),
            improvement_pct(cnc, disco),
        );
    }
}
