//! **Ablation — the confidence mechanism (§3.2 step 2).**
//!
//! Sweeps the arbitrator thresholds and coefficients on a congested
//! workload and reports latency plus engine behaviour. Shows the two
//! failure modes the paper designs against:
//!
//! - thresholds too low → *hasty decisions*: many aborted operations
//!   (shadow packets granted mid-compression);
//! - thresholds too high → missed opportunities: little in-network
//!   compression, traffic stays raw.
//!
//! Also sweeps β, which vetoes *early decompression* far from the
//! destination (Eq. 2).
//!
//! `cargo run --release -p disco-bench --bin ablation_confidence`

use disco_bench::{trace_len, DEFAULT_SEED};
use disco_core::{CompressionPlacement, DiscoParams, SimBuilder};
use disco_workloads::Benchmark;

fn run(params: DiscoParams, len: usize) -> disco_core::SimReport {
    SimBuilder::new()
        .mesh(4, 4)
        .placement(CompressionPlacement::Disco)
        .benchmark(Benchmark::Canneal)
        .trace_len(len)
        .disco_params(params)
        .seed(DEFAULT_SEED)
        .run()
        .expect("run")
}

fn main() {
    let len = trace_len().min(8_000);
    println!("Ablation — confidence thresholds and coefficients (canneal, trace_len={len})\n");
    println!(
        "{:<26} {:>9} {:>8} {:>8} {:>8} {:>9} {:>9}",
        "params", "cyc/miss", "comp", "decomp", "aborts", "hasty%", "flits"
    );
    let base = DiscoParams::default();
    let variants: Vec<(String, DiscoParams)> = vec![
        ("default".into(), base),
        (
            "CCth=-8 (no filter)".into(),
            DiscoParams {
                cc_threshold: -8.0,
                cd_threshold: -8.0,
                beta: 0.0,
                ..base
            },
        ),
        (
            "CCth=0".into(),
            DiscoParams {
                cc_threshold: 0.0,
                ..base
            },
        ),
        (
            "CCth=2".into(),
            DiscoParams {
                cc_threshold: 2.0,
                ..base
            },
        ),
        (
            "CCth=6 (strict)".into(),
            DiscoParams {
                cc_threshold: 6.0,
                cd_threshold: 6.0,
                ..base
            },
        ),
        (
            "beta=0 (early decomp)".into(),
            DiscoParams { beta: 0.0, ..base },
        ),
        (
            "beta=4 (late decomp)".into(),
            DiscoParams { beta: 4.0, ..base },
        ),
        (
            "gamma=0 (remote only)".into(),
            DiscoParams {
                gamma: 0.0,
                alpha: 0.0,
                ..base
            },
        ),
        (
            "gamma=2 (local heavy)".into(),
            DiscoParams {
                gamma: 2.0,
                alpha: 2.0,
                ..base
            },
        ),
    ];
    for (name, params) in variants {
        let r = run(params, len);
        let d = r.disco.expect("disco stats");
        let hasty = if d.started == 0 {
            0.0
        } else {
            100.0 * d.aborts as f64 / d.started as f64
        };
        println!(
            "{:<26} {:>9.1} {:>8} {:>8} {:>8} {:>8.1}% {:>9}",
            name,
            r.avg_access_latency(),
            d.compressions,
            d.decompressions,
            d.aborts,
            hasty,
            r.network.link_flits,
        );
    }
}
