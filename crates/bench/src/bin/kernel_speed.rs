//! Cycle-kernel speed benchmark: serial vs sharded compute phase on the
//! *same* simulation, at mesh sizes where kernel-level parallelism can
//! actually pay (8x8 through the 4096-router 64x64 "hundreds of cores"
//! point the paper's scaling argument targets). This is the successor
//! to the PR 3
//! `sweep` snapshot: where `sweep` fans independent configurations
//! across threads, this bin shards a single simulation's compute phase
//! across the persistent worker pool and reports the speedup honestly —
//! including `host_cores`, so a 1-core container time-slicing N shards
//! is visible as such instead of masquerading as a parallel result.
//!
//! `cargo run --release --features parallel -p disco-bench --bin kernel_speed -- \
//!     [--meshes 8,16,32,64] [--topology mesh|ring|hring|torus|cmesh] \
//!     [--cycles 0 (auto per mesh)] [--rate 0.1] \
//!     [--shards 0 (auto = host cores)] [--seeds 2016,2018] \
//!     [--out BENCH_pr7.json] \
//!     [--gate-speedup 2.0] [--baseline BENCH_pr7.json]`
//!
//! The two gate flags are CI hooks (both default off): `--gate-speedup`
//! fails the run when the 16x16 sharded/serial speedup falls below the
//! floor, and `--baseline` fails it when the fresh 8x8 serial cycles/s
//! regresses more than 20% against a committed `BENCH_pr7.json`.

use disco_bench::sweep::{run_point, PointResult, SweepPoint};
use disco_noc::traffic::TrafficPattern;
use disco_noc::TopologyChoice;
use std::fmt::Write as _;
use std::process::ExitCode;

/// Committed PR 3 reference (BENCH_pr3.json): 8x8 serial cycles/s, mean
/// of the two rate-0.1 seeds, and the whole-sweep "speedup" the scoped
/// thread-per-cycle path achieved on that host.
const PR3_SERIAL_8X8_CPS: f64 = 26_862.0;
const PR3_PARALLEL_SPEEDUP: f64 = 0.952;

/// Committed PR 7 reference (BENCH_pr7.json): the persistent worker
/// pool result this bin originally snapshot.
const PR7_SERIAL_8X8_CPS: f64 = 86_056.0;
const PR7_PARALLEL_SPEEDUP: f64 = 0.833;

struct Args {
    meshes: Vec<usize>,
    topology: TopologyChoice,
    cycles: u64,
    rate: f64,
    shards: usize,
    seeds: Vec<u64>,
    out: String,
    gate_speedup: f64,
    baseline: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        meshes: vec![8, 16, 32, 64],
        topology: TopologyChoice::Mesh,
        cycles: 0,
        rate: 0.1,
        shards: 0,
        seeds: vec![disco_bench::DEFAULT_SEED, disco_bench::DEFAULT_SEED + 2],
        out: "BENCH_pr7.json".to_string(),
        gate_speedup: 0.0,
        baseline: None,
    };
    let parse_list = |value: &str, what: &str| -> Result<Vec<u64>, String> {
        value
            .split(',')
            .map(|v| {
                v.trim()
                    .parse()
                    .map_err(|_| format!("invalid {what}: {value}"))
            })
            .collect()
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let value = it
            .next()
            .ok_or_else(|| format!("missing value for {flag}"))?;
        let bad = |what: &str| format!("invalid {what}: {value}");
        match flag.as_str() {
            "--meshes" => {
                args.meshes = parse_list(&value, "--meshes")?
                    .into_iter()
                    .map(|m| m as usize)
                    .collect();
            }
            "--topology" => {
                args.topology = TopologyChoice::parse(&value).ok_or_else(|| bad("--topology"))?;
            }
            "--cycles" => args.cycles = value.parse().map_err(|_| bad("--cycles"))?,
            "--rate" => args.rate = value.parse().map_err(|_| bad("--rate"))?,
            "--shards" => args.shards = value.parse().map_err(|_| bad("--shards"))?,
            "--seeds" => args.seeds = parse_list(&value, "--seeds")?,
            "--out" => args.out = value,
            "--gate-speedup" => {
                args.gate_speedup = value.parse().map_err(|_| bad("--gate-speedup"))?;
            }
            "--baseline" => args.baseline = Some(value),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if args.meshes.is_empty() || args.seeds.is_empty() {
        return Err("need at least one mesh and one seed".to_string());
    }
    Ok(args)
}

/// Auto cycle budget: keep the serial leg of each mesh size in the same
/// wall-clock ballpark (cycles/s falls roughly with router count).
fn cycles_for(mesh: usize, requested: u64) -> u64 {
    if requested > 0 {
        return requested;
    }
    match mesh {
        0..=8 => 20_000,
        9..=16 => 8_000,
        17..=32 => 3_000,
        // 64x64 is 4096 routers: ~4x the per-cycle work of 32x32, so a
        // quarter of its budget keeps the leg in the same ballpark.
        _ => 800,
    }
}

struct MeshResult {
    mesh: usize,
    cycles: u64,
    points: Vec<(PointResult, PointResult)>,
    serial_cps: f64,
    sharded_cps: f64,
    speedup: f64,
    deterministic: bool,
}

fn run_mesh(
    topology: TopologyChoice,
    mesh: usize,
    cycles: u64,
    rate: f64,
    shards: usize,
    seeds: &[u64],
) -> MeshResult {
    let mut points = Vec::new();
    let mut deterministic = true;
    for &seed in seeds {
        let base = SweepPoint {
            topology,
            pattern: TrafficPattern::UniformRandom,
            injection_rate: rate,
            seed,
            cols: mesh,
            rows: mesh,
            cycles,
            compute_shards: 1,
            trace_capacity: 0,
        };
        let serial = run_point(&base);
        let sharded = run_point(&SweepPoint {
            compute_shards: shards,
            ..base
        });
        if serial.stats != sharded.stats {
            eprintln!(
                "kernel_speed: DIVERGENCE at {mesh}x{mesh} seed {seed}: \
                 serial {:?} vs {shards}-shard {:?}",
                serial.stats, sharded.stats
            );
            deterministic = false;
        }
        points.push((serial, sharded));
    }
    let mean = |sel: fn(&(PointResult, PointResult)) -> f64| -> f64 {
        points.iter().map(sel).sum::<f64>() / points.len() as f64
    };
    let serial_cps = mean(|(s, _)| s.cycles_per_sec);
    let sharded_cps = mean(|(_, f)| f.cycles_per_sec);
    MeshResult {
        mesh,
        cycles,
        points,
        serial_cps,
        sharded_cps,
        speedup: sharded_cps / serial_cps.max(1e-9),
        deterministic,
    }
}

/// Pulls `"serial_8x8_cycles_per_s": <number>` out of a committed
/// baseline file without a JSON parser dependency.
fn baseline_serial_cps(path: &str) -> Result<f64, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let key = "\"serial_8x8_cycles_per_s\":";
    let at = text
        .find(key)
        .ok_or_else(|| format!("{path}: no serial_8x8_cycles_per_s field"))?;
    let rest = &text[at + key.len()..];
    let end = rest
        .find([',', '\n', '}'])
        .ok_or_else(|| format!("{path}: unterminated serial_8x8_cycles_per_s"))?;
    rest[..end]
        .trim()
        .parse()
        .map_err(|_| format!("{path}: unparsable serial_8x8_cycles_per_s"))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("kernel_speed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let shards = if args.shards == 0 {
        host_cores
    } else {
        args.shards
    };
    if shards > host_cores {
        eprintln!(
            "kernel_speed: WARNING: {shards} shards on {host_cores} host core(s) — \
             the sharded leg measures time-slicing, not parallelism"
        );
    }
    if !cfg!(feature = "parallel") {
        eprintln!(
            "kernel_speed: WARNING: built without --features parallel; \
             the shard request is ignored and speedup will be ~1.0"
        );
    }

    let mut meshes = Vec::new();
    for &mesh in &args.meshes {
        let cycles = cycles_for(mesh, args.cycles);
        println!(
            "kernel_speed: {mesh}x{mesh} {}, {cycles} cycles x {} seed(s), serial then {shards} shards",
            args.topology,
            args.seeds.len()
        );
        let result = run_mesh(args.topology, mesh, cycles, args.rate, shards, &args.seeds);
        println!(
            "kernel_speed: {mesh}x{mesh}: serial {:.0} c/s, sharded {:.0} c/s, speedup {:.3}x",
            result.serial_cps, result.sharded_cps, result.speedup
        );
        meshes.push(result);
    }

    let deterministic = meshes.iter().all(|m| m.deterministic);
    let serial_8x8 = meshes
        .iter()
        .find(|m| m.mesh == 8)
        .map(|m| m.serial_cps)
        .unwrap_or(0.0);
    let speedup_16x16 = meshes.iter().find(|m| m.mesh == 16).map(|m| m.speedup);

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"kernel_speed\",");
    let _ = writeln!(json, "  \"topology\": \"{}\",", args.topology);
    let _ = writeln!(json, "  \"host_cores\": {host_cores},");
    let _ = writeln!(json, "  \"shards\": {shards},");
    let _ = writeln!(json, "  \"shards_exceed_cores\": {},", shards > host_cores);
    let _ = writeln!(
        json,
        "  \"kernel_parallel_feature\": {},",
        cfg!(feature = "parallel")
    );
    let _ = writeln!(json, "  \"rate\": {},", args.rate);
    let _ = writeln!(json, "  \"meshes\": [");
    for (i, m) in meshes.iter().enumerate() {
        let _ = writeln!(json, "    {{");
        let _ = writeln!(json, "      \"mesh\": \"{}x{}\",", m.mesh, m.mesh);
        let _ = writeln!(json, "      \"cycles_per_point\": {},", m.cycles);
        let _ = writeln!(json, "      \"points\": [");
        for (j, (s, f)) in m.points.iter().enumerate() {
            let sep = if j + 1 < m.points.len() { "," } else { "" };
            let _ = writeln!(
                json,
                "        {{\"seed\": {}, \"packets_delivered\": {}, \
                 \"serial_cycles_per_s\": {:.0}, \"sharded_cycles_per_s\": {:.0}, \
                 \"speedup\": {:.3}}}{}",
                s.point.seed,
                s.stats.packets_delivered,
                s.cycles_per_sec,
                f.cycles_per_sec,
                f.cycles_per_sec / s.cycles_per_sec.max(1e-9),
                sep
            );
        }
        let _ = writeln!(json, "      ],");
        let _ = writeln!(json, "      \"serial_cycles_per_s\": {:.0},", m.serial_cps);
        let _ = writeln!(
            json,
            "      \"sharded_cycles_per_s\": {:.0},",
            m.sharded_cps
        );
        let _ = writeln!(json, "      \"speedup\": {:.3}", m.speedup);
        let sep = if i + 1 < meshes.len() { "," } else { "" };
        let _ = writeln!(json, "    }}{sep}");
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"serial_8x8_cycles_per_s\": {serial_8x8:.0},");
    if let Some(s) = speedup_16x16 {
        let _ = writeln!(json, "  \"speedup_16x16\": {s:.3},");
    }
    let _ = writeln!(json, "  \"deterministic\": {deterministic},");
    let _ = writeln!(json, "  \"trajectory\": [");
    let _ = writeln!(
        json,
        "    {{\"pr\": \"pr3\", \"serial_8x8_cycles_per_s\": {PR3_SERIAL_8X8_CPS:.0}, \
         \"parallel_speedup\": {PR3_PARALLEL_SPEEDUP}, \
         \"note\": \"scoped threads spawned per cycle; per-cycle allocation in RC/VA/SA\"}},"
    );
    let _ = writeln!(
        json,
        "    {{\"pr\": \"pr7\", \"serial_8x8_cycles_per_s\": {PR7_SERIAL_8X8_CPS:.0}, \
         \"parallel_speedup\": {PR7_PARALLEL_SPEEDUP}, \
         \"note\": \"persistent worker pool + zero-alloc per-shard arenas\"}},"
    );
    let _ = writeln!(
        json,
        "    {{\"pr\": \"pr9\", \"serial_8x8_cycles_per_s\": {serial_8x8:.0}, \
         \"parallel_speedup\": {}, \
         \"note\": \"64x64 hundreds-of-cores leg added; checkpoint/restore + disco-serve land\"}}",
        speedup_16x16.map_or_else(|| "null".to_string(), |s| format!("{s:.3}"))
    );
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");
    if let Err(e) = std::fs::write(&args.out, &json) {
        eprintln!("kernel_speed: cannot write {}: {e}", args.out);
        return ExitCode::FAILURE;
    }
    println!("kernel_speed: wrote {}", args.out);

    let mut failed = false;
    if !deterministic {
        eprintln!("kernel_speed: FAIL sharded kernel diverged from serial kernel");
        failed = true;
    }
    if args.gate_speedup > 0.0 {
        match speedup_16x16 {
            Some(s) if s >= args.gate_speedup => {
                println!(
                    "kernel_speed: gate ok: 16x16 speedup {s:.3}x >= {:.2}x",
                    args.gate_speedup
                );
            }
            Some(s) => {
                eprintln!(
                    "kernel_speed: FAIL 16x16 speedup {s:.3}x < required {:.2}x",
                    args.gate_speedup
                );
                failed = true;
            }
            None => {
                eprintln!("kernel_speed: FAIL --gate-speedup set but 16 not in --meshes");
                failed = true;
            }
        }
    }
    if let Some(path) = &args.baseline {
        match baseline_serial_cps(path) {
            Ok(committed) => {
                let floor = committed * 0.8;
                if serial_8x8 >= floor {
                    println!(
                        "kernel_speed: gate ok: serial 8x8 {serial_8x8:.0} c/s >= \
                         80% of committed {committed:.0}"
                    );
                } else {
                    eprintln!(
                        "kernel_speed: FAIL serial 8x8 {serial_8x8:.0} c/s regressed >20% \
                         vs committed {committed:.0}"
                    );
                    failed = true;
                }
            }
            Err(e) => {
                eprintln!("kernel_speed: FAIL {e}");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
