//! Resilience sweep: every Fig. 5 workload run under uniform fault rates
//! for both the Baseline and DISCO placements, asserting the fault
//! layer's contract and emitting a machine-readable `BENCH_pr5.json`.
//!
//! Three invariants back the "lose performance, never data" claim:
//!
//! - **zero silent corruption** — `faults.undetected` is 0 at every
//!   point (a violation would already abort the run with
//!   `SimError::SilentCorruption`);
//! - **exact ledger reconciliation** — injected == detected and
//!   injected == recovered + unrecoverable at every point;
//! - **100% recovery below the retry bound** — at rates up to 1e-4 per
//!   flit-hop every injected fault is recovered within the default
//!   retry budget (`faults.unrecoverable` is 0).
//!
//! `cargo run --release -p disco-bench --features faults --bin fault_sweep -- \
//!     [--mesh 4] [--rates 0.0,1e-5,1e-4,1e-3] [--quick] [--out BENCH_pr5.json]`

use disco_core::{CompressionPlacement, SimBuilder};
use disco_faults::{FaultPlan, FaultStats};
use disco_workloads::Benchmark;
use std::fmt::Write as _;
use std::process::ExitCode;

/// Rates at and below which the sweep demands 100% recovery.
const RECOVERY_BOUND: f64 = 1e-4;

struct Args {
    mesh: usize,
    rates: Vec<f64>,
    trace_len: usize,
    out: String,
    quick: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        mesh: 4,
        rates: vec![0.0, 1e-5, 1e-4, 1e-3],
        trace_len: disco_bench::trace_len().min(6_000),
        out: "BENCH_pr5.json".to_string(),
        quick: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        if flag == "--quick" {
            args.quick = true;
            continue;
        }
        let value = it
            .next()
            .ok_or_else(|| format!("missing value for {flag}"))?;
        let bad = |what: &str| format!("invalid {what}: {value}");
        match flag.as_str() {
            "--mesh" => args.mesh = value.parse().map_err(|_| bad("--mesh"))?,
            "--rates" => {
                args.rates = value
                    .split(',')
                    .map(|r| r.trim().parse().map_err(|_| bad("--rates")))
                    .collect::<Result<_, _>>()?;
            }
            "--out" => args.out = value,
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if args.quick {
        args.rates = vec![0.0, 1e-4];
        args.trace_len = args.trace_len.min(1_500);
    }
    Ok(args)
}

struct Row {
    benchmark: Benchmark,
    placement: CompressionPlacement,
    rate: f64,
    cycles: u64,
    avg_onchip_latency: f64,
    faults: Option<FaultStats>,
}

/// Runs one point; panics (failing the sweep) on any contract breach.
fn run_point(
    args: &Args,
    benchmark: Benchmark,
    placement: CompressionPlacement,
    rate: f64,
    plan_seed: u64,
) -> Row {
    let report = SimBuilder::new()
        .mesh(args.mesh, args.mesh)
        .placement(placement)
        .benchmark(benchmark)
        .trace_len(args.trace_len)
        .seed(disco_bench::DEFAULT_SEED)
        .faults(FaultPlan::uniform(plan_seed, rate))
        .run()
        .unwrap_or_else(|e| panic!("{benchmark}/{placement} @ rate {rate}: {e}"));
    let faults = report.faults;
    if rate == 0.0 {
        assert!(
            faults.is_none(),
            "{benchmark}/{placement}: rate-0 plan must be inactive"
        );
    }
    if let Some(f) = &faults {
        // A rate so low it injected nothing over this run would print as
        // a flawless 100%-recovery row — warn that the configuration
        // under-samples and needs a longer run (disco-serve's
        // long-run/resume mode exists for exactly this).
        if f.injected == 0 {
            let label = format!("{benchmark}/{}", placement.name());
            let sites = disco_bench::serve::injection_sites(args.mesh * args.mesh);
            if let Some(w) =
                disco_bench::serve::injection_warning(&label, rate, report.cycles, sites)
            {
                eprintln!("{w}");
            }
        }
        assert_eq!(
            f.undetected, 0,
            "{benchmark}/{placement} @ rate {rate}: silent corruption"
        );
        assert!(
            f.reconciles(),
            "{benchmark}/{placement} @ rate {rate}: ledger does not reconcile: {f:?}"
        );
        if rate <= RECOVERY_BOUND {
            assert_eq!(
                f.unrecoverable, 0,
                "{benchmark}/{placement} @ rate {rate}: recovery must be total \
                 below {RECOVERY_BOUND}: {f:?}"
            );
        }
    }
    Row {
        benchmark,
        placement,
        rate,
        cycles: report.cycles,
        avg_onchip_latency: report.avg_onchip_latency(),
        faults,
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("fault_sweep: {e}");
            return ExitCode::FAILURE;
        }
    };
    let placements = [CompressionPlacement::Baseline, CompressionPlacement::Disco];
    println!(
        "fault_sweep: {}x{} mesh, {} accesses/core, rates {:?}{}",
        args.mesh,
        args.mesh,
        args.trace_len,
        args.rates,
        if args.quick { " (quick)" } else { "" }
    );
    println!(
        "{:<14} {:<9} {:>8} {:>9} {:>9} {:>9} {:>7} {:>9} {:>10}",
        "benchmark",
        "placement",
        "rate",
        "injected",
        "recovered",
        "unrecov",
        "retries",
        "fallback",
        "latency"
    );

    let mut rows = Vec::new();
    for (bi, &benchmark) in Benchmark::ALL.iter().enumerate() {
        for (pi, &placement) in placements.iter().enumerate() {
            for &rate in &args.rates {
                let plan_seed = disco_bench::DEFAULT_SEED ^ ((bi as u64) << 8) ^ pi as u64;
                let row = run_point(&args, benchmark, placement, rate, plan_seed);
                let f = row.faults.unwrap_or_default();
                println!(
                    "{:<14} {:<9} {:>8.0e} {:>9} {:>9} {:>9} {:>7} {:>9} {:>10.2}",
                    row.benchmark.to_string(),
                    row.placement.name(),
                    row.rate,
                    f.injected,
                    f.recovered,
                    f.unrecoverable,
                    f.retries,
                    f.fallback_deliveries,
                    row.avg_onchip_latency,
                );
                rows.push(row);
            }
        }
    }

    let total =
        rows.iter()
            .filter_map(|r| r.faults.as_ref())
            .fold(FaultStats::default(), |mut acc, f| {
                acc.accumulate(f);
                acc
            });
    let bounded_unrecoverable: u64 = rows
        .iter()
        .filter(|r| r.rate > 0.0 && r.rate <= RECOVERY_BOUND)
        .filter_map(|r| r.faults.as_ref())
        .map(|f| f.unrecoverable)
        .sum();
    println!(
        "fault_sweep: {} points, {} faults injected, {} recovered, {} unrecoverable \
         (0 at rates <= {RECOVERY_BOUND}: {}), 0 undetected",
        rows.len(),
        total.injected,
        total.recovered,
        total.unrecoverable,
        bounded_unrecoverable == 0,
    );

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"fault_sweep\",");
    let _ = writeln!(json, "  \"mesh\": \"{}x{}\",", args.mesh, args.mesh);
    let _ = writeln!(json, "  \"trace_len\": {},", args.trace_len);
    let _ = writeln!(json, "  \"quick\": {},", args.quick);
    let _ = writeln!(json, "  \"recovery_bound\": {RECOVERY_BOUND},");
    let _ = writeln!(json, "  \"total_injected\": {},", total.injected);
    let _ = writeln!(json, "  \"total_recovered\": {},", total.recovered);
    let _ = writeln!(json, "  \"total_unrecoverable\": {},", total.unrecoverable);
    let _ = writeln!(json, "  \"total_undetected\": {},", total.undetected);
    let _ = writeln!(json, "  \"points\": [");
    for (i, row) in rows.iter().enumerate() {
        let sep = if i + 1 < rows.len() { "," } else { "" };
        let f = row.faults.unwrap_or_default();
        let _ = writeln!(
            json,
            "    {{\"benchmark\": \"{}\", \"placement\": \"{}\", \"rate\": {:e}, \
             \"cycles\": {}, \"avg_onchip_latency\": {:.4}, \"injected\": {}, \
             \"detected\": {}, \"recovered\": {}, \"unrecoverable\": {}, \
             \"retries\": {}, \"fallback_deliveries\": {}, \"undetected\": {}}}{}",
            row.benchmark,
            row.placement.name(),
            row.rate,
            row.cycles,
            row.avg_onchip_latency,
            f.injected,
            f.detected,
            f.recovered,
            f.unrecoverable,
            f.retries,
            f.fallback_deliveries,
            f.undetected,
            sep
        );
    }
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");
    if let Err(e) = std::fs::write(&args.out, &json) {
        eprintln!("fault_sweep: cannot write {}: {e}", args.out);
        return ExitCode::FAILURE;
    }
    println!("fault_sweep: -> {}", args.out);
    ExitCode::SUCCESS
}
