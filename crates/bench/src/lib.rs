//! Shared harness for the figure/table regeneration binaries.
//!
//! Each binary under `src/bin/` regenerates one artifact of the paper's
//! evaluation (see `DESIGN.md`'s experiment index): it sweeps the same
//! configurations, prints the same rows/series, and reports the same
//! summary statistics the paper quotes in §4.

pub mod experiments;
pub mod serve;
pub mod sweep;

use disco_core::{CompressionPlacement, SimBuilder, SimReport};
use disco_workloads::Benchmark;

/// Default per-core trace length for the figure runs. Override with the
/// `TRACE_LEN` environment variable to trade fidelity for speed.
pub const DEFAULT_TRACE_LEN: usize = 12_000;

/// Default seed for figure runs (results are deterministic given it).
pub const DEFAULT_SEED: u64 = 2016;

/// Reads the trace length from `TRACE_LEN`, falling back to the default.
pub fn trace_len() -> usize {
    std::env::var("TRACE_LEN")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_TRACE_LEN)
}

/// Runs one configuration on the Table 2 system.
pub fn run(
    benchmark: Benchmark,
    placement: CompressionPlacement,
    scheme: disco_compress::SchemeKind,
    mesh: usize,
    len: usize,
) -> SimReport {
    SimBuilder::new()
        .mesh(mesh, mesh)
        .placement(placement)
        .scheme(scheme)
        .benchmark(benchmark)
        .trace_len(len)
        .seed(DEFAULT_SEED)
        .run()
        .unwrap_or_else(|e| panic!("{benchmark}/{placement}: {e}"))
}

/// Geometric mean.
pub fn gmean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "gmean of an empty set");
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// Arithmetic mean.
pub fn mean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "mean of an empty set");
    values.iter().sum::<f64>() / values.len() as f64
}

/// Prints a figure header with the workload column.
pub fn print_header(columns: &[&str]) {
    print!("{:<14}", "benchmark");
    for c in columns {
        print!(" {c:>9}");
    }
    println!();
}

/// Prints one row of normalized values.
pub fn print_row(label: &str, values: &[f64]) {
    print!("{label:<14}");
    for v in values {
        print!(" {v:>9.3}");
    }
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gmean_of_ones_is_one() {
        assert!((gmean(&[1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn gmean_matches_hand_computation() {
        let g = gmean(&[2.0, 8.0]);
        assert!((g - 4.0).abs() < 1e-12);
        assert!((mean(&[2.0, 8.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn tiny_run_works() {
        let r = run(
            Benchmark::Swaptions,
            CompressionPlacement::Baseline,
            disco_compress::SchemeKind::Delta,
            2,
            100,
        );
        assert!(r.cycles > 0);
    }
}
