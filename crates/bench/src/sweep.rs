//! Parallel experiment harness: fan independent sweep points across OS
//! threads and report machine-readable throughput numbers.
//!
//! Each point is a complete, self-contained simulation (own `Network`,
//! own `TrafficDriver`, own RNG seed), so points share no state and the
//! fan-out needs no synchronization beyond joining. Results come back in
//! point order regardless of the thread count, and each point's stats
//! are byte-identical to a serial run of the same point — the harness
//! parallelizes *between* configurations; the `parallel` cargo feature
//! additionally shards the cycle kernel *within* one (see
//! `NocConfig::compute_shards`).

use disco_noc::traffic::{TrafficDriver, TrafficPattern};
use disco_noc::{Network, NetworkStats, NocConfig, NodeId, TopologyChoice};
use std::time::Instant;

/// One configuration of the sweep.
#[derive(Debug, Clone, Copy)]
pub struct SweepPoint {
    /// NoC topology (tiles stay `cols × rows` on every choice).
    pub topology: TopologyChoice,
    /// Synthetic destination pattern.
    pub pattern: TrafficPattern,
    /// Offered load in flits/node/cycle.
    pub injection_rate: f64,
    /// Driver RNG seed.
    pub seed: u64,
    /// Mesh columns.
    pub cols: usize,
    /// Mesh rows.
    pub rows: usize,
    /// Cycles to simulate.
    pub cycles: u64,
    /// Kernel shard request (see `NocConfig::compute_shards`; ignored
    /// without the `parallel` feature).
    pub compute_shards: usize,
    /// Trace ring-buffer capacity override (0 = crate default; ignored
    /// without the `trace` feature). Used by the tracing-overhead bench.
    pub trace_capacity: usize,
}

/// Measurements for one executed point.
#[derive(Debug, Clone, Copy)]
pub struct PointResult {
    /// The configuration that produced this result.
    pub point: SweepPoint,
    /// Final network counters.
    pub stats: NetworkStats,
    /// Wall-clock seconds for the simulation loop.
    pub wall_secs: f64,
    /// Simulated cycles per wall-clock second.
    pub cycles_per_sec: f64,
    /// Events the tracer emitted over the run (`trace` builds only).
    #[cfg(feature = "trace")]
    pub trace_emitted: u64,
    /// Events the ring buffer dropped (`trace` builds only).
    #[cfg(feature = "trace")]
    pub trace_dropped: u64,
}

/// Runs one sweep point to completion.
pub fn run_point(point: &SweepPoint) -> PointResult {
    let topo = point.topology.build(point.cols, point.rows);
    let config = NocConfig {
        vcs: NocConfig::default().vcs.max(topo.min_vcs()),
        compute_shards: point.compute_shards,
        ..NocConfig::default()
    };
    let nodes = topo.tiles();
    let mut net = Network::new(topo, config);
    #[cfg(feature = "trace")]
    if point.trace_capacity > 0 {
        net.set_trace_capacity(point.trace_capacity);
    }
    let mut driver = TrafficDriver::new(point.pattern, point.injection_rate, true, point.seed);
    let start = Instant::now();
    for _ in 0..point.cycles {
        driver.inject(&mut net);
        net.tick();
        for n in 0..nodes {
            let _ = net.take_delivered(NodeId(n));
        }
    }
    let wall_secs = start.elapsed().as_secs_f64().max(1e-9);
    PointResult {
        point: *point,
        stats: *net.stats(),
        wall_secs,
        cycles_per_sec: point.cycles as f64 / wall_secs,
        #[cfg(feature = "trace")]
        trace_emitted: net.tracer().emitted(),
        #[cfg(feature = "trace")]
        trace_dropped: net.tracer().dropped(),
    }
}

/// Runs every point, fanning them round-robin across `threads` OS
/// threads (1 = fully serial). Results are returned in point order.
/// The fan-out itself lives in [`disco_pareto::exec::fan_out`], shared
/// with the design-space-exploration driver.
pub fn run_sweep(points: &[SweepPoint], threads: usize) -> Vec<PointResult> {
    disco_pareto::exec::fan_out(points, threads, run_point)
}

/// Minimal JSON string escaping, shared with `disco-pareto`'s emitters.
pub use disco_pareto::json::json_escape;

/// Short label for a pattern, for JSON and filenames.
pub fn pattern_name(pattern: TrafficPattern) -> &'static str {
    match pattern {
        TrafficPattern::UniformRandom => "uniform_random",
        TrafficPattern::Hotspot(_) => "hotspot",
        TrafficPattern::Transpose => "transpose",
        TrafficPattern::BitComplement => "bit_complement",
        TrafficPattern::RingNext => "ring_next",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_points() -> Vec<SweepPoint> {
        [0.05, 0.2, 0.4]
            .iter()
            .map(|&rate| SweepPoint {
                topology: TopologyChoice::Mesh,
                pattern: TrafficPattern::UniformRandom,
                injection_rate: rate,
                seed: 2016,
                cols: 4,
                rows: 4,
                cycles: 400,
                compute_shards: 1,
                trace_capacity: 0,
            })
            .collect()
    }

    #[test]
    fn fan_out_preserves_order_and_results() {
        let points = tiny_points();
        let serial = run_sweep(&points, 1);
        let fanned = run_sweep(&points, 3);
        assert_eq!(serial.len(), fanned.len());
        for (s, f) in serial.iter().zip(&fanned) {
            assert_eq!(s.point.injection_rate, f.point.injection_rate);
            assert_eq!(s.stats, f.stats, "thread count must not change stats");
        }
    }

    #[test]
    fn every_topology_runs_a_point() {
        for choice in TopologyChoice::ALL {
            let point = SweepPoint {
                topology: choice,
                pattern: TrafficPattern::UniformRandom,
                injection_rate: 0.1,
                seed: 7,
                cols: 4,
                rows: 4,
                cycles: 300,
                compute_shards: 1,
                trace_capacity: 0,
            };
            let r = run_point(&point);
            assert!(
                r.stats.packets_delivered > 0,
                "{choice}: no packets delivered"
            );
        }
    }

    #[test]
    fn heavier_load_moves_more_flits() {
        let results = run_sweep(&tiny_points(), 2);
        assert!(results[2].stats.link_flits > results[0].stats.link_flits);
    }

    #[test]
    fn escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
