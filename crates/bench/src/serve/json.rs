//! A minimal JSON reader for the `disco-serve` queue format.
//!
//! The workspace takes no external dependencies, so this is a small
//! recursive-descent parser covering the full JSON grammar (objects,
//! arrays, strings with escapes, numbers, booleans, null). Errors carry
//! the byte offset of the first offending character. It reads queue
//! files of a few kilobytes; it is not meant as a general-purpose
//! high-throughput parser.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (integers round-trip exactly up to 2^53).
    Num(f64),
    /// A string, escapes resolved.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order (duplicate keys: first wins on `get`).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup; `None` on non-objects and missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// This number as a non-negative integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::Num(n) if n >= 0.0 && n.fract() == 0.0 && n <= u64::MAX as f64 => Some(n as u64),
            _ => None,
        }
    }

    /// This number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::Num(n) => Some(n),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parses one complete JSON document; trailing non-whitespace is an
/// error. Error strings carry a byte offset into `text`.
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data after JSON document"));
    }
    Ok(value)
}

// Objects nested deeper than this are rejected rather than risking a
// stack overflow on hostile input.
const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, what: &str) -> String {
        format!("json: {what} at byte {}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err("unrecognized token"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => self.string().map(Json::Str),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogates would need pairing; the queue
                            // format has no use for them.
                            let ch = char::from_u32(hex)
                                .ok_or_else(|| self.err("\\u escape is not a scalar value"))?;
                            out.push(ch);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(byte) if byte < 0x20 => {
                    return Err(self.err("raw control character in string"))
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so slices
                    // at char boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    let ch = s.chars().next().expect("peeked non-empty");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("malformed number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_grammar_round_trips() {
        let doc = r#"{
            "s": "a\"b\\c\u0041\n",
            "n": -1.5e3,
            "i": 42,
            "b": [true, false, null],
            "o": {"nested": {}}
        }"#;
        let v = parse(doc).expect("parses");
        assert_eq!(v.get("s").and_then(Json::as_str), Some("a\"b\\cA\n"));
        assert_eq!(v.get("n").and_then(Json::as_f64), Some(-1500.0));
        assert_eq!(v.get("i").and_then(Json::as_u64), Some(42));
        assert_eq!(
            v.get("b").and_then(Json::as_arr).map(<[Json]>::len),
            Some(3)
        );
        assert!(v.get("o").and_then(|o| o.get("nested")).is_some());
        // as_u64 refuses non-integers and negatives.
        assert_eq!(v.get("n").and_then(Json::as_u64), None);
    }

    #[test]
    fn errors_carry_byte_offsets() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\" 1}",
            "\"\\q\"",
            "01x",
            "{} trailing",
            "nul",
        ] {
            let err = parse(bad).expect_err(bad);
            assert!(err.contains("byte"), "{bad:?}: {err}");
        }
    }

    #[test]
    fn hostile_depth_is_rejected() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&deep).unwrap_err().contains("deep"));
    }
}
