//! Simulation-as-a-service: a long-running job-queue engine behind the
//! `disco-serve` binary.
//!
//! A queue file (JSON, schema below) lists independent simulation jobs
//! on the [`SimBuilder`] axes. The engine fans them across OS worker
//! threads (round-robin, like `sweep::run_sweep`), streams a heartbeat
//! JSONL line per job chunk, auto-checkpoints every
//! `checkpoint_every` cycles via [`System::snapshot`], and resumes any
//! job whose checkpoint it finds in the output directory — so a killed
//! process restarts and finishes its queue with final stats
//! byte-identical to an uninterrupted run (the snapshot determinism
//! contract, pinned by `tests/determinism.rs`).
//!
//! Queue schema:
//!
//! ```json
//! {
//!   "checkpoint_every": 2000,
//!   "jobs": [
//!     {
//!       "name": "bs-disco",
//!       "mesh": 4,                  // or "cols"/"rows"
//!       "topology": "mesh",         // mesh|ring|hring|torus|cmesh
//!       "placement": "disco",       // baseline|ideal|cc|cnc|disco
//!       "scheme": "delta",          // a compress::SchemeKind name
//!       "benchmark": "blackscholes",
//!       "trace_len": 10000,
//!       "seed": 1,
//!       "compute_shards": 1,
//!       "max_cycles": 0,            // 0 = auto budget
//!       "fault_rate": 0.0           // needs the `faults` feature if > 0
//!     }
//!   ]
//! }
//! ```
//!
//! Per-job files in the output directory: `<name>.stats` (final stats,
//! written atomically — its existence marks completion), `<name>.jsonl`
//! (heartbeat stream), `<name>.ckpt` (latest checkpoint, atomic
//! tmp+rename). Dropping a `<name>.cancel` marker file stops the job at
//! its next chunk boundary, checkpoint intact.

use crate::sweep;
use disco_compress::SchemeKind;
use disco_core::{CompressionPlacement, SimBuilder, SimError, System};
use disco_noc::{NocConfig, TopologyChoice};
use disco_workloads::Benchmark;
use std::fmt::Write as _;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicI64, Ordering};

pub mod json;

use json::Json;

/// One queued simulation job on the [`SimBuilder`] axes.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Unique, file-safe job name (output files derive from it).
    pub name: String,
    /// Mesh columns.
    pub cols: usize,
    /// Mesh rows.
    pub rows: usize,
    /// NoC topology.
    pub topology: TopologyChoice,
    /// Compression placement.
    pub placement: CompressionPlacement,
    /// Compression scheme.
    pub scheme: SchemeKind,
    /// Workload.
    pub benchmark: Benchmark,
    /// Accesses per core.
    pub trace_len: usize,
    /// RNG seed.
    pub seed: u64,
    /// Kernel shard request (ignored without the `parallel` feature).
    pub compute_shards: usize,
    /// Cycle budget (0 = auto).
    pub max_cycles: u64,
    /// Uniform fault rate (requires the `faults` feature when > 0).
    pub fault_rate: f64,
}

impl JobSpec {
    /// The simulator configuration this job describes.
    pub fn builder(&self) -> SimBuilder {
        let noc = NocConfig {
            compute_shards: self.compute_shards,
            ..NocConfig::default()
        };
        let builder = SimBuilder::new()
            .mesh(self.cols, self.rows)
            .topology(self.topology)
            .placement(self.placement)
            .scheme(self.scheme)
            .benchmark(self.benchmark)
            .trace_len(self.trace_len)
            .seed(self.seed)
            .max_cycles(self.max_cycles)
            .noc(noc);
        #[cfg(feature = "faults")]
        let builder = if self.fault_rate > 0.0 {
            builder.faults(disco_faults::FaultPlan::uniform(
                self.seed ^ 0xfa17,
                self.fault_rate,
            ))
        } else {
            builder
        };
        builder
    }

    /// Rough cycle count this job will simulate: the explicit budget if
    /// set, otherwise an empirical multiple of the trace length.
    pub fn estimated_cycles(&self) -> u64 {
        if self.max_cycles > 0 {
            self.max_cycles
        } else {
            self.trace_len as u64 * 20
        }
    }
}

/// A parsed queue file.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Jobs, in submission order.
    pub jobs: Vec<JobSpec>,
    /// Cycles between auto-checkpoints (and heartbeat lines).
    pub checkpoint_every: u64,
}

/// Approximate per-cycle fault injection sites of a `cols`×`rows`
/// system: every router port (≈ 5 per tile on a mesh) is a potential
/// link/stall/flip site each cycle.
pub fn injection_sites(tiles: usize) -> u64 {
    5 * tiles as u64
}

/// Expected fault injections of a run: rate × cycles × sites.
/// (Shared with the DSE driver; see [`disco_pareto::exec`].)
pub use disco_pareto::exec::expected_injections;

/// The structured warning for the silent "0 faults injected looks like
/// 100% recovery" trap: a positive fault rate whose expected injection
/// count rounds to ~0 over the run needs a long-run/resume simulation,
/// not a bench-length one. Returns a single JSON line, or `None` when
/// the configuration is sound. (Shared with the DSE driver.)
pub use disco_pareto::exec::injection_warning;

fn job_name_ok(name: &str) -> bool {
    !name.is_empty()
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_' || c == '.')
}

fn lookup<T: Copy>(
    what: &str,
    value: &str,
    all: &[T],
    name: impl Fn(T) -> &'static str,
) -> Result<T, String> {
    all.iter()
        .copied()
        .find(|&v| name(v).eq_ignore_ascii_case(value))
        .ok_or_else(|| {
            let names: Vec<_> = all.iter().map(|&v| name(v)).collect();
            format!("unknown {what} {value:?} (one of: {})", names.join(", "))
        })
}

fn parse_job(obj: &Json, index: usize) -> Result<JobSpec, String> {
    let ctx = |field: &str| format!("jobs[{index}].{field}");
    let name = obj
        .get("name")
        .and_then(Json::as_str)
        .ok_or_else(|| format!("{} missing", ctx("name")))?
        .to_string();
    if !job_name_ok(&name) {
        return Err(format!(
            "{}: {name:?} is not file-safe (ascii alphanumerics, '-', '_', '.')",
            ctx("name")
        ));
    }
    let mesh = obj.get("mesh").and_then(Json::as_u64);
    let cols = obj
        .get("cols")
        .and_then(Json::as_u64)
        .or(mesh)
        .ok_or_else(|| format!("{} (or mesh) missing", ctx("cols")))? as usize;
    let rows = obj
        .get("rows")
        .and_then(Json::as_u64)
        .or(mesh)
        .ok_or_else(|| format!("{} (or mesh) missing", ctx("rows")))? as usize;
    if cols < 2 || rows < 2 {
        return Err(format!("{}: grid must be at least 2x2", ctx("mesh")));
    }
    let field_str = |field: &str, default: &'static str| {
        obj.get(field)
            .map(|v| {
                v.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| format!("{} must be a string", ctx(field)))
            })
            .unwrap_or_else(|| Ok(default.to_string()))
    };
    let topology = lookup(
        "topology",
        &field_str("topology", "mesh")?,
        &TopologyChoice::ALL,
        TopologyChoice::name,
    )?;
    let placement = lookup(
        "placement",
        &field_str("placement", "disco")?,
        &CompressionPlacement::ALL,
        CompressionPlacement::name,
    )?;
    let scheme = lookup(
        "scheme",
        &field_str("scheme", "Delta")?,
        &SchemeKind::ALL,
        SchemeKind::name,
    )?;
    let benchmark = lookup(
        "benchmark",
        &field_str("benchmark", "blackscholes")?,
        &Benchmark::ALL,
        Benchmark::name,
    )?;
    let trace_len = obj
        .get("trace_len")
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("{} missing", ctx("trace_len")))? as usize;
    if trace_len == 0 {
        return Err(format!("{} must be positive", ctx("trace_len")));
    }
    let seed = obj.get("seed").and_then(Json::as_u64).unwrap_or(1);
    let compute_shards = obj
        .get("compute_shards")
        .and_then(Json::as_u64)
        .unwrap_or(1) as usize;
    let max_cycles = obj.get("max_cycles").and_then(Json::as_u64).unwrap_or(0);
    let fault_rate = obj.get("fault_rate").and_then(Json::as_f64).unwrap_or(0.0);
    if fault_rate < 0.0 {
        return Err(format!("{} must be non-negative", ctx("fault_rate")));
    }
    if fault_rate > 0.0 && !cfg!(feature = "faults") {
        return Err(format!(
            "{}: fault injection needs a `--features faults` build",
            ctx("fault_rate")
        ));
    }
    Ok(JobSpec {
        name,
        cols,
        rows,
        topology,
        placement,
        scheme,
        benchmark,
        trace_len,
        seed,
        compute_shards,
        max_cycles,
        fault_rate,
    })
}

/// Parses and validates a queue file. Emits the expected-injection
/// warning (to `warnings`) for every faulty job whose rate rounds to ~0
/// injections over its estimated length.
pub fn parse_queue(text: &str) -> Result<(ServeConfig, Vec<String>), String> {
    let root = json::parse(text)?;
    let checkpoint_every = root
        .get("checkpoint_every")
        .and_then(Json::as_u64)
        .unwrap_or(2_000)
        .max(1);
    let jobs_json = root
        .get("jobs")
        .and_then(Json::as_arr)
        .ok_or("queue file needs a \"jobs\" array")?;
    if jobs_json.is_empty() {
        return Err("queue file lists no jobs".into());
    }
    let mut jobs = Vec::with_capacity(jobs_json.len());
    let mut warnings = Vec::new();
    for (i, j) in jobs_json.iter().enumerate() {
        let job = parse_job(j, i)?;
        if jobs
            .iter()
            .any(|existing: &JobSpec| existing.name == job.name)
        {
            return Err(format!("duplicate job name {:?}", job.name));
        }
        if let Some(w) = injection_warning(
            &job.name,
            job.fault_rate,
            job.estimated_cycles(),
            injection_sites(job.cols * job.rows),
        ) {
            warnings.push(w);
        }
        jobs.push(job);
    }
    Ok((
        ServeConfig {
            jobs,
            checkpoint_every,
        },
        warnings,
    ))
}

/// Engine options (the binary's CLI maps 1:1 onto this).
#[derive(Debug, Clone)]
pub struct ServeOpts {
    /// Per-job output directory (created if missing).
    pub out_dir: PathBuf,
    /// Worker threads (jobs fan round-robin; 1 = serial).
    pub threads: usize,
    /// Stop the whole server after this many job chunks — a
    /// deterministic stand-in for a process kill, used by the
    /// kill-and-resume tests. `None` = run to queue completion.
    pub max_chunks: Option<u64>,
}

/// What happened to one job this server run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobOutcome {
    /// Final stats written (this run, possibly after a resume).
    Completed,
    /// `<name>.stats` already existed; nothing to do.
    AlreadyDone,
    /// Stopped by the chunk budget; checkpoint on disk.
    Interrupted,
    /// Stopped by a `<name>.cancel` marker; checkpoint on disk.
    Cancelled,
    /// The simulation or an output file failed (details on the
    /// heartbeat stream and stderr).
    Failed,
}

/// Outcome tallies for a whole server run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeSummary {
    /// Jobs whose final stats this run wrote.
    pub completed: usize,
    /// Jobs already complete when the run started.
    pub already_done: usize,
    /// Jobs that resumed from a checkpoint this run.
    pub resumed: usize,
    /// Jobs stopped by the chunk budget.
    pub interrupted: usize,
    /// Jobs stopped by a cancel marker.
    pub cancelled: usize,
    /// Jobs that failed.
    pub failed: usize,
}

use disco_pareto::journal::write_atomic;

struct JobFiles {
    stats: PathBuf,
    heartbeat: PathBuf,
    checkpoint: PathBuf,
    cancel: PathBuf,
}

impl JobFiles {
    fn new(out_dir: &Path, name: &str) -> Self {
        let p = |ext: &str| out_dir.join(format!("{name}.{ext}"));
        JobFiles {
            stats: p("stats"),
            heartbeat: p("jsonl"),
            checkpoint: p("ckpt"),
            cancel: p("cancel"),
        }
    }

    fn heartbeat(&self, name: &str, event: &str, sys: Option<&System>) {
        let mut line = String::new();
        let _ = write!(
            line,
            "{{\"job\":\"{}\",\"event\":\"{event}\"",
            sweep::json_escape(name)
        );
        if let Some(sys) = sys {
            let _ = write!(
                line,
                ",\"cycle\":{},\"outstanding\":{}",
                sys.now(),
                sys.outstanding()
            );
        }
        line.push('}');
        line.push('\n');
        if let Ok(mut f) = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.heartbeat)
        {
            let _ = f.write_all(line.as_bytes());
        }
    }
}

/// Runs one job: resume from its checkpoint if one exists, step in
/// `checkpoint_every`-cycle chunks, checkpoint after each, finish with
/// an atomically-written stats file. `resumed` is set when the job
/// continued from a checkpoint.
fn run_job(
    job: &JobSpec,
    files: &JobFiles,
    checkpoint_every: u64,
    budget: &AtomicI64,
    resumed: &mut bool,
) -> JobOutcome {
    if files.stats.exists() {
        return JobOutcome::AlreadyDone;
    }
    let builder = job.builder();
    let mut sys = match fs::read(&files.checkpoint) {
        Ok(bytes) => match System::restore_with(&bytes, &builder) {
            Ok(sys) => {
                *resumed = true;
                files.heartbeat(&job.name, "resumed", Some(&sys));
                sys
            }
            Err(e) => {
                eprintln!("disco-serve: {}: checkpoint unusable: {e}", job.name);
                files.heartbeat(&job.name, "failed", None);
                return JobOutcome::Failed;
            }
        },
        Err(_) => {
            let sys = builder.build();
            files.heartbeat(&job.name, "started", Some(&sys));
            sys
        }
    };
    loop {
        if files.cancel.exists() {
            let _ = write_atomic(&files.checkpoint, &sys.snapshot());
            files.heartbeat(&job.name, "cancelled", Some(&sys));
            return JobOutcome::Cancelled;
        }
        if budget.fetch_sub(1, Ordering::SeqCst) <= 0 {
            let _ = write_atomic(&files.checkpoint, &sys.snapshot());
            files.heartbeat(&job.name, "interrupted", Some(&sys));
            return JobOutcome::Interrupted;
        }
        let target = sys.now() + checkpoint_every;
        match sys.step_until(target) {
            Ok(false) => {
                if write_atomic(&files.checkpoint, &sys.snapshot()).is_err() {
                    eprintln!("disco-serve: {}: cannot write checkpoint", job.name);
                    files.heartbeat(&job.name, "failed", Some(&sys));
                    return JobOutcome::Failed;
                }
                files.heartbeat(&job.name, "checkpoint", Some(&sys));
            }
            Ok(true) => {
                files.heartbeat(&job.name, "draining", Some(&sys));
                return match sys.run_to_completion() {
                    Ok(report) => {
                        let mut buf = Vec::new();
                        if report.write_stats(&mut buf).is_err()
                            || write_atomic(&files.stats, &buf).is_err()
                        {
                            eprintln!("disco-serve: {}: cannot write stats", job.name);
                            files.heartbeat(&job.name, "failed", None);
                            return JobOutcome::Failed;
                        }
                        let _ = fs::remove_file(&files.checkpoint);
                        files.heartbeat(&job.name, "completed", None);
                        JobOutcome::Completed
                    }
                    Err(e) => {
                        eprintln!("disco-serve: {}: {e}", job.name);
                        files.heartbeat(&job.name, "failed", None);
                        JobOutcome::Failed
                    }
                };
            }
            Err(e @ SimError::DeadlineExceeded { .. }) => {
                eprintln!("disco-serve: {}: {e}", job.name);
                files.heartbeat(&job.name, "failed", Some(&sys));
                return JobOutcome::Failed;
            }
            Err(e) => {
                eprintln!("disco-serve: {}: {e}", job.name);
                files.heartbeat(&job.name, "failed", None);
                return JobOutcome::Failed;
            }
        }
    }
}

/// Runs the queue. Jobs fan round-robin across `threads` workers; each
/// worker processes its jobs in submission order. Returns the outcome
/// tally (the binary turns `failed > 0` into a failing exit code).
pub fn serve(cfg: &ServeConfig, opts: &ServeOpts) -> Result<ServeSummary, String> {
    fs::create_dir_all(&opts.out_dir)
        .map_err(|e| format!("cannot create {}: {e}", opts.out_dir.display()))?;
    // i64 so concurrent fetch_subs past zero saturate harmlessly.
    let budget = AtomicI64::new(match opts.max_chunks {
        Some(n) => i64::try_from(n).unwrap_or(i64::MAX),
        None => i64::MAX,
    });
    let threads = opts.threads.max(1).min(cfg.jobs.len().max(1));
    let outcomes: Vec<(JobOutcome, bool)> = if threads <= 1 {
        cfg.jobs
            .iter()
            .map(|job| {
                let files = JobFiles::new(&opts.out_dir, &job.name);
                let mut resumed = false;
                let o = run_job(job, &files, cfg.checkpoint_every, &budget, &mut resumed);
                (o, resumed)
            })
            .collect()
    } else {
        let mut indexed: Vec<(usize, (JobOutcome, bool))> = Vec::with_capacity(cfg.jobs.len());
        std::thread::scope(|s| {
            let budget = &budget;
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    s.spawn(move || {
                        cfg.jobs
                            .iter()
                            .enumerate()
                            .skip(t)
                            .step_by(threads)
                            .map(|(i, job)| {
                                let files = JobFiles::new(&opts.out_dir, &job.name);
                                let mut resumed = false;
                                let o = run_job(
                                    job,
                                    &files,
                                    cfg.checkpoint_every,
                                    budget,
                                    &mut resumed,
                                );
                                (i, (o, resumed))
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            for handle in handles {
                match handle.join() {
                    Ok(part) => indexed.extend(part),
                    Err(_) => panic!("serve worker panicked"),
                }
            }
        });
        indexed.sort_by_key(|&(i, _)| i);
        indexed.into_iter().map(|(_, o)| o).collect()
    };
    let mut summary = ServeSummary::default();
    for (outcome, resumed) in outcomes {
        if resumed {
            summary.resumed += 1;
        }
        match outcome {
            JobOutcome::Completed => summary.completed += 1,
            JobOutcome::AlreadyDone => summary.already_done += 1,
            JobOutcome::Interrupted => summary.interrupted += 1,
            JobOutcome::Cancelled => summary.cancelled += 1,
            JobOutcome::Failed => summary.failed += 1,
        }
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn queue_text() -> &'static str {
        r#"{
            "checkpoint_every": 500,
            "jobs": [
                {"name": "a", "mesh": 2, "benchmark": "swaptions",
                 "trace_len": 150, "seed": 1},
                {"name": "b", "mesh": 2, "placement": "baseline",
                 "benchmark": "dedup", "trace_len": 150, "seed": 2}
            ]
        }"#
    }

    #[test]
    fn queue_parses_and_validates() {
        let (cfg, warnings) = parse_queue(queue_text()).expect("valid queue");
        assert_eq!(cfg.checkpoint_every, 500);
        assert_eq!(cfg.jobs.len(), 2);
        assert_eq!(cfg.jobs[0].name, "a");
        assert_eq!(cfg.jobs[0].placement, CompressionPlacement::Disco);
        assert_eq!(cfg.jobs[1].placement, CompressionPlacement::Baseline);
        assert!(warnings.is_empty());
    }

    #[test]
    fn bad_queues_are_rejected_with_context() {
        let dup = r#"{"jobs": [
            {"name": "x", "mesh": 2, "trace_len": 10},
            {"name": "x", "mesh": 2, "trace_len": 10}
        ]}"#;
        assert!(parse_queue(dup).unwrap_err().contains("duplicate"));
        let bad_bench = r#"{"jobs": [
            {"name": "x", "mesh": 2, "trace_len": 10, "benchmark": "doom"}
        ]}"#;
        let e = parse_queue(bad_bench).unwrap_err();
        assert!(e.contains("doom") && e.contains("blackscholes"), "{e}");
        let bad_name = r#"{"jobs": [
            {"name": "../x", "mesh": 2, "trace_len": 10}
        ]}"#;
        assert!(parse_queue(bad_name).unwrap_err().contains("file-safe"));
        assert!(parse_queue("{}").is_err());
        assert!(parse_queue("not json").is_err());
    }

    #[test]
    fn near_zero_expected_injections_warn() {
        let w = injection_warning("j", 1e-9, 10_000, 80);
        let w = w.expect("1e-9 over 10k cycles rounds to ~0");
        assert!(w.contains("expected_injections_rounds_to_zero"));
        assert!(w.contains("resume"));
        assert!(injection_warning("j", 0.0, 10_000, 80).is_none());
        assert!(injection_warning("j", 1e-3, 10_000, 80).is_none());
    }

    #[test]
    fn serve_completes_a_queue_and_is_idempotent() {
        let (cfg, _) = parse_queue(queue_text()).expect("valid queue");
        let dir = std::env::temp_dir().join(format!("disco-serve-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let opts = ServeOpts {
            out_dir: dir.clone(),
            threads: 2,
            max_chunks: None,
        };
        let summary = serve(&cfg, &opts).expect("serves");
        assert_eq!(summary.completed, 2);
        assert_eq!(summary.failed, 0);
        for job in &cfg.jobs {
            let files = JobFiles::new(&dir, &job.name);
            assert!(files.stats.exists(), "{} missing stats", job.name);
            assert!(!files.checkpoint.exists(), "{} checkpoint left", job.name);
            assert!(files.heartbeat.exists(), "{} missing heartbeat", job.name);
        }
        let again = serve(&cfg, &opts).expect("re-serves");
        assert_eq!(again.already_done, 2);
        assert_eq!(again.completed, 0);
        let _ = fs::remove_dir_all(&dir);
    }
}
