//! Criterion microbenchmarks for the NoC simulator: cycles/second under
//! uniform-random traffic, with and without data payloads.

use criterion::{criterion_group, criterion_main, Criterion};
use disco_compress::CacheLine;
use disco_noc::{Mesh, Network, NocConfig, NodeId, PacketClass, Payload};

fn drive(net: &mut Network, data: bool, cycles: u64) -> u64 {
    let nodes = net.topology().tiles();
    let mut delivered = 0u64;
    for t in 0..cycles {
        if t % 4 == 0 {
            for src in 0..nodes {
                let dst = (src * 7 + t as usize + 3) % nodes;
                if dst != src {
                    let payload = if data {
                        Payload::Raw(CacheLine::from_u64_words([t; 8]))
                    } else {
                        Payload::None
                    };
                    let class = if data {
                        PacketClass::Response
                    } else {
                        PacketClass::Request
                    };
                    net.send(NodeId(src), NodeId(dst), class, payload, data, t);
                }
            }
        }
        net.tick();
        for n in 0..nodes {
            delivered += net.take_delivered(NodeId(n)).len() as u64;
        }
    }
    delivered
}

fn bench_request_traffic(c: &mut Criterion) {
    c.bench_function("noc_4x4_request_traffic_1k_cycles", |b| {
        b.iter(|| {
            let mut net = Network::new(Mesh::new(4, 4), NocConfig::default());
            std::hint::black_box(drive(&mut net, false, 1_000))
        })
    });
}

fn bench_response_traffic(c: &mut Criterion) {
    c.bench_function("noc_4x4_response_traffic_1k_cycles", |b| {
        b.iter(|| {
            let mut net = Network::new(Mesh::new(4, 4), NocConfig::default());
            std::hint::black_box(drive(&mut net, true, 1_000))
        })
    });
}

fn bench_large_mesh(c: &mut Criterion) {
    c.bench_function("noc_8x8_response_traffic_500_cycles", |b| {
        b.iter(|| {
            let mut net = Network::new(Mesh::new(8, 8), NocConfig::default());
            std::hint::black_box(drive(&mut net, true, 500))
        })
    });
}

criterion_group!(
    benches,
    bench_request_traffic,
    bench_response_traffic,
    bench_large_mesh
);
criterion_main!(benches);
