//! Criterion macrobenchmarks: full-system simulation throughput per
//! placement (how much wall time one Fig. 5 cell costs).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use disco_core::{CompressionPlacement, SimBuilder};
use disco_workloads::Benchmark;

fn bench_placements(c: &mut Criterion) {
    let mut group = c.benchmark_group("system_ferret_1k");
    group.sample_size(10);
    for placement in CompressionPlacement::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(placement.name()),
            &placement,
            |b, &placement| {
                b.iter(|| {
                    SimBuilder::new()
                        .mesh(4, 4)
                        .placement(placement)
                        .benchmark(Benchmark::Ferret)
                        .trace_len(1_000)
                        .seed(3)
                        .run()
                        .expect("run")
                })
            },
        );
    }
    group.finish();
}

fn bench_codecs_under_disco(c: &mut Criterion) {
    let mut group = c.benchmark_group("system_disco_codecs");
    group.sample_size(10);
    for scheme in [
        disco_compress::SchemeKind::Delta,
        disco_compress::SchemeKind::Fpc,
        disco_compress::SchemeKind::Sc2,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(scheme.name()),
            &scheme,
            |b, &scheme| {
                b.iter(|| {
                    SimBuilder::new()
                        .mesh(4, 4)
                        .placement(CompressionPlacement::Disco)
                        .scheme(scheme)
                        .benchmark(Benchmark::X264)
                        .trace_len(1_000)
                        .seed(3)
                        .run()
                        .expect("run")
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_placements, bench_codecs_under_disco);
criterion_main!(benches);
