//! Criterion microbenchmarks for the compression codecs (backs Table 1's
//! latency column with real software throughput numbers).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use disco_compress::scheme::Compressor;
use disco_compress::{CacheLine, Codec, SchemeKind, LINE_BYTES};
use disco_workloads::{Benchmark, ValueModel};

fn corpus() -> Vec<CacheLine> {
    let model = ValueModel::new(Benchmark::Ferret.profile().value, 7);
    (0..256u64).map(|a| model.line(a, 0)).collect()
}

fn bench_compress(c: &mut Criterion) {
    let lines = corpus();
    let mut group = c.benchmark_group("compress");
    group.throughput(Throughput::Bytes((lines.len() * LINE_BYTES) as u64));
    for kind in SchemeKind::ALL {
        let codec = if kind == SchemeKind::Sc2 {
            Codec::Sc2(disco_compress::sc2::Sc2Codec::train(&lines))
        } else {
            Codec::from_kind(kind)
        };
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.name()),
            &codec,
            |b, codec| {
                b.iter(|| {
                    let mut total = 0usize;
                    for line in &lines {
                        total += codec.compress(std::hint::black_box(line)).size_bytes();
                    }
                    total
                })
            },
        );
    }
    group.finish();
}

fn bench_decompress(c: &mut Criterion) {
    let lines = corpus();
    let mut group = c.benchmark_group("decompress");
    group.throughput(Throughput::Bytes((lines.len() * LINE_BYTES) as u64));
    for kind in SchemeKind::ALL {
        let codec = if kind == SchemeKind::Sc2 {
            Codec::Sc2(disco_compress::sc2::Sc2Codec::train(&lines))
        } else {
            Codec::from_kind(kind)
        };
        let encoded: Vec<_> = lines.iter().map(|l| codec.compress(l)).collect();
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.name()),
            &codec,
            |b, codec| {
                b.iter(|| {
                    for enc in &encoded {
                        std::hint::black_box(codec.decompress(std::hint::black_box(enc)).unwrap());
                    }
                })
            },
        );
    }
    group.finish();
}

fn bench_incremental_delta(c: &mut Criterion) {
    let lines = corpus();
    c.bench_function("incremental_delta_fragments", |b| {
        b.iter(|| {
            for line in &lines {
                let flits = line.u64_words();
                let mut inc = disco_compress::delta::IncrementalDelta::new();
                inc.push_flits(&flits[..2]);
                inc.push_flits(&flits[2..5]);
                inc.push_flits(&flits[5..]);
                std::hint::black_box(inc.finish());
            }
        })
    });
}

criterion_group!(
    benches,
    bench_compress,
    bench_decompress,
    bench_incremental_delta
);
criterion_main!(benches);
