//! End-to-end `disco-serve` contract: kill the server mid-queue and a
//! rerun of the same command line resumes from checkpoints and produces
//! final per-job stats byte-identical to an uninterrupted run.
//!
//! The "kill" is the `--max-chunks` budget — a deterministic stand-in
//! for SIGKILL that stops workers at a chunk boundary, exactly where a
//! real kill would leave the newest on-disk checkpoint.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

const BIN: &str = env!("CARGO_BIN_EXE_disco-serve");

fn queue_json() -> String {
    // Small grid, but enough cycles that every job spans several
    // checkpoint chunks.
    r#"{
        "checkpoint_every": 300,
        "jobs": [
            {"name": "bs-disco", "mesh": 2, "placement": "disco",
             "benchmark": "blackscholes", "trace_len": 250, "seed": 11},
            {"name": "sw-base", "mesh": 2, "placement": "baseline",
             "benchmark": "swaptions", "trace_len": 250, "seed": 12},
            {"name": "dd-cc", "mesh": 2, "placement": "cc",
             "benchmark": "dedup", "trace_len": 250, "seed": 13}
        ]
    }"#
    .to_string()
}

struct Dirs {
    root: PathBuf,
}

impl Dirs {
    fn new(label: &str) -> Self {
        let root =
            std::env::temp_dir().join(format!("disco-serve-it-{label}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        fs::create_dir_all(&root).expect("temp dir");
        Dirs { root }
    }

    fn queue(&self) -> PathBuf {
        let path = self.root.join("jobs.json");
        fs::write(&path, queue_json()).expect("queue file");
        path
    }

    fn out(&self, which: &str) -> PathBuf {
        self.root.join(which)
    }
}

impl Drop for Dirs {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.root);
    }
}

fn run_serve(queue: &Path, out: &Path, extra: &[&str]) -> std::process::Output {
    Command::new(BIN)
        .arg("--queue")
        .arg(queue)
        .arg("--out")
        .arg(out)
        .args(extra)
        .output()
        .expect("disco-serve runs")
}

fn stats_of(dir: &Path, name: &str) -> Vec<u8> {
    fs::read(dir.join(format!("{name}.stats")))
        .unwrap_or_else(|e| panic!("{name}.stats in {}: {e}", dir.display()))
}

const JOBS: [&str; 3] = ["bs-disco", "sw-base", "dd-cc"];

#[test]
fn killed_and_resumed_queue_matches_uninterrupted_run() {
    let dirs = Dirs::new("resume");
    let queue = dirs.queue();

    // Uninterrupted baseline, serial.
    let baseline_dir = dirs.out("baseline");
    let out = run_serve(&queue, &baseline_dir, &[]);
    assert!(out.status.success(), "baseline: {out:?}");
    let baseline: Vec<Vec<u8>> = JOBS.iter().map(|j| stats_of(&baseline_dir, j)).collect();

    // "Killed" run: a two-chunk budget stops the server long before the
    // queue drains, leaving checkpoints behind.
    let resumed_dir = dirs.out("resumed");
    let killed = run_serve(&queue, &resumed_dir, &["--max-chunks", "2"]);
    assert_eq!(
        killed.status.code(),
        Some(3),
        "chunk-budget stop exits 3: {killed:?}"
    );
    let unfinished = JOBS
        .iter()
        .filter(|j| !resumed_dir.join(format!("{j}.stats")).exists())
        .count();
    assert!(
        unfinished > 0,
        "budget of 2 chunks must interrupt the queue"
    );
    let checkpoints = JOBS
        .iter()
        .filter(|j| resumed_dir.join(format!("{j}.ckpt")).exists())
        .count();
    assert_eq!(
        checkpoints, unfinished,
        "every interrupted job leaves a checkpoint"
    );

    // Same command line again, no budget: resumes and finishes.
    let resumed = run_serve(&queue, &resumed_dir, &[]);
    assert!(resumed.status.success(), "resume: {resumed:?}");
    let stdout = String::from_utf8_lossy(&resumed.stdout);
    assert!(
        stdout.contains("resumed"),
        "summary mentions resumes: {stdout}"
    );

    for (job, expected) in JOBS.iter().zip(&baseline) {
        let got = stats_of(&resumed_dir, job);
        assert_eq!(
            &got, expected,
            "{job}: resumed stats differ from uninterrupted run"
        );
        assert!(
            !resumed_dir.join(format!("{job}.ckpt")).exists(),
            "{job}: checkpoint lingers after completion"
        );
        let beats =
            fs::read_to_string(resumed_dir.join(format!("{job}.jsonl"))).expect("heartbeat stream");
        assert!(beats
            .lines()
            .all(|l| l.starts_with('{') && l.ends_with('}')));
        assert!(beats.contains("\"event\":\"completed\""));
    }

    // A third run is a no-op: everything already done.
    let idem = run_serve(&queue, &resumed_dir, &[]);
    assert!(idem.status.success());
    assert!(String::from_utf8_lossy(&idem.stdout).contains("3 already done"));
}

#[test]
fn parallel_workers_match_serial_stats() {
    let dirs = Dirs::new("threads");
    let queue = dirs.queue();
    let serial_dir = dirs.out("serial");
    let parallel_dir = dirs.out("parallel");
    assert!(run_serve(&queue, &serial_dir, &[]).status.success());
    assert!(run_serve(&queue, &parallel_dir, &["--threads", "3"])
        .status
        .success());
    for job in JOBS {
        assert_eq!(
            stats_of(&serial_dir, job),
            stats_of(&parallel_dir, job),
            "{job}: thread fan-out changed the stats"
        );
    }
}

#[test]
fn cancel_marker_stops_a_job_with_its_checkpoint_intact() {
    let dirs = Dirs::new("cancel");
    let queue = dirs.queue();
    let out_dir = dirs.out("out");
    fs::create_dir_all(&out_dir).expect("out dir");
    fs::write(out_dir.join("sw-base.cancel"), b"").expect("cancel marker");

    let first = run_serve(&queue, &out_dir, &[]);
    // Cancelled is not a failure and not an interruption.
    assert!(first.status.success(), "{first:?}");
    assert!(
        !out_dir.join("sw-base.stats").exists(),
        "cancelled job finished"
    );
    assert!(
        out_dir.join("sw-base.ckpt").exists(),
        "cancel must keep the checkpoint"
    );
    assert!(
        out_dir.join("bs-disco.stats").exists(),
        "other jobs unaffected"
    );

    // Lift the cancel; the job resumes from its checkpoint and finishes.
    fs::remove_file(out_dir.join("sw-base.cancel")).expect("lift cancel");
    let second = run_serve(&queue, &out_dir, &[]);
    assert!(second.status.success(), "{second:?}");
    assert!(out_dir.join("sw-base.stats").exists());
}

#[test]
fn validate_only_checks_the_queue_without_simulating() {
    let dirs = Dirs::new("validate");
    let queue = dirs.queue();
    let out_dir = dirs.out("out");
    let out = run_serve(&queue, &out_dir, &["--validate-only"]);
    assert!(out.status.success(), "{out:?}");
    assert!(String::from_utf8_lossy(&out.stdout).contains("queue ok: 3 jobs"));
    // Nothing simulated, nothing written.
    assert!(!out_dir.join("bs-disco.stats").exists());

    let bad = dirs.root.join("bad.json");
    fs::write(&bad, r#"{"jobs": [{"name": "x"}]}"#).expect("bad queue");
    let out = run_serve(&bad, &out_dir, &["--validate-only"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("cols"));
}
