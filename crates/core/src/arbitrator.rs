//! The DISCO arbitrator: packet filter + confidence counter (Fig. 3).
//!
//! Switch/VC-allocation losers are candidate packets; the confidence
//! counter estimates how long each will keep idling from the credit
//! signals (local `credit_out`, downstream `credit_in`) and, for
//! decompression, the remaining hop count (`RC_Hop`) — and only packets
//! whose confidence clears the thresholds `CC_th` / `CD_th` enter the
//! compressor, avoiding "hasty decisions" that would stall a packet the
//! switch is about to serve (§3.2 step 2).

/// Tunable DISCO parameters. The paper trains γ, α, β and the thresholds
/// offline from NoC traces and then fixes them; these defaults are tuned
/// the same way on our synthetic traces, and `disco-bench`'s
/// `ablation_confidence` binary sweeps them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiscoParams {
    /// Compression threshold `CC_th` (Eq. 1).
    pub cc_threshold: f64,
    /// Decompression threshold `CD_th` (Eq. 2).
    pub cd_threshold: f64,
    /// Local-pressure coefficient γ for compression (Eq. 1).
    pub gamma: f64,
    /// Local-pressure coefficient α for decompression (Eq. 2).
    pub alpha: f64,
    /// Distance coefficient β for decompression (Eq. 2): penalizes early
    /// decompression far from the destination.
    pub beta: f64,
    /// Flits the compressor datapath consumes per cycle once committed
    /// (separate-flit compression rate, §3.3-A).
    pub fragment_rate: usize,
    /// Non-blocking de/compression (§3.2 step 3): during the initial
    /// latency window the shadow packet stays schedulable and a grant
    /// aborts the operation. When `false`, the VC is locked for the whole
    /// operation (the ablation baseline).
    pub non_blocking: bool,
    /// Online congestion-aware threshold adaptation. The paper keeps the
    /// thresholds "deterministic for simplicity" but notes they depend on
    /// the congestion condition; with this extension enabled, each
    /// arbitrator nudges its effective thresholds every
    /// [`DiscoParams::epoch_cycles`]: up when the abort rate shows hasty
    /// decisions, down when congestion is high but the engine sits idle.
    pub adaptive: bool,
    /// Adaptation epoch length in cycles.
    pub epoch_cycles: u64,
    /// Compressor engines per router (the paper's router has one; more
    /// engines buy in-network coverage with proportional §4.3 area).
    pub engines_per_router: usize,
}

impl Default for DiscoParams {
    fn default() -> Self {
        DiscoParams {
            cc_threshold: 0.5,
            cd_threshold: 0.5,
            gamma: 0.5,
            alpha: 0.5,
            beta: 1.5,
            fragment_rate: 2,
            non_blocking: true,
            adaptive: false,
            epoch_cycles: 1_024,
            engines_per_router: 1,
        }
    }
}

/// The congestion signals of one candidate packet.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pressure {
    /// Occupied slots in the packet's own input VC (the complement of the
    /// `credit_out` this router reports upstream): local contention.
    pub local_occupancy: usize,
    /// Occupied slots downstream on the packet's RC-computed output port
    /// (buffer depth − `credit_in`): remote contention.
    pub remote_occupancy: usize,
    /// Hops remaining to the destination (`RC_Hop`).
    pub hops_remaining: usize,
}

impl DiscoParams {
    /// Eq. (1): confidence that an *uncompressed* candidate will idle long
    /// enough to hide compression.
    pub fn compression_confidence(&self, p: &Pressure) -> f64 {
        p.remote_occupancy as f64 + self.gamma * p.local_occupancy as f64
    }

    /// Eq. (2): confidence for a *compressed* candidate, discounted by the
    /// distance still to travel (early decompression wastes the traffic
    /// reduction).
    pub fn decompression_confidence(&self, p: &Pressure) -> f64 {
        p.remote_occupancy as f64 + self.alpha * p.local_occupancy as f64
            - self.beta * p.hops_remaining as f64
    }

    /// Should this uncompressed candidate be sent to the compressor?
    pub fn should_compress(&self, p: &Pressure) -> bool {
        self.compression_confidence(p) > self.cc_threshold
    }

    /// Should this compressed candidate be sent to the decompressor?
    pub fn should_decompress(&self, p: &Pressure) -> bool {
        self.decompression_confidence(p) > self.cd_threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(local: usize, remote: usize, hops: usize) -> Pressure {
        Pressure {
            local_occupancy: local,
            remote_occupancy: remote,
            hops_remaining: hops,
        }
    }

    #[test]
    fn idle_network_never_compresses() {
        let params = DiscoParams::default();
        assert!(!params.should_compress(&p(1, 0, 3)));
        assert!(!params.should_decompress(&p(1, 0, 3)));
    }

    #[test]
    fn congestion_triggers_compression() {
        let params = DiscoParams::default();
        assert!(params.should_compress(&p(6, 6, 3)));
        // Remote pressure alone can suffice.
        assert!(params.should_compress(&p(0, 3, 3)));
    }

    #[test]
    fn early_decompression_suppressed_by_distance() {
        let params = DiscoParams::default();
        let near = p(4, 4, 0);
        let far = p(4, 4, 5);
        assert!(params.should_decompress(&near));
        assert!(
            !params.should_decompress(&far),
            "β·RC_Hop must veto early decompression"
        );
    }

    #[test]
    fn confidence_is_monotone_in_pressure() {
        let params = DiscoParams::default();
        let base = params.compression_confidence(&p(2, 2, 3));
        assert!(params.compression_confidence(&p(3, 2, 3)) > base);
        assert!(params.compression_confidence(&p(2, 3, 3)) > base);
    }

    #[test]
    fn thresholds_are_tunable() {
        let strict = DiscoParams {
            cc_threshold: 100.0,
            ..DiscoParams::default()
        };
        assert!(!strict.should_compress(&p(8, 8, 0)));
        let eager = DiscoParams {
            cc_threshold: -1.0,
            ..DiscoParams::default()
        };
        assert!(eager.should_compress(&p(0, 0, 0)));
    }
}

disco_snapshot::snap_fields!(DiscoParams {
    cc_threshold,
    cd_threshold,
    gamma,
    alpha,
    beta,
    fragment_rate,
    non_blocking,
    adaptive,
    epoch_cycles,
    engines_per_router,
});
