//! Where de/compression hardware sits — the configurations §4.1 compares.

use std::fmt;

/// The compression placements evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CompressionPlacement {
    /// No compression anywhere (the Fig. 7 energy normalization basis).
    Baseline,
    /// Compressed LLC storage and compressed response traffic with *zero*
    /// de/compression latency — the idealized upper bound the Fig. 5/6/8
    /// latencies are normalized to.
    Ideal,
    /// **CC**: a de/compression unit in every cache bank controller; all
    /// traffic travels uncompressed.
    CacheOnly,
    /// **CNC**: CC plus a packet de/compressor in every network
    /// interface, as in NoΔ (paper ref. \[9\]) — two-level compression whose latencies
    /// add up.
    CacheAndNi,
    /// **DISCO**: the unified in-network compressor (this paper).
    Disco,
}

impl CompressionPlacement {
    /// All placements in evaluation order.
    pub const ALL: [CompressionPlacement; 5] = [
        CompressionPlacement::Baseline,
        CompressionPlacement::Ideal,
        CompressionPlacement::CacheOnly,
        CompressionPlacement::CacheAndNi,
        CompressionPlacement::Disco,
    ];

    /// Short name as used in the figures.
    pub fn name(self) -> &'static str {
        match self {
            CompressionPlacement::Baseline => "Baseline",
            CompressionPlacement::Ideal => "Ideal",
            CompressionPlacement::CacheOnly => "CC",
            CompressionPlacement::CacheAndNi => "CNC",
            CompressionPlacement::Disco => "DISCO",
        }
    }

    /// Does the LLC store lines compressed (segmented data array)?
    pub fn compressed_storage(self) -> bool {
        !matches!(self, CompressionPlacement::Baseline)
    }

    /// Do data payloads travel compressed on the NoC?
    pub fn compressed_traffic(self) -> bool {
        matches!(
            self,
            CompressionPlacement::Ideal
                | CompressionPlacement::CacheAndNi
                | CompressionPlacement::Disco
        )
    }

    /// Is any codec latency charged (Ideal and Baseline charge none)?
    pub fn charges_latency(self) -> bool {
        matches!(
            self,
            CompressionPlacement::CacheOnly
                | CompressionPlacement::CacheAndNi
                | CompressionPlacement::Disco
        )
    }

    /// Number of de/compression hardware sites on an `n`-tile CMP (for
    /// leakage accounting): CC has one per bank, CNC one per bank plus
    /// one per NI, DISCO one per router.
    pub fn compressor_sites(self, tiles: usize) -> u64 {
        match self {
            CompressionPlacement::Baseline => 0,
            CompressionPlacement::Ideal => 0,
            CompressionPlacement::CacheOnly => tiles as u64,
            CompressionPlacement::CacheAndNi => 2 * tiles as u64,
            CompressionPlacement::Disco => tiles as u64,
        }
    }
}

impl fmt::Display for CompressionPlacement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl disco_snapshot::Snap for CompressionPlacement {
    fn snap(&self, w: &mut disco_snapshot::Writer) {
        let tag = CompressionPlacement::ALL
            .iter()
            .position(|p| p == self)
            .expect("ALL covers every placement") as u8;
        w.put(&tag);
    }
    fn restore(r: &mut disco_snapshot::Reader<'_>) -> Result<Self, disco_snapshot::SnapError> {
        let tag: u8 = r.take()?;
        CompressionPlacement::ALL
            .get(tag as usize)
            .copied()
            .ok_or_else(|| disco_snapshot::malformed(format!("CompressionPlacement tag {tag}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storage_and_traffic_matrix() {
        use CompressionPlacement::*;
        assert!(!Baseline.compressed_storage());
        assert!(Ideal.compressed_storage() && Ideal.compressed_traffic());
        assert!(CacheOnly.compressed_storage() && !CacheOnly.compressed_traffic());
        assert!(CacheAndNi.compressed_traffic());
        assert!(Disco.compressed_traffic());
        assert!(!Baseline.charges_latency() && !Ideal.charges_latency());
    }

    #[test]
    fn cnc_doubles_sites() {
        use CompressionPlacement::*;
        assert_eq!(
            CacheAndNi.compressor_sites(16),
            2 * CacheOnly.compressor_sites(16)
        );
        assert_eq!(Disco.compressor_sites(16), 16);
        assert_eq!(Baseline.compressor_sites(16), 0);
    }
}
