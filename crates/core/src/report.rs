//! Simulation results: the measurements the paper's figures plot.

use crate::engine::DiscoStats;
use crate::histogram::LatencyHistogram;
use crate::placement::CompressionPlacement;
use disco_cache::coherence::DirStats;
use disco_cache::{BankStats, L1Stats};
use disco_compress::{CompressionStats, SchemeKind};
use disco_energy::{EnergyBreakdown, EnergyCounts, EnergyModel, EnergyReport};
use disco_noc::NetworkStats;

/// Trace capture attached to a report when the run opted into tracing
/// (see [`SimBuilder::capture_trace`](crate::SimBuilder::capture_trace)).
#[cfg(feature = "trace")]
#[derive(Debug, Clone)]
pub struct TraceCapture {
    /// Events emitted over the whole run.
    pub events: u64,
    /// Events the ring buffer dropped (always 0 here: the harness drains
    /// the ring every tick, so the capture is lossless).
    pub dropped: u64,
    /// Per-packet latency decomposition and its aggregates.
    pub provenance: disco_trace::ProvenanceReport,
    /// Raw cycle-stamped records, kept only when
    /// [`SimBuilder::retain_trace_records`](crate::SimBuilder::retain_trace_records)
    /// asked for them; feed these to [`disco_trace::export`].
    pub records: Vec<disco_trace::Record>,
}

/// Everything measured by one simulation run.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// The placement simulated.
    pub placement: CompressionPlacement,
    /// The codec used.
    pub scheme: SchemeKind,
    /// Cycles simulated until the trace drained.
    pub cycles: u64,
    /// Completed L1 demand misses (primary misses).
    pub demand_misses: u64,
    /// Sum over demand misses of issue-to-fill latency, including
    /// off-chip DRAM service time for LLC misses.
    pub total_miss_latency: u64,
    /// Sum over demand misses of the *on-chip* portion of the latency
    /// (DRAM service time excluded) — the "NUCA data access latency" of
    /// §4.2: NoC delay + bank access + codec delays.
    pub total_onchip_latency: u64,
    /// Distribution of per-miss on-chip latencies (power-of-two
    /// buckets; use for p50/p90/p99 tail analysis).
    pub latency_histogram: LatencyHistogram,
    /// Aggregated L1 counters over all tiles.
    pub l1: L1Stats,
    /// Aggregated NUCA bank counters.
    pub banks: BankStats,
    /// Aggregated MOESI directory counters over all home banks.
    pub directory: DirStats,
    /// Network counters.
    pub network: NetworkStats,
    /// DRAM counters.
    pub dram: disco_cache::dram::DramStats,
    /// Compression statistics over every line compressed anywhere.
    pub compression: CompressionStats,
    /// DISCO-layer counters (None for other placements).
    pub disco: Option<DiscoStats>,
    /// Raw energy event counts.
    pub energy_counts: EnergyCounts,
    /// Evaluated energy breakdown.
    pub energy: EnergyBreakdown,
    /// Fault-injection ledger (None unless the run armed a fault plan
    /// via [`SimBuilder::faults`](crate::SimBuilder::faults)).
    #[cfg(feature = "faults")]
    pub faults: Option<disco_faults::FaultStats>,
    /// Trace capture and latency provenance (None unless the run opted
    /// in via the builder).
    #[cfg(feature = "trace")]
    pub trace: Option<TraceCapture>,
}

impl SimReport {
    /// Mean end-to-end latency per L1 miss (DRAM included), in cycles.
    pub fn avg_access_latency(&self) -> f64 {
        if self.demand_misses == 0 {
            return 0.0;
        }
        self.total_miss_latency as f64 / self.demand_misses as f64
    }

    /// Mean **on-chip** data access latency per L1 miss — the Fig. 5/6/8
    /// metric: NUCA + NoC + codec cycles, off-chip DRAM service excluded.
    pub fn avg_onchip_latency(&self) -> f64 {
        if self.demand_misses == 0 {
            return 0.0;
        }
        self.total_onchip_latency as f64 / self.demand_misses as f64
    }

    /// Total memory-subsystem (NoC + NUCA) energy in picojoules.
    pub fn total_energy_pj(&self) -> f64 {
        self.energy.total_pj()
    }

    /// Re-evaluates energy with a custom model.
    pub fn energy_with(&self, model: &EnergyModel) -> EnergyBreakdown {
        model.evaluate(&self.energy_counts)
    }

    /// The run's energy accounting as one self-describing record —
    /// what served/checkpointed jobs and the DSE journal carry.
    pub fn energy_report(&self) -> EnergyReport {
        EnergyReport {
            counts: self.energy_counts,
            breakdown: self.energy,
        }
    }

    /// Writes the report as a flat `key = value` stats file (gem5-style),
    /// convenient for diffing runs and for downstream tooling. A `&mut`
    /// reference works as the writer.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn write_stats<W: std::io::Write>(&self, mut w: W) -> std::io::Result<()> {
        writeln!(w, "config.placement = {}", self.placement.name())?;
        writeln!(w, "config.scheme = {}", self.scheme.name())?;
        writeln!(w, "sim.cycles = {}", self.cycles)?;
        writeln!(w, "core.demand_misses = {}", self.demand_misses)?;
        writeln!(
            w,
            "core.avg_access_latency = {:.4}",
            self.avg_access_latency()
        )?;
        writeln!(
            w,
            "core.avg_onchip_latency = {:.4}",
            self.avg_onchip_latency()
        )?;
        writeln!(
            w,
            "core.onchip_latency_p50 = {:.1}",
            self.latency_histogram.percentile(0.5)
        )?;
        writeln!(
            w,
            "core.onchip_latency_p90 = {:.1}",
            self.latency_histogram.percentile(0.9)
        )?;
        writeln!(
            w,
            "core.onchip_latency_p99 = {:.1}",
            self.latency_histogram.percentile(0.99)
        )?;
        writeln!(w, "l1.hits = {}", self.l1.hits)?;
        writeln!(w, "l1.misses = {}", self.l1.misses)?;
        writeln!(w, "l1.miss_rate = {:.4}", self.l1.miss_rate())?;
        writeln!(w, "l1.writebacks = {}", self.l1.writebacks)?;
        writeln!(w, "l1.invalidations = {}", self.l1.invalidations)?;
        writeln!(w, "llc.hits = {}", self.banks.hits)?;
        writeln!(w, "llc.misses = {}", self.banks.misses)?;
        writeln!(w, "llc.miss_rate = {:.4}", self.banks.miss_rate())?;
        writeln!(w, "llc.evictions = {}", self.banks.evictions)?;
        writeln!(w, "llc.bytes_accessed = {}", self.banks.bytes_accessed)?;
        writeln!(w, "noc.cycles = {}", self.network.cycles)?;
        writeln!(
            w,
            "noc.packets_injected = {}",
            self.network.packets_injected
        )?;
        writeln!(
            w,
            "noc.packets_delivered = {}",
            self.network.packets_delivered
        )?;
        writeln!(w, "noc.link_flits = {}", self.network.link_flits)?;
        writeln!(
            w,
            "noc.express_link_flits = {}",
            self.network.express_link_flits
        )?;
        writeln!(w, "noc.buffer_writes = {}", self.network.buffer_writes)?;
        writeln!(w, "noc.buffer_reads = {}", self.network.buffer_reads)?;
        writeln!(w, "noc.crossbar_flits = {}", self.network.crossbar_flits)?;
        writeln!(w, "noc.arbitrations = {}", self.network.arbitrations)?;
        writeln!(
            w,
            "noc.avg_packet_latency = {:.4}",
            self.network.avg_packet_latency()
        )?;
        writeln!(
            w,
            "noc.total_packet_latency = {}",
            self.network.total_packet_latency
        )?;
        writeln!(w, "noc.avg_hops = {:.4}", self.network.avg_hops())?;
        writeln!(w, "noc.total_hops = {}", self.network.total_hops)?;
        writeln!(w, "noc.sa_losses = {}", self.network.sa_losses)?;
        writeln!(
            w,
            "noc.routing_violations = {}",
            self.network.routing_violations
        )?;
        let [dreq, dresp, dcoh] = self.network.delivered_by_class;
        writeln!(w, "noc.delivered_by_class = {dreq} {dresp} {dcoh}")?;
        let [lreq, lresp, lcoh] = self.network.latency_by_class;
        writeln!(w, "noc.latency_by_class = {lreq} {lresp} {lcoh}")?;
        writeln!(w, "dram.reads = {}", self.dram.reads)?;
        writeln!(w, "dram.writes = {}", self.dram.writes)?;
        writeln!(w, "dram.row_hit_rate = {:.4}", self.dram.row_hit_rate())?;
        writeln!(w, "compression.lines = {}", self.compression.lines())?;
        writeln!(
            w,
            "compression.mean_ratio = {:.4}",
            self.compression.mean_ratio()
        )?;
        let er = self.energy_report();
        writeln!(w, "energy.total_pj = {:.1}", er.total_pj())?;
        writeln!(
            w,
            "energy.noc_dynamic_pj = {:.1}",
            er.breakdown.noc_dynamic_pj
        )?;
        writeln!(
            w,
            "energy.noc_static_pj = {:.1}",
            er.breakdown.noc_static_pj
        )?;
        writeln!(
            w,
            "energy.cache_dynamic_pj = {:.1}",
            er.breakdown.cache_dynamic_pj
        )?;
        writeln!(
            w,
            "energy.cache_static_pj = {:.1}",
            er.breakdown.cache_static_pj
        )?;
        writeln!(
            w,
            "energy.compressor_pj = {:.1}",
            er.breakdown.compressor_pj
        )?;
        writeln!(w, "energy.pj_per_cycle = {:.4}", er.pj_per_cycle())?;
        writeln!(w, "energy.routers = {}", er.counts.routers)?;
        writeln!(
            w,
            "energy.compressor_sites = {}",
            er.counts.compressor_sites
        )?;
        writeln!(w, "energy.bank_accesses = {}", er.counts.bank_accesses)?;
        writeln!(w, "energy.bank_bytes = {}", er.counts.bank_bytes)?;
        writeln!(w, "energy.express_flits = {}", er.counts.express_flits)?;
        if let Some(d) = &self.disco {
            writeln!(w, "disco.started = {}", d.started)?;
            writeln!(w, "disco.compressions = {}", d.compressions)?;
            writeln!(w, "disco.queue_compressions = {}", d.queue_compressions)?;
            writeln!(w, "disco.decompressions = {}", d.decompressions)?;
            writeln!(w, "disco.aborts = {}", d.aborts)?;
            writeln!(w, "disco.incompressible = {}", d.incompressible)?;
            writeln!(w, "disco.growth_stalls = {}", d.growth_stalls)?;
            writeln!(w, "disco.low_confidence = {}", d.low_confidence)?;
            writeln!(w, "disco.flits_saved = {}", d.flits_saved)?;
        }
        // Fault keys appear only when the run armed an active plan, so
        // golden stats are identical across feature legs.
        #[cfg(feature = "faults")]
        if let Some(f) = &self.faults {
            writeln!(w, "faults.injected = {}", f.injected)?;
            writeln!(w, "faults.detected = {}", f.detected)?;
            writeln!(w, "faults.recovered = {}", f.recovered)?;
            writeln!(w, "faults.unrecoverable = {}", f.unrecoverable)?;
            writeln!(w, "faults.retries = {}", f.retries)?;
            writeln!(w, "faults.fallback_deliveries = {}", f.fallback_deliveries)?;
            writeln!(w, "faults.undetected = {}", f.undetected)?;
            writeln!(w, "faults.link_drops = {}", f.link_drops)?;
            writeln!(w, "faults.payload_bit_flips = {}", f.payload_bit_flips)?;
            writeln!(w, "faults.codec_corruptions = {}", f.codec_corruptions)?;
            writeln!(w, "faults.port_stall_cycles = {}", f.port_stall_cycles)?;
            writeln!(w, "faults.dram_stall_cycles = {}", f.dram_stall_cycles)?;
        }
        // Provenance keys appear only when the run captured a trace, so
        // golden stats are identical across feature legs.
        #[cfg(feature = "trace")]
        if let Some(t) = &self.trace {
            let p = &t.provenance.totals;
            writeln!(w, "trace.events = {}", t.events)?;
            writeln!(w, "trace.dropped = {}", t.dropped)?;
            writeln!(w, "provenance.packets = {}", p.packets)?;
            writeln!(w, "provenance.incomplete = {}", p.incomplete)?;
            writeln!(w, "provenance.latency_cycles = {}", p.latency_cycles)?;
            writeln!(w, "provenance.protocol_cycles = {}", p.protocol_cycles)?;
            writeln!(
                w,
                "provenance.serialization_cycles = {}",
                p.serialization_cycles
            )?;
            writeln!(w, "provenance.link_cycles = {}", p.link_cycles)?;
            writeln!(w, "provenance.queuing_cycles = {}", p.queuing_cycles)?;
            writeln!(w, "provenance.codec_cycles = {}", p.codec_cycles)?;
            writeln!(
                w,
                "provenance.codec_hidden_cycles = {}",
                p.codec_hidden_cycles
            )?;
            writeln!(
                w,
                "provenance.codec_exposed_cycles = {}",
                p.codec_exposed_cycles
            )?;
            writeln!(
                w,
                "provenance.endpoint_codec_cycles = {}",
                p.endpoint_codec_cycles
            )?;
            writeln!(
                w,
                "provenance.hidden_coverage = {:.4}",
                t.provenance.hidden_coverage()
            )?;
            writeln!(w, "provenance.exact = {}", t.provenance.exact)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::{CompressionPlacement, SimBuilder};
    use disco_workloads::Benchmark;

    #[test]
    fn stats_file_is_complete_and_parsable() {
        let report = SimBuilder::new()
            .mesh(2, 2)
            .placement(CompressionPlacement::Disco)
            .benchmark(Benchmark::Swaptions)
            .trace_len(200)
            .seed(4)
            .run()
            .expect("drains");
        let mut buf = Vec::new();
        report.write_stats(&mut buf).expect("in-memory write");
        let text = String::from_utf8(buf).expect("utf8");
        for key in [
            "config.placement = DISCO",
            "sim.cycles = ",
            "core.avg_onchip_latency = ",
            "llc.miss_rate = ",
            "dram.row_hit_rate = ",
            "disco.compressions = ",
        ] {
            assert!(
                text.contains(key),
                "missing {key} in:
{text}"
            );
        }
        // Every line parses as `key = value`.
        for line in text.lines() {
            let (k, v) = line.split_once(" = ").expect("key = value");
            assert!(!k.is_empty() && !v.is_empty());
        }
    }

    #[test]
    fn baseline_stats_omit_disco_section() {
        let report = SimBuilder::new()
            .mesh(2, 2)
            .placement(CompressionPlacement::Baseline)
            .benchmark(Benchmark::Swaptions)
            .trace_len(100)
            .seed(4)
            .run()
            .expect("drains");
        let mut buf = Vec::new();
        report.write_stats(&mut buf).expect("in-memory write");
        let text = String::from_utf8(buf).expect("utf8");
        assert!(!text.contains("disco."));
    }
}
