#![warn(missing_docs)]

//! DISCO: a DIStributed in-network data COmpressor for energy-efficient
//! chip multi-processors — the paper's primary contribution (Wang et al.,
//! DAC 2016), plus the baselines it is evaluated against and the
//! full-system simulator tying every substrate together.
//!
//! # What DISCO is
//!
//! Cache compression adds de/compression latency to the cache access
//! path; NoC compression adds it at the network interfaces. DISCO merges
//! one compressor into each NoC router and uses the *queuing time* of
//! packets that lose virtual-channel or switch allocation to hide that
//! latency (§3.2):
//!
//! - [`arbitrator::DiscoParams`] — the confidence counter (Fig. 3,
//!   Eqs. 1–2) that picks which idling packet to de/compress from the
//!   credit signals and the remaining hop count.
//! - [`engine::DiscoLayer`] — one compressor engine per router: shadow
//!   packets, non-blocking abort, fragment-wise separate-flit compression
//!   (§3.3-A), credit-correct buffer reshaping.
//! - [`placement::CompressionPlacement`] — DISCO and its §4.1
//!   comparisons: Baseline, Ideal, CC (cache-only), CNC (cache + NI).
//! - [`system::SimBuilder`] / [`system::System`] — the trace-driven CMP:
//!   cores + L1s + MSHRs, NUCA banks + MOESI directories, corner memory
//!   controllers, all over the `disco-noc` mesh.
//!
//! # Quickstart
//!
//! ```
//! use disco_core::{CompressionPlacement, SimBuilder};
//! use disco_workloads::Benchmark;
//!
//! # fn main() -> Result<(), disco_core::SimError> {
//! let disco = SimBuilder::new()
//!     .mesh(2, 2)
//!     .placement(CompressionPlacement::Disco)
//!     .benchmark(Benchmark::Swaptions)
//!     .trace_len(200)
//!     .run()?;
//! println!("DISCO: {:.1} cycles/miss", disco.avg_access_latency());
//! # Ok(())
//! # }
//! ```

pub mod arbitrator;
pub mod engine;
pub mod histogram;
pub mod placement;
pub mod protocol;
pub mod report;
pub mod system;
pub mod training;

pub use arbitrator::{DiscoParams, Pressure};
pub use engine::{DiscoLayer, DiscoStats};
pub use histogram::LatencyHistogram;
pub use placement::CompressionPlacement;
pub use report::SimReport;
#[cfg(feature = "trace")]
pub use report::TraceCapture;
pub use system::{feature_fingerprint, SimBuilder, SimError, System};
