//! Protocol messages carried in NoC packet tags.
//!
//! The system layer encodes `(operation, requester, line)` into the 64-bit
//! packet tag; handlers at banks, cores, and memory controllers decode it
//! to drive the MOESI protocol of §3.3-C.

use disco_noc::PacketClass;

/// Message operations between tiles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// Core → home bank: read the line (Request class).
    ReadReq,
    /// Core → home bank: read with intent to write (Request class).
    WriteReq,
    /// Bank/owner → core: the requested data (Response class).
    DataToCore,
    /// Core → home bank: dirty L1 eviction (Response class).
    Writeback,
    /// Bank → core: invalidate your copy (Coherence class).
    Invalidate,
    /// Core → bank: invalidation acknowledged (Coherence class).
    InvalAck,
    /// Bank → owner core: forward the read to the dirty owner
    /// (Coherence class).
    FwdRead,
    /// Bank → owner core: forward the write; owner surrenders the line
    /// (Coherence class).
    FwdWrite,
    /// Bank → memory controller: fetch from DRAM (Request class).
    MemRead,
    /// Memory controller → bank: the DRAM fill (Response class).
    MemFill,
    /// Bank → memory controller: evicted dirty line to DRAM
    /// (Response class).
    MemWriteback,
}

impl Op {
    /// Every message operation, in tag-code order. Static analyses
    /// (`disco-verify`) iterate this to prove handler exhaustiveness.
    pub const ALL: [Op; 11] = [
        Op::ReadReq,
        Op::WriteReq,
        Op::DataToCore,
        Op::Writeback,
        Op::Invalidate,
        Op::InvalAck,
        Op::FwdRead,
        Op::FwdWrite,
        Op::MemRead,
        Op::MemFill,
        Op::MemWriteback,
    ];

    fn code(self) -> u64 {
        Op::ALL
            .iter()
            .position(|&o| o == self)
            .expect("op is in ALL") as u64
    }

    fn from_code(code: u64) -> Option<Op> {
        Op::ALL.get(code as usize).copied()
    }

    /// Ops whose payload must be *raw* when it reaches its destination:
    /// data entering an MSHR/core and data entering DRAM (main memory
    /// cannot hold compressed lines — the misalignment argument of §1).
    /// These are DISCO's in-network *decompression* targets.
    pub fn wants_raw_at_destination(self) -> bool {
        matches!(self, Op::DataToCore | Op::MemWriteback)
    }

    /// The virtual-network class this operation travels on. The mapping
    /// is total and pure — every injection site derives its class from
    /// the op, so a message can never ride the wrong virtual network.
    /// `disco-verify`'s protocol pass composes this with the per-class
    /// CDG results to argue message-dependency deadlock freedom.
    pub fn class(self) -> PacketClass {
        match self {
            Op::ReadReq | Op::WriteReq | Op::MemRead => PacketClass::Request,
            Op::DataToCore | Op::Writeback | Op::MemFill | Op::MemWriteback => {
                PacketClass::Response
            }
            Op::Invalidate | Op::InvalAck | Op::FwdRead | Op::FwdWrite => PacketClass::Coherence,
        }
    }

    /// Ops whose packets are latency-critical (block a core's MSHR):
    /// demand fills to cores and DRAM fills to banks.
    pub fn is_critical(self) -> bool {
        matches!(self, Op::DataToCore | Op::MemFill)
    }
}

/// A decoded protocol message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Msg {
    /// What to do.
    pub op: Op,
    /// The core on whose behalf this transaction runs.
    pub requester: usize,
    /// The 64 B line concerned.
    pub line: u64,
}

impl Msg {
    /// Builds a message.
    pub fn new(op: Op, requester: usize, line: u64) -> Self {
        Msg {
            op,
            requester,
            line,
        }
    }

    /// Packs into a packet tag.
    ///
    /// # Panics
    ///
    /// Panics if `requester ≥ 256` or the line exceeds 52 bits (a 2^58
    /// byte address space — far beyond Table 2's 4 GB memory).
    pub fn encode(self) -> u64 {
        assert!(self.requester < 256, "requester must fit 8 bits");
        assert!(self.line < (1 << 52), "line must fit 52 bits");
        (self.line << 12) | ((self.requester as u64) << 4) | self.op.code()
    }

    /// Unpacks from a packet tag.
    ///
    /// # Panics
    ///
    /// Panics if the low tag bits do not name a valid [`Op`]; use
    /// [`Msg::try_decode`] for tags from untrusted sources.
    pub fn decode(tag: u64) -> Msg {
        match Msg::try_decode(tag) {
            Some(msg) => msg,
            None => panic!("tag {tag:#x} does not carry a valid op"),
        }
    }

    /// Unpacks from a packet tag, rejecting invalid op codes.
    pub fn try_decode(tag: u64) -> Option<Msg> {
        let op = Op::from_code(tag & 0xf)?;
        Some(Msg {
            op,
            requester: ((tag >> 4) & 0xff) as usize,
            line: tag >> 12,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_ops() {
        for op in Op::ALL {
            for requester in [0usize, 7, 255] {
                for line in [0u64, 1, 123_456_789, (1 << 52) - 1] {
                    let m = Msg::new(op, requester, line);
                    assert_eq!(Msg::decode(m.encode()), m);
                }
            }
        }
    }

    #[test]
    fn decompression_targets() {
        assert!(Op::DataToCore.wants_raw_at_destination());
        assert!(Op::MemWriteback.wants_raw_at_destination());
        assert!(!Op::Writeback.wants_raw_at_destination());
        assert!(!Op::MemFill.wants_raw_at_destination());
    }

    #[test]
    #[should_panic(expected = "8 bits")]
    fn oversized_requester_rejected() {
        let _ = Msg::new(Op::ReadReq, 256, 0).encode();
    }

    #[test]
    fn data_carriers_ride_the_response_network() {
        // Decompression targets and critical fills are all data-bearing,
        // so they must travel the Response (data) virtual network.
        for op in Op::ALL {
            if op.wants_raw_at_destination() || op.is_critical() {
                assert_eq!(op.class(), PacketClass::Response, "{op:?}");
            }
        }
    }
}
