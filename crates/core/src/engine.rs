//! The per-router DISCO compressor engine and the layer that drives one
//! engine per router each cycle (§3.2 steps 1–3).
//!
//! Every cycle, after the routers finish allocation, the layer:
//!
//! 1. collects each router's VC/switch-allocation **losers** (idling
//!    packets),
//! 2. runs the **arbitrator**'s confidence counter over them and picks at
//!    most one packet for the router's single engine,
//! 3. runs the engine: an initial latency window models the codec
//!    pipeline — during it the shadow packet remains schedulable
//!    (**non-blocking**, §3.2 step 3) and a switch grant aborts the
//!    operation; after commit the VC is locked, raw flits are consumed
//!    fragment-wise as they arrive (**separate-flit compression**,
//!    §3.3-A), shadow flits are replaced by compressed flits, and the
//!    freed buffer space is returned upstream as credits.
//!
//! Decompression targets packets whose payload must be raw at the
//! destination (core fills, DRAM writebacks) and is vetoed far from the
//! destination by the `β·RC_Hop` term.

use crate::arbitrator::{DiscoParams, Pressure};
use crate::protocol::Msg;
use disco_compress::scheme::Compressor;
use disco_compress::{CacheLine, Codec, CompressedLine};
use disco_noc::routing::remaining_hops;
use disco_noc::{Network, NodeId, PacketId, Payload, FLIT_BYTES};

/// Counters for the DISCO layer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DiscoStats {
    /// Candidate packets that cleared the confidence threshold and
    /// entered an engine.
    pub started: u64,
    /// Completed in-network compressions.
    pub compressions: u64,
    /// Completed in-network decompressions.
    pub decompressions: u64,
    /// Operations aborted because the switch granted the shadow packet
    /// during the latency window (non-blocking mode working as intended).
    pub aborts: u64,
    /// Compression attempts on incompressible lines.
    pub incompressible: u64,
    /// Decompressions abandoned because the buffer could not absorb the
    /// growth.
    pub growth_stalls: u64,
    /// Candidates rejected by the confidence counter.
    pub low_confidence: u64,
    /// Flits removed from packets by in-network compression (traffic
    /// saved downstream of the compression point).
    pub flits_saved: u64,
    /// Compressions performed on packets still waiting in the NI
    /// injection queue (idle before even entering the router).
    pub queue_compressions: u64,
}

/// One router's engine.
#[derive(Debug, Clone)]
enum Engine {
    Idle,
    /// One-shot compression of a packet that is entirely resident (the
    /// common case; also covers packets queued *behind* the VC's front
    /// packet, which cannot be scheduled and thus compress risk-free).
    CompressingWhole {
        port: usize,
        vc: usize,
        packet: PacketId,
        cycles_left: u64,
        result: CompressedLine,
    },
    /// Separate-flit (streaming) compression of the front packet while
    /// its trailing flits are still arriving (§3.3-A). The shadow flits
    /// stay schedulable the whole time (locking a VC that waits for
    /// upstream flits could deadlock against another locked VC); a switch
    /// grant aborts the operation and the packet continues uncompressed.
    Compressing {
        port: usize,
        vc: usize,
        packet: PacketId,
        latency_left: u64,
        committed: bool,
        consumed: usize,
        prefix_flits: usize,
        /// Cycles since the last fragment was consumed (progress guard).
        idle_cycles: u64,
        result: CompressedLine,
    },
    /// Compression of a whole packet still waiting in the NI injection
    /// queue: no flits exist yet, so completion is a pure payload swap.
    CompressingQueued {
        /// The tile whose NI queue holds the packet (distinct from the
        /// engine's router only on the concentrated mesh).
        tile: usize,
        vc: usize,
        packet: PacketId,
        cycles_left: u64,
        result: CompressedLine,
    },
    Decompressing {
        port: usize,
        vc: usize,
        packet: PacketId,
        latency_left: u64,
        line: CacheLine,
    },
}

impl Engine {
    /// The packet an active engine is working on.
    fn target(&self) -> Option<PacketId> {
        match self {
            Engine::Idle => None,
            Engine::CompressingWhole { packet, .. }
            | Engine::Compressing { packet, .. }
            | Engine::CompressingQueued { packet, .. }
            | Engine::Decompressing { packet, .. } => Some(*packet),
        }
    }
}

/// How a started engine will operate on its packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// One-shot compression of a fully resident packet.
    Whole,
    /// Separate-flit streaming compression of the front packet.
    Stream,
    /// Whole-packet decompression near the destination.
    Decomp,
    /// Compression of a packet still in the NI injection queue.
    Queued,
}

/// A de/compression start decided by the pure scan phase and applied by
/// [`DiscoLayer::commit_start`]. `port` is `usize::MAX` for
/// [`Mode::Queued`] (the packet has no input port yet).
#[derive(Debug, Clone, Copy)]
struct StartAction {
    slot: usize,
    port: usize,
    vc: usize,
    packet: PacketId,
    mode: Mode,
}

/// Everything the scan phase decided for one node.
#[derive(Debug, Clone, Default)]
struct NodeScan {
    starts: Vec<StartAction>,
    /// Idle engine slots that saw candidates but rejected all of them.
    low_confidence: u64,
}

/// One shard's reusable scan arena: the per-node scan results for the
/// shard's contiguous node span plus the busy-packet working list. Like
/// the NoC's compute slots, allocations reach their high-water mark
/// once and are reused every cycle; the `Mutex` is uncontended (shards
/// are disjoint) and exists only to hand the slot to a pool worker
/// safely.
#[derive(Debug, Default)]
struct ScanSlot {
    /// One scan per node in this shard's span, in node order.
    scans: Vec<NodeScan>,
    /// Packets already claimed by engines or earlier slots of the node
    /// under scan.
    busy: Vec<PacketId>,
}

/// The DISCO in-network compression layer: engines per router plus the
/// shared arbitrator parameters and codec.
#[derive(Debug)]
pub struct DiscoLayer {
    params: DiscoParams,
    codec: Codec,
    engines: Vec<Vec<Engine>>,
    stats: DiscoStats,
    /// Completed de/compressions per router, for locating where in the
    /// mesh the mechanism works (hotspot heatmaps).
    per_node_ops: Vec<u64>,
    /// Effective thresholds (equal to the configured ones unless
    /// `params.adaptive`).
    cc_eff: f64,
    cd_eff: f64,
    epoch_started: u64,
    epoch_stats: DiscoStats,
    cycle: u64,
    /// Per-shard scan arenas, sized lazily to the network's shard count
    /// and taken out of `self` during each tick's scan + commit.
    scan_slots: Vec<std::sync::Mutex<ScanSlot>>,
}

impl DiscoLayer {
    /// Builds the layer for an `nodes`-router mesh.
    pub fn new(params: DiscoParams, codec: Codec, nodes: usize) -> Self {
        DiscoLayer {
            params,
            codec,
            engines: vec![vec![Engine::Idle; params.engines_per_router.max(1)]; nodes],
            per_node_ops: vec![0; nodes],
            stats: DiscoStats::default(),
            cc_eff: params.cc_threshold,
            cd_eff: params.cd_threshold,
            epoch_started: 0,
            epoch_stats: DiscoStats::default(),
            cycle: 0,
            scan_slots: Vec::new(),
        }
    }

    /// The effective (possibly adapted) thresholds `(CC_th, CD_th)`.
    pub fn effective_thresholds(&self) -> (f64, f64) {
        (self.cc_eff, self.cd_eff)
    }

    /// One adaptation step: hasty decisions (high abort share) raise the
    /// thresholds; an idle engine raises nothing and congestion pressure
    /// lowers them back toward the configured base.
    fn adapt(&mut self) {
        let e = {
            let cur = self.stats;
            let prev = self.epoch_stats;
            DiscoStats {
                started: cur.started - prev.started,
                compressions: cur.compressions - prev.compressions,
                decompressions: cur.decompressions - prev.decompressions,
                aborts: cur.aborts - prev.aborts,
                incompressible: cur.incompressible - prev.incompressible,
                growth_stalls: cur.growth_stalls - prev.growth_stalls,
                low_confidence: cur.low_confidence - prev.low_confidence,
                flits_saved: cur.flits_saved - prev.flits_saved,
                queue_compressions: cur.queue_compressions - prev.queue_compressions,
            }
        };
        self.epoch_stats = self.stats;
        let base_cc = self.params.cc_threshold;
        let base_cd = self.params.cd_threshold;
        if e.started >= 8 && e.aborts * 2 > e.started {
            // Hasty: more than half the starts were scheduled away.
            self.cc_eff = (self.cc_eff + 0.5).min(base_cc + 4.0);
            self.cd_eff = (self.cd_eff + 0.5).min(base_cd + 4.0);
        } else if e.low_confidence > e.started * 4 {
            // Plenty of rejected candidates and few mistakes: loosen.
            self.cc_eff = (self.cc_eff - 0.25).max(base_cc - 1.0);
            self.cd_eff = (self.cd_eff - 0.25).max(base_cd - 1.0);
        } else {
            // Drift back to the trained baseline.
            self.cc_eff += (base_cc - self.cc_eff) * 0.25;
            self.cd_eff += (base_cd - self.cd_eff) * 0.25;
        }
    }

    /// Counters so far.
    pub fn stats(&self) -> &DiscoStats {
        &self.stats
    }

    /// The arbitrator parameters.
    pub fn params(&self) -> &DiscoParams {
        &self.params
    }

    /// Completed de/compressions per router (mesh heatmap).
    pub fn per_node_ops(&self) -> &[u64] {
        &self.per_node_ops
    }

    /// Runs every router's engine for one cycle. Call after
    /// [`Network::tick`] so the cycle's allocation losers are fresh.
    ///
    /// Mirrors the NoC's compute → commit split: engine *progress*
    /// ([`step_engine`](Self::step_engine)) mutates shared state and runs
    /// serially in node order; the candidate *scan* is a pure function of
    /// the resulting network state and parallelizes across nodes; the
    /// *commit* applies the chosen starts in node order. Results are
    /// therefore identical for any shard count.
    pub fn tick(&mut self, net: &mut Network) {
        self.cycle += 1;
        if self.params.adaptive && self.cycle - self.epoch_started >= self.params.epoch_cycles {
            self.epoch_started = self.cycle;
            self.adapt();
        }
        for node in 0..self.engines.len() {
            for slot in 0..self.engines[node].len() {
                self.step_engine(net, node, slot);
            }
        }
        // Detach the arenas so the scan can borrow `self` immutably and
        // the slots mutably at the same time (mirrors `Network::tick`).
        if self.scan_slots.len() != net.compute_shards() {
            self.scan_slots
                .resize_with(net.compute_shards(), Default::default);
        }
        let mut slots = std::mem::take(&mut self.scan_slots);
        self.compute_scans(net, &mut slots);
        // Commit in node order: shard slots hold contiguous node spans in
        // shard order, so a running counter walks nodes exactly `0..n`.
        let mut node = 0;
        for slot in slots.iter_mut() {
            let slot = match slot.get_mut() {
                Ok(slot) => slot,
                Err(poisoned) => poisoned.into_inner(),
            };
            for scan in &slot.scans {
                self.stats.low_confidence += scan.low_confidence;
                for &action in &scan.starts {
                    self.commit_start(net, node, action);
                }
                node += 1;
            }
        }
        debug_assert_eq!(node, self.engines.len(), "scan slots must tile the nodes");
        self.scan_slots = slots;
    }

    /// Scan phase: fills one [`NodeScan`] per node into the shard slots,
    /// spans in node order within each slot.
    fn compute_scans(&self, net: &Network, slots: &mut [std::sync::Mutex<ScanSlot>]) {
        #[cfg(feature = "parallel")]
        if net.compute_shards() > 1 {
            self.compute_scans_sharded(net, slots);
            return;
        }
        let slot = match slots[0].get_mut() {
            Ok(slot) => slot,
            Err(poisoned) => poisoned.into_inner(),
        };
        slot.scans
            .resize_with(self.engines.len(), NodeScan::default);
        for node in 0..self.engines.len() {
            let ScanSlot { scans, busy } = &mut *slot;
            self.scan_node_into(net, node, busy, &mut scans[node]);
        }
    }

    /// Fans [`scan_node_into`](Self::scan_node_into) out over the
    /// network's persistent worker pool, shard `s` scanning the node
    /// span [`Network::shard_span`]`(s)` into slot `s` — the same
    /// decomposition and worker set as the NoC compute phase, so a
    /// shard's scan arena stays warm in the same worker's cache.
    #[cfg(feature = "parallel")]
    fn compute_scans_sharded(&self, net: &Network, slots: &mut [std::sync::Mutex<ScanSlot>]) {
        let slots: &[std::sync::Mutex<ScanSlot>] = slots;
        net.run_sharded(&|shard| {
            let span = net.shard_span(shard);
            // Uncontended: worker `shard` is the only thread touching
            // slot `shard` during a run.
            let mut slot = match slots[shard].lock() {
                Ok(slot) => slot,
                Err(poisoned) => poisoned.into_inner(),
            };
            let ScanSlot { scans, busy } = &mut *slot;
            scans.resize_with(span.len(), NodeScan::default);
            for (k, node) in span.enumerate() {
                self.scan_node_into(net, node, busy, &mut scans[k]);
            }
        });
    }

    /// Pure per-node scan: decides which packets this node's idle engine
    /// slots would start on, without touching any state. Packets claimed
    /// by earlier slots in the same scan count as busy for later ones,
    /// exactly as the serial start loop saw them. `busy` and `scan` are
    /// reusable arenas; both are cleared here.
    fn scan_node_into(
        &self,
        net: &Network,
        node: usize,
        busy: &mut Vec<PacketId>,
        scan: &mut NodeScan,
    ) {
        scan.starts.clear();
        scan.low_confidence = 0;
        busy.clear();
        busy.extend(self.engines[node].iter().filter_map(Engine::target));
        for slot in 0..self.engines[node].len() {
            if !matches!(self.engines[node][slot], Engine::Idle) {
                continue;
            }
            let (best, saw_candidate) = self.pick_candidate(net, node, busy);
            match best {
                Some((port, vc, packet, mode)) => {
                    busy.push(packet);
                    scan.starts.push(StartAction {
                        slot,
                        port,
                        vc,
                        packet,
                        mode,
                    });
                }
                None if saw_candidate => scan.low_confidence += 1,
                None => {}
            }
        }
    }

    /// Progress an active engine by one cycle.
    fn step_engine(&mut self, net: &mut Network, node: usize, slot: usize) {
        let node_id = NodeId(node);
        match std::mem::replace(&mut self.engines[node][slot], Engine::Idle) {
            Engine::Idle => {}
            Engine::CompressingWhole {
                port,
                vc,
                packet,
                mut cycles_left,
                result,
            } => {
                let vc_ref = net.router(node_id).vc(port, vc);
                // `try_get`: the fault layer may have retired the packet
                // outright (dropped or eaten at ejection), which also
                // reads as "no longer whole here".
                let whole = match net.store().try_get(packet) {
                    Some(pkt) => {
                        let size = pkt.size_flits();
                        vc_ref.resident_of(packet) == size && vc_ref.has_tail_of(packet)
                    }
                    None => false,
                };
                if !whole {
                    // The packet started moving (it reached the front and
                    // the switch granted it): non-blocking abort.
                    self.stats.aborts += 1;
                    disco_trace::emit!(
                        net,
                        disco_trace::Event::CodecEnd {
                            packet: packet.0,
                            node: node as u16,
                            op: disco_trace::codec::COMPRESS,
                            outcome: disco_trace::codec::ABORTED,
                        }
                    );
                    return;
                }
                cycles_left -= 1;
                if cycles_left > 0 {
                    self.engines[node][slot] = Engine::CompressingWhole {
                        port,
                        vc,
                        packet,
                        cycles_left,
                        result,
                    };
                    return;
                }
                if !result.is_compressed() {
                    net.store_mut().get_mut(packet).compressible = false;
                    self.stats.incompressible += 1;
                    disco_trace::emit!(
                        net,
                        disco_trace::Event::CodecEnd {
                            packet: packet.0,
                            node: node as u16,
                            op: disco_trace::codec::COMPRESS,
                            outcome: disco_trace::codec::INCOMPRESSIBLE,
                        }
                    );
                    return;
                }
                // Fault hook: a corrupted compressor output is caught by
                // decompress-and-verify here and the packet falls back to
                // uncompressed delivery (same downstream handling as an
                // incompressible line).
                #[cfg(feature = "faults")]
                let result = match net.fault_codec_output(node_id, packet, result) {
                    Some(r) => r,
                    None => {
                        net.store_mut().get_mut(packet).compressible = false;
                        self.stats.incompressible += 1;
                        disco_trace::emit!(
                            net,
                            disco_trace::Event::CodecEnd {
                                packet: packet.0,
                                node: node as u16,
                                op: disco_trace::codec::COMPRESS,
                                outcome: disco_trace::codec::INCOMPRESSIBLE,
                            }
                        );
                        return;
                    }
                };
                let old_size = net.store().get(packet).size_flits();
                let final_flits = result.size_bytes().div_ceil(FLIT_BYTES).max(1);
                net.store_mut().get_mut(packet).payload = Payload::Compressed(result);
                let ok = net.reshape_resident(node_id, port, vc, packet, final_flits, true);
                debug_assert!(ok, "compression only shrinks");
                self.stats.compressions += 1;
                self.per_node_ops[node] += 1;
                self.stats.flits_saved += (old_size - final_flits) as u64;
                disco_trace::emit!(
                    net,
                    disco_trace::Event::CodecEnd {
                        packet: packet.0,
                        node: node as u16,
                        op: disco_trace::codec::COMPRESS,
                        outcome: disco_trace::codec::DONE,
                    }
                );
            }
            Engine::Compressing {
                port,
                vc,
                packet,
                mut latency_left,
                mut committed,
                mut consumed,
                mut prefix_flits,
                mut idle_cycles,
                result,
            } => {
                let vc_ref = net.router(node_id).vc(port, vc);
                if vc_ref.front_packet() != Some(packet) || !vc_ref.front_is_head() {
                    // The shadow packet was scheduled away: the operation
                    // aborts; the store payload is still raw, so the
                    // packet continues uncompressed (§3.2 step 3).
                    self.stats.aborts += 1;
                    disco_trace::emit!(
                        net,
                        disco_trace::Event::CodecEnd {
                            packet: packet.0,
                            node: node as u16,
                            op: disco_trace::codec::COMPRESS,
                            outcome: disco_trace::codec::ABORTED,
                        }
                    );
                    return;
                }
                if !committed {
                    latency_left = latency_left.saturating_sub(1);
                    if latency_left > 0 {
                        self.engines[node][slot] = Engine::Compressing {
                            port,
                            vc,
                            packet,
                            latency_left,
                            committed,
                            consumed,
                            prefix_flits,
                            idle_cycles,
                            result,
                        };
                        return;
                    }
                    if !result.is_compressed() {
                        // The parallel compressor units found no fitting
                        // encoding: release the shadow packet untouched and
                        // mark it so no downstream engine wastes a slot on
                        // it again (a header "attempted" bit).
                        net.store_mut().get_mut(packet).compressible = false;
                        self.stats.incompressible += 1;
                        disco_trace::emit!(
                            net,
                            disco_trace::Event::CodecEnd {
                                packet: packet.0,
                                node: node as u16,
                                op: disco_trace::codec::COMPRESS,
                                outcome: disco_trace::codec::INCOMPRESSIBLE,
                            }
                        );
                        return;
                    }
                    // Fault hook at the commit decision — before any
                    // resident flit is consumed, so the fallback path is
                    // identical to an incompressible line.
                    #[cfg(feature = "faults")]
                    match net.fault_codec_output(node_id, packet, result.clone()) {
                        Some(_) => {}
                        None => {
                            net.store_mut().get_mut(packet).compressible = false;
                            self.stats.incompressible += 1;
                            disco_trace::emit!(
                                net,
                                disco_trace::Event::CodecEnd {
                                    packet: packet.0,
                                    node: node as u16,
                                    op: disco_trace::codec::COMPRESS,
                                    outcome: disco_trace::codec::INCOMPRESSIBLE,
                                }
                            );
                            return;
                        }
                    }
                    committed = true;
                }
                // Committed: consume resident raw flits fragment-wise. The
                // VC is deliberately NOT locked — waiting for upstream
                // flits while holding a lock could deadlock two engines
                // against each other.
                let (resident, tail_resident) = {
                    let vc_ref = net.router(node_id).vc(port, vc);
                    (vc_ref.resident_of(packet), vc_ref.has_tail_of(packet))
                };
                let raw_in_buffer = resident - prefix_flits;
                let k = raw_in_buffer.min(self.params.fragment_rate);
                if k > 0 {
                    idle_cycles = 0;
                    consumed += k;
                    let total_raw = disco_compress::LINE_BYTES / FLIT_BYTES;
                    let final_bytes = result.size_bytes();
                    let partial_bytes = final_bytes * consumed / total_raw;
                    prefix_flits = partial_bytes.div_ceil(FLIT_BYTES).max(1);
                    let new_len = prefix_flits + (raw_in_buffer - k);
                    if consumed == total_raw {
                        // Final fragment: swap in the compressed payload.
                        let old_size = net.store().get(packet).size_flits();
                        let final_flits = final_bytes.div_ceil(FLIT_BYTES).max(1);
                        net.store_mut().get_mut(packet).payload = Payload::Compressed(result);
                        let ok = net.reshape_resident(node_id, port, vc, packet, final_flits, true);
                        debug_assert!(ok, "compression only shrinks");
                        self.stats.compressions += 1;
                        self.per_node_ops[node] += 1;
                        self.stats.flits_saved += (old_size - final_flits) as u64;
                        disco_trace::emit!(
                            net,
                            disco_trace::Event::CodecEnd {
                                packet: packet.0,
                                node: node as u16,
                                op: disco_trace::codec::COMPRESS,
                                outcome: disco_trace::codec::DONE,
                            }
                        );
                        return;
                    }
                    // Mid-stream reshape: if the packet's tail has already
                    // arrived, the rebuilt segment must keep a tail flit —
                    // otherwise an abort would leave a packet that can
                    // never release its VC downstream.
                    let ok =
                        net.reshape_resident(node_id, port, vc, packet, new_len, tail_resident);
                    debug_assert!(ok, "mid-compression reshape only shrinks");
                } else {
                    // No fragment arrived: give up after a while (the
                    // packet may have been truncated by an upstream abort
                    // and will never deliver 8 raw flits here).
                    idle_cycles += 1;
                    if idle_cycles > 64 {
                        self.stats.aborts += 1;
                        disco_trace::emit!(
                            net,
                            disco_trace::Event::CodecEnd {
                                packet: packet.0,
                                node: node as u16,
                                op: disco_trace::codec::COMPRESS,
                                outcome: disco_trace::codec::ABORTED,
                            }
                        );
                        return;
                    }
                }
                self.engines[node][slot] = Engine::Compressing {
                    port,
                    vc,
                    packet,
                    latency_left,
                    committed,
                    consumed,
                    prefix_flits,
                    idle_cycles,
                    result,
                };
            }
            Engine::CompressingQueued {
                tile,
                vc,
                packet,
                mut cycles_left,
                result,
            } => {
                if !net.inject_backlog(NodeId(tile), vc).contains(&packet) {
                    // Injection started before compression finished.
                    self.stats.aborts += 1;
                    disco_trace::emit!(
                        net,
                        disco_trace::Event::CodecEnd {
                            packet: packet.0,
                            node: node as u16,
                            op: disco_trace::codec::COMPRESS,
                            outcome: disco_trace::codec::ABORTED,
                        }
                    );
                    return;
                }
                cycles_left -= 1;
                if cycles_left > 0 {
                    self.engines[node][slot] = Engine::CompressingQueued {
                        tile,
                        vc,
                        packet,
                        cycles_left,
                        result,
                    };
                    return;
                }
                if !result.is_compressed() {
                    net.store_mut().get_mut(packet).compressible = false;
                    self.stats.incompressible += 1;
                    disco_trace::emit!(
                        net,
                        disco_trace::Event::CodecEnd {
                            packet: packet.0,
                            node: node as u16,
                            op: disco_trace::codec::COMPRESS,
                            outcome: disco_trace::codec::INCOMPRESSIBLE,
                        }
                    );
                    return;
                }
                // Fault hook: see the compressing-whole case above.
                #[cfg(feature = "faults")]
                let result = match net.fault_codec_output(node_id, packet, result) {
                    Some(r) => r,
                    None => {
                        net.store_mut().get_mut(packet).compressible = false;
                        self.stats.incompressible += 1;
                        disco_trace::emit!(
                            net,
                            disco_trace::Event::CodecEnd {
                                packet: packet.0,
                                node: node as u16,
                                op: disco_trace::codec::COMPRESS,
                                outcome: disco_trace::codec::INCOMPRESSIBLE,
                            }
                        );
                        return;
                    }
                };
                let old_size = net.store().get(packet).size_flits();
                let final_flits = result.size_bytes().div_ceil(FLIT_BYTES).max(1);
                net.store_mut().get_mut(packet).payload = Payload::Compressed(result);
                self.stats.compressions += 1;
                self.stats.queue_compressions += 1;
                self.per_node_ops[node] += 1;
                self.stats.flits_saved += (old_size - final_flits) as u64;
                disco_trace::emit!(
                    net,
                    disco_trace::Event::CodecEnd {
                        packet: packet.0,
                        node: node as u16,
                        op: disco_trace::codec::COMPRESS,
                        outcome: disco_trace::codec::DONE,
                    }
                );
            }
            Engine::Decompressing {
                port,
                vc,
                packet,
                mut latency_left,
                line,
            } => {
                let vc_ref = net.router(node_id).vc(port, vc);
                // `try_get`: see the compressing-whole case above.
                let whole = match net.store().try_get(packet) {
                    Some(pkt) => {
                        let size = pkt.size_flits();
                        vc_ref.resident_of(packet) == size && vc_ref.has_tail_of(packet)
                    }
                    None => false,
                };
                if !whole {
                    self.stats.aborts += 1;
                    if !self.params.non_blocking {
                        net.router_mut(node_id).set_locked(port, vc, false);
                    }
                    disco_trace::emit!(
                        net,
                        disco_trace::Event::CodecEnd {
                            packet: packet.0,
                            node: node as u16,
                            op: disco_trace::codec::DECOMPRESS,
                            outcome: disco_trace::codec::ABORTED,
                        }
                    );
                    return;
                }
                latency_left = latency_left.saturating_sub(1);
                if latency_left > 0 {
                    self.engines[node][slot] = Engine::Decompressing {
                        port,
                        vc,
                        packet,
                        latency_left,
                        line,
                    };
                    return;
                }
                let raw_flits = disco_compress::LINE_BYTES / FLIT_BYTES;
                if !net.reshape_resident(node_id, port, vc, packet, raw_flits, true) {
                    // No room to expand: leave the packet compressed; the
                    // NI at the destination will decompress instead.
                    self.stats.growth_stalls += 1;
                    if !self.params.non_blocking {
                        net.router_mut(node_id).set_locked(port, vc, false);
                    }
                    disco_trace::emit!(
                        net,
                        disco_trace::Event::CodecEnd {
                            packet: packet.0,
                            node: node as u16,
                            op: disco_trace::codec::DECOMPRESS,
                            outcome: disco_trace::codec::GROWTH_STALL,
                        }
                    );
                    return;
                }
                {
                    let pkt = net.store_mut().get_mut(packet);
                    pkt.payload = Payload::Raw(line);
                    // A packet decompressed for its destination must not
                    // be picked up again by a downstream compressor.
                    pkt.compressible = false;
                }
                if !self.params.non_blocking {
                    net.router_mut(node_id).set_locked(port, vc, false);
                }
                self.stats.decompressions += 1;
                self.per_node_ops[node] += 1;
                disco_trace::emit!(
                    net,
                    disco_trace::Event::CodecEnd {
                        packet: packet.0,
                        node: node as u16,
                        op: disco_trace::codec::DECOMPRESS,
                        outcome: disco_trace::codec::DONE,
                    }
                );
            }
        }
    }

    /// Step 1 + 2: filter this cycle's losers and pick the best candidate
    /// for one engine slot, if any clears its threshold. Pure — reads the
    /// network, writes nothing. Returns the pick and whether any
    /// candidate was seen at all (for the low-confidence counter).
    ///
    /// Candidates are the compressible data packets resident in a losing
    /// VC's buffer: the front packet (streamed separate-flit if its tail
    /// is still arriving) and any packet queued behind it, which cannot
    /// be scheduled until the front leaves and therefore de/compresses
    /// risk-free — the compressor "copies the packets from input buffer"
    /// (§3.2 step 3), wherever they sit.
    #[allow(clippy::type_complexity)] // a one-shot (pick, saw_candidate) pair
    fn pick_candidate(
        &self,
        net: &Network,
        node: usize,
        busy: &[PacketId],
    ) -> (Option<(usize, usize, PacketId, Mode)>, bool) {
        let node_id = NodeId(node);
        let depth = net.config().buffer_depth;
        let mut best: Option<(f64, usize, usize, PacketId, Mode)> = None;
        let mut saw_candidate = false;
        for &(port, vc) in net.router(node_id).sa_losers() {
            let vc_ref = net.router(node_id).vc(port, vc);
            if vc_ref.is_locked() {
                continue;
            }
            for pid in vc_ref.resident_packets_iter() {
                if busy.contains(&pid) {
                    continue;
                }
                let pkt = net.store().get(pid);
                if !pkt.compressible {
                    continue;
                }
                let msg = Msg::decode(pkt.tag);
                let is_front = vc_ref.front_packet() == Some(pid) && vc_ref.front_is_head();
                let whole = vc_ref.resident_of(pid) == pkt.size_flits() && vc_ref.has_tail_of(pid);
                let remote = depth.saturating_sub(
                    net.downstream_credits(node_id, port, vc)
                        .unwrap_or(depth)
                        .min(depth),
                );
                let pressure = Pressure {
                    local_occupancy: vc_ref.occupancy(),
                    remote_occupancy: remote,
                    // A representative tile of this router: `hops` maps
                    // tiles to routers, so any of the router's tiles
                    // yields the same distance.
                    hops_remaining: remaining_hops(
                        net.topology(),
                        NodeId(node * net.topology().concentration()),
                        pkt.dst,
                    ),
                };
                let candidate = match &pkt.payload {
                    Payload::Raw(_) if whole => {
                        let conf = self.params.compression_confidence(&pressure);
                        Some((conf, conf > self.cc_eff, Mode::Whole))
                    }
                    Payload::Raw(_) if is_front && self.params.non_blocking => {
                        // Streaming waits for upstream fragments, which is
                        // unbounded; only the non-blocking (abortable) mode
                        // may use it.
                        let conf = self.params.compression_confidence(&pressure);
                        Some((conf, conf > self.cc_eff, Mode::Stream))
                    }
                    Payload::Compressed(_) if msg.op.wants_raw_at_destination() && whole => {
                        // Expanding to 8 raw flits must fit the buffer;
                        // skip hopeless candidates instead of stalling the
                        // engine on them.
                        let growth = (disco_compress::LINE_BYTES / FLIT_BYTES)
                            .saturating_sub(pkt.size_flits());
                        if net.router(node_id).free_slots(port, vc) < growth {
                            continue;
                        }
                        let conf = self.params.decompression_confidence(&pressure);
                        Some((conf, conf > self.cd_eff, Mode::Decomp))
                    }
                    _ => None,
                };
                let Some((conf, ok, mode)) = candidate else {
                    continue;
                };
                saw_candidate = true;
                if !ok {
                    continue;
                }
                if best.is_none_or(|(c, ..)| conf > c) {
                    best = Some((conf, port, vc, pid, mode));
                }
            }
        }
        // NI injection backlog: whole packets idling before they even
        // enter the router. Local pressure counts the queue ahead of the
        // packet; remote pressure reads the credits on the packet's first
        // hop (its RC output is known from the deterministic route). The
        // router serves one NI queue per attached tile (more than one
        // only on the concentrated mesh); for a queued pick the
        // StartAction's `port` field carries the tile index.
        let response_vc = disco_noc::PacketClass::Response
            .vc()
            .min(net.config().vcs - 1);
        let concentration = net.topology().concentration();
        for tile in node * concentration..(node + 1) * concentration {
            let tile_id = NodeId(tile);
            let backlog = net.inject_backlog(tile_id, response_vc).iter().copied();
            for (pos, pid) in backlog.take(4).enumerate() {
                if busy.contains(&pid) {
                    continue;
                }
                let pkt = net.store().get(pid);
                if !pkt.compressible || !matches!(pkt.payload, Payload::Raw(_)) {
                    continue;
                }
                let dir = disco_noc::routing::xy_route(net.topology(), node_id, pkt.dst);
                let remote = if net.topology().is_local(dir) {
                    0
                } else {
                    depth.saturating_sub(net.router(node_id).credit_in(dir, response_vc).min(depth))
                };
                let local_port = net.topology().local_port(tile_id).0;
                let pressure = Pressure {
                    local_occupancy: pos
                        + 1
                        + net.router(node_id).local_occupancy(local_port, response_vc),
                    remote_occupancy: remote,
                    hops_remaining: remaining_hops(net.topology(), tile_id, pkt.dst),
                };
                saw_candidate = true;
                if !self.params.should_compress(&pressure) {
                    continue;
                }
                let conf = self.params.compression_confidence(&pressure);
                if best.is_none_or(|(c, ..)| conf > c) {
                    best = Some((conf, tile, response_vc, pid, Mode::Queued));
                }
            }
        }
        let pick = best.map(|(_, port, vc, pid, mode)| (port, vc, pid, mode));
        (pick, saw_candidate)
    }

    /// Commit phase for one start: charge the codec, build the engine,
    /// and (for blocking decompression) take the VC lock. The only
    /// mutation site of the start path.
    fn commit_start(&mut self, net: &mut Network, node: usize, action: StartAction) {
        let StartAction {
            slot,
            port,
            vc,
            packet: pid,
            mode,
        } = action;
        let node_id = NodeId(node);
        debug_assert!(
            matches!(self.engines[node][slot], Engine::Idle),
            "scan only targets idle slots"
        );
        let pkt = net.store().get(pid);
        self.stats.started += 1;
        match mode {
            Mode::Decomp => {
                let Payload::Compressed(c) = &pkt.payload else {
                    unreachable!("checked above")
                };
                let line = match self.codec.decompress(c) {
                    Ok(line) => line,
                    Err(e) => {
                        // An in-flight encoding that fails to decode means
                        // the payload was corrupted after compression;
                        // abort the operation instead of poisoning the
                        // engine.
                        debug_assert!(false, "in-flight encoding invalid: {e:?}");
                        self.stats.aborts += 1;
                        return;
                    }
                };
                let latency = self.codec.decompression_latency(c).max(1);
                if !self.params.non_blocking {
                    net.router_mut(node_id).set_locked(port, vc, true);
                }
                self.engines[node][slot] = Engine::Decompressing {
                    port,
                    vc,
                    packet: pid,
                    latency_left: latency,
                    line,
                };
                disco_trace::emit!(
                    net,
                    disco_trace::Event::CodecStart {
                        packet: pid.0,
                        node: node as u16,
                        op: disco_trace::codec::DECOMPRESS,
                        blocking: !self.params.non_blocking,
                    }
                );
            }
            Mode::Whole => {
                let Payload::Raw(line) = &pkt.payload else {
                    unreachable!("checked above")
                };
                let result = self.codec.compress(line);
                let total_raw = (disco_compress::LINE_BYTES / FLIT_BYTES) as u64;
                let cycles = self.codec.compression_latency().max(1)
                    + total_raw.div_ceil(self.params.fragment_rate.max(1) as u64);
                self.engines[node][slot] = Engine::CompressingWhole {
                    port,
                    vc,
                    packet: pid,
                    cycles_left: cycles,
                    result,
                };
                disco_trace::emit!(
                    net,
                    disco_trace::Event::CodecStart {
                        packet: pid.0,
                        node: node as u16,
                        op: disco_trace::codec::COMPRESS,
                        blocking: false,
                    }
                );
            }
            Mode::Queued => {
                let Payload::Raw(line) = &pkt.payload else {
                    unreachable!("checked above")
                };
                let result = self.codec.compress(line);
                let total_raw = (disco_compress::LINE_BYTES / FLIT_BYTES) as u64;
                let cycles = self.codec.compression_latency().max(1)
                    + total_raw.div_ceil(self.params.fragment_rate.max(1) as u64);
                self.engines[node][slot] = Engine::CompressingQueued {
                    tile: port,
                    vc,
                    packet: pid,
                    cycles_left: cycles,
                    result,
                };
                disco_trace::emit!(
                    net,
                    disco_trace::Event::CodecStart {
                        packet: pid.0,
                        node: node as u16,
                        op: disco_trace::codec::COMPRESS,
                        blocking: false,
                    }
                );
            }
            Mode::Stream => {
                let Payload::Raw(line) = &pkt.payload else {
                    unreachable!("checked above")
                };
                let result = self.codec.compress(line);
                let latency = self.codec.compression_latency().max(1);
                self.engines[node][slot] = Engine::Compressing {
                    port,
                    vc,
                    packet: pid,
                    latency_left: latency,
                    committed: false,
                    consumed: 0,
                    prefix_flits: 0,
                    idle_cycles: 0,
                    result,
                };
                disco_trace::emit!(
                    net,
                    disco_trace::Event::CodecStart {
                        packet: pid.0,
                        node: node as u16,
                        op: disco_trace::codec::COMPRESS,
                        blocking: false,
                    }
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use disco_noc::packet::PacketClass;
    use disco_noc::topology::Mesh;
    use disco_noc::NocConfig;

    /// Two nodes in a row; a congested east link makes node 0's local VC a
    /// persistent SA loser so the engine can work on it.
    fn congested_net() -> Network {
        Network::new(Mesh::new(2, 1), NocConfig::default())
    }

    fn eager_params() -> DiscoParams {
        DiscoParams {
            cc_threshold: -10.0,
            cd_threshold: -100.0,
            beta: 0.0,
            ..DiscoParams::default()
        }
    }

    fn compressible_line() -> CacheLine {
        CacheLine::from_u64_words([10, 11, 12, 13, 14, 15, 16, 17])
    }

    #[test]
    fn compresses_idling_response() {
        let mut net = congested_net();
        let mut layer = DiscoLayer::new(eager_params(), Codec::delta(), 2);
        // Block the east link by filling the downstream VC1 with a parked
        // packet: send one response and lock node 1's west input.
        let msg = Msg::new(crate::protocol::Op::Writeback, 0, 5).encode();
        let p1 = net.send(
            NodeId(0),
            NodeId(1),
            PacketClass::Response,
            Payload::Raw(compressible_line()),
            true,
            msg,
        );
        // A second response queues behind it.
        let msg2 = Msg::new(crate::protocol::Op::Writeback, 0, 6).encode();
        net.send(
            NodeId(0),
            NodeId(1),
            PacketClass::Response,
            Payload::Raw(compressible_line()),
            true,
            msg2,
        );
        // Park node-0's east output by exhausting its credits so the
        // responses idle in the local input VC.
        assert!(net
            .router_mut(NodeId(0))
            .try_take_credits(disco_noc::topology::EAST, 1, 8));
        for _ in 0..60 {
            net.tick();
            layer.tick(&mut net);
        }
        assert!(
            layer.stats().compressions >= 1,
            "stats: {:?}",
            layer.stats()
        );
        // The idling front packet must now be compressed in the store.
        assert!(net.store().get(p1).payload.is_compressed());
        // Release the credits and let everything drain.
        for _ in 0..8 {
            net.router_mut(NodeId(0))
                .return_credit(disco_noc::topology::EAST, 1);
        }
        let mut delivered = Vec::new();
        for _ in 0..200 {
            net.tick();
            layer.tick(&mut net);
            delivered.extend(net.take_delivered(NodeId(1)));
            if delivered.len() == 2 {
                break;
            }
        }
        assert_eq!(delivered.len(), 2, "both packets must still arrive");
        // Compressed payload must decode back to the original line.
        for p in &delivered {
            match &p.payload {
                Payload::Compressed(c) => {
                    let codec = Codec::delta();
                    assert_eq!(codec.decompress(c).unwrap(), compressible_line());
                }
                Payload::Raw(l) => assert_eq!(*l, compressible_line()),
                Payload::None => panic!("response lost its payload"),
            }
        }
    }

    #[test]
    fn decompresses_near_destination() {
        let mut net = congested_net();
        let mut layer = DiscoLayer::new(eager_params(), Codec::delta(), 2);
        let codec = Codec::delta();
        let enc = codec.compress(&compressible_line());
        let msg = Msg::new(crate::protocol::Op::DataToCore, 1, 5).encode();
        let pid = net.send(
            NodeId(0),
            NodeId(1),
            PacketClass::Response,
            Payload::Compressed(enc),
            true,
            msg,
        );
        // Stall it at node 0 (no credits east) so the engine sees it idle.
        assert!(net
            .router_mut(NodeId(0))
            .try_take_credits(disco_noc::topology::EAST, 1, 8));
        for _ in 0..40 {
            net.tick();
            layer.tick(&mut net);
        }
        assert_eq!(
            layer.stats().decompressions,
            1,
            "stats: {:?}",
            layer.stats()
        );
        match &net.store().get(pid).payload {
            Payload::Raw(l) => assert_eq!(*l, compressible_line()),
            other => panic!("expected decompressed payload, got {other:?}"),
        }
        assert_eq!(net.store().get(pid).size_flits(), 8);
    }

    #[test]
    fn low_confidence_blocks_hasty_compression() {
        // A single packet on an idle network: no backlog, no remote
        // pressure — the default thresholds must keep it raw.
        let mut net = congested_net();
        let mut layer = DiscoLayer::new(DiscoParams::default(), Codec::delta(), 2);
        let msg = Msg::new(crate::protocol::Op::Writeback, 0, 5).encode();
        net.send(
            NodeId(0),
            NodeId(1),
            PacketClass::Response,
            Payload::Raw(compressible_line()),
            true,
            msg,
        );
        for _ in 0..100 {
            net.tick();
            layer.tick(&mut net);
            let _ = net.take_delivered(NodeId(1));
        }
        assert_eq!(layer.stats().compressions, 0);
        assert!(net.is_idle());
    }

    #[test]
    fn strict_thresholds_block_even_backlog() {
        let mut net = congested_net();
        let strict = DiscoParams {
            cc_threshold: 1_000.0,
            cd_threshold: 1_000.0,
            ..DiscoParams::default()
        };
        let mut layer = DiscoLayer::new(strict, Codec::delta(), 2);
        for k in 0..6u64 {
            let msg = Msg::new(crate::protocol::Op::Writeback, 0, k).encode();
            net.send(
                NodeId(0),
                NodeId(1),
                PacketClass::Response,
                Payload::Raw(compressible_line()),
                true,
                msg,
            );
        }
        assert!(net
            .router_mut(NodeId(0))
            .try_take_credits(disco_noc::topology::EAST, 1, 8));
        for _ in 0..80 {
            net.tick();
            layer.tick(&mut net);
        }
        assert_eq!(layer.stats().compressions, 0);
        assert!(
            layer.stats().low_confidence > 0,
            "candidates must be seen and rejected"
        );
    }

    #[test]
    fn queue_backlog_is_compressed_under_congestion() {
        let mut net = congested_net();
        let mut layer = DiscoLayer::new(DiscoParams::default(), Codec::delta(), 2);
        // Six responses pile up behind a blocked east link: the ones still
        // in the NI queue are idle whole packets and compress in place.
        let mut ids = Vec::new();
        for k in 0..6u64 {
            let msg = Msg::new(crate::protocol::Op::Writeback, 0, k).encode();
            ids.push(net.send(
                NodeId(0),
                NodeId(1),
                PacketClass::Response,
                Payload::Raw(compressible_line()),
                true,
                msg,
            ));
        }
        assert!(net
            .router_mut(NodeId(0))
            .try_take_credits(disco_noc::topology::EAST, 1, 8));
        for _ in 0..80 {
            net.tick();
            layer.tick(&mut net);
        }
        assert!(
            layer.stats().queue_compressions > 0,
            "stats: {:?}",
            layer.stats()
        );
        let queued_compressed = ids
            .iter()
            .filter(|&&id| net.store().get(id).payload.is_compressed())
            .count();
        assert!(queued_compressed >= 2, "several queued packets must shrink");
    }

    #[test]
    fn adaptive_thresholds_stay_within_bounds() {
        let params = DiscoParams {
            adaptive: true,
            epoch_cycles: 8,
            ..DiscoParams::default()
        };
        let mut net = congested_net();
        let mut layer = DiscoLayer::new(params, Codec::delta(), 2);
        for k in 0..8u64 {
            let msg = Msg::new(crate::protocol::Op::Writeback, 0, k).encode();
            net.send(
                NodeId(0),
                NodeId(1),
                PacketClass::Response,
                Payload::Raw(compressible_line()),
                true,
                msg,
            );
        }
        for _ in 0..600 {
            net.tick();
            layer.tick(&mut net);
            let _ = net.take_delivered(NodeId(1));
            let (cc, cd) = layer.effective_thresholds();
            assert!(cc >= params.cc_threshold - 1.0 && cc <= params.cc_threshold + 4.0);
            assert!(cd >= params.cd_threshold - 1.0 && cd <= params.cd_threshold + 4.0);
        }
    }

    #[test]
    fn streaming_compression_handles_fragmented_arrival() {
        // Force the §3.3-A separate-flit path: flits of one response
        // trickle into a stalled VC one per cycle (wormhole split), so
        // the engine starts with a partial packet and consumes fragments
        // as they arrive.
        let mut net = congested_net();
        let mut layer = DiscoLayer::new(eager_params(), Codec::delta(), 2);
        let line = compressible_line();
        let tag = Msg::new(crate::protocol::Op::Writeback, 0, 3).encode();
        let pid = net.store_mut().create(
            NodeId(0),
            NodeId(1),
            PacketClass::Response,
            Payload::Raw(line),
            true,
            0,
            tag,
        );
        // Stall the east output and hand-deliver flits into the west...
        // rather: the local input VC of node 0, head first.
        assert!(net
            .router_mut(NodeId(0))
            .try_take_credits(disco_noc::topology::EAST, 1, 8));
        let flits = disco_noc::packet::flits_for(pid, 8, 0);
        let local = net.topology().local_port(NodeId(0)).0;
        for (i, f) in flits.into_iter().enumerate() {
            net.router_mut(NodeId(0)).accept(local, 1, f);
            // Several engine cycles between fragment arrivals.
            for _ in 0..3 {
                net.tick();
                layer.tick(&mut net);
            }
            if i == 0 {
                // After the head arrives and idles, the engine must have
                // started (streaming mode, since the tail is absent).
                assert!(layer.stats().started >= 1, "{:?}", layer.stats());
            }
        }
        for _ in 0..30 {
            net.tick();
            layer.tick(&mut net);
        }
        assert_eq!(layer.stats().compressions, 1, "{:?}", layer.stats());
        assert!(net.store().get(pid).payload.is_compressed());
        // Buffer now holds the compressed flits only.
        let vc = net.router(NodeId(0)).vc(local, 1);
        assert_eq!(vc.occupancy(), net.store().get(pid).size_flits());
        assert!(vc.has_tail_of(pid));
    }

    #[test]
    fn static_thresholds_never_move() {
        let mut net = congested_net();
        let mut layer = DiscoLayer::new(DiscoParams::default(), Codec::delta(), 2);
        let msg = Msg::new(crate::protocol::Op::Writeback, 0, 1).encode();
        net.send(
            NodeId(0),
            NodeId(1),
            PacketClass::Response,
            Payload::Raw(compressible_line()),
            true,
            msg,
        );
        for _ in 0..3_000 {
            net.tick();
            layer.tick(&mut net);
            let _ = net.take_delivered(NodeId(1));
        }
        let (cc, cd) = layer.effective_thresholds();
        assert_eq!(cc, DiscoParams::default().cc_threshold);
        assert_eq!(cd, DiscoParams::default().cd_threshold);
    }

    #[test]
    fn incompressible_attempt_counted() {
        let mut net = congested_net();
        let mut layer = DiscoLayer::new(eager_params(), Codec::delta(), 2);
        // xorshift noise: the delta codec cannot compress it.
        let mut bytes = [0u8; 64];
        let mut x = 0x9e3779b97f4a7c15u64;
        for b in bytes.iter_mut() {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            *b = (x >> 32) as u8;
        }
        let noise = CacheLine::from_bytes(bytes);
        let msg = Msg::new(crate::protocol::Op::Writeback, 0, 5).encode();
        net.send(
            NodeId(0),
            NodeId(1),
            PacketClass::Response,
            Payload::Raw(noise),
            true,
            msg,
        );
        assert!(net
            .router_mut(NodeId(0))
            .try_take_credits(disco_noc::topology::EAST, 1, 8));
        for _ in 0..30 {
            net.tick();
            layer.tick(&mut net);
        }
        assert!(
            layer.stats().incompressible >= 1,
            "stats: {:?}",
            layer.stats()
        );
        assert_eq!(layer.stats().compressions, 0);
    }
}

// ---------------------------------------------------------------------------
// Checkpointing (see crates/snapshot/manifest.txt)
// ---------------------------------------------------------------------------

disco_snapshot::snap_fields!(DiscoStats {
    started,
    compressions,
    decompressions,
    aborts,
    incompressible,
    growth_stalls,
    low_confidence,
    flits_saved,
    queue_compressions,
});

impl disco_snapshot::Snap for Engine {
    fn snap(&self, w: &mut disco_snapshot::Writer) {
        match self {
            Engine::Idle => w.put(&0u8),
            Engine::CompressingWhole {
                port,
                vc,
                packet,
                cycles_left,
                result,
            } => {
                w.put(&1u8);
                w.put(port);
                w.put(vc);
                w.put(packet);
                w.put(cycles_left);
                w.put(result);
            }
            Engine::Compressing {
                port,
                vc,
                packet,
                latency_left,
                committed,
                consumed,
                prefix_flits,
                idle_cycles,
                result,
            } => {
                w.put(&2u8);
                w.put(port);
                w.put(vc);
                w.put(packet);
                w.put(latency_left);
                w.put(committed);
                w.put(consumed);
                w.put(prefix_flits);
                w.put(idle_cycles);
                w.put(result);
            }
            Engine::CompressingQueued {
                tile,
                vc,
                packet,
                cycles_left,
                result,
            } => {
                w.put(&3u8);
                w.put(tile);
                w.put(vc);
                w.put(packet);
                w.put(cycles_left);
                w.put(result);
            }
            Engine::Decompressing {
                port,
                vc,
                packet,
                latency_left,
                line,
            } => {
                w.put(&4u8);
                w.put(port);
                w.put(vc);
                w.put(packet);
                w.put(latency_left);
                w.put(line);
            }
        }
    }

    fn restore(r: &mut disco_snapshot::Reader<'_>) -> Result<Self, disco_snapshot::SnapError> {
        Ok(match r.take::<u8>()? {
            0 => Engine::Idle,
            1 => Engine::CompressingWhole {
                port: r.take()?,
                vc: r.take()?,
                packet: r.take()?,
                cycles_left: r.take()?,
                result: r.take()?,
            },
            2 => Engine::Compressing {
                port: r.take()?,
                vc: r.take()?,
                packet: r.take()?,
                latency_left: r.take()?,
                committed: r.take()?,
                consumed: r.take()?,
                prefix_flits: r.take()?,
                idle_cycles: r.take()?,
                result: r.take()?,
            },
            3 => Engine::CompressingQueued {
                tile: r.take()?,
                vc: r.take()?,
                packet: r.take()?,
                cycles_left: r.take()?,
                result: r.take()?,
            },
            4 => Engine::Decompressing {
                port: r.take()?,
                vc: r.take()?,
                packet: r.take()?,
                latency_left: r.take()?,
                line: r.take()?,
            },
            tag => return Err(disco_snapshot::malformed(format!("Engine tag {tag}"))),
        })
    }
}

impl DiscoLayer {
    /// Writes the layer's mutable state: every engine, the arbitrator's
    /// effective thresholds, epoch bookkeeping, and counters. `params`,
    /// the codec, and the per-shard scan arenas are rebuilt from config
    /// on restore.
    pub fn snap_state(&self, w: &mut disco_snapshot::Writer) {
        w.put(&self.engines);
        w.put(&self.stats);
        w.put(&self.per_node_ops);
        w.put(&self.cc_eff);
        w.put(&self.cd_eff);
        w.put(&self.epoch_started);
        w.put(&self.epoch_stats);
        w.put(&self.cycle);
    }

    /// Overlays state written by [`DiscoLayer::snap_state`] onto a layer
    /// freshly built with the same parameters and node count.
    pub fn restore_state(
        &mut self,
        r: &mut disco_snapshot::Reader<'_>,
    ) -> Result<(), disco_snapshot::SnapError> {
        let engines: Vec<Vec<Engine>> = r.take()?;
        if engines.len() != self.engines.len() {
            return Err(disco_snapshot::malformed(format!(
                "{} engine routers in snapshot, {} rebuilt",
                engines.len(),
                self.engines.len()
            )));
        }
        self.engines = engines;
        self.stats = r.take()?;
        self.per_node_ops = r.take()?;
        self.cc_eff = r.take()?;
        self.cd_eff = r.take()?;
        self.epoch_started = r.take()?;
        self.epoch_stats = r.take()?;
        self.cycle = r.take()?;
        Ok(())
    }
}
