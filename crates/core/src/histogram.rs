//! A fixed-footprint latency histogram with power-of-two buckets, for
//! percentile reporting without storing per-miss samples.

/// Number of buckets: bucket `i` holds values in `[2^i, 2^(i+1))`, with
/// bucket 0 holding 0 and 1.
const BUCKETS: usize = 32;

/// Latency distribution summary.
///
/// ```
/// use disco_core::histogram::LatencyHistogram;
///
/// let mut h = LatencyHistogram::new();
/// for v in [10u64, 20, 30, 40, 1000] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 5);
/// assert!(h.percentile(0.5) >= 16.0 && h.percentile(0.5) < 64.0);
/// assert!(h.max() >= 1000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyHistogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    fn bucket_of(value: u64) -> usize {
        ((64 - value.max(1).leading_zeros()) as usize)
            .saturating_sub(1)
            .min(BUCKETS - 1)
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_of(value)] += 1;
        self.count += 1;
        self.sum += value;
        self.max = self.max.max(value);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of all samples.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.sum as f64 / self.count as f64
    }

    /// Largest sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Approximate percentile (`p` in `[0, 1]`): the geometric midpoint of
    /// the bucket containing the p-th sample. Resolution is the bucket
    /// width (a factor of two).
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn percentile(&self, p: f64) -> f64 {
        assert!((0.0..=1.0).contains(&p), "percentile must be in [0, 1]");
        if self.count == 0 {
            return 0.0;
        }
        let target = ((self.count as f64) * p).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                let lo = if i == 0 { 0u64 } else { 1u64 << i };
                let hi = 1u64 << (i + 1);
                return ((lo + hi) / 2) as f64;
            }
        }
        self.max as f64
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_neutral() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.percentile(0.99), 0.0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn buckets_are_powers_of_two() {
        assert_eq!(LatencyHistogram::bucket_of(0), 0);
        assert_eq!(LatencyHistogram::bucket_of(1), 0);
        assert_eq!(LatencyHistogram::bucket_of(2), 1);
        assert_eq!(LatencyHistogram::bucket_of(3), 1);
        assert_eq!(LatencyHistogram::bucket_of(4), 2);
        assert_eq!(LatencyHistogram::bucket_of(1023), 9);
        assert_eq!(LatencyHistogram::bucket_of(1024), 10);
        assert_eq!(LatencyHistogram::bucket_of(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn mean_and_max_are_exact() {
        let mut h = LatencyHistogram::new();
        for v in [1u64, 2, 3, 4, 90] {
            h.record(v);
        }
        assert_eq!(h.mean(), 20.0);
        assert_eq!(h.max(), 90);
    }

    #[test]
    fn percentiles_are_monotone() {
        let mut h = LatencyHistogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let p50 = h.percentile(0.5);
        let p90 = h.percentile(0.9);
        let p99 = h.percentile(0.99);
        assert!(p50 <= p90 && p90 <= p99, "{p50} {p90} {p99}");
        // Within bucket resolution (factor 2) of the exact values.
        assert!((256.0..=1024.0).contains(&p50), "{p50}");
        assert!((512.0..=1536.0).contains(&p99), "{p99}");
    }

    #[test]
    fn merge_adds_distributions() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(10);
        b.record(1000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max(), 1000);
        assert_eq!(a.mean(), 505.0);
    }

    #[test]
    #[should_panic(expected = "percentile")]
    fn out_of_range_percentile_panics() {
        LatencyHistogram::new().percentile(1.5);
    }

    #[test]
    fn sum_stays_exact_past_u32_range() {
        // Regression guard for the accumulator widths: fault-recovery
        // retransmission storms produce per-miss latencies that overflow
        // a u32 running sum long before the run ends. `sum`, `count`,
        // and `max` must all be 64-bit.
        let mut h = LatencyHistogram::new();
        let big = u64::from(u32::MAX) + 7;
        for _ in 0..4 {
            h.record(big);
        }
        assert_eq!(h.mean(), big as f64);
        assert_eq!(h.max(), big);
        let mut doubled = h;
        doubled.merge(&h);
        assert_eq!(doubled.count(), 8);
        assert_eq!(doubled.mean(), big as f64);
    }
}

disco_snapshot::snap_fields!(LatencyHistogram {
    buckets,
    count,
    sum,
    max,
});
