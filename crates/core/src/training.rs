//! Offline training of the arbitrator's empirical parameters.
//!
//! §3.2: "We use the real workload traces from the NoC simulator to
//! train the empirical parameters: local coefficient α and distance
//! coefficient β … the values of `CC_th` and `CD_th` \[are\] also
//! determined based on the experimental observation." This module
//! reproduces that flow: coordinate descent over a parameter grid, each
//! point scored by running the full system on training workloads and
//! taking the geometric-mean on-chip latency.

use crate::arbitrator::DiscoParams;
use crate::placement::CompressionPlacement;
use crate::system::SimBuilder;
use disco_workloads::Benchmark;

/// The candidate values swept per parameter (coordinate descent visits
/// one axis at a time, so cost is the *sum* of the axis lengths times
/// the training workload count, not their product).
#[derive(Debug, Clone)]
pub struct TrainingGrid {
    /// Candidate `CC_th` values.
    pub cc_thresholds: Vec<f64>,
    /// Candidate `CD_th` values.
    pub cd_thresholds: Vec<f64>,
    /// Candidate γ values (Eq. 1 local coefficient).
    pub gammas: Vec<f64>,
    /// Candidate α values (Eq. 2 local coefficient).
    pub alphas: Vec<f64>,
    /// Candidate β values (Eq. 2 distance coefficient).
    pub betas: Vec<f64>,
}

impl Default for TrainingGrid {
    fn default() -> Self {
        TrainingGrid {
            cc_thresholds: vec![0.0, 0.5, 1.0, 2.0, 4.0],
            cd_thresholds: vec![0.0, 0.5, 1.0, 2.0],
            gammas: vec![0.25, 0.5, 1.0],
            alphas: vec![0.25, 0.5, 1.0],
            betas: vec![0.5, 1.0, 1.5, 2.5],
        }
    }
}

/// One evaluated configuration.
#[derive(Debug, Clone, Copy)]
pub struct TrainingPoint {
    /// The parameters evaluated.
    pub params: DiscoParams,
    /// Geometric-mean on-chip latency across the training workloads
    /// (lower is better).
    pub score: f64,
}

/// The outcome of a training run.
#[derive(Debug, Clone)]
pub struct Trained {
    /// Best parameters found.
    pub best: TrainingPoint,
    /// Every configuration evaluated, in visit order.
    pub history: Vec<TrainingPoint>,
}

/// Trains the arbitrator parameters on the given workloads.
///
/// Runs one coordinate-descent pass over [`TrainingGrid`], starting from
/// `DiscoParams::default()`; each point costs one full-system simulation
/// per training benchmark (keep `trace_len` modest).
///
/// # Panics
///
/// Panics if `benchmarks` is empty or any training simulation fails to
/// drain.
pub fn train(
    benchmarks: &[Benchmark],
    trace_len: usize,
    seed: u64,
    grid: &TrainingGrid,
) -> Trained {
    assert!(
        !benchmarks.is_empty(),
        "training needs at least one workload"
    );
    let score_of = |params: DiscoParams| -> f64 {
        let mut log_sum = 0.0;
        for &b in benchmarks {
            let r = SimBuilder::new()
                .mesh(4, 4)
                .placement(CompressionPlacement::Disco)
                .benchmark(b)
                .trace_len(trace_len)
                .disco_params(params)
                .seed(seed)
                .run()
                .unwrap_or_else(|e| panic!("training run {b}: {e}"));
            log_sum += r.avg_onchip_latency().max(1.0).ln();
        }
        (log_sum / benchmarks.len() as f64).exp()
    };

    let mut best = TrainingPoint {
        params: DiscoParams::default(),
        score: f64::INFINITY,
    };
    let mut history = Vec::new();
    best.score = score_of(best.params);
    history.push(best);

    // Coordinate descent: one axis at a time, keeping the best value.
    type Setter = fn(&mut DiscoParams, f64);
    let axes: [(&[f64], Setter); 5] = [
        (&grid.cc_thresholds, |p, v| p.cc_threshold = v),
        (&grid.cd_thresholds, |p, v| p.cd_threshold = v),
        (&grid.gammas, |p, v| p.gamma = v),
        (&grid.alphas, |p, v| p.alpha = v),
        (&grid.betas, |p, v| p.beta = v),
    ];
    for (values, set) in axes {
        for &v in values {
            let mut candidate = best.params;
            set(&mut candidate, v);
            if candidate == best.params {
                continue; // already scored
            }
            let point = TrainingPoint {
                params: candidate,
                score: score_of(candidate),
            };
            history.push(point);
            if point.score < best.score {
                best = point;
            }
        }
    }
    Trained { best, history }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_grid() -> TrainingGrid {
        TrainingGrid {
            cc_thresholds: vec![0.5, 64.0],
            cd_thresholds: vec![0.5],
            gammas: vec![0.5],
            alphas: vec![0.5],
            betas: vec![1.5],
        }
    }

    #[test]
    fn training_explores_and_improves_or_matches() {
        let trained = train(&[Benchmark::Dedup], 600, 3, &tiny_grid());
        assert!(
            trained.history.len() >= 2,
            "must evaluate beyond the default"
        );
        let default_score = trained.history[0].score;
        assert!(trained.best.score <= default_score + 1e-9);
        // The absurd CC_th = 64 (no compression ever) must not win on a
        // congested workload.
        assert!(trained.best.params.cc_threshold < 64.0);
    }

    #[test]
    fn training_is_deterministic() {
        let a = train(&[Benchmark::Swaptions], 300, 5, &tiny_grid());
        let b = train(&[Benchmark::Swaptions], 300, 5, &tiny_grid());
        assert_eq!(a.best.score, b.best.score);
        assert_eq!(a.best.params, b.best.params);
    }

    #[test]
    #[should_panic(expected = "at least one workload")]
    fn empty_benchmarks_rejected() {
        let _ = train(&[], 100, 1, &tiny_grid());
    }
}
