//! The trace-driven full-system CMP simulator: cores with L1s and MSHRs,
//! NUCA banks with MOESI directories, memory controllers at the mesh
//! corners, all communicating over the `disco-noc` mesh — with the
//! compression placement (Baseline / Ideal / CC / CNC / DISCO) deciding
//! where codec latency is charged and in what form lines travel and are
//! stored (§4.1).

use crate::arbitrator::DiscoParams;
use crate::engine::DiscoLayer;
use crate::histogram::LatencyHistogram;
use crate::placement::CompressionPlacement;
use crate::protocol::{Msg, Op};
use crate::report::SimReport;
use disco_cache::addr::LineAddr;
use disco_cache::{
    BankConfig, BankStats, CohAction, Directory, Dram, DramConfig, L1Cache, L1Config, L1Stats,
    MshrFile, MshrOutcome, NucaBank, StoredLine,
};
use disco_compress::scheme::Compressor;
use disco_compress::{CacheLine, Codec, CompressionStats, SchemeKind};
use disco_energy::{EnergyCounts, EnergyModel};
use disco_noc::{Network, NocConfig, NodeId, Packet, PacketClass, Payload, TopologyChoice};
use disco_workloads::{Benchmark, MemAccess, TraceGenerator, ValueModel, WorkloadProfile};
use std::collections::{BTreeMap, HashMap};
use std::error::Error;
use std::fmt;

/// Errors a simulation run can produce.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The run did not drain within the configured cycle budget
    /// (livelock, deadlock, or simply too small a budget).
    DeadlineExceeded {
        /// The configured budget.
        max_cycles: u64,
        /// Accesses still outstanding.
        outstanding: usize,
        /// Packets the NoC watchdog flags as unable to make progress by
        /// themselves (locked or tail-less VCs), plus any flits dropped
        /// at the mesh edge (`routing_violations` — flit conservation
        /// broken). Zero means the budget was simply too small; non-zero
        /// means a flow-control bug.
        suspicious_stalls: usize,
    },
    /// A corrupted payload reached its destination without the NI
    /// checksum catching it (`faults` only). Any occurrence is a bug in
    /// the detection layer, never an acceptable outcome.
    #[cfg(feature = "faults")]
    SilentCorruption {
        /// Deliveries whose payload differed from the pristine copy.
        undetected: u64,
    },
    /// A snapshot stream ended before its decoder finished.
    SnapshotTruncated {
        /// Byte offset at which the read ran past the end.
        offset: usize,
    },
    /// The snapshot's format version differs from this binary's.
    SnapshotVersionMismatch {
        /// Version recorded in the snapshot.
        found: u32,
        /// Version this binary reads/writes.
        expected: u32,
    },
    /// The snapshot was taken by a binary compiled with different
    /// state-affecting cargo features (e.g. `faults` state cannot
    /// restore into a build without it).
    SnapshotFeatureMismatch {
        /// Fingerprint recorded in the snapshot.
        found: u32,
        /// Fingerprint of this binary ([`feature_fingerprint`]).
        expected: u32,
    },
    /// The snapshot bytes are structurally invalid (bad magic, bad enum
    /// tag, lengths inconsistent with the rebuilt structure, trailing
    /// garbage, ...).
    SnapshotCorrupt {
        /// What was being decoded and why it is invalid.
        detail: String,
    },
    /// The snapshot's embedded configuration differs from the requested
    /// one on a run-defining axis (topology, placement, seed, ...), so
    /// restoring it would not resume the same simulation.
    SnapshotConfigMismatch {
        /// The builder axis that differs.
        field: &'static str,
        /// Value recorded in the snapshot.
        snapshot: String,
        /// Value the caller asked to restore into.
        requested: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::DeadlineExceeded {
                max_cycles,
                outstanding,
                suspicious_stalls,
            } => write!(
                f,
                "simulation did not drain within {max_cycles} cycles \
                 ({outstanding} accesses outstanding, {suspicious_stalls} suspicious stalls)"
            ),
            #[cfg(feature = "faults")]
            SimError::SilentCorruption { undetected } => write!(
                f,
                "{undetected} corrupted deliveries escaped fault detection"
            ),
            SimError::SnapshotTruncated { offset } => {
                write!(f, "snapshot truncated: read past end at byte {offset}")
            }
            SimError::SnapshotVersionMismatch { found, expected } => write!(
                f,
                "snapshot format version {found} but this binary reads version {expected}"
            ),
            SimError::SnapshotFeatureMismatch { found, expected } => write!(
                f,
                "snapshot feature fingerprint {found:#04b} but this binary is {expected:#04b} \
                 (rebuild with the same cargo features the snapshot was taken with)"
            ),
            SimError::SnapshotCorrupt { detail } => {
                write!(f, "corrupt snapshot: {detail}")
            }
            SimError::SnapshotConfigMismatch {
                field,
                snapshot,
                requested,
            } => write!(
                f,
                "snapshot was taken with {field} = {snapshot} but the requested \
                 configuration has {field} = {requested}"
            ),
        }
    }
}

impl Error for SimError {}

impl From<disco_snapshot::SnapError> for SimError {
    fn from(e: disco_snapshot::SnapError) -> Self {
        use disco_snapshot::SnapError;
        match e {
            SnapError::Truncated { offset } => SimError::SnapshotTruncated { offset },
            SnapError::BadMagic => SimError::SnapshotCorrupt {
                detail: "not a DISCO snapshot (bad magic)".into(),
            },
            SnapError::VersionMismatch { found, expected } => {
                SimError::SnapshotVersionMismatch { found, expected }
            }
            SnapError::FeatureMismatch { found, expected } => {
                SimError::SnapshotFeatureMismatch { found, expected }
            }
            SnapError::Malformed { detail } => SimError::SnapshotCorrupt { detail },
        }
    }
}

/// Per-core issue width (accesses a core may process per cycle).
const ISSUE_WIDTH: usize = 4;

/// One tile's core-side state.
#[derive(Debug)]
struct Tile {
    l1: L1Cache,
    mshr: MshrFile,
    trace: Vec<MemAccess>,
    pos: usize,
    next_issue_at: u64,
    /// Lines invalidated while their fill was still in flight: the fill
    /// completes the miss (the core consumes the data once) but must not
    /// be cached — the standard fix for the inval/fill race.
    poisoned: std::collections::HashSet<u64>,
}

impl Tile {
    fn done(&self) -> bool {
        self.pos >= self.trace.len() && self.mshr.in_use() == 0
    }
}

/// Deferred work scheduled on the system event queue.
#[derive(Debug, Clone)]
enum Event {
    /// A request reached the bank and the tag/data access finished.
    BankRequest {
        bank: usize,
        line: u64,
        requester: usize,
        write: bool,
    },
    /// Store `stored` into the bank (fill or writeback after codec prep);
    /// optionally respond to the waiters queued on a bank miss.
    BankStore {
        bank: usize,
        line: u64,
        stored: StoredLine,
        dirty: bool,
        writeback_from: Option<usize>,
        respond_waiters: bool,
    },
    /// The fill (after ejection-side decompression, if any) reaches the
    /// core: fill L1, complete the MSHR.
    CoreFill {
        core: usize,
        line: u64,
        data: CacheLine,
    },
    /// Inject a packet; its class, compressibility, and criticality are
    /// all derived from the protocol op in the tag (`Op::class`).
    Send {
        src: usize,
        dst: usize,
        payload: Payload,
        tag: u64,
    },
}

/// Codec operation counters outside the DISCO layer (bank controllers and
/// NIs), for energy accounting.
#[derive(Debug, Clone, Copy, Default)]
struct CodecOps {
    compressions: u64,
    decompressions: u64,
}

/// Trace capture state for a run that opted into provenance analysis.
/// Records drain out of the network tracer once per tick, in node order,
/// so the capture is lossless and shard-invariant.
#[cfg(feature = "trace")]
struct TraceState {
    analyzer: disco_trace::ProvenanceAnalyzer,
    records: Vec<disco_trace::Record>,
    retain: bool,
}

/// The full-system simulator. Build one with [`SimBuilder`].
pub struct System {
    placement: CompressionPlacement,
    scheme: SchemeKind,
    codec: Codec,
    net: Network,
    disco: Option<DiscoLayer>,
    tiles: Vec<Tile>,
    banks: Vec<NucaBank>,
    dirs: Vec<Directory>,
    bank_pending: Vec<HashMap<u64, Vec<(usize, bool)>>>,
    dram: Dram,
    mcs: Vec<usize>,
    values: ValueModel,
    versions: HashMap<u64, u32>,
    events: BTreeMap<u64, Vec<Event>>,
    demand_misses: u64,
    total_miss_latency: u64,
    onchip_miss_latency: u64,
    latency_histogram: LatencyHistogram,
    /// DRAM service time of an in-flight fill, keyed by line.
    dram_service: HashMap<u64, u64>,
    /// DRAM penalty to subtract from a pending core fill, keyed by
    /// (core, line).
    fill_penalty: HashMap<(usize, u64), u64>,
    compression: CompressionStats,
    codec_ops: CodecOps,
    energy_model: EnergyModel,
    banks_total: usize,
    prefetch_next_line: bool,
    /// The configuration this system was built from; embedded in every
    /// snapshot so a restore can rebuild the derived structure first.
    builder: SimBuilder,
    /// Resolved cycle budget ([`SimError::DeadlineExceeded`] past it).
    max_cycles: u64,
    #[cfg(feature = "trace")]
    trace: Option<TraceState>,
}

impl System {
    /// Current simulation cycle.
    pub fn now(&self) -> u64 {
        self.net.now()
    }

    /// True once every core drained its trace and all traffic settled.
    pub fn is_done(&self) -> bool {
        self.all_done()
    }

    fn schedule(&mut self, at: u64, ev: Event) {
        self.events.entry(at.max(self.now())).or_default().push(ev);
    }

    fn home_bank(&self, line: u64) -> usize {
        LineAddr(line).home_bank(self.banks_total)
    }

    fn mc_for(&self, line: u64) -> usize {
        self.mcs[((line / self.banks_total as u64) % self.mcs.len() as u64) as usize]
    }

    fn current_value(&self, line: u64) -> CacheLine {
        self.values
            .line(line, self.versions.get(&line).copied().unwrap_or(0))
    }

    fn bump_version(&mut self, line: u64) -> CacheLine {
        let v = self.versions.entry(line).or_insert(0);
        *v += 1;
        self.values.line(line, *v)
    }

    fn compress_line(&mut self, line: &CacheLine) -> disco_compress::CompressedLine {
        let enc = self.codec.compress(line);
        self.compression.record(&enc);
        enc
    }

    // --------------------------------------------------------------
    // Placement rules: payload form + codec latency at each site.
    // --------------------------------------------------------------

    /// Bank → core/requester: form and extra latency when a bank sends a
    /// stored line out.
    fn bank_send(&mut self, stored: &StoredLine) -> (Payload, u64) {
        let r = self.bank_send_inner(stored);
        #[cfg(feature = "trace")]
        if r.1 > 0 {
            self.net.trace_record(disco_trace::Event::EndpointCodec {
                site: disco_trace::site::BANK_SEND,
                cycles: r.1,
            });
        }
        r
    }

    fn bank_send_inner(&mut self, stored: &StoredLine) -> (Payload, u64) {
        use CompressionPlacement::*;
        match (self.placement, stored) {
            (Baseline, StoredLine::Raw(l)) => (Payload::Raw(*l), 0),
            (Baseline, StoredLine::Compressed(_)) => {
                unreachable!("baseline never stores compressed lines")
            }
            (Ideal, StoredLine::Compressed(c)) => (Payload::Compressed(c.clone()), 0),
            (Ideal, StoredLine::Raw(l)) => (Payload::Raw(*l), 0),
            (CacheOnly, StoredLine::Compressed(c)) => {
                // Decompress in the bank controller before injection.
                let lat = self.codec.decompression_latency(c);
                self.codec_ops.decompressions += 1;
                let line = self
                    .codec
                    .decompress(c)
                    .expect("stored encodings are valid");
                (Payload::Raw(line), lat)
            }
            (CacheOnly, StoredLine::Raw(l)) => (Payload::Raw(*l), 0),
            (CacheAndNi, StoredLine::Compressed(c)) => {
                // Two-level: bank decompresses, the NI re-compresses the
                // packet (§4.2 explains the resulting excessive latency).
                let lat = self.codec.decompression_latency(c) + self.codec.compression_latency();
                self.codec_ops.decompressions += 1;
                self.codec_ops.compressions += 1;
                (Payload::Compressed(c.clone()), lat)
            }
            (CacheAndNi, StoredLine::Raw(l)) => {
                let lat = self.codec.compression_latency();
                self.codec_ops.compressions += 1;
                let enc = self.compress_line(l);
                if enc.is_compressed() {
                    (Payload::Compressed(enc), lat)
                } else {
                    (Payload::Raw(*l), lat)
                }
            }
            (Disco, StoredLine::Compressed(c)) => (Payload::Compressed(c.clone()), 0),
            (Disco, StoredLine::Raw(l)) => (Payload::Raw(*l), 0),
        }
    }

    /// Data payload injected by a core or memory controller.
    fn endpoint_send(&mut self, line: &CacheLine) -> (Payload, u64) {
        let r = self.endpoint_send_inner(line);
        #[cfg(feature = "trace")]
        if r.1 > 0 {
            self.net.trace_record(disco_trace::Event::EndpointCodec {
                site: disco_trace::site::ENDPOINT_SEND,
                cycles: r.1,
            });
        }
        r
    }

    fn endpoint_send_inner(&mut self, line: &CacheLine) -> (Payload, u64) {
        use CompressionPlacement::*;
        match self.placement {
            Baseline | CacheOnly | Disco => (Payload::Raw(*line), 0),
            Ideal => {
                let enc = self.compress_line(line);
                if enc.is_compressed() {
                    (Payload::Compressed(enc), 0)
                } else {
                    (Payload::Raw(*line), 0)
                }
            }
            CacheAndNi => {
                let lat = self.codec.compression_latency();
                self.codec_ops.compressions += 1;
                let enc = self.compress_line(line);
                if enc.is_compressed() {
                    (Payload::Compressed(enc), lat)
                } else {
                    (Payload::Raw(*line), lat)
                }
            }
        }
    }

    /// Form and codec latency for storing an arriving payload in a bank.
    fn store_prep(&mut self, payload: &Payload) -> (StoredLine, u64) {
        let r = self.store_prep_inner(payload);
        #[cfg(feature = "trace")]
        if r.1 > 0 {
            self.net.trace_record(disco_trace::Event::EndpointCodec {
                site: disco_trace::site::STORE_PREP,
                cycles: r.1,
            });
        }
        r
    }

    fn store_prep_inner(&mut self, payload: &Payload) -> (StoredLine, u64) {
        use CompressionPlacement::*;
        let line = match payload {
            Payload::Raw(l) => *l,
            Payload::Compressed(c) => self
                .codec
                .decompress(c)
                .expect("in-flight encodings are valid"),
            Payload::None => unreachable!("data packets carry payloads"),
        };
        match (self.placement, payload) {
            (Baseline, _) => (StoredLine::Raw(line), 0),
            (Ideal, Payload::Compressed(c)) => (StoredLine::Compressed(c.clone()), 0),
            (Ideal, _) => {
                let enc = self.compress_line(&line);
                (StoredLine::Compressed(enc), 0)
            }
            (CacheOnly, _) => {
                let lat = self.codec.compression_latency();
                self.codec_ops.compressions += 1;
                let enc = self.compress_line(&line);
                (StoredLine::Compressed(enc), lat)
            }
            (CacheAndNi, Payload::Compressed(c)) => {
                // NI decompresses the packet, the cache compressor
                // re-compresses for storage.
                let lat = self.codec.decompression_latency(c) + self.codec.compression_latency();
                self.codec_ops.decompressions += 1;
                self.codec_ops.compressions += 1;
                (StoredLine::Compressed(c.clone()), lat)
            }
            (CacheAndNi, _) => {
                let lat = self.codec.compression_latency();
                self.codec_ops.compressions += 1;
                let enc = self.compress_line(&line);
                (StoredLine::Compressed(enc), lat)
            }
            (Disco, Payload::Compressed(c)) => {
                // Arrived compressed (in-network or injected so): store
                // as-is, zero latency — DISCO's bank-side win.
                (StoredLine::Compressed(c.clone()), 0)
            }
            (Disco, _) => {
                // In-network compression did not happen in time: the bank
                // compressor covers for it.
                let lat = self.codec.compression_latency();
                self.codec_ops.compressions += 1;
                let enc = self.compress_line(&line);
                (StoredLine::Compressed(enc), lat)
            }
        }
    }

    /// Ejection-side latency when a data payload reaches a core's NI and
    /// must enter the MSHR raw.
    fn core_receive(&mut self, payload: &Payload) -> (CacheLine, u64) {
        let r = self.core_receive_inner(payload);
        #[cfg(feature = "trace")]
        if r.1 > 0 {
            self.net.trace_record(disco_trace::Event::EndpointCodec {
                site: disco_trace::site::CORE_RECEIVE,
                cycles: r.1,
            });
        }
        r
    }

    fn core_receive_inner(&mut self, payload: &Payload) -> (CacheLine, u64) {
        use CompressionPlacement::*;
        match payload {
            Payload::Raw(l) => (*l, 0),
            Payload::Compressed(c) => {
                let line = self
                    .codec
                    .decompress(c)
                    .expect("in-flight encodings are valid");
                let lat = match self.placement {
                    Ideal => 0,
                    _ => {
                        self.codec_ops.decompressions += 1;
                        self.codec.decompression_latency(c)
                    }
                };
                (line, lat)
            }
            Payload::None => unreachable!("data packets carry payloads"),
        }
    }

    // --------------------------------------------------------------
    // Cycle loop.
    // --------------------------------------------------------------

    fn all_done(&self) -> bool {
        self.tiles.iter().all(Tile::done)
            && self.events.is_empty()
            && self.net.is_idle()
            && self.bank_pending.iter().all(HashMap::is_empty)
    }

    /// Accesses still outstanding: un-issued trace entries plus misses
    /// in flight. Reaches zero exactly when the run completes.
    pub fn outstanding(&self) -> usize {
        self.tiles
            .iter()
            .map(|t| (t.trace.len() - t.pos) + t.mshr.in_use())
            .sum()
    }

    fn tick(&mut self) {
        self.net.tick();
        if let Some(mut layer) = self.disco.take() {
            layer.tick(&mut self.net);
            self.disco = Some(layer);
        }
        // Deliveries → events.
        let nodes = self.tiles.len();
        for node in 0..nodes {
            let delivered = self.net.take_delivered(NodeId(node));
            for pkt in delivered {
                self.handle_delivery(node, pkt);
            }
        }
        // Run due events (newly scheduled zero-delay events run this
        // cycle too).
        let now = self.now();
        #[allow(clippy::while_let_loop)] // two-condition exit reads clearer this way
        loop {
            let Some((&t, _)) = self.events.iter().next() else {
                break;
            };
            if t > now {
                break;
            }
            let batch = self.events.remove(&t).expect("key exists");
            for ev in batch {
                self.handle_event(ev);
            }
        }
        // Cores issue.
        for core in 0..nodes {
            self.issue_core(core);
        }
        #[cfg(feature = "trace")]
        self.drain_trace_tick();
    }

    /// Moves this tick's events out of the per-component site logs and the
    /// network tracer into the provenance analyzer. Banks drain in index
    /// order, then DRAM — a fixed order, so the capture is byte-identical
    /// at any shard count. Draining every tick keeps the ring from ever
    /// overflowing, making the capture lossless.
    #[cfg(feature = "trace")]
    fn drain_trace_tick(&mut self) {
        for bank in &mut self.banks {
            for ev in bank.drain_trace() {
                self.net.trace_record(ev);
            }
        }
        for ev in self.dram.drain_trace() {
            self.net.trace_record(ev);
        }
        if let Some(ts) = &mut self.trace {
            let records = self.net.tracer_mut().drain();
            ts.analyzer.ingest_all(&records);
            if ts.retain {
                ts.records.extend(records);
            }
        }
    }

    /// Consumes the capture state into the report attachment.
    #[cfg(feature = "trace")]
    fn finish_trace(&mut self) -> Option<crate::report::TraceCapture> {
        let state = self.trace.take()?;
        Some(crate::report::TraceCapture {
            events: self.net.tracer().emitted(),
            dropped: self.net.tracer().dropped(),
            provenance: state.analyzer.finish(),
            records: state.records,
        })
    }

    fn issue_core(&mut self, core: usize) {
        for _ in 0..ISSUE_WIDTH {
            let now = self.now();
            let (line, write, ready) = {
                let t = &self.tiles[core];
                if t.pos >= t.trace.len() || t.next_issue_at > now {
                    return;
                }
                let a = t.trace[t.pos];
                (a.line, a.write, true)
            };
            debug_assert!(ready);
            // Writes update the line's value (version bump) on a hit.
            let write_value = write.then(|| self.bump_version(line));
            let hit = self.tiles[core]
                .l1
                .access(LineAddr(line), write_value)
                .is_some();
            if !hit {
                match self.tiles[core].mshr.allocate(LineAddr(line), now, write) {
                    MshrOutcome::Full => {
                        // Roll back this access; retry next cycle.
                        return;
                    }
                    MshrOutcome::Merged => {}
                    MshrOutcome::Allocated => {
                        let bank = self.home_bank(line);
                        let op = if write { Op::WriteReq } else { Op::ReadReq };
                        self.schedule(
                            now,
                            Event::Send {
                                src: core,
                                dst: bank,
                                payload: Payload::None,
                                tag: Msg::new(op, core, line).encode(),
                            },
                        );
                        if self.prefetch_next_line {
                            let next = line + 1;
                            let t = &mut self.tiles[core];
                            if !t.l1.probe(LineAddr(next))
                                && t.mshr.allocate_prefetch(LineAddr(next), now)
                                    == MshrOutcome::Allocated
                            {
                                let bank = self.home_bank(next);
                                self.schedule(
                                    now,
                                    Event::Send {
                                        src: core,
                                        dst: bank,
                                        payload: Payload::None,
                                        tag: Msg::new(Op::ReadReq, core, next).encode(),
                                    },
                                );
                            }
                        }
                    }
                }
            }
            // Advance the trace cursor.
            let t = &mut self.tiles[core];
            t.pos += 1;
            if let Some(next) = t.trace.get(t.pos) {
                t.next_issue_at = now + next.gap;
            }
        }
    }

    fn handle_delivery(&mut self, node: usize, pkt: Packet) {
        let msg = Msg::decode(pkt.tag);
        let now = self.now();
        match msg.op {
            Op::ReadReq | Op::WriteReq => {
                let hit_lat = self.banks[node].config().hit_latency;
                self.schedule(
                    now + hit_lat,
                    Event::BankRequest {
                        bank: node,
                        line: msg.line,
                        requester: msg.requester,
                        write: msg.op == Op::WriteReq,
                    },
                );
            }
            Op::DataToCore => {
                let (line, lat) = self.core_receive(&pkt.payload);
                self.schedule(
                    now + lat,
                    Event::CoreFill {
                        core: node,
                        line: msg.line,
                        data: line,
                    },
                );
            }
            Op::Writeback => {
                let (stored, lat) = self.store_prep(&pkt.payload);
                self.schedule(
                    now + lat,
                    Event::BankStore {
                        bank: node,
                        line: msg.line,
                        stored,
                        dirty: true,
                        writeback_from: Some(msg.requester),
                        respond_waiters: false,
                    },
                );
            }
            Op::Invalidate => {
                if self.tiles[node].mshr.pending(LineAddr(msg.line)) {
                    self.tiles[node].poisoned.insert(msg.line);
                }
                let dirty = self.tiles[node].l1.invalidate(LineAddr(msg.line));
                let home = self.home_bank(msg.line);
                match dirty {
                    Some(line) => {
                        // Dirty copy: the ack carries the data back home.
                        let (payload, lat) = self.endpoint_send(&line);
                        self.schedule(
                            now + lat,
                            Event::Send {
                                src: node,
                                dst: home,
                                payload,
                                tag: Msg::new(Op::Writeback, node, msg.line).encode(),
                            },
                        );
                    }
                    None => {
                        self.schedule(
                            now,
                            Event::Send {
                                src: node,
                                dst: home,
                                payload: Payload::None,
                                tag: Msg::new(Op::InvalAck, node, msg.line).encode(),
                            },
                        );
                    }
                }
            }
            Op::InvalAck => {
                // Non-blocking invalidation: nothing further to do.
            }
            Op::FwdRead | Op::FwdWrite => {
                // A write-forward revokes this core's copy — including a
                // fill still in flight to it (its re-read raced the
                // forward on another virtual network). Poison the
                // pending miss like Op::Invalidate does, or the late
                // fill would install a copy the directory no longer
                // tracks (found by disco-verify's bounded model
                // checker).
                if msg.op == Op::FwdWrite && self.tiles[node].mshr.pending(LineAddr(msg.line)) {
                    self.tiles[node].poisoned.insert(msg.line);
                }
                // This core owns a dirty copy; supply it to the requester
                // directly (cache-to-cache).
                let line = match self.tiles[node].l1.access(LineAddr(msg.line), None) {
                    Some(l) => l,
                    // The owner's copy raced away (writeback in flight):
                    // fall back to the architectural value.
                    None => self.current_value(msg.line),
                };
                if msg.op == Op::FwdWrite {
                    self.tiles[node].l1.invalidate(LineAddr(msg.line));
                }
                let (payload, lat) = self.endpoint_send(&line);
                self.schedule(
                    now + lat,
                    Event::Send {
                        src: node,
                        dst: msg.requester,
                        payload,
                        tag: Msg::new(Op::DataToCore, msg.requester, msg.line).encode(),
                    },
                );
            }
            Op::MemRead => {
                let done = self.dram.access(LineAddr(msg.line), now, false);
                // Remember the off-chip service time so the on-chip
                // latency metric (the paper's "NUCA data access latency")
                // can exclude it.
                self.dram_service.insert(msg.line, done - now);
                let data = self.current_value(msg.line);
                let (payload, lat) = self.endpoint_send(&data);
                let bank = self.home_bank(msg.line);
                self.schedule(
                    done + lat,
                    Event::Send {
                        src: node,
                        dst: bank,
                        payload,
                        tag: Msg::new(Op::MemFill, msg.requester, msg.line).encode(),
                    },
                );
            }
            Op::MemFill => {
                let (stored, lat) = self.store_prep(&pkt.payload);
                self.schedule(
                    now + lat,
                    Event::BankStore {
                        bank: node,
                        line: msg.line,
                        stored,
                        dirty: false,
                        writeback_from: None,
                        respond_waiters: true,
                    },
                );
            }
            Op::MemWriteback => {
                // DRAM stores raw lines only; decompress at the MC NI if
                // the network did not (charges energy; latency is off the
                // demand path).
                if let Payload::Compressed(c) = &pkt.payload {
                    if self.placement != CompressionPlacement::Ideal {
                        self.codec_ops.decompressions += 1;
                        disco_trace::emit!(
                            self.net,
                            disco_trace::Event::EndpointCodec {
                                site: disco_trace::site::WRITEBACK,
                                cycles: self.codec.decompression_latency(c),
                            }
                        );
                    }
                    let _ = c;
                }
                self.dram.access(LineAddr(msg.line), now, true);
            }
        }
    }

    fn handle_event(&mut self, ev: Event) {
        let now = self.now();
        match ev {
            Event::Send {
                src,
                dst,
                payload,
                tag,
            } => {
                // The op alone decides the virtual network: deriving the
                // class here (rather than trusting each injection site)
                // makes the Op -> class mapping a single checkable
                // function, which disco-verify's protocol pass leans on.
                let op = Msg::decode(tag).op;
                let class = op.class();
                let compressible = class == PacketClass::Response;
                let id = self
                    .net
                    .send(NodeId(src), NodeId(dst), class, payload, compressible, tag);
                // Rule 1 of §3.3-B: read responses and fills are on the
                // demand critical path and keep their priority even when
                // uncompressed; only latency-tolerant writebacks are
                // demoted by rule 2.
                self.net.store_mut().get_mut(id).critical = op.is_critical();
            }
            Event::BankRequest {
                bank,
                line,
                requester,
                write,
            } => {
                let actions = if write {
                    self.dirs[bank].write(LineAddr(line), requester)
                } else {
                    self.dirs[bank].read(LineAddr(line), requester)
                };
                for action in actions {
                    match action {
                        CohAction::DataFromBank { to } => {
                            let stored = self.banks[bank].lookup(LineAddr(line)).cloned();
                            match stored {
                                Some(s) => {
                                    let (payload, lat) = self.bank_send(&s);
                                    self.schedule(
                                        now + lat,
                                        Event::Send {
                                            src: bank,
                                            dst: to,
                                            payload,
                                            tag: Msg::new(Op::DataToCore, to, line).encode(),
                                        },
                                    );
                                }
                                None => {
                                    let waiters = self.bank_pending[bank].entry(line).or_default();
                                    let first = waiters.is_empty();
                                    waiters.push((to, write));
                                    if first {
                                        let mc = self.mc_for(line);
                                        self.schedule(
                                            now,
                                            Event::Send {
                                                src: bank,
                                                dst: mc,
                                                payload: Payload::None,
                                                tag: Msg::new(Op::MemRead, requester, line)
                                                    .encode(),
                                            },
                                        );
                                    }
                                }
                            }
                        }
                        CohAction::ForwardToOwner { owner, to } => {
                            let op = if write { Op::FwdWrite } else { Op::FwdRead };
                            self.schedule(
                                now,
                                Event::Send {
                                    src: bank,
                                    dst: owner,
                                    payload: Payload::None,
                                    tag: Msg::new(op, to, line).encode(),
                                },
                            );
                        }
                        CohAction::Invalidate { core } => {
                            self.schedule(
                                now,
                                Event::Send {
                                    src: bank,
                                    dst: core,
                                    payload: Payload::None,
                                    tag: Msg::new(Op::Invalidate, core, line).encode(),
                                },
                            );
                        }
                    }
                }
            }
            Event::BankStore {
                bank,
                line,
                stored,
                dirty,
                writeback_from,
                respond_waiters,
            } => {
                if let Some(core) = writeback_from {
                    self.dirs[bank].writeback(LineAddr(line), core);
                }
                let evictions = self.banks[bank].insert(LineAddr(line), stored, dirty);
                for ev in evictions {
                    // Inclusive LLC: recall cached copies.
                    for action in self.dirs[bank].recall(ev.addr) {
                        if let CohAction::Invalidate { core } = action {
                            self.schedule(
                                now,
                                Event::Send {
                                    src: bank,
                                    dst: core,
                                    payload: Payload::None,
                                    tag: Msg::new(Op::Invalidate, core, ev.addr.0).encode(),
                                },
                            );
                        }
                    }
                    if ev.dirty {
                        let (payload, lat) = self.bank_evict_payload(&ev.data);
                        let mc = self.mc_for(ev.addr.0);
                        self.schedule(
                            now + lat,
                            Event::Send {
                                src: bank,
                                dst: mc,
                                payload,
                                tag: Msg::new(Op::MemWriteback, 0, ev.addr.0).encode(),
                            },
                        );
                    }
                }
                if respond_waiters {
                    if let Some(waiters) = self.bank_pending[bank].remove(&line) {
                        let dram = self.dram_service.remove(&line).unwrap_or(0);
                        let stored = self.banks[bank]
                            .lookup(LineAddr(line))
                            .cloned()
                            .expect("line was just inserted");
                        for (to, _write) in waiters {
                            self.fill_penalty.insert((to, line), dram);
                            let (payload, lat) = self.bank_send(&stored);
                            self.schedule(
                                now + lat,
                                Event::Send {
                                    src: bank,
                                    dst: to,
                                    payload,
                                    tag: Msg::new(Op::DataToCore, to, line).encode(),
                                },
                            );
                        }
                    }
                }
            }
            Event::CoreFill { core, line, data } => {
                let Some(entry) = self.tiles[core].mshr.complete(LineAddr(line)) else {
                    // A duplicate fill (e.g. bank response racing an owner
                    // forward). Drop it.
                    return;
                };
                let (value, dirty) = if entry.write {
                    (self.bump_version(line), true)
                } else {
                    (data, false)
                };
                let dram = self.fill_penalty.remove(&(core, line)).unwrap_or(0);
                if !entry.prefetch {
                    self.demand_misses += 1;
                    let total = now - entry.issued_at;
                    self.total_miss_latency += total;
                    let onchip = total.saturating_sub(dram);
                    self.onchip_miss_latency += onchip;
                    self.latency_histogram.record(onchip);
                }
                if self.tiles[core].poisoned.remove(&line) {
                    // Invalidated while in flight: the miss completes (the
                    // core consumed the data once) but the line is not
                    // cached, so the next access re-fetches coherently. A
                    // dirty (write) fill hands its data straight back to
                    // the home bank.
                    if dirty {
                        let (payload, lat) = self.endpoint_send(&value);
                        let home = self.home_bank(line);
                        self.schedule(
                            now + lat,
                            Event::Send {
                                src: core,
                                dst: home,
                                payload,
                                tag: Msg::new(Op::Writeback, core, line).encode(),
                            },
                        );
                    }
                    return;
                }
                if let Some(wb) = self.tiles[core].l1.fill(LineAddr(line), value, dirty) {
                    let (payload, lat) = self.endpoint_send(&wb.line);
                    let home = self.home_bank(wb.addr.0);
                    self.schedule(
                        now + lat,
                        Event::Send {
                            src: core,
                            dst: home,
                            payload,
                            tag: Msg::new(Op::Writeback, core, wb.addr.0).encode(),
                        },
                    );
                }
            }
        }
    }

    /// Payload form for a dirty LLC eviction heading to DRAM.
    fn bank_evict_payload(&mut self, stored: &StoredLine) -> (Payload, u64) {
        let r = self.bank_evict_payload_inner(stored);
        #[cfg(feature = "trace")]
        if r.1 > 0 {
            self.net.trace_record(disco_trace::Event::EndpointCodec {
                site: disco_trace::site::BANK_EVICT,
                cycles: r.1,
            });
        }
        r
    }

    fn bank_evict_payload_inner(&mut self, stored: &StoredLine) -> (Payload, u64) {
        use CompressionPlacement::*;
        match (self.placement, stored) {
            (Disco, StoredLine::Compressed(c)) => (Payload::Compressed(c.clone()), 0),
            (Ideal, StoredLine::Compressed(c)) => (Payload::Compressed(c.clone()), 0),
            (_, StoredLine::Raw(l)) => (Payload::Raw(*l), 0),
            (CacheAndNi, StoredLine::Compressed(c)) => {
                // Bank decompresses for DRAM, NI re-compresses the packet.
                let lat = self.codec.decompression_latency(c) + self.codec.compression_latency();
                self.codec_ops.decompressions += 1;
                self.codec_ops.compressions += 1;
                (Payload::Compressed(c.clone()), lat)
            }
            (_, StoredLine::Compressed(c)) => {
                let lat = self.codec.decompression_latency(c);
                self.codec_ops.decompressions += 1;
                let line = self
                    .codec
                    .decompress(c)
                    .expect("stored encodings are valid");
                (Payload::Raw(line), lat)
            }
        }
    }

    /// Runs to completion (or the deadline) and reports, overriding the
    /// configured cycle budget.
    pub fn run(mut self, max_cycles: u64) -> Result<SimReport, SimError> {
        self.max_cycles = max_cycles;
        self.run_to_completion()
    }

    /// Advances the simulation until it drains, the cycle budget is
    /// exhausted, or `target` is reached — whichever comes first. The
    /// check order (done → deadline → target → tick) matches the
    /// uninterrupted run loop exactly, so pausing at any cycle and
    /// continuing is byte-identical to never pausing.
    ///
    /// Returns `Ok(true)` when the simulation completed, `Ok(false)`
    /// when it paused at `target` with work remaining.
    ///
    /// # Errors
    ///
    /// [`SimError::DeadlineExceeded`] past the cycle budget.
    pub fn step_until(&mut self, target: u64) -> Result<bool, SimError> {
        loop {
            if self.all_done() {
                return Ok(true);
            }
            if self.now() >= self.max_cycles {
                return Err(SimError::DeadlineExceeded {
                    max_cycles: self.max_cycles,
                    outstanding: self.outstanding(),
                    suspicious_stalls: self
                        .net
                        .health_check()
                        .iter()
                        .filter(|s| {
                            matches!(
                                s.reason,
                                disco_noc::StallReason::Locked
                                    | disco_noc::StallReason::MissingTail
                            )
                        })
                        .count()
                        + self.net.stats().routing_violations as usize,
                });
            }
            if self.now() >= target {
                return Ok(false);
            }
            self.tick();
        }
    }

    /// Runs to completion (or the configured deadline) and reports.
    ///
    /// # Errors
    ///
    /// [`SimError::DeadlineExceeded`] if the system does not drain within
    /// the cycle budget; [`SimError::SilentCorruption`] (`faults` only)
    /// if a corrupted delivery escaped detection.
    pub fn run_to_completion(mut self) -> Result<SimReport, SimError> {
        self.step_until(u64::MAX)?;
        // Health rule: the fault layer may lose performance, never data.
        // A delivery whose payload differs from the pristine copy without
        // the checksum firing is silent corruption and fails the run.
        #[cfg(feature = "faults")]
        if let Some(stats) = self.net.fault_stats() {
            if stats.undetected > 0 {
                return Err(SimError::SilentCorruption {
                    undetected: stats.undetected,
                });
            }
        }
        #[cfg(not(feature = "trace"))]
        {
            Ok(self.into_report())
        }
        #[cfg(feature = "trace")]
        {
            let capture = self.finish_trace();
            let mut report = self.into_report();
            report.trace = capture;
            Ok(report)
        }
    }

    fn into_report(self) -> SimReport {
        let mut l1 = L1Stats::default();
        for t in &self.tiles {
            let s = t.l1.stats();
            l1.hits += s.hits;
            l1.misses += s.misses;
            l1.writebacks += s.writebacks;
            l1.invalidations += s.invalidations;
        }
        let mut banks = BankStats::default();
        for b in &self.banks {
            let s = b.stats();
            banks.hits += s.hits;
            banks.misses += s.misses;
            banks.insertions += s.insertions;
            banks.evictions += s.evictions;
            banks.dirty_evictions += s.dirty_evictions;
            banks.bytes_accessed += s.bytes_accessed;
        }
        let mut directory = disco_cache::coherence::DirStats::default();
        for d in &self.dirs {
            let s = d.stats();
            directory.bank_reads += s.bank_reads;
            directory.owner_forwards += s.owner_forwards;
            directory.invalidations += s.invalidations;
            directory.write_requests += s.write_requests;
        }
        let net = *self.net.stats();
        // Fold the DRAM-side stall tally into the network-side ledger so
        // the report carries one complete FaultStats.
        #[cfg(feature = "faults")]
        let faults = self.net.fault_stats().copied().map(|mut f| {
            f.dram_stall_cycles += self.dram.fault_stall_cycles();
            f
        });
        let disco_stats = self.disco.as_ref().map(|d| *d.stats());
        let tiles = self.tiles.len() as u64;
        let energy_counts = EnergyCounts {
            cycles: net.cycles,
            routers: tiles,
            banks: tiles,
            compressor_sites: self.placement.compressor_sites(tiles as usize),
            buffer_writes: net.buffer_writes,
            buffer_reads: net.buffer_reads,
            crossbar_flits: net.crossbar_flits,
            arbitrations: net.arbitrations,
            link_flits: net.link_flits,
            express_flits: net.express_link_flits,
            bank_accesses: banks.hits + banks.misses + banks.insertions,
            bank_bytes: banks.bytes_accessed,
            compressions: self.codec_ops.compressions
                + disco_stats.map_or(0, |d| d.compressions + d.incompressible),
            decompressions: self.codec_ops.decompressions
                + disco_stats.map_or(0, |d| d.decompressions),
        };
        let energy = self.energy_model.evaluate(&energy_counts);
        SimReport {
            placement: self.placement,
            scheme: self.scheme,
            cycles: net.cycles,
            demand_misses: self.demand_misses,
            total_miss_latency: self.total_miss_latency,
            total_onchip_latency: self.onchip_miss_latency,
            latency_histogram: self.latency_histogram,
            l1,
            banks,
            directory,
            network: net,
            dram: *self.dram.stats(),
            compression: self.compression,
            disco: disco_stats,
            energy_counts,
            energy,
            #[cfg(feature = "faults")]
            faults,
            #[cfg(feature = "trace")]
            trace: None,
        }
    }
}

/// Builder for a full-system simulation (the public entry point).
///
/// ```
/// use disco_core::{CompressionPlacement, SimBuilder};
/// use disco_workloads::Benchmark;
///
/// # fn main() -> Result<(), disco_core::SimError> {
/// let report = SimBuilder::new()
///     .mesh(2, 2)
///     .placement(CompressionPlacement::Disco)
///     .benchmark(Benchmark::Swaptions)
///     .trace_len(300)
///     .seed(1)
///     .run()?;
/// assert!(report.avg_access_latency() > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SimBuilder {
    cols: usize,
    rows: usize,
    topology: TopologyChoice,
    placement: CompressionPlacement,
    scheme: SchemeKind,
    profile: WorkloadProfile,
    trace_len: usize,
    seed: u64,
    mshr_entries: usize,
    noc: NocConfig,
    l1: L1Config,
    bank: BankConfig,
    dram: DramConfig,
    disco: DiscoParams,
    energy: EnergyModel,
    max_cycles: u64,
    scale_profile: bool,
    demote_override: Option<bool>,
    external_traces: Option<Vec<Vec<MemAccess>>>,
    prefetch_next_line: bool,
    #[cfg(feature = "faults")]
    fault_plan: Option<disco_faults::FaultPlan>,
    #[cfg(feature = "trace")]
    capture_trace: bool,
    #[cfg(feature = "trace")]
    retain_trace_records: bool,
}

impl Default for SimBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl SimBuilder {
    /// Table 2 defaults: 4×4 mesh, delta codec, DISCO placement,
    /// blackscholes.
    pub fn new() -> Self {
        SimBuilder {
            cols: 4,
            rows: 4,
            topology: TopologyChoice::Mesh,
            placement: CompressionPlacement::Disco,
            scheme: SchemeKind::Delta,
            profile: Benchmark::Blackscholes.profile(),
            trace_len: 10_000,
            seed: 1,
            mshr_entries: 8,
            noc: NocConfig::default(),
            l1: L1Config::default(),
            bank: BankConfig::default(),
            dram: DramConfig::default(),
            disco: DiscoParams::default(),
            energy: EnergyModel::default(),
            max_cycles: 0, // auto
            scale_profile: true,
            demote_override: None,
            external_traces: None,
            prefetch_next_line: false,
            #[cfg(feature = "faults")]
            fault_plan: None,
            #[cfg(feature = "trace")]
            capture_trace: false,
            #[cfg(feature = "trace")]
            retain_trace_records: false,
        }
    }

    /// Mesh dimensions (tiles = cols × rows; one core + one bank each).
    pub fn mesh(mut self, cols: usize, rows: usize) -> Self {
        self.cols = cols;
        self.rows = rows;
        self
    }

    /// NoC topology. The tile count stays `cols × rows` regardless of
    /// the choice: a ring folds the grid into a single cycle, a
    /// hierarchical ring uses `rows` local rings of `cols` tiles, and a
    /// concentrated mesh attaches 4 tiles per router. If the selected
    /// [`NocConfig`] has fewer VCs than the topology's deadlock-freedom
    /// floor ([`disco_noc::Topology::min_vcs`], e.g. dateline shapes
    /// need an even split per class), the VC count is raised to it.
    pub fn topology(mut self, topology: TopologyChoice) -> Self {
        self.topology = topology;
        self
    }

    /// Compression placement to simulate.
    pub fn placement(mut self, placement: CompressionPlacement) -> Self {
        self.placement = placement;
        self
    }

    /// Compression scheme.
    pub fn scheme(mut self, scheme: SchemeKind) -> Self {
        self.scheme = scheme;
        self
    }

    /// Workload, by benchmark.
    pub fn benchmark(mut self, benchmark: Benchmark) -> Self {
        self.profile = benchmark.profile();
        self
    }

    /// Workload, by explicit profile.
    pub fn profile(mut self, profile: WorkloadProfile) -> Self {
        self.profile = profile;
        self
    }

    /// Accesses generated per core.
    pub fn trace_len(mut self, len: usize) -> Self {
        self.trace_len = len;
        self
    }

    /// RNG seed (traces and values are fully deterministic given it).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// MSHR entries per core.
    pub fn mshr_entries(mut self, n: usize) -> Self {
        self.mshr_entries = n;
        self
    }

    /// NoC parameters.
    pub fn noc(mut self, noc: NocConfig) -> Self {
        self.noc = noc;
        self
    }

    /// Arms a deterministic fault schedule (`faults` only). An inactive
    /// plan (all rates zero, no dead links) is equivalent to not calling
    /// this at all.
    #[cfg(feature = "faults")]
    pub fn faults(mut self, plan: disco_faults::FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Bank parameters (the `compressed` flag is overridden by the
    /// placement).
    pub fn bank(mut self, bank: BankConfig) -> Self {
        self.bank = bank;
        self
    }

    /// DISCO arbitrator parameters.
    pub fn disco_params(mut self, params: DiscoParams) -> Self {
        self.disco = params;
        self
    }

    /// Energy model.
    pub fn energy_model(mut self, model: EnergyModel) -> Self {
        self.energy = model;
        self
    }

    /// Cycle budget (0 = auto: generous multiple of the trace length).
    pub fn max_cycles(mut self, cycles: u64) -> Self {
        self.max_cycles = cycles;
        self
    }

    /// Whether to scale the working set with the core count (Fig. 8).
    pub fn scale_profile(mut self, scale: bool) -> Self {
        self.scale_profile = scale;
        self
    }

    /// Overrides the §3.3-B rule-2 scheduling policy (by default it is on
    /// exactly for the DISCO placement). Used by the scheduling ablation.
    pub fn demote_uncompressed(mut self, demote: bool) -> Self {
        self.demote_override = Some(demote);
        self
    }

    /// Enables a next-line prefetcher at each L1: every demand miss for
    /// line `L` also fetches `L + 1` when an MSHR is free (prefetch
    /// fills never count toward the demand-latency metric).
    pub fn prefetch_next_line(mut self, enable: bool) -> Self {
        self.prefetch_next_line = enable;
        self
    }

    /// Captures a cycle-stamped event trace and runs the latency
    /// provenance analysis on it; the result is attached to the report as
    /// [`SimReport::trace`](crate::SimReport). Only the provenance
    /// aggregates are kept; use
    /// [`retain_trace_records`](SimBuilder::retain_trace_records) to also
    /// keep the raw records for export.
    #[cfg(feature = "trace")]
    pub fn capture_trace(mut self, capture: bool) -> Self {
        self.capture_trace = capture;
        self
    }

    /// Keeps every raw trace record in the report (implies
    /// [`capture_trace`](SimBuilder::capture_trace)), for the JSONL and
    /// Chrome trace exporters. Memory scales with the event count.
    #[cfg(feature = "trace")]
    pub fn retain_trace_records(mut self, retain: bool) -> Self {
        self.retain_trace_records = retain;
        if retain {
            self.capture_trace = true;
        }
        self
    }

    /// Drives the cores with externally supplied traces (one per core,
    /// e.g. loaded with [`disco_workloads::read_traces`]) instead of the
    /// synthetic generator. Missing cores idle; extra traces are an
    /// error at [`run`](SimBuilder::run). The workload profile still
    /// provides the *value model* for line contents.
    pub fn traces(mut self, traces: Vec<Vec<MemAccess>>) -> Self {
        self.external_traces = Some(traces);
        self
    }

    /// Builds and runs the simulation.
    ///
    /// # Errors
    ///
    /// [`SimError::DeadlineExceeded`] if the system does not drain within
    /// the cycle budget.
    pub fn run(self) -> Result<SimReport, SimError> {
        self.build().run_to_completion()
    }

    /// Builds the simulator without running it, for incremental
    /// stepping ([`System::step_until`]) and checkpointing
    /// ([`System::snapshot`] / [`System::restore`]).
    pub fn build(&self) -> System {
        let this = self.clone();
        let tiles_n = this.cols * this.rows;
        let topo = this.topology.build(this.cols, this.rows);
        assert_eq!(
            topo.tiles(),
            tiles_n,
            "topology {} at {}x{} must expose cols*rows tiles",
            self.topology,
            self.cols,
            self.rows
        );
        let mut noc = self.noc;
        noc.vcs = noc.vcs.max(topo.min_vcs());
        noc.scheduling.demote_uncompressed = self
            .demote_override
            .unwrap_or(self.placement == CompressionPlacement::Disco);
        #[cfg(feature = "trace")]
        let pipeline_stages = noc.pipeline_stages;
        let net = Network::new(topo, noc);
        let profile = if self.scale_profile {
            self.profile.scaled_to(tiles_n)
        } else {
            self.profile
        };
        // SC² is a *statistical* codec: train its value frequency table on
        // a sample of the workload's lines, as the hardware samples cache
        // contents (Arelakis & Stenström). Other codecs are stateless.
        let codec = if self.scheme == SchemeKind::Sc2 {
            let model = ValueModel::new(profile.value, self.seed ^ 0xda7a);
            let sample: Vec<_> = (0..2_048u64).map(|a| model.line(a * 7 + 1, 0)).collect();
            Codec::Sc2(disco_compress::sc2::Sc2Codec::train(&sample))
        } else {
            Codec::from_kind(self.scheme)
        };
        // The fault context needs the trained codec for its
        // decompress-and-verify checks, so it is armed only now.
        #[cfg(feature = "faults")]
        let net = {
            let mut net = net;
            if let Some(plan) = &self.fault_plan {
                net.set_fault_plan(plan.clone(), codec.clone());
            }
            net
        };
        #[cfg(feature = "faults")]
        let dram = {
            let mut dram = Dram::new(self.dram);
            if let Some(plan) = &self.fault_plan {
                dram.set_fault_plan(plan.clone());
            }
            dram
        };
        #[cfg(not(feature = "faults"))]
        let dram = Dram::new(self.dram);
        let traces = match self.external_traces.clone() {
            Some(mut t) => {
                assert!(
                    t.len() <= tiles_n,
                    "{} traces supplied for {tiles_n} cores",
                    t.len()
                );
                t.resize_with(tiles_n, Vec::new);
                t
            }
            None => TraceGenerator::new(profile, tiles_n, self.seed).generate(self.trace_len),
        };
        let tiles: Vec<Tile> = traces
            .into_iter()
            .map(|trace| {
                let next = trace.first().map_or(0, |a| a.gap);
                Tile {
                    l1: L1Cache::new(self.l1),
                    mshr: MshrFile::new(self.mshr_entries),
                    trace,
                    pos: 0,
                    next_issue_at: next,
                    poisoned: std::collections::HashSet::new(),
                }
            })
            .collect();
        let bank_cfg = BankConfig {
            compressed: self.placement.compressed_storage(),
            ..self.bank
        };
        let banks = (0..tiles_n)
            .map(|i| NucaBank::new(bank_cfg, i, tiles_n))
            .collect();
        // One DISCO engine set per *router* (§3.2: the compressor sits in
        // the router), so a concentrated mesh shares an engine among its
        // attached tiles.
        let disco = (self.placement == CompressionPlacement::Disco)
            .then(|| DiscoLayer::new(self.disco, codec.clone(), net.topology().routers()));
        // Memory controllers at the grid corners (spread tiles on rings).
        let mcs = vec![0, self.cols - 1, tiles_n - self.cols, tiles_n - 1];
        let max_cycles = if self.max_cycles > 0 {
            self.max_cycles
        } else {
            // Generous: every access could serialize behind DRAM.
            (self.trace_len as u64 * 400).max(2_000_000)
        };
        System {
            placement: self.placement,
            scheme: self.scheme,
            codec,
            net,
            disco,
            tiles,
            banks,
            dirs: (0..tiles_n).map(|_| Directory::new()).collect(),
            bank_pending: (0..tiles_n).map(|_| HashMap::new()).collect(),
            dram,
            mcs,
            values: ValueModel::new(profile.value, self.seed ^ 0xda7a),
            versions: HashMap::new(),
            events: BTreeMap::new(),
            demand_misses: 0,
            total_miss_latency: 0,
            onchip_miss_latency: 0,
            latency_histogram: LatencyHistogram::new(),
            dram_service: HashMap::new(),
            fill_penalty: HashMap::new(),
            compression: CompressionStats::new(),
            codec_ops: CodecOps::default(),
            energy_model: self.energy,
            banks_total: tiles_n,
            prefetch_next_line: self.prefetch_next_line,
            builder: this,
            max_cycles,
            #[cfg(feature = "trace")]
            trace: self.capture_trace.then(|| TraceState {
                analyzer: disco_trace::ProvenanceAnalyzer::new(pipeline_stages),
                records: Vec::new(),
                retain: self.retain_trace_records,
            }),
        }
    }
}

// ---------------------------------------------------------------------------
// Checkpointing (see crates/snapshot/manifest.txt)
// ---------------------------------------------------------------------------

use disco_snapshot::{Snap, SnapError, SnapshotHeader, Writer};

/// Bitmask of the cargo features that change the serialized state
/// layout of a snapshot. `parallel` and `validate` are deliberately
/// excluded: they only affect scratch structures that are never
/// serialized, so snapshots are portable across those builds (and
/// across `compute_shards` counts — sharding is runtime config).
pub fn feature_fingerprint() -> u32 {
    let mut f = 0;
    if cfg!(feature = "trace") {
        f |= 1;
    }
    if cfg!(feature = "faults") {
        f |= 2;
    }
    f
}

disco_snapshot::snap_fields!(CodecOps {
    compressions,
    decompressions,
});

impl Snap for Event {
    fn snap(&self, w: &mut Writer) {
        match self {
            Event::BankRequest {
                bank,
                line,
                requester,
                write,
            } => {
                w.put(&0u8);
                w.put(bank);
                w.put(line);
                w.put(requester);
                w.put(write);
            }
            Event::BankStore {
                bank,
                line,
                stored,
                dirty,
                writeback_from,
                respond_waiters,
            } => {
                w.put(&1u8);
                w.put(bank);
                w.put(line);
                w.put(stored);
                w.put(dirty);
                w.put(writeback_from);
                w.put(respond_waiters);
            }
            Event::CoreFill { core, line, data } => {
                w.put(&2u8);
                w.put(core);
                w.put(line);
                w.put(data);
            }
            Event::Send {
                src,
                dst,
                payload,
                tag,
            } => {
                w.put(&3u8);
                w.put(src);
                w.put(dst);
                w.put(payload);
                w.put(tag);
            }
        }
    }

    fn restore(r: &mut disco_snapshot::Reader<'_>) -> Result<Self, SnapError> {
        Ok(match r.take::<u8>()? {
            0 => Event::BankRequest {
                bank: r.take()?,
                line: r.take()?,
                requester: r.take()?,
                write: r.take()?,
            },
            1 => Event::BankStore {
                bank: r.take()?,
                line: r.take()?,
                stored: r.take()?,
                dirty: r.take()?,
                writeback_from: r.take()?,
                respond_waiters: r.take()?,
            },
            2 => Event::CoreFill {
                core: r.take()?,
                line: r.take()?,
                data: r.take()?,
            },
            3 => Event::Send {
                src: r.take()?,
                dst: r.take()?,
                payload: r.take()?,
                tag: r.take()?,
            },
            tag => return Err(disco_snapshot::malformed(format!("Event tag {tag}"))),
        })
    }
}

impl Tile {
    /// Writes the tile's mutable state; the trace itself is derived
    /// (regenerated from the builder on restore). The poisoned set is
    /// written in sorted order (determinism contract).
    fn snap_state(&self, w: &mut Writer) {
        self.l1.snap_state(w);
        self.mshr.snap_state(w);
        w.put(&self.pos);
        w.put(&self.next_issue_at);
        let mut poisoned: Vec<u64> = self.poisoned.iter().copied().collect();
        poisoned.sort_unstable();
        w.put(&poisoned);
    }

    /// Overlays state written by [`Tile::snap_state`] onto a tile
    /// rebuilt with the same trace.
    fn restore_state(&mut self, r: &mut disco_snapshot::Reader<'_>) -> Result<(), SnapError> {
        self.l1.restore_state(r)?;
        self.mshr.restore_state(r)?;
        let pos: usize = r.take()?;
        if pos > self.trace.len() {
            return Err(disco_snapshot::malformed(format!(
                "trace cursor {pos} past the rebuilt trace length {}",
                self.trace.len()
            )));
        }
        self.pos = pos;
        self.next_issue_at = r.take()?;
        let poisoned: Vec<u64> = r.take()?;
        self.poisoned = poisoned.into_iter().collect();
        Ok(())
    }
}

impl Snap for SimBuilder {
    fn snap(&self, w: &mut Writer) {
        w.put(&self.cols);
        w.put(&self.rows);
        w.put(&self.topology);
        w.put(&self.placement);
        w.put(&self.scheme);
        w.put(&self.profile);
        w.put(&self.trace_len);
        w.put(&self.seed);
        w.put(&self.mshr_entries);
        w.put(&self.noc);
        w.put(&self.l1);
        w.put(&self.bank);
        w.put(&self.dram);
        w.put(&self.disco);
        w.put(&self.energy);
        w.put(&self.max_cycles);
        w.put(&self.scale_profile);
        w.put(&self.demote_override);
        w.put(&self.external_traces);
        w.put(&self.prefetch_next_line);
        #[cfg(feature = "faults")]
        w.put(&self.fault_plan);
        #[cfg(feature = "trace")]
        {
            w.put(&self.capture_trace);
            w.put(&self.retain_trace_records);
        }
    }

    fn restore(r: &mut disco_snapshot::Reader<'_>) -> Result<Self, SnapError> {
        Ok(SimBuilder {
            cols: r.take()?,
            rows: r.take()?,
            topology: r.take()?,
            placement: r.take()?,
            scheme: r.take()?,
            profile: r.take()?,
            trace_len: r.take()?,
            seed: r.take()?,
            mshr_entries: r.take()?,
            noc: r.take()?,
            l1: r.take()?,
            bank: r.take()?,
            dram: r.take()?,
            disco: r.take()?,
            energy: r.take()?,
            max_cycles: r.take()?,
            scale_profile: r.take()?,
            demote_override: r.take()?,
            external_traces: r.take()?,
            prefetch_next_line: r.take()?,
            #[cfg(feature = "faults")]
            fault_plan: r.take()?,
            #[cfg(feature = "trace")]
            capture_trace: r.take()?,
            #[cfg(feature = "trace")]
            retain_trace_records: r.take()?,
        })
    }
}

impl SimBuilder {
    /// Compares the run-defining axes of a snapshot's embedded builder
    /// (`self`) against the configuration a caller asked to restore
    /// into. Sharding and budget knobs are excluded — those may differ.
    fn check_matches(&self, requested: &SimBuilder) -> Result<(), SimError> {
        fn diff<T: PartialEq + fmt::Debug>(
            field: &'static str,
            snapshot: &T,
            requested: &T,
        ) -> Result<(), SimError> {
            if snapshot == requested {
                Ok(())
            } else {
                Err(SimError::SnapshotConfigMismatch {
                    field,
                    snapshot: format!("{snapshot:?}"),
                    requested: format!("{requested:?}"),
                })
            }
        }
        diff("cols", &self.cols, &requested.cols)?;
        diff("rows", &self.rows, &requested.rows)?;
        diff("topology", &self.topology, &requested.topology)?;
        diff("placement", &self.placement, &requested.placement)?;
        diff("scheme", &self.scheme, &requested.scheme)?;
        diff("seed", &self.seed, &requested.seed)?;
        diff("trace_len", &self.trace_len, &requested.trace_len)?;
        Ok(())
    }
}

impl System {
    /// Serializes the complete mutable simulator state, prefixed with
    /// the versioned, feature-fingerprinted header and the builder the
    /// system was constructed from. Restoring the bytes with
    /// [`System::restore`] and continuing is byte-identical to never
    /// having paused.
    pub fn snapshot(&self) -> Vec<u8> {
        let mut w = Writer::new();
        SnapshotHeader {
            version: disco_snapshot::FORMAT_VERSION,
            fingerprint: feature_fingerprint(),
        }
        .write(&mut w);
        w.put(&self.builder);
        w.put(&self.max_cycles);
        self.snap_state(&mut w);
        w.into_bytes()
    }

    /// Rebuilds a simulator from [`System::snapshot`] bytes.
    ///
    /// # Errors
    ///
    /// The snapshot variants of [`SimError`]: truncated stream, version
    /// or feature-fingerprint mismatch, or structurally invalid bytes.
    /// No partial restores: any error leaves nothing behind.
    pub fn restore(bytes: &[u8]) -> Result<System, SimError> {
        Self::restore_inner(bytes, None)
    }

    /// Like [`System::restore`], but first verifies the snapshot's
    /// embedded configuration matches `requested` on every run-defining
    /// axis (topology, placement, scheme, seed, trace length), so a job
    /// runner cannot silently resume the wrong simulation.
    ///
    /// # Errors
    ///
    /// [`SimError::SnapshotConfigMismatch`] on a differing axis, plus
    /// everything [`System::restore`] can return.
    pub fn restore_with(bytes: &[u8], requested: &SimBuilder) -> Result<System, SimError> {
        Self::restore_inner(bytes, Some(requested))
    }

    fn restore_inner(bytes: &[u8], requested: Option<&SimBuilder>) -> Result<System, SimError> {
        let mut r = disco_snapshot::Reader::new(bytes);
        let header = SnapshotHeader::read(&mut r)?;
        let expected = feature_fingerprint();
        if header.fingerprint != expected {
            return Err(SimError::SnapshotFeatureMismatch {
                found: header.fingerprint,
                expected,
            });
        }
        let builder: SimBuilder = r.take()?;
        if let Some(req) = requested {
            builder.check_matches(req)?;
        }
        let max_cycles: u64 = r.take()?;
        let mut system = builder.build();
        system.max_cycles = max_cycles;
        system.restore_state(&mut r)?;
        if !r.is_exhausted() {
            return Err(SimError::SnapshotCorrupt {
                detail: format!(
                    "{} trailing bytes after the decoded state",
                    bytes.len() - r.offset()
                ),
            });
        }
        Ok(system)
    }

    /// Writes every mutable field; config-derived structure (codec,
    /// placement tables, memory-controller map, energy model, value
    /// model) is rebuilt from the embedded builder on restore.
    fn snap_state(&self, w: &mut Writer) {
        self.net.snap_state(w);
        match &self.disco {
            Some(layer) => {
                w.put(&true);
                layer.snap_state(w);
            }
            None => w.put(&false),
        }
        w.put(&self.tiles.len());
        for t in &self.tiles {
            t.snap_state(w);
        }
        w.put(&self.banks.len());
        for b in &self.banks {
            b.snap_state(w);
        }
        w.put(&self.dirs.len());
        for d in &self.dirs {
            d.snap_state(w);
        }
        w.put(&self.bank_pending.len());
        for pending in &self.bank_pending {
            w.snap_map(pending);
        }
        self.dram.snap_state(w);
        w.snap_map(&self.versions);
        w.put(&self.events);
        w.put(&self.demand_misses);
        w.put(&self.total_miss_latency);
        w.put(&self.onchip_miss_latency);
        w.put(&self.latency_histogram);
        w.snap_map(&self.dram_service);
        w.snap_map(&self.fill_penalty);
        w.put(&self.compression);
        w.put(&self.codec_ops);
        #[cfg(feature = "trace")]
        match &self.trace {
            Some(ts) => {
                w.put(&true);
                w.put(&ts.analyzer);
                w.put(&ts.records);
                w.put(&ts.retain);
            }
            None => w.put(&false),
        }
    }

    /// Overlays state written by [`System::snap_state`] onto a system
    /// freshly built from the same builder, validating every count
    /// against the rebuilt structure.
    fn restore_state(&mut self, r: &mut disco_snapshot::Reader<'_>) -> Result<(), SnapError> {
        self.net.restore_state(r)?;
        let has_disco: bool = r.take()?;
        match (self.disco.as_mut(), has_disco) {
            (Some(layer), true) => layer.restore_state(r)?,
            (None, false) => {}
            (have, want) => {
                return Err(disco_snapshot::malformed(format!(
                    "snapshot {} a DISCO layer but the rebuilt system {}",
                    if want { "has" } else { "lacks" },
                    if have.is_some() {
                        "has one"
                    } else {
                        "lacks one"
                    },
                )));
            }
        }
        let tiles: usize = r.take()?;
        if tiles != self.tiles.len() {
            return Err(disco_snapshot::malformed(format!(
                "{tiles} tiles in snapshot, {} rebuilt",
                self.tiles.len()
            )));
        }
        for t in &mut self.tiles {
            t.restore_state(r)?;
        }
        let banks: usize = r.take()?;
        if banks != self.banks.len() {
            return Err(disco_snapshot::malformed(format!(
                "{banks} banks in snapshot, {} rebuilt",
                self.banks.len()
            )));
        }
        for b in &mut self.banks {
            b.restore_state(r)?;
        }
        let dirs: usize = r.take()?;
        if dirs != self.dirs.len() {
            return Err(disco_snapshot::malformed(format!(
                "{dirs} directories in snapshot, {} rebuilt",
                self.dirs.len()
            )));
        }
        for d in &mut self.dirs {
            d.restore_state(r)?;
        }
        let pending: usize = r.take()?;
        if pending != self.bank_pending.len() {
            return Err(disco_snapshot::malformed(format!(
                "{pending} bank-pending maps in snapshot, {} rebuilt",
                self.bank_pending.len()
            )));
        }
        for slot in &mut self.bank_pending {
            *slot = r.restore_map()?;
        }
        self.dram.restore_state(r)?;
        self.versions = r.restore_map()?;
        self.events = r.take()?;
        self.demand_misses = r.take()?;
        self.total_miss_latency = r.take()?;
        self.onchip_miss_latency = r.take()?;
        self.latency_histogram = r.take()?;
        self.dram_service = r.restore_map()?;
        self.fill_penalty = r.restore_map()?;
        self.compression = r.take()?;
        self.codec_ops = r.take()?;
        #[cfg(feature = "trace")]
        {
            let has_trace: bool = r.take()?;
            match (self.trace.as_mut(), has_trace) {
                (Some(ts), true) => {
                    ts.analyzer = r.take()?;
                    ts.records = r.take()?;
                    ts.retain = r.take()?;
                }
                (None, false) => {}
                (have, want) => {
                    return Err(disco_snapshot::malformed(format!(
                        "snapshot {} trace capture but the rebuilt system {}",
                        if want { "has" } else { "lacks" },
                        if have.is_some() { "has it" } else { "lacks it" },
                    )));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(placement: CompressionPlacement) -> SimReport {
        SimBuilder::new()
            .mesh(2, 2)
            .placement(placement)
            .benchmark(Benchmark::Swaptions)
            .trace_len(200)
            .seed(5)
            .run()
            .expect("tiny run drains")
    }

    #[test]
    fn builder_defaults_match_table2() {
        let b = SimBuilder::new();
        assert_eq!(b.cols * b.rows, 16);
        assert_eq!(b.mshr_entries, 8);
        assert_eq!(b.noc.vcs, 2);
        assert_eq!(b.bank.assoc, 8);
        assert_eq!(b.scheme, SchemeKind::Delta);
    }

    #[test]
    fn run_is_deterministic() {
        let a = tiny(CompressionPlacement::Disco);
        let b = tiny(CompressionPlacement::Disco);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.total_miss_latency, b.total_miss_latency);
        assert_eq!(a.network.link_flits, b.network.link_flits);
    }

    #[test]
    fn different_seeds_differ() {
        let a = tiny(CompressionPlacement::Baseline);
        let b = SimBuilder::new()
            .mesh(2, 2)
            .placement(CompressionPlacement::Baseline)
            .benchmark(Benchmark::Swaptions)
            .trace_len(200)
            .seed(6)
            .run()
            .expect("drains");
        assert_ne!(a.cycles, b.cycles);
    }

    #[test]
    fn all_accesses_complete() {
        for placement in CompressionPlacement::ALL {
            let r = tiny(placement);
            // Every L1 miss became a completed demand miss (merged misses
            // complete with their primary).
            assert!(r.demand_misses > 0, "{placement}");
            assert!(
                r.l1.hits + r.l1.misses >= 4 * 200,
                "{placement}: all accesses issued"
            );
        }
    }

    #[test]
    fn onchip_latency_is_bounded_by_total() {
        let r = tiny(CompressionPlacement::CacheOnly);
        assert!(r.total_onchip_latency <= r.total_miss_latency);
        assert!(r.avg_onchip_latency() > 0.0);
    }

    #[cfg(feature = "trace")]
    #[test]
    fn trace_capture_is_lossless_and_exact() {
        let report = SimBuilder::new()
            .mesh(2, 2)
            .placement(CompressionPlacement::Disco)
            .benchmark(Benchmark::Swaptions)
            .trace_len(200)
            .seed(5)
            .retain_trace_records(true)
            .run()
            .expect("drains");
        let t = report.trace.as_ref().expect("capture requested");
        assert_eq!(t.dropped, 0, "per-tick draining never overflows");
        assert!(!t.records.is_empty());
        assert_eq!(t.events, t.records.len() as u64);
        let p = &t.provenance;
        assert!(p.exact, "every decomposition sums to its latency");
        assert_eq!(p.totals.incomplete, 0, "lossless capture tracks all");
        assert_eq!(p.totals.packets, report.network.packets_delivered);
        assert_eq!(
            p.totals.latency_cycles, report.network.total_packet_latency,
            "provenance covers exactly the NoC's own latency accounting"
        );
    }

    #[cfg(feature = "trace")]
    #[test]
    fn uncaptured_runs_report_no_trace() {
        let r = tiny(CompressionPlacement::Disco);
        assert!(r.trace.is_none());
        let c = tiny(CompressionPlacement::Disco);
        assert_eq!(r.cycles, c.cycles, "tracing plumbing is inert by default");
    }

    #[test]
    fn baseline_never_compresses() {
        let r = tiny(CompressionPlacement::Baseline);
        assert_eq!(r.compression.lines(), 0);
        assert_eq!(r.energy_counts.compressions, 0);
        assert_eq!(r.energy_counts.decompressions, 0);
        assert_eq!(r.energy_counts.compressor_sites, 0);
    }

    #[test]
    fn compressed_placements_record_ratio() {
        for placement in [
            CompressionPlacement::Ideal,
            CompressionPlacement::CacheOnly,
            CompressionPlacement::CacheAndNi,
            CompressionPlacement::Disco,
        ] {
            let r = tiny(placement);
            assert!(r.compression.lines() > 0, "{placement}");
            assert!(r.compression.mean_ratio() > 1.0, "{placement}");
        }
    }

    #[test]
    fn cnc_charges_more_codec_ops_than_cc() {
        let cc = tiny(CompressionPlacement::CacheOnly);
        let cnc = tiny(CompressionPlacement::CacheAndNi);
        assert!(
            cnc.energy_counts.compressions + cnc.energy_counts.decompressions
                > cc.energy_counts.compressions + cc.energy_counts.decompressions,
            "two-level compression must do more codec work"
        );
    }

    #[test]
    fn deadline_error_reports_outstanding() {
        let err = SimBuilder::new()
            .mesh(2, 2)
            .benchmark(Benchmark::Canneal)
            .trace_len(5_000)
            .max_cycles(50)
            .run()
            .expect_err("cannot drain in 50 cycles");
        // Irrefutable without `faults` (the enum then has one variant).
        #[allow(irrefutable_let_patterns)]
        let SimError::DeadlineExceeded {
            max_cycles,
            outstanding,
            suspicious_stalls,
        } = err
        else {
            panic!("expected DeadlineExceeded, got {err:?}");
        };
        assert_eq!(max_cycles, 50);
        assert!(outstanding > 0);
        assert_eq!(suspicious_stalls, 0, "a too-small budget is not a deadlock");
        assert!(!format!("{err}").is_empty());
    }

    #[test]
    fn sc2_runs_with_trained_table() {
        let r = SimBuilder::new()
            .mesh(2, 2)
            .placement(CompressionPlacement::Disco)
            .scheme(SchemeKind::Sc2)
            .benchmark(Benchmark::X264)
            .trace_len(200)
            .seed(5)
            .run()
            .expect("drains");
        assert_eq!(r.scheme, SchemeKind::Sc2);
        assert!(
            r.compression.mean_ratio() > 1.2,
            "trained SC2 must compress x264 lines"
        );
    }

    #[test]
    fn larger_mesh_scales_home_banks() {
        let r = SimBuilder::new()
            .mesh(4, 4)
            .benchmark(Benchmark::Swaptions)
            .trace_len(100)
            .seed(5)
            .run()
            .expect("drains");
        assert_eq!(r.energy_counts.banks, 16);
        assert_eq!(r.energy_counts.routers, 16);
    }

    #[test]
    fn coherence_traffic_appears_with_sharing() {
        // Ferret has heavy sharing: invalidations must occur.
        let r = SimBuilder::new()
            .mesh(2, 2)
            .placement(CompressionPlacement::Baseline)
            .benchmark(Benchmark::Ferret)
            .trace_len(2_000)
            .seed(5)
            .run()
            .expect("drains");
        assert!(r.l1.invalidations > 0, "MOESI invalidations expected");
    }

    #[test]
    fn disco_layer_present_only_for_disco() {
        assert!(tiny(CompressionPlacement::Disco).disco.is_some());
        assert!(tiny(CompressionPlacement::Ideal).disco.is_none());
        assert!(tiny(CompressionPlacement::Baseline).disco.is_none());
    }

    #[cfg(feature = "faults")]
    fn faulty(placement: CompressionPlacement, rate: f64) -> SimReport {
        SimBuilder::new()
            .mesh(2, 2)
            .placement(placement)
            .benchmark(Benchmark::Swaptions)
            .trace_len(400)
            .seed(5)
            .faults(disco_faults::FaultPlan::uniform(5, rate))
            .run()
            .expect("faulty run drains")
    }

    #[cfg(feature = "faults")]
    #[test]
    fn rate_zero_plan_matches_fault_free_run() {
        let clean = tiny(CompressionPlacement::Disco);
        let armed = SimBuilder::new()
            .mesh(2, 2)
            .placement(CompressionPlacement::Disco)
            .benchmark(Benchmark::Swaptions)
            .trace_len(200)
            .seed(5)
            .faults(disco_faults::FaultPlan::new(5))
            .run()
            .expect("drains");
        assert!(armed.faults.is_none(), "inactive plan must be discarded");
        assert_eq!(clean.cycles, armed.cycles);
        assert_eq!(clean.total_miss_latency, armed.total_miss_latency);
        assert_eq!(clean.network, armed.network);
    }

    #[cfg(feature = "faults")]
    #[test]
    fn faulty_runs_recover_everything_and_reconcile() {
        for placement in [CompressionPlacement::Baseline, CompressionPlacement::Disco] {
            let r = faulty(placement, 1e-4);
            let f = r.faults.expect("active plan reports fault stats");
            assert!(f.reconciles(), "ledger must reconcile: {f:?}");
            assert_eq!(f.undetected, 0, "no silent corruption");
            assert_eq!(f.unrecoverable, 0, "rate 1e-4 must stay recoverable");
        }
    }

    /// A bit flip can be *masked*: the DISCO engine snapshots the raw
    /// line when an operation starts, so a flip landing on a link while
    /// the compression is in flight is erased when the codec commit
    /// overwrites the payload. The ejection check settles such faults as
    /// detected-and-recovered without a retransmission — flips are the
    /// only kind armed here, so any detection beyond the retry count is
    /// a settled masked fault, and the ledger must still reconcile.
    #[cfg(feature = "faults")]
    #[test]
    fn masked_bit_flips_settle_at_ejection() {
        let plan = disco_faults::FaultPlan {
            payload_bit_flip_rate: 5e-3,
            ..disco_faults::FaultPlan::new(1)
        };
        let r = SimBuilder::new()
            .mesh(4, 4)
            .placement(CompressionPlacement::Disco)
            .benchmark(Benchmark::Canneal)
            .trace_len(600)
            .seed(2016)
            .faults(plan)
            .run()
            .expect("faulty run drains");
        let f = r.faults.expect("active plan reports fault stats");
        assert!(f.payload_bit_flips > 0, "no flips landed: {f:?}");
        assert!(
            f.detected > f.retries,
            "config no longer exercises the masked-flip path: {f:?}"
        );
        assert!(f.reconciles(), "ledger must reconcile: {f:?}");
        assert_eq!(f.undetected, 0, "no silent corruption");
    }

    fn stats_text(r: &SimReport) -> String {
        let mut buf = Vec::new();
        r.write_stats(&mut buf).expect("in-memory write");
        String::from_utf8(buf).expect("utf8")
    }

    #[test]
    fn snapshot_mid_run_resumes_byte_identically() {
        let builder = SimBuilder::new()
            .mesh(2, 2)
            .placement(CompressionPlacement::Disco)
            .benchmark(Benchmark::Swaptions)
            .trace_len(200)
            .seed(5);
        let unbroken = builder.clone().run().expect("drains");
        let mut sys = builder.build();
        assert!(!sys.step_until(500).expect("within budget"), "still busy");
        assert_eq!(sys.now(), 500);
        let bytes = sys.snapshot();
        let resumed = System::restore(&bytes)
            .expect("restores")
            .run_to_completion()
            .expect("drains");
        assert_eq!(stats_text(&unbroken), stats_text(&resumed));
    }

    #[test]
    fn snapshot_of_restored_system_is_stable() {
        let builder = SimBuilder::new()
            .mesh(2, 2)
            .benchmark(Benchmark::Swaptions)
            .trace_len(200)
            .seed(7);
        let mut sys = builder.build();
        let _ = sys.step_until(400).expect("within budget");
        let bytes = sys.snapshot();
        let restored = System::restore(&bytes).expect("restores");
        assert_eq!(bytes, restored.snapshot(), "restore is lossless");
    }

    #[test]
    fn restore_rejects_truncated_and_corrupt_bytes() {
        let builder = SimBuilder::new()
            .mesh(2, 2)
            .benchmark(Benchmark::Swaptions)
            .trace_len(100)
            .seed(5);
        let mut sys = builder.build();
        let _ = sys.step_until(200).expect("within budget");
        let bytes = sys.snapshot();
        assert!(matches!(
            System::restore(&bytes[..bytes.len() / 2]),
            Err(SimError::SnapshotTruncated { .. } | SimError::SnapshotCorrupt { .. })
        ));
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(matches!(
            System::restore(&trailing),
            Err(SimError::SnapshotCorrupt { .. })
        ));
    }

    #[test]
    fn restore_with_flags_config_mismatch() {
        let builder = SimBuilder::new()
            .mesh(2, 2)
            .benchmark(Benchmark::Swaptions)
            .trace_len(100)
            .seed(5);
        let mut sys = builder.build();
        let _ = sys.step_until(200).expect("within budget");
        let bytes = sys.snapshot();
        let err = match System::restore_with(&bytes, &builder.clone().mesh(4, 4)) {
            Err(e) => e,
            Ok(_) => panic!("4x4 is not this snapshot's topology"),
        };
        assert!(matches!(
            err,
            SimError::SnapshotConfigMismatch { field: "cols", .. }
        ));
        assert!(System::restore_with(&bytes, &builder).is_ok());
    }

    #[cfg(feature = "faults")]
    #[test]
    fn fault_stats_reach_the_stats_file() {
        let r = faulty(CompressionPlacement::Disco, 1e-4);
        let mut buf = Vec::new();
        r.write_stats(&mut buf).expect("in-memory write");
        let text = String::from_utf8(buf).expect("utf8");
        assert!(text.contains("faults.injected = "));
        assert!(text.contains("faults.dram_stall_cycles = "));
    }
}
