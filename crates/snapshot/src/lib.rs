#![warn(missing_docs)]

//! Versioned binary checkpoint encoding for the DISCO simulator.
//!
//! The workspace is dependency-free, so checkpoints use a hand-rolled
//! little-endian format instead of an external serializer: the [`Snap`]
//! trait pairs a `snap` (encode) with a `restore` (decode), [`Writer`]
//! and [`Reader`] move bytes, and [`SnapshotHeader`] stamps every file
//! with a magic, a format version, and a **feature fingerprint** (the
//! cargo features the producing binary was compiled with), so a
//! restore into an incompatible binary fails with a typed error
//! instead of silently diverging.
//!
//! Determinism rules every implementation must follow:
//!
//! - Hash-map-backed state is written in **sorted key order** (use
//!   [`Writer::snap_map`] / [`Reader::restore_map`]); insertion-ordered
//!   containers (`Vec`, `VecDeque`, `BTreeMap`) are written in
//!   iteration order.
//! - Floating-point state is written via its IEEE-754 bit pattern
//!   ([`f64::to_bits`]), never via text formatting.
//! - Decoders never panic on malformed input: every read is
//!   bounds-checked and surfaces [`SnapError`].
//!
//! Which fields of which structs participate is governed by the
//! snapshot manifest at `crates/snapshot/manifest.txt`, enforced by
//! disco-verify lint rule 6 (`check_snapshot_manifest`): every field of
//! a manifested state struct must be declared `state` (serialized) or
//! `derived` (rebuilt from config on restore).

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::error::Error;
use std::fmt;
use std::hash::BuildHasher;

/// Magic bytes opening every snapshot stream (`DISCOSNP`).
pub const MAGIC: [u8; 8] = *b"DISCOSNP";

/// Current snapshot format version. Bump on any encoding change.
pub const FORMAT_VERSION: u32 = 1;

/// Error decoding a snapshot stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapError {
    /// The stream ended before the decoder finished.
    Truncated {
        /// Byte offset at which the read ran past the end.
        offset: usize,
    },
    /// The stream does not begin with the snapshot magic.
    BadMagic,
    /// The stream's format version differs from this binary's.
    VersionMismatch {
        /// Version recorded in the stream.
        found: u32,
        /// Version this binary reads/writes.
        expected: u32,
    },
    /// The stream was produced by a binary compiled with different
    /// cargo features (e.g. `faults` state cannot restore without it).
    FeatureMismatch {
        /// Fingerprint recorded in the stream.
        found: u32,
        /// Fingerprint of this binary.
        expected: u32,
    },
    /// A decoded value is structurally invalid (bad enum tag, length
    /// inconsistent with the rebuilt structure, ...).
    Malformed {
        /// What was being decoded and why it is invalid.
        detail: String,
    },
}

impl fmt::Display for SnapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapError::Truncated { offset } => {
                write!(f, "snapshot truncated: read past end at byte {offset}")
            }
            SnapError::BadMagic => write!(f, "not a DISCO snapshot (bad magic)"),
            SnapError::VersionMismatch { found, expected } => write!(
                f,
                "snapshot format version {found} but this binary reads version {expected}"
            ),
            SnapError::FeatureMismatch { found, expected } => write!(
                f,
                "snapshot feature fingerprint {found:#06b} but this binary is {expected:#06b} \
                 (rebuild with the same cargo features the snapshot was taken with)"
            ),
            SnapError::Malformed { detail } => write!(f, "malformed snapshot: {detail}"),
        }
    }
}

impl Error for SnapError {}

/// Convenience constructor for [`SnapError::Malformed`].
pub fn malformed(detail: impl Into<String>) -> SnapError {
    SnapError::Malformed {
        detail: detail.into(),
    }
}

/// Append-only little-endian byte sink.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Finishes, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes raw bytes verbatim.
    pub fn bytes(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }

    /// Writes one value.
    pub fn put<T: Snap>(&mut self, v: &T) {
        v.snap(self);
    }

    /// Writes a hash map in sorted-key order (determinism contract).
    pub fn snap_map<K, V, S>(&mut self, map: &HashMap<K, V, S>)
    where
        K: Snap + Ord + Eq + std::hash::Hash,
        V: Snap,
        S: BuildHasher,
    {
        let mut keys: Vec<&K> = map.keys().collect();
        keys.sort();
        (keys.len() as u64).snap(self);
        for k in keys {
            k.snap(self);
            map[k].snap(self);
        }
    }
}

/// Bounds-checked little-endian byte source.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Reads from `buf`, starting at offset 0.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Current byte offset.
    pub fn offset(&self) -> usize {
        self.pos
    }

    /// True when every byte has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.pos >= self.buf.len()
    }

    /// Takes `n` raw bytes.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], SnapError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or(SnapError::Truncated { offset: self.pos })?;
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    /// Reads one value.
    pub fn take<T: Snap>(&mut self) -> Result<T, SnapError> {
        T::restore(self)
    }

    /// Reads a length prefix, rejecting lengths the remaining stream
    /// cannot possibly hold (each element is ≥ 1 byte).
    pub fn take_len(&mut self) -> Result<usize, SnapError> {
        let n = u64::restore(self)? as usize;
        if n > self.buf.len().saturating_sub(self.pos) {
            return Err(malformed(format!(
                "length prefix {n} exceeds remaining {} bytes",
                self.buf.len() - self.pos
            )));
        }
        Ok(n)
    }

    /// Reads a map written by [`Writer::snap_map`].
    pub fn restore_map<K, V, S>(&mut self) -> Result<HashMap<K, V, S>, SnapError>
    where
        K: Snap + Eq + std::hash::Hash,
        V: Snap,
        S: BuildHasher + Default,
    {
        let n = self.take_len()?;
        let mut map = HashMap::with_capacity_and_hasher(n, S::default());
        for _ in 0..n {
            let k = K::restore(self)?;
            let v = V::restore(self)?;
            map.insert(k, v);
        }
        Ok(map)
    }
}

/// A type that can checkpoint itself to a [`Writer`] and rebuild from a
/// [`Reader`].
pub trait Snap: Sized {
    /// Encodes `self`.
    fn snap(&self, w: &mut Writer);
    /// Decodes one value.
    fn restore(r: &mut Reader<'_>) -> Result<Self, SnapError>;
}

macro_rules! snap_int {
    ($($t:ty),*) => {$(
        impl Snap for $t {
            fn snap(&self, w: &mut Writer) {
                w.bytes(&self.to_le_bytes());
            }
            fn restore(r: &mut Reader<'_>) -> Result<Self, SnapError> {
                let b = r.bytes(std::mem::size_of::<$t>())?;
                Ok(<$t>::from_le_bytes(b.try_into().expect("sized read")))
            }
        }
    )*};
}

snap_int!(u8, u16, u32, u64, i64);

impl Snap for usize {
    fn snap(&self, w: &mut Writer) {
        (*self as u64).snap(w);
    }
    fn restore(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        Ok(u64::restore(r)? as usize)
    }
}

impl Snap for bool {
    fn snap(&self, w: &mut Writer) {
        (*self as u8).snap(w);
    }
    fn restore(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        match u8::restore(r)? {
            0 => Ok(false),
            1 => Ok(true),
            n => Err(malformed(format!("bool tag {n}"))),
        }
    }
}

impl Snap for f64 {
    fn snap(&self, w: &mut Writer) {
        self.to_bits().snap(w);
    }
    fn restore(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        Ok(f64::from_bits(u64::restore(r)?))
    }
}

impl Snap for String {
    fn snap(&self, w: &mut Writer) {
        (self.len() as u64).snap(w);
        w.bytes(self.as_bytes());
    }
    fn restore(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        let n = r.take_len()?;
        let b = r.bytes(n)?;
        String::from_utf8(b.to_vec()).map_err(|_| malformed("non-UTF-8 string"))
    }
}

impl<T: Snap> Snap for Vec<T> {
    fn snap(&self, w: &mut Writer) {
        (self.len() as u64).snap(w);
        for v in self {
            v.snap(w);
        }
    }
    fn restore(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        let n = r.take_len()?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(T::restore(r)?);
        }
        Ok(out)
    }
}

impl<T: Snap> Snap for VecDeque<T> {
    fn snap(&self, w: &mut Writer) {
        (self.len() as u64).snap(w);
        for v in self {
            v.snap(w);
        }
    }
    fn restore(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        let n = r.take_len()?;
        let mut out = VecDeque::with_capacity(n);
        for _ in 0..n {
            out.push_back(T::restore(r)?);
        }
        Ok(out)
    }
}

impl<T: Snap> Snap for Option<T> {
    fn snap(&self, w: &mut Writer) {
        match self {
            None => 0u8.snap(w),
            Some(v) => {
                1u8.snap(w);
                v.snap(w);
            }
        }
    }
    fn restore(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        match u8::restore(r)? {
            0 => Ok(None),
            1 => Ok(Some(T::restore(r)?)),
            n => Err(malformed(format!("Option tag {n}"))),
        }
    }
}

impl<A: Snap, B: Snap> Snap for (A, B) {
    fn snap(&self, w: &mut Writer) {
        self.0.snap(w);
        self.1.snap(w);
    }
    fn restore(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        Ok((A::restore(r)?, B::restore(r)?))
    }
}

impl<A: Snap, B: Snap, C: Snap> Snap for (A, B, C) {
    fn snap(&self, w: &mut Writer) {
        self.0.snap(w);
        self.1.snap(w);
        self.2.snap(w);
    }
    fn restore(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        Ok((A::restore(r)?, B::restore(r)?, C::restore(r)?))
    }
}

impl<T: Snap + Default + Copy, const N: usize> Snap for [T; N] {
    fn snap(&self, w: &mut Writer) {
        for v in self {
            v.snap(w);
        }
    }
    fn restore(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        let mut out = [T::default(); N];
        for slot in &mut out {
            *slot = T::restore(r)?;
        }
        Ok(out)
    }
}

impl<K: Snap + Ord, V: Snap> Snap for BTreeMap<K, V> {
    fn snap(&self, w: &mut Writer) {
        (self.len() as u64).snap(w);
        for (k, v) in self {
            k.snap(w);
            v.snap(w);
        }
    }
    fn restore(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        let n = r.take_len()?;
        let mut out = BTreeMap::new();
        for _ in 0..n {
            let k = K::restore(r)?;
            let v = V::restore(r)?;
            out.insert(k, v);
        }
        Ok(out)
    }
}

/// Implements [`Snap`] for a struct by listing its fields in order.
/// Must be invoked in a scope with access to every listed field (the
/// defining module, for private fields).
#[macro_export]
macro_rules! snap_fields {
    ($ty:ty { $($field:ident),* $(,)? }) => {
        impl $crate::Snap for $ty {
            fn snap(&self, w: &mut $crate::Writer) {
                $( $crate::Snap::snap(&self.$field, w); )*
            }
            fn restore(r: &mut $crate::Reader<'_>) -> Result<Self, $crate::SnapError> {
                Ok(Self { $( $field: $crate::Snap::restore(r)? ),* })
            }
        }
    };
}

/// The header opening every snapshot stream: magic, format version,
/// and the cargo-feature fingerprint of the producing binary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotHeader {
    /// Format version ([`FORMAT_VERSION`] at write time).
    pub version: u32,
    /// Bitmask of the producing binary's cargo features.
    pub fingerprint: u32,
}

impl SnapshotHeader {
    /// Writes magic + version + fingerprint.
    pub fn write(&self, w: &mut Writer) {
        w.bytes(&MAGIC);
        self.version.snap(w);
        self.fingerprint.snap(w);
    }

    /// Reads and validates the magic and version; the caller compares
    /// the returned fingerprint against its own.
    pub fn read(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        let magic = r.bytes(MAGIC.len())?;
        if magic != MAGIC {
            return Err(SnapError::BadMagic);
        }
        let version = u32::restore(r)?;
        if version != FORMAT_VERSION {
            return Err(SnapError::VersionMismatch {
                found: version,
                expected: FORMAT_VERSION,
            });
        }
        let fingerprint = u32::restore(r)?;
        Ok(SnapshotHeader {
            version,
            fingerprint,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = Writer::new();
        w.put(&42u64);
        w.put(&7u8);
        w.put(&true);
        w.put(&(-3i64));
        w.put(&1.5f64);
        w.put(&"hello".to_string());
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.take::<u64>().unwrap(), 42);
        assert_eq!(r.take::<u8>().unwrap(), 7);
        assert!(r.take::<bool>().unwrap());
        assert_eq!(r.take::<i64>().unwrap(), -3);
        assert_eq!(r.take::<f64>().unwrap(), 1.5);
        assert_eq!(r.take::<String>().unwrap(), "hello");
        assert!(r.is_exhausted());
    }

    #[test]
    fn containers_round_trip() {
        let mut w = Writer::new();
        w.put(&vec![1u64, 2, 3]);
        w.put(&Some(9u32));
        w.put(&Option::<u32>::None);
        let mut dq = VecDeque::new();
        dq.push_back(5u64);
        w.put(&dq);
        let mut bt = BTreeMap::new();
        bt.insert(2u64, 20u64);
        bt.insert(1u64, 10u64);
        w.put(&bt);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.take::<Vec<u64>>().unwrap(), vec![1, 2, 3]);
        assert_eq!(r.take::<Option<u32>>().unwrap(), Some(9));
        assert_eq!(r.take::<Option<u32>>().unwrap(), None);
        assert_eq!(r.take::<VecDeque<u64>>().unwrap(), dq);
        assert_eq!(r.take::<BTreeMap<u64, u64>>().unwrap(), bt);
    }

    #[test]
    fn hash_maps_serialize_sorted() {
        let mut a: HashMap<u64, u64> = HashMap::new();
        let mut b: HashMap<u64, u64> = HashMap::new();
        for k in 0..64u64 {
            a.insert(k, k * 2);
        }
        for k in (0..64u64).rev() {
            b.insert(k, k * 2);
        }
        let mut wa = Writer::new();
        wa.snap_map(&a);
        let mut wb = Writer::new();
        wb.snap_map(&b);
        assert_eq!(wa.into_bytes(), wb.into_bytes());
    }

    #[test]
    fn truncated_stream_is_a_typed_error() {
        let mut w = Writer::new();
        w.put(&vec![1u64, 2, 3]);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes[..bytes.len() - 1]);
        match r.take::<Vec<u64>>() {
            Err(SnapError::Truncated { .. }) => {}
            other => panic!("expected Truncated, got {other:?}"),
        }
    }

    #[test]
    fn hostile_length_prefix_is_rejected() {
        let mut w = Writer::new();
        w.put(&u64::MAX);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(matches!(
            r.take::<Vec<u64>>(),
            Err(SnapError::Malformed { .. })
        ));
    }

    #[test]
    fn header_round_trip_and_mismatches() {
        let hdr = SnapshotHeader {
            version: FORMAT_VERSION,
            fingerprint: 0b1010,
        };
        let mut w = Writer::new();
        hdr.write(&mut w);
        let bytes = w.into_bytes();
        assert_eq!(SnapshotHeader::read(&mut Reader::new(&bytes)).unwrap(), hdr);

        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert_eq!(
            SnapshotHeader::read(&mut Reader::new(&bad)),
            Err(SnapError::BadMagic)
        );

        let mut wrong_ver = Writer::new();
        wrong_ver.bytes(&MAGIC);
        wrong_ver.put(&(FORMAT_VERSION + 1));
        wrong_ver.put(&0u32);
        let wv = wrong_ver.into_bytes();
        assert!(matches!(
            SnapshotHeader::read(&mut Reader::new(&wv)),
            Err(SnapError::VersionMismatch { .. })
        ));
    }

    #[test]
    fn snap_fields_macro_round_trips() {
        struct Demo {
            a: u64,
            b: Vec<u16>,
        }
        snap_fields!(Demo { a, b });
        let d = Demo {
            a: 5,
            b: vec![1, 2],
        };
        let mut w = Writer::new();
        w.put(&d);
        let bytes = w.into_bytes();
        let back: Demo = Reader::new(&bytes).take().unwrap();
        assert_eq!(back.a, 5);
        assert_eq!(back.b, vec![1, 2]);
    }
}
