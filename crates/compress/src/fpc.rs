//! Frequent Pattern Compression (Alameldeen & Wood, ISCA'04).
//!
//! Each 32-bit word is encoded with a 3-bit prefix selecting one of seven
//! frequent patterns (plus an uncompressed escape). Runs of up to eight
//! consecutive zero words share a single prefix + 3-bit run length, which is
//! where FPC gets most of its ratio on sparse data.

use crate::bitio::{fits_signed, sign_extend, BitReader, BitWriter};
use crate::line::{CacheLine, WORDS32};
use crate::scheme::{CompressedLine, Compressor, SchemeKind};
use crate::DecompressError;

/// 3-bit prefixes, following the original FPC pattern table.
const P_ZERO_RUN: u64 = 0b000;
const P_SE4: u64 = 0b001;
const P_SE8: u64 = 0b010;
const P_SE16: u64 = 0b011;
const P_HALF_PADDED: u64 = 0b100;
const P_TWO_HALF_SE8: u64 = 0b101;
const P_REPEATED_BYTE: u64 = 0b110;
const P_UNCOMPRESSED: u64 = 0b111;

/// Frequent Pattern Compression codec.
///
/// ```
/// use disco_compress::{CacheLine, fpc::FpcCodec, scheme::Compressor};
///
/// # fn main() -> Result<(), disco_compress::DecompressError> {
/// let codec = FpcCodec::new();
/// // Small sign-extended integers compress to ~1/4 of the line.
/// let line = CacheLine::from_u32_words([3; 16]);
/// let enc = codec.compress(&line);
/// assert!(enc.size_bytes() < 16);
/// assert_eq!(codec.decompress(&enc)?, line);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct FpcCodec {
    _private: (),
}

impl FpcCodec {
    /// Creates the codec.
    pub fn new() -> Self {
        FpcCodec { _private: () }
    }

    fn encode_word(w: &mut BitWriter, word: u32) {
        let sword = word as i32 as i64;
        if fits_signed(sword, 4) {
            w.write_bits(P_SE4, 3);
            w.write_bits(word as u64 & 0xf, 4);
        } else if fits_signed(sword, 8) {
            w.write_bits(P_SE8, 3);
            w.write_bits(word as u64 & 0xff, 8);
        } else if fits_signed(sword, 16) {
            w.write_bits(P_SE16, 3);
            w.write_bits(word as u64 & 0xffff, 16);
        } else if word & 0xffff == 0 {
            // Halfword of data padded with a zero halfword.
            w.write_bits(P_HALF_PADDED, 3);
            w.write_bits((word >> 16) as u64, 16);
        } else if fits_signed((word & 0xffff) as i16 as i64, 8)
            && fits_signed((word >> 16) as i16 as i64, 8)
        {
            // Two halfwords, each representable as a sign-extended byte.
            w.write_bits(P_TWO_HALF_SE8, 3);
            w.write_bits((word >> 16) as u64 & 0xff, 8);
            w.write_bits(word as u64 & 0xff, 8);
        } else {
            let bytes = word.to_le_bytes();
            if bytes.iter().all(|&b| b == bytes[0]) {
                w.write_bits(P_REPEATED_BYTE, 3);
                w.write_bits(bytes[0] as u64, 8);
            } else {
                w.write_bits(P_UNCOMPRESSED, 3);
                w.write_bits(word as u64, 32);
            }
        }
    }

    fn decode_word(r: &mut BitReader<'_>, prefix: u64) -> Result<u32, DecompressError> {
        Ok(match prefix {
            P_SE4 => sign_extend(r.read_bits(4)?, 4) as u32,
            P_SE8 => sign_extend(r.read_bits(8)?, 8) as u32,
            P_SE16 => sign_extend(r.read_bits(16)?, 16) as u32,
            P_HALF_PADDED => (r.read_bits(16)? as u32) << 16,
            P_TWO_HALF_SE8 => {
                let hi = sign_extend(r.read_bits(8)?, 8) as u32 & 0xffff;
                let lo = sign_extend(r.read_bits(8)?, 8) as u32 & 0xffff;
                (hi << 16) | lo
            }
            P_REPEATED_BYTE => {
                let b = r.read_bits(8)? as u32;
                b | (b << 8) | (b << 16) | (b << 24)
            }
            P_UNCOMPRESSED => r.read_bits(32)? as u32,
            _ => return Err(DecompressError::Invalid("bad FPC prefix")),
        })
    }
}

impl Compressor for FpcCodec {
    fn kind(&self) -> SchemeKind {
        SchemeKind::Fpc
    }

    fn compress(&self, line: &CacheLine) -> CompressedLine {
        let words = line.u32_words();
        let mut w = BitWriter::new();
        let mut i = 0;
        while i < WORDS32 {
            if words[i] == 0 {
                let mut run = 1;
                while i + run < WORDS32 && words[i + run] == 0 && run < 8 {
                    run += 1;
                }
                w.write_bits(P_ZERO_RUN, 3);
                w.write_bits(run as u64 - 1, 3);
                i += run;
            } else {
                Self::encode_word(&mut w, words[i]);
                i += 1;
            }
        }
        let (data, bits) = w.finish();
        CompressedLine::new(SchemeKind::Fpc, data, bits)
    }

    fn decompress(&self, compressed: &CompressedLine) -> Result<CacheLine, DecompressError> {
        if compressed.scheme() != SchemeKind::Fpc {
            return Err(DecompressError::SchemeMismatch {
                expected: SchemeKind::Fpc,
                found: compressed.scheme(),
            });
        }
        let mut r = BitReader::new(compressed.data(), compressed.size_bits());
        let mut words = [0u32; WORDS32];
        let mut i = 0;
        while i < WORDS32 {
            let prefix = r.read_bits(3)?;
            if prefix == P_ZERO_RUN {
                let run = r.read_bits(3)? as usize + 1;
                if i + run > WORDS32 {
                    return Err(DecompressError::Invalid("zero run overflows line"));
                }
                i += run; // words already zero
            } else {
                words[i] = Self::decode_word(&mut r, prefix)?;
                i += 1;
            }
        }
        Ok(CacheLine::from_u32_words(words))
    }

    /// FPC compresses a line in parallel pattern matchers; we charge 3
    /// cycles (Table 1 leaves the entry blank; the original paper pipelines
    /// compression off the critical path).
    fn compression_latency(&self) -> u64 {
        3
    }

    /// Table 1: 5-cycle decompression.
    fn decompression_latency(&self, _compressed: &CompressedLine) -> u64 {
        5
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn codec() -> FpcCodec {
        FpcCodec::new()
    }

    #[test]
    fn zero_line_uses_runs() {
        let enc = codec().compress(&CacheLine::zeroed());
        // 16 zero words = two runs of 8 = 2 * 6 bits = 12 bits = 2 bytes.
        assert_eq!(enc.size_bits(), 12);
        assert_eq!(codec().decompress(&enc).unwrap(), CacheLine::zeroed());
    }

    #[test]
    fn small_ints_compress_4x() {
        let line = CacheLine::from_u32_words([7; 16]);
        let enc = codec().compress(&line);
        assert_eq!(enc.size_bits(), 16 * 7); // 3+4 bits per word
        assert_eq!(codec().decompress(&enc).unwrap(), line);
    }

    #[test]
    fn negative_small_ints_sign_extend() {
        let line = CacheLine::from_u32_words([(-3i32) as u32; 16]);
        let enc = codec().compress(&line);
        assert_eq!(enc.size_bits(), 16 * 7);
        assert_eq!(codec().decompress(&enc).unwrap(), line);
    }

    #[test]
    fn halfword_padded_pattern() {
        let line = CacheLine::from_u32_words([0x1234_0000; 16]);
        let enc = codec().compress(&line);
        assert_eq!(enc.size_bits(), 16 * 19);
        assert_eq!(codec().decompress(&enc).unwrap(), line);
    }

    #[test]
    fn two_halfwords_pattern() {
        let line = CacheLine::from_u32_words([0x0011_0022; 16]);
        let enc = codec().compress(&line);
        assert_eq!(enc.size_bits(), 16 * 19);
        assert_eq!(codec().decompress(&enc).unwrap(), line);
    }

    #[test]
    fn repeated_byte_pattern() {
        let line = CacheLine::from_u32_words([0xabab_abab; 16]);
        let enc = codec().compress(&line);
        assert_eq!(enc.size_bits(), 16 * 11);
        assert_eq!(codec().decompress(&enc).unwrap(), line);
    }

    #[test]
    fn incompressible_line_escapes() {
        let mut words = [0u32; 16];
        for (i, w) in words.iter_mut().enumerate() {
            *w = 0x9e37_79b9u32.wrapping_mul(i as u32 + 1) | 0x0101_0101;
        }
        let line = CacheLine::from_u32_words(words);
        let enc = codec().compress(&line);
        assert_eq!(codec().decompress(&enc).unwrap(), line);
        // escape costs 3 extra bits per word, so up to 70 bytes, clamped to 64
        assert!(enc.size_bytes() <= 64);
    }

    #[test]
    fn latencies_match_table1() {
        let enc = codec().compress(&CacheLine::zeroed());
        assert_eq!(codec().decompression_latency(&enc), 5);
    }

    #[test]
    fn zero_run_limited_to_eight() {
        // 9 zero words then data: must emit run(8) + run(1).
        let mut words = [0u32; 16];
        for w in words.iter_mut().skip(9) {
            *w = 0xdead_beef;
        }
        let line = CacheLine::from_u32_words(words);
        let enc = codec().compress(&line);
        assert_eq!(codec().decompress(&enc).unwrap(), line);
    }

    proptest! {
        #[test]
        fn roundtrip_random(words in proptest::array::uniform16(any::<u32>())) {
            let line = CacheLine::from_u32_words(words);
            let enc = codec().compress(&line);
            prop_assert_eq!(codec().decompress(&enc).unwrap(), line);
        }

        #[test]
        fn roundtrip_sparse(words in proptest::array::uniform16(prop_oneof![
            Just(0u32),
            0u32..256,
            any::<u32>(),
        ])) {
            let line = CacheLine::from_u32_words(words);
            let enc = codec().compress(&line);
            prop_assert_eq!(codec().decompress(&enc).unwrap(), line);
        }
    }
}
