//! C-Pack: Cache Packer (Chen et al., IEEE TVLSI 2010).
//!
//! Combines static frequent patterns with a small FIFO dictionary of
//! recently seen 32-bit words. Partial dictionary matches (upper 3 or 2
//! bytes) capture pointer-heavy data that pure pattern schemes miss. The
//! decompressor replays the identical dictionary-update policy, so the
//! dictionary never travels with the line.

use crate::bitio::{BitReader, BitWriter};
use crate::line::{CacheLine, WORDS32};
use crate::scheme::{CompressedLine, Compressor, SchemeKind};
use crate::DecompressError;

const DICT_ENTRIES: usize = 16;

/// Pattern codes (prefix, prefix bits, payload bits) from the C-Pack paper.
const ZZZZ: u64 = 0b00; // zero word
const XXXX: u64 = 0b01; // uncompressed + dict push
const MMMM: u64 = 0b10; // full dictionary match
const MMXX: u64 = 0b1100; // upper-2-byte match + 2 literal bytes
const ZZZX: u64 = 0b1101; // three zero bytes + 1 literal byte
const MMMX: u64 = 0b1110; // upper-3-byte match + 1 literal byte

/// FIFO dictionary shared (by construction) between encode and decode.
#[derive(Debug, Clone)]
struct Dictionary {
    entries: Vec<u32>,
    next: usize,
}

impl Dictionary {
    fn new() -> Self {
        Dictionary {
            entries: vec![0; DICT_ENTRIES],
            next: 0,
        }
    }

    fn push(&mut self, word: u32) {
        self.entries[self.next] = word;
        self.next = (self.next + 1) % DICT_ENTRIES;
    }

    /// Best match: returns (index, matched_bytes) with matched_bytes in
    /// {4, 3, 2}, preferring fuller matches, then lower indices.
    fn best_match(&self, word: u32) -> Option<(usize, u32)> {
        let mut best: Option<(usize, u32)> = None;
        for (i, &e) in self.entries.iter().enumerate() {
            let matched = if e == word {
                4
            } else if (e ^ word) & 0xffff_ff00 == 0 {
                3
            } else if (e ^ word) & 0xffff_0000 == 0 {
                2
            } else {
                continue;
            };
            if best.is_none_or(|(_, m)| matched > m) {
                best = Some((i, matched));
            }
        }
        best
    }
}

/// The C-Pack codec.
///
/// ```
/// use disco_compress::{CacheLine, cpack::CPackCodec, scheme::Compressor};
///
/// # fn main() -> Result<(), disco_compress::DecompressError> {
/// let codec = CPackCodec::new();
/// // Pointer-like words sharing the upper bytes: dictionary matches.
/// let mut words = [0u32; 16];
/// for (i, w) in words.iter_mut().enumerate() {
///     *w = 0x7ffe_1000 + (i as u32) * 4;
/// }
/// let line = CacheLine::from_u32_words(words);
/// let enc = codec.compress(&line);
/// assert!(enc.is_compressed());
/// assert_eq!(codec.decompress(&enc)?, line);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct CPackCodec {
    _private: (),
}

impl CPackCodec {
    /// Creates the codec with the paper's 16-entry (64 B) dictionary.
    pub fn new() -> Self {
        CPackCodec { _private: () }
    }
}

impl Compressor for CPackCodec {
    fn kind(&self) -> SchemeKind {
        SchemeKind::CPack
    }

    fn compress(&self, line: &CacheLine) -> CompressedLine {
        let mut dict = Dictionary::new();
        let mut w = BitWriter::new();
        for word in line.u32_words() {
            if word == 0 {
                w.write_bits(ZZZZ, 2);
                continue;
            }
            let m = dict.best_match(word);
            if let Some((idx, 4)) = m {
                w.write_bits(MMMM, 2);
                w.write_bits(idx as u64, 4);
                continue;
            }
            if word & 0xffff_ff00 == 0 {
                w.write_bits(ZZZX, 4);
                w.write_bits(word as u64 & 0xff, 8);
                continue;
            }
            match m {
                Some((idx, 3)) => {
                    w.write_bits(MMMX, 4);
                    w.write_bits(idx as u64, 4);
                    w.write_bits(word as u64 & 0xff, 8);
                    dict.push(word);
                }
                Some((idx, 2)) => {
                    w.write_bits(MMXX, 4);
                    w.write_bits(idx as u64, 4);
                    w.write_bits(word as u64 & 0xffff, 16);
                    dict.push(word);
                }
                _ => {
                    w.write_bits(XXXX, 2);
                    w.write_bits(word as u64, 32);
                    dict.push(word);
                }
            }
        }
        let (data, bits) = w.finish();
        CompressedLine::new(SchemeKind::CPack, data, bits)
    }

    fn decompress(&self, compressed: &CompressedLine) -> Result<CacheLine, DecompressError> {
        if compressed.scheme() != SchemeKind::CPack {
            return Err(DecompressError::SchemeMismatch {
                expected: SchemeKind::CPack,
                found: compressed.scheme(),
            });
        }
        let mut dict = Dictionary::new();
        let mut r = BitReader::new(compressed.data(), compressed.size_bits());
        let mut words = [0u32; WORDS32];
        for word in words.iter_mut() {
            let p2 = r.read_bits(2)?;
            *word = match p2 {
                ZZZZ => 0,
                XXXX => {
                    let v = r.read_bits(32)? as u32;
                    dict.push(v);
                    v
                }
                MMMM => {
                    let idx = r.read_bits(4)? as usize;
                    dict.entries[idx]
                }
                _ => {
                    // 4-bit prefixes all start with 11.
                    let p4 = (p2 << 2) | r.read_bits(2)?;
                    match p4 {
                        MMXX => {
                            let idx = r.read_bits(4)? as usize;
                            let lit = r.read_bits(16)? as u32;
                            let v = (dict.entries[idx] & 0xffff_0000) | lit;
                            dict.push(v);
                            v
                        }
                        ZZZX => r.read_bits(8)? as u32,
                        MMMX => {
                            let idx = r.read_bits(4)? as usize;
                            let lit = r.read_bits(8)? as u32;
                            let v = (dict.entries[idx] & 0xffff_ff00) | lit;
                            dict.push(v);
                            v
                        }
                        _ => return Err(DecompressError::Invalid("bad C-Pack prefix")),
                    }
                }
            };
        }
        Ok(CacheLine::from_u32_words(words))
    }

    /// C-Pack compresses two words per cycle: 8 cycles for 16 words.
    fn compression_latency(&self) -> u64 {
        8
    }

    /// Table 1: 8-cycle decompression.
    fn decompression_latency(&self, _compressed: &CompressedLine) -> u64 {
        8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn codec() -> CPackCodec {
        CPackCodec::new()
    }

    #[test]
    fn zero_line_is_two_bits_per_word() {
        let enc = codec().compress(&CacheLine::zeroed());
        assert_eq!(enc.size_bits(), 32);
        assert_eq!(codec().decompress(&enc).unwrap(), CacheLine::zeroed());
    }

    #[test]
    fn repeated_word_hits_dictionary() {
        let line = CacheLine::from_u32_words([0xdead_beef; 16]);
        let enc = codec().compress(&line);
        // First word xxxx (34 bits), 15 full matches (6 bits each).
        assert_eq!(enc.size_bits(), 34 + 15 * 6);
        assert_eq!(codec().decompress(&enc).unwrap(), line);
    }

    #[test]
    fn pointer_run_uses_partial_matches() {
        let mut words = [0u32; 16];
        for (i, w) in words.iter_mut().enumerate() {
            *w = 0x4000_0000 + (i as u32) * 8;
        }
        let line = CacheLine::from_u32_words(words);
        let enc = codec().compress(&line);
        assert!(enc.size_bits() < 16 * 34);
        assert_eq!(codec().decompress(&enc).unwrap(), line);
    }

    #[test]
    fn near_zero_words_use_zzzx() {
        let line = CacheLine::from_u32_words([0x0000_0042; 16]);
        let enc = codec().compress(&line);
        assert_eq!(enc.size_bits(), 16 * 12);
        assert_eq!(codec().decompress(&enc).unwrap(), line);
    }

    #[test]
    fn dictionary_is_fifo() {
        // 17 distinct words overflow the 16-entry FIFO; the 18th word equals
        // word 0, which must already be evicted, so it re-escapes as xxxx.
        let mut words = [0u32; 16];
        for (i, w) in words.iter_mut().enumerate() {
            *w = 0x1111_0000u32.wrapping_mul(i as u32 + 1) | 0x8000_0001;
        }
        let line = CacheLine::from_u32_words(words);
        let enc = codec().compress(&line);
        assert_eq!(codec().decompress(&enc).unwrap(), line);
    }

    #[test]
    fn incompressible_line_roundtrips() {
        let mut words = [0u32; 16];
        let mut x = 0x1357_9bdfu32;
        for w in words.iter_mut() {
            x = x.wrapping_mul(0x0019_660d).wrapping_add(0x3c6e_f35f);
            *w = x;
        }
        let line = CacheLine::from_u32_words(words);
        let enc = codec().compress(&line);
        assert_eq!(codec().decompress(&enc).unwrap(), line);
    }

    proptest! {
        #[test]
        fn roundtrip_random(words in proptest::array::uniform16(any::<u32>())) {
            let line = CacheLine::from_u32_words(words);
            let enc = codec().compress(&line);
            prop_assert_eq!(codec().decompress(&enc).unwrap(), line);
        }

        #[test]
        fn roundtrip_shared_upper_bytes(hi in any::<u16>(), los in proptest::array::uniform16(any::<u16>())) {
            let mut words = [0u32; 16];
            for i in 0..16 {
                words[i] = ((hi as u32) << 16) | los[i] as u32;
            }
            let line = CacheLine::from_u32_words(words);
            let enc = codec().compress(&line);
            prop_assert_eq!(codec().decompress(&enc).unwrap(), line);
        }
    }
}
