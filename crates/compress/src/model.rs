//! Hardware cost parameters of the evaluated schemes (paper Table 1).
//!
//! The simulator uses the *measured* compressed sizes from the codecs for
//! flit counts and cache occupancy, and these published parameters for
//! cycle costs and the area/overhead bookkeeping of §4.3.

use crate::scheme::SchemeKind;

/// Published parameters of one compression scheme (one Table 1 row).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SchemeModel {
    /// Scheme identity.
    pub kind: SchemeKind,
    /// Compression latency in cycles (`None` = not reported in Table 1).
    pub compression_cycles: Option<u64>,
    /// Decompression latency in cycles (min, max).
    pub decompression_cycles: (u64, u64),
    /// Hardware overhead as a fraction of the cache it serves (min, max).
    /// `None` = not reported.
    pub hardware_overhead: Option<(f64, f64)>,
    /// Compression ratio reported in the literature (`None` = not
    /// reported in Table 1).
    pub reported_ratio: Option<f64>,
}

impl SchemeModel {
    /// Looks up the Table 1 row for a scheme.
    ///
    /// The Delta row is the paper's own configuration (Table 2:
    /// "1 cycle compression, 3-cycle decompression"); its ratio is close to
    /// BDI's since it is a BDI-family codec.
    pub fn for_kind(kind: SchemeKind) -> SchemeModel {
        TABLE1
            .iter()
            .copied()
            .find(|m| m.kind == kind)
            .expect("every scheme has a Table 1 row")
    }
}

/// Table 1 of the paper, extended with the Delta row from Table 2.
pub const TABLE1: [SchemeModel; 6] = [
    SchemeModel {
        kind: SchemeKind::Delta,
        compression_cycles: Some(1),
        decompression_cycles: (3, 3),
        hardware_overhead: Some((0.023, 0.023)),
        reported_ratio: Some(1.57),
    },
    SchemeModel {
        kind: SchemeKind::Fpc,
        compression_cycles: None,
        decompression_cycles: (5, 5),
        hardware_overhead: Some((0.08, 0.08)),
        reported_ratio: Some(1.5),
    },
    SchemeModel {
        kind: SchemeKind::Sfpc,
        compression_cycles: None,
        decompression_cycles: (4, 4),
        hardware_overhead: Some((0.08, 0.08)),
        reported_ratio: Some(1.33),
    },
    SchemeModel {
        kind: SchemeKind::Bdi,
        compression_cycles: Some(1),
        decompression_cycles: (1, 5),
        hardware_overhead: Some((0.023, 0.023)),
        reported_ratio: Some(1.57),
    },
    SchemeModel {
        kind: SchemeKind::Sc2,
        compression_cycles: Some(6),
        decompression_cycles: (8, 14),
        hardware_overhead: Some((0.0146, 0.039)),
        reported_ratio: Some(2.4),
    },
    SchemeModel {
        kind: SchemeKind::CPack,
        compression_cycles: Some(8),
        decompression_cycles: (8, 8),
        hardware_overhead: None,
        reported_ratio: None,
    },
];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::{Codec, Compressor};
    use crate::CacheLine;

    #[test]
    fn every_scheme_has_a_row() {
        for kind in SchemeKind::ALL {
            let row = SchemeModel::for_kind(kind);
            assert_eq!(row.kind, kind);
        }
    }

    #[test]
    fn codec_latencies_fall_within_table1() {
        for kind in SchemeKind::ALL {
            let row = SchemeModel::for_kind(kind);
            let codec = Codec::from_kind(kind);
            let enc = codec.compress(&CacheLine::zeroed());
            let d = codec.decompression_latency(&enc);
            assert!(
                d >= row.decompression_cycles.0 && d <= row.decompression_cycles.1,
                "{kind}: decompression latency {d} outside Table 1 range"
            );
            if let Some(c) = row.compression_cycles {
                assert_eq!(codec.compression_latency(), c, "{kind}");
            }
        }
    }

    #[test]
    fn sc2_has_the_highest_reported_ratio() {
        let sc2 = SchemeModel::for_kind(SchemeKind::Sc2)
            .reported_ratio
            .unwrap();
        for kind in SchemeKind::ALL {
            if let Some(r) = SchemeModel::for_kind(kind).reported_ratio {
                assert!(r <= sc2);
            }
        }
    }
}
