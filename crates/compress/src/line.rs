//! The 64-byte cache line all codecs operate on.

use std::fmt;

/// Size of a cache line in bytes (Table 2: 64 B lines).
pub const LINE_BYTES: usize = 64;
/// Number of 32-bit words in a line.
pub const WORDS32: usize = LINE_BYTES / 4;
/// Number of 64-bit words (= 8-byte flits) in a line.
pub const WORDS64: usize = LINE_BYTES / 8;

/// A 64-byte cache line.
///
/// The DISCO router views a line as eight 8-byte *flits* (64-bit links,
/// paper §4.3); word-granular codecs such as FPC and C-Pack view it as
/// sixteen 32-bit words. Both views are exposed here.
///
/// ```
/// use disco_compress::CacheLine;
///
/// let line = CacheLine::from_u32_words([7; 16]);
/// assert_eq!(line.u32_words()[3], 7);
/// assert_eq!(line.u64_words()[0], 0x0000_0007_0000_0007);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheLine {
    bytes: [u8; LINE_BYTES],
}

impl CacheLine {
    /// A line of all zero bytes.
    pub fn zeroed() -> Self {
        CacheLine {
            bytes: [0; LINE_BYTES],
        }
    }

    /// Builds a line from raw bytes.
    pub fn from_bytes(bytes: [u8; LINE_BYTES]) -> Self {
        CacheLine { bytes }
    }

    /// Builds a line from sixteen little-endian 32-bit words.
    pub fn from_u32_words(words: [u32; WORDS32]) -> Self {
        let mut bytes = [0u8; LINE_BYTES];
        for (i, w) in words.iter().enumerate() {
            bytes[i * 4..i * 4 + 4].copy_from_slice(&w.to_le_bytes());
        }
        CacheLine { bytes }
    }

    /// Builds a line from eight little-endian 64-bit words (one per flit).
    pub fn from_u64_words(words: [u64; WORDS64]) -> Self {
        let mut bytes = [0u8; LINE_BYTES];
        for (i, w) in words.iter().enumerate() {
            bytes[i * 8..i * 8 + 8].copy_from_slice(&w.to_le_bytes());
        }
        CacheLine { bytes }
    }

    /// Raw byte view.
    pub fn as_bytes(&self) -> &[u8; LINE_BYTES] {
        &self.bytes
    }

    /// Mutable raw byte view.
    pub fn as_bytes_mut(&mut self) -> &mut [u8; LINE_BYTES] {
        &mut self.bytes
    }

    /// The line as sixteen little-endian 32-bit words.
    pub fn u32_words(&self) -> [u32; WORDS32] {
        let mut words = [0u32; WORDS32];
        for (i, w) in words.iter_mut().enumerate() {
            *w = u32::from_le_bytes(self.bytes[i * 4..i * 4 + 4].try_into().expect("4 bytes"));
        }
        words
    }

    /// The line as eight little-endian 64-bit words (8-byte flits).
    pub fn u64_words(&self) -> [u64; WORDS64] {
        let mut words = [0u64; WORDS64];
        for (i, w) in words.iter_mut().enumerate() {
            *w = u64::from_le_bytes(self.bytes[i * 8..i * 8 + 8].try_into().expect("8 bytes"));
        }
        words
    }

    /// True if every byte is zero.
    pub fn is_zero(&self) -> bool {
        self.bytes.iter().all(|&b| b == 0)
    }
}

impl Default for CacheLine {
    fn default() -> Self {
        Self::zeroed()
    }
}

impl From<[u8; LINE_BYTES]> for CacheLine {
    fn from(bytes: [u8; LINE_BYTES]) -> Self {
        Self::from_bytes(bytes)
    }
}

impl AsRef<[u8]> for CacheLine {
    fn as_ref(&self) -> &[u8] {
        &self.bytes
    }
}

impl fmt::Debug for CacheLine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CacheLine[")?;
        for (i, w) in self.u64_words().iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{w:016x}")?;
        }
        write!(f, "]")
    }
}

impl fmt::Display for CacheLine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl disco_snapshot::Snap for CacheLine {
    fn snap(&self, w: &mut disco_snapshot::Writer) {
        w.bytes(self.as_bytes());
    }
    fn restore(r: &mut disco_snapshot::Reader<'_>) -> Result<Self, disco_snapshot::SnapError> {
        let b = r.bytes(LINE_BYTES)?;
        Ok(CacheLine::from_bytes(b.try_into().expect("sized read")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_is_zero() {
        assert!(CacheLine::zeroed().is_zero());
        assert_eq!(CacheLine::default(), CacheLine::zeroed());
    }

    #[test]
    fn u32_roundtrip() {
        let mut words = [0u32; WORDS32];
        for (i, w) in words.iter_mut().enumerate() {
            *w = (i as u32) * 0x0101_0101;
        }
        let line = CacheLine::from_u32_words(words);
        assert_eq!(line.u32_words(), words);
        assert!(!line.is_zero());
    }

    #[test]
    fn u64_roundtrip() {
        let words = [0x0123_4567_89ab_cdefu64; WORDS64];
        let line = CacheLine::from_u64_words(words);
        assert_eq!(line.u64_words(), words);
    }

    #[test]
    fn u32_and_u64_views_agree() {
        let mut bytes = [0u8; LINE_BYTES];
        for (i, b) in bytes.iter_mut().enumerate() {
            *b = i as u8;
        }
        let line = CacheLine::from_bytes(bytes);
        let w32 = line.u32_words();
        let w64 = line.u64_words();
        for i in 0..WORDS64 {
            let lo = w32[2 * i] as u64;
            let hi = w32[2 * i + 1] as u64;
            assert_eq!(w64[i], lo | (hi << 32));
        }
    }

    #[test]
    fn debug_shows_words() {
        let line = CacheLine::from_u64_words([1, 0, 0, 0, 0, 0, 0, 0]);
        let s = format!("{line:?}");
        assert!(s.starts_with("CacheLine["));
        assert!(s.contains("0000000000000001"));
    }
}
