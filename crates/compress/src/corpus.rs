//! Reference corpora and size-distribution statistics for codec
//! evaluation.
//!
//! The compression literature (FPC, BDI, SC², C-Pack) characterizes
//! codecs by how encoded sizes *distribute*, not just by the mean ratio:
//! a cache with 8-byte segments cares whether lines land below 8, 16, or
//! 32 bytes. [`SizeDistribution`] captures that; [`reference_corpus`]
//! provides deterministic line families for apples-to-apples comparisons
//! without the workload crate.

use crate::line::{CacheLine, LINE_BYTES};
use crate::scheme::{CompressedLine, Compressor};

/// A deterministic line family for codec studies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LineFamily {
    /// All-zero lines.
    Zeros,
    /// 64-bit pointers walking a small region.
    PointerRun,
    /// Small 32-bit integers (counters, indices).
    SmallInts,
    /// One 32-bit pattern repeated.
    Repeated,
    /// Same-exponent floating-point-like values.
    FloatLike,
    /// High-entropy bytes (xorshift noise).
    Random,
}

impl LineFamily {
    /// All families.
    pub const ALL: [LineFamily; 6] = [
        LineFamily::Zeros,
        LineFamily::PointerRun,
        LineFamily::SmallInts,
        LineFamily::Repeated,
        LineFamily::FloatLike,
        LineFamily::Random,
    ];

    /// The `i`-th line of this family (deterministic).
    pub fn line(self, i: u64) -> CacheLine {
        let mut x = i.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        match self {
            LineFamily::Zeros => CacheLine::zeroed(),
            LineFamily::PointerRun => {
                let base = 0x7f00_0000_0000_0000u64 | (i << 12);
                let mut w = [0u64; 8];
                for (k, slot) in w.iter_mut().enumerate() {
                    *slot = base + (k as u64) * 8;
                }
                CacheLine::from_u64_words(w)
            }
            LineFamily::SmallInts => {
                let mut w = [0u32; 16];
                for slot in w.iter_mut() {
                    *slot = (next() % 128) as u32;
                }
                CacheLine::from_u32_words(w)
            }
            LineFamily::Repeated => {
                let v = (next() & 0xffff_ffff) as u32;
                CacheLine::from_u32_words([v; 16])
            }
            LineFamily::FloatLike => {
                let exp = 0x3ff0_0000_0000_0000u64;
                let mut w = [0u64; 8];
                for slot in w.iter_mut() {
                    *slot = exp | (next() & 0xf_ffff);
                }
                CacheLine::from_u64_words(w)
            }
            LineFamily::Random => {
                let mut bytes = [0u8; LINE_BYTES];
                for chunk in bytes.chunks_mut(8) {
                    chunk.copy_from_slice(&next().to_le_bytes());
                }
                CacheLine::from_bytes(bytes)
            }
        }
    }
}

/// A deterministic mixed corpus: `per_family` lines from every family.
pub fn reference_corpus(per_family: u64) -> Vec<CacheLine> {
    let mut out = Vec::with_capacity(LineFamily::ALL.len() * per_family as usize);
    for family in LineFamily::ALL {
        out.extend((0..per_family).map(|i| family.line(i)));
    }
    out
}

/// Distribution of encoded sizes over a corpus, in 8-byte segment
/// buckets (the granularity the compressed cache allocates).
///
/// ```
/// use disco_compress::{corpus::{reference_corpus, SizeDistribution}, Codec};
///
/// let dist = SizeDistribution::measure(&Codec::bdi(), &reference_corpus(64));
/// assert_eq!(dist.total(), 6 * 64);
/// assert!(dist.fraction_at_most(8) > 0.15); // the zero lines, at least
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SizeDistribution {
    /// `buckets[k]` counts lines whose encoding needs `k + 1` segments
    /// (8·(k+1) bytes); the last bucket is "uncompressed".
    buckets: [u64; LINE_BYTES / 8],
    total_bytes: u64,
}

impl SizeDistribution {
    /// Measures a codec over a corpus.
    pub fn measure<C: Compressor>(codec: &C, corpus: &[CacheLine]) -> Self {
        let mut dist = SizeDistribution {
            buckets: [0; LINE_BYTES / 8],
            total_bytes: 0,
        };
        for line in corpus {
            dist.record(&codec.compress(line));
        }
        dist
    }

    /// Records one encoding.
    pub fn record(&mut self, enc: &CompressedLine) {
        let segments = enc.size_bytes().div_ceil(8).clamp(1, LINE_BYTES / 8);
        self.buckets[segments - 1] += 1;
        self.total_bytes += enc.size_bytes() as u64;
    }

    /// Lines measured.
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Fraction of lines that fit in at most `bytes` (segment-rounded).
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is zero or exceeds the line size.
    pub fn fraction_at_most(&self, bytes: usize) -> f64 {
        assert!((1..=LINE_BYTES).contains(&bytes), "bytes must be in 1..=64");
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let upto = bytes.div_ceil(8);
        let count: u64 = self.buckets[..upto].iter().sum();
        count as f64 / total as f64
    }

    /// Mean compression ratio over the corpus.
    pub fn mean_ratio(&self) -> f64 {
        if self.total_bytes == 0 {
            return 1.0;
        }
        (self.total() * LINE_BYTES as u64) as f64 / self.total_bytes as f64
    }

    /// Count per segment bucket (index k = k+1 segments).
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::Codec;

    #[test]
    fn corpus_is_deterministic_and_sized() {
        let a = reference_corpus(16);
        let b = reference_corpus(16);
        assert_eq!(a, b);
        assert_eq!(a.len(), 96);
    }

    #[test]
    fn families_have_their_signatures() {
        assert!(LineFamily::Zeros.line(3).is_zero());
        let rep = LineFamily::Repeated.line(5).u32_words();
        assert!(rep.iter().all(|&w| w == rep[0]));
        let ptrs = LineFamily::PointerRun.line(2).u64_words();
        assert_eq!(ptrs[1] - ptrs[0], 8);
        assert_ne!(LineFamily::Random.line(0), LineFamily::Random.line(1));
    }

    #[test]
    fn distribution_counts_and_bounds() {
        let corpus = reference_corpus(32);
        let dist = SizeDistribution::measure(&Codec::delta(), &corpus);
        assert_eq!(dist.total(), corpus.len() as u64);
        // Monotone CDF.
        let mut prev = 0.0;
        for bytes in [8, 16, 24, 32, 40, 48, 56, 64] {
            let f = dist.fraction_at_most(bytes);
            assert!(f >= prev, "CDF must be monotone");
            prev = f;
        }
        assert!((dist.fraction_at_most(64) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zeros_land_in_the_first_bucket() {
        let zeros: Vec<CacheLine> = (0..10).map(|i| LineFamily::Zeros.line(i)).collect();
        let dist = SizeDistribution::measure(&Codec::delta(), &zeros);
        assert!((dist.fraction_at_most(8) - 1.0).abs() < 1e-12);
        assert!(dist.mean_ratio() >= 8.0);
    }

    #[test]
    fn random_lines_stay_uncompressed() {
        let noise: Vec<CacheLine> = (0..10).map(|i| LineFamily::Random.line(i)).collect();
        let dist = SizeDistribution::measure(&Codec::delta(), &noise);
        assert_eq!(dist.fraction_at_most(56), 0.0, "noise must not compress");
        assert!((dist.mean_ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bucket_boundaries_are_segment_granular() {
        let mut dist = SizeDistribution {
            buckets: [0; 8],
            total_bytes: 0,
        };
        let line = CacheLine::from_u64_words([5, 6, 7, 8, 9, 10, 11, 12]);
        let enc = Codec::delta().compress(&line);
        // Delta on small 64-bit values: 2 header + 8 base + 8 deltas = 18
        // bytes → 3 segments.
        assert_eq!(enc.size_bytes(), 18);
        dist.record(&enc);
        assert_eq!(dist.buckets()[2], 1);
    }

    #[test]
    #[should_panic(expected = "bytes must be")]
    fn out_of_range_fraction_panics() {
        let dist = SizeDistribution::measure(&Codec::delta(), &reference_corpus(1));
        let _ = dist.fraction_at_most(65);
    }
}
