//! The paper's dual-base delta compressor (§3.2, Fig. 4).
//!
//! A 64-byte line is viewed as eight 8-byte flits. Two base registers are
//! used: the **first flit** (`BF0`) and the **zero flit**. Every flit is
//! compared against both bases; the smaller difference wins and one
//! base-select bit per flit records the choice. If all eight differences fit
//! in the chosen delta width (1, 2 or 4 bytes), the packet payload shrinks
//! from 8 flits to `1 BF + 8 Δ` (e.g. 18 bytes with 1-byte deltas — the
//! `1BF+7ΔF` form of §4.1 plus the trivial zero delta of the base flit and a
//! two-byte header).
//!
//! [`IncrementalDelta`] implements the *separate-flit* mode of §3.3-A used
//! under wormhole flow control: flits of a packet may arrive in fragments,
//! the base registers persist across fragments, and the offset bytes of each
//! fragment are concatenated without zero bubbles so that the final merged
//! encoding is bit-identical to whole-packet compression.

use crate::line::{CacheLine, LINE_BYTES, WORDS64};
use crate::scheme::{CompressedLine, Compressor, SchemeKind};
use crate::DecompressError;

/// Encoding modes stored in the first byte.
const MODE_ZERO: u8 = 0;
const MODE_D1: u8 = 1;
const MODE_D2: u8 = 2;
const MODE_D4: u8 = 3;
const MODE_RAW: u8 = 0xff;

/// The dual-base delta codec.
///
/// ```
/// use disco_compress::{CacheLine, delta::DeltaCodec, scheme::Compressor};
///
/// # fn main() -> Result<(), disco_compress::DecompressError> {
/// let codec = DeltaCodec::new();
/// // Pointer-like values near a common base: 1-byte deltas suffice.
/// let base = 0x7fff_aa00_1234_5600u64;
/// let line = CacheLine::from_u64_words([
///     base, base + 8, base + 16, base + 24, base + 32, base + 40, base + 48, base + 56,
/// ]);
/// let enc = codec.compress(&line);
/// assert_eq!(enc.size_bytes(), 18); // mode + bitmap + 8B base + 8 deltas
/// assert_eq!(codec.decompress(&enc)?, line);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct DeltaCodec {
    _private: (),
}

/// Widths tried by the compressor selection logic, smallest first.
const DELTA_WIDTHS: [(u8, usize); 3] = [(MODE_D1, 1), (MODE_D2, 2), (MODE_D4, 4)];

impl DeltaCodec {
    /// Creates the codec with the paper's parameters (bases: first flit and
    /// zero flit; delta widths 1/2/4 bytes).
    pub fn new() -> Self {
        DeltaCodec { _private: () }
    }

    /// Chooses, for one flit, the delta against whichever base yields a
    /// value representable in `width` bytes. Returns `(select_zero_base,
    /// delta)` or `None` if neither base works.
    fn pick_delta(flit: u64, first_base: u64, width: usize) -> Option<(bool, i64)> {
        let bits = width as u32 * 8;
        let d_first = flit.wrapping_sub(first_base) as i64;
        let d_zero = flit as i64;
        let first_ok = crate::bitio::fits_signed(d_first, bits);
        // The zero-base delta is the raw value; it only "fits" when the flit
        // itself is a small signed number.
        let zero_ok = width < 8 && crate::bitio::fits_signed(d_zero, bits) || width == 8;
        match (first_ok, zero_ok) {
            (true, true) => {
                if d_zero.unsigned_abs() < d_first.unsigned_abs() {
                    Some((true, d_zero))
                } else {
                    Some((false, d_first))
                }
            }
            (true, false) => Some((false, d_first)),
            (false, true) => Some((true, d_zero)),
            (false, false) => None,
        }
    }

    /// Attempts to encode all flits with `width`-byte deltas.
    fn try_width(flits: &[u64; WORDS64], width: usize) -> Option<(u8, Vec<i64>)> {
        let mut bitmap = 0u8;
        let mut deltas = Vec::with_capacity(WORDS64);
        for (i, &flit) in flits.iter().enumerate() {
            let (zero_base, delta) = Self::pick_delta(flit, flits[0], width)?;
            if zero_base {
                bitmap |= 1 << i;
            }
            deltas.push(delta);
        }
        Some((bitmap, deltas))
    }
}

impl Compressor for DeltaCodec {
    fn kind(&self) -> SchemeKind {
        SchemeKind::Delta
    }

    fn compress(&self, line: &CacheLine) -> CompressedLine {
        let flits = line.u64_words();
        if line.is_zero() {
            return CompressedLine::new(SchemeKind::Delta, vec![MODE_ZERO], 8);
        }
        for (mode, width) in DELTA_WIDTHS {
            if let Some((bitmap, deltas)) = Self::try_width(&flits, width) {
                let mut data = Vec::with_capacity(2 + 8 + WORDS64 * width);
                data.push(mode);
                data.push(bitmap);
                data.extend_from_slice(&flits[0].to_le_bytes());
                for d in deltas {
                    data.extend_from_slice(&d.to_le_bytes()[..width]);
                }
                let bits = data.len() * 8;
                return CompressedLine::new(SchemeKind::Delta, data, bits);
            }
        }
        let mut data = Vec::with_capacity(1 + LINE_BYTES);
        data.push(MODE_RAW);
        data.extend_from_slice(line.as_bytes());
        let bits = data.len() * 8;
        CompressedLine::new(SchemeKind::Delta, data, bits)
    }

    fn decompress(&self, compressed: &CompressedLine) -> Result<CacheLine, DecompressError> {
        if compressed.scheme() != SchemeKind::Delta {
            return Err(DecompressError::SchemeMismatch {
                expected: SchemeKind::Delta,
                found: compressed.scheme(),
            });
        }
        let data = compressed.data();
        let &mode = data.first().ok_or(DecompressError::Truncated)?;
        match mode {
            MODE_ZERO => Ok(CacheLine::zeroed()),
            MODE_RAW => {
                let bytes: [u8; LINE_BYTES] = data
                    .get(1..1 + LINE_BYTES)
                    .ok_or(DecompressError::Truncated)?
                    .try_into()
                    .expect("length checked");
                Ok(CacheLine::from_bytes(bytes))
            }
            MODE_D1 | MODE_D2 | MODE_D4 => {
                let width = match mode {
                    MODE_D1 => 1,
                    MODE_D2 => 2,
                    _ => 4,
                };
                let bitmap = *data.get(1).ok_or(DecompressError::Truncated)?;
                let base_bytes: [u8; 8] = data
                    .get(2..10)
                    .ok_or(DecompressError::Truncated)?
                    .try_into()
                    .expect("length checked");
                let first_base = u64::from_le_bytes(base_bytes);
                let mut flits = [0u64; WORDS64];
                for (i, flit) in flits.iter_mut().enumerate() {
                    let start = 10 + i * width;
                    let raw = data
                        .get(start..start + width)
                        .ok_or(DecompressError::Truncated)?;
                    let mut delta = 0i64;
                    for (j, &b) in raw.iter().enumerate() {
                        delta |= (b as i64) << (8 * j);
                    }
                    delta = crate::bitio::sign_extend(delta as u64, width as u32 * 8);
                    let base = if bitmap & (1 << i) != 0 {
                        0
                    } else {
                        first_base
                    };
                    *flit = base.wrapping_add(delta as u64);
                }
                Ok(CacheLine::from_u64_words(flits))
            }
            _ => Err(DecompressError::Invalid("unknown delta mode byte")),
        }
    }

    /// Table 2: "1 cycle compression" for the delta-based DISCO unit.
    fn compression_latency(&self) -> u64 {
        1
    }

    /// Table 2: "3-cycle decompression".
    fn decompression_latency(&self, _compressed: &CompressedLine) -> u64 {
        3
    }
}

/// Separate-flit (fragment-wise) delta compression for wormhole flow control
/// (§3.3-A).
///
/// Flits of one packet may arrive at a router in fragments. The incremental
/// compressor keeps the base registers (`BF0` and zero) across fragments,
/// compresses each fragment as it arrives, and concatenates the offset bytes
/// of consecutive fragments so that no zero bubbles remain. Once every flit
/// has arrived, [`finish`](IncrementalDelta::finish) yields an encoding
/// bit-identical to whole-packet [`DeltaCodec::compress`].
///
/// ```
/// use disco_compress::{CacheLine, delta::{DeltaCodec, IncrementalDelta}, scheme::Compressor};
///
/// let line = CacheLine::from_u64_words([50, 51, 52, 53, 54, 55, 56, 57]);
/// let flits = line.u64_words();
/// let mut inc = IncrementalDelta::new();
/// inc.push_flits(&flits[..2]); // first fragment (flit-0 and flit-1)
/// inc.push_flits(&flits[2..]); // remainder
/// let merged = inc.finish();
/// assert_eq!(merged, DeltaCodec::new().compress(&line));
/// ```
#[derive(Debug, Clone, Default)]
pub struct IncrementalDelta {
    flits: Vec<u64>,
    fragment_sizes: Vec<usize>,
}

impl IncrementalDelta {
    /// Creates an empty incremental compressor (base registers unset).
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of flits received so far.
    pub fn flits_seen(&self) -> usize {
        self.flits.len()
    }

    /// True once all eight flits of the line have arrived.
    pub fn is_complete(&self) -> bool {
        self.flits.len() == WORDS64
    }

    /// Feeds the next fragment of flits, in packet order.
    ///
    /// Returns the compressed size in bytes *after* this fragment, i.e. the
    /// buffer space the partially compressed packet occupies, including the
    /// trailing-bubble padding that separate compression cannot avoid until
    /// the merge tag concatenates the next fragment.
    ///
    /// # Panics
    ///
    /// Panics if more than eight flits total are pushed.
    pub fn push_flits(&mut self, fragment: &[u64]) -> usize {
        assert!(
            self.flits.len() + fragment.len() <= WORDS64,
            "a cache line has exactly {WORDS64} flits"
        );
        self.flits.extend_from_slice(fragment);
        let size = self.partial_size_bytes();
        self.fragment_sizes.push(size);
        size
    }

    /// Compressed size of the flits seen so far, using the widest delta
    /// required by any of them (the base registers hold `BF0` and zero for
    /// the remaining flits of the packet, so the chosen width is
    /// monotonically non-decreasing across fragments).
    fn partial_size_bytes(&self) -> usize {
        if self.flits.is_empty() {
            return 0;
        }
        let first = self.flits[0];
        if self.flits.iter().all(|&f| f == 0) {
            return 1;
        }
        for (_, width) in DELTA_WIDTHS {
            let all_fit = self
                .flits
                .iter()
                .all(|&f| DeltaCodec::pick_delta(f, first, width).is_some());
            if all_fit {
                return 2 + 8 + self.flits.len() * width;
            }
        }
        1 + self.flits.len() * 8
    }

    /// Sizes recorded after each fragment, for occupancy accounting.
    pub fn fragment_sizes(&self) -> &[usize] {
        &self.fragment_sizes
    }

    /// Merges all fragments into the final encoding.
    ///
    /// # Panics
    ///
    /// Panics unless exactly eight flits were pushed; the router must only
    /// call this once the tail flit has arrived.
    pub fn finish(self) -> CompressedLine {
        assert!(self.is_complete(), "cannot finish before all flits arrive");
        let mut flits = [0u64; WORDS64];
        flits.copy_from_slice(&self.flits);
        DeltaCodec::new().compress(&CacheLine::from_u64_words(flits))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn codec() -> DeltaCodec {
        DeltaCodec::new()
    }

    #[test]
    fn zero_line_is_one_byte() {
        let enc = codec().compress(&CacheLine::zeroed());
        assert_eq!(enc.size_bytes(), 1);
        assert_eq!(codec().decompress(&enc).unwrap(), CacheLine::zeroed());
    }

    #[test]
    fn small_values_use_zero_base() {
        // All flits are small numbers: zero base gives 1-byte deltas even
        // though the first flit (base) is unrelated to the rest.
        let line = CacheLine::from_u64_words([1, 2, 3, 4, 5, 6, 7, 8]);
        let enc = codec().compress(&line);
        assert_eq!(enc.size_bytes(), 18);
        assert_eq!(codec().decompress(&enc).unwrap(), line);
    }

    #[test]
    fn pointer_run_uses_first_base() {
        let b = 0xdead_beef_0000_0000u64;
        let line = CacheLine::from_u64_words([b, b + 1, b + 2, b + 3, b + 4, b + 5, b + 6, b + 7]);
        let enc = codec().compress(&line);
        assert_eq!(enc.size_bytes(), 18);
        assert_eq!(codec().decompress(&enc).unwrap(), line);
    }

    #[test]
    fn mixed_bases_within_one_line() {
        // Half pointers near BF0, half small integers near zero.
        let b = 0x55aa_0000_1122_3344u64;
        let line = CacheLine::from_u64_words([b, 5, b + 100, 0, b - 7, 9, b + 1, 127]);
        let enc = codec().compress(&line);
        assert_eq!(enc.size_bytes(), 18);
        assert_eq!(codec().decompress(&enc).unwrap(), line);
    }

    #[test]
    fn wider_deltas_escalate() {
        let b = 1u64 << 40;
        let line =
            CacheLine::from_u64_words([b, b + 300, b + 500, b, b + 1000, b, b + 2, b + 30000]);
        let enc = codec().compress(&line);
        assert_eq!(enc.size_bytes(), 2 + 8 + 8 * 2);
        assert_eq!(codec().decompress(&enc).unwrap(), line);
    }

    #[test]
    fn random_line_falls_back_to_raw() {
        let mut bytes = [0u8; LINE_BYTES];
        let mut x = 0x1234_5678_9abc_def0u64;
        for b in bytes.iter_mut() {
            // xorshift for an incompressible pattern
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            *b = x as u8;
        }
        let line = CacheLine::from_bytes(bytes);
        let enc = codec().compress(&line);
        assert!(!enc.is_compressed());
        assert_eq!(codec().decompress(&enc).unwrap(), line);
    }

    #[test]
    fn latencies_match_table2() {
        let enc = codec().compress(&CacheLine::zeroed());
        assert_eq!(codec().compression_latency(), 1);
        assert_eq!(codec().decompression_latency(&enc), 3);
    }

    #[test]
    fn scheme_mismatch_detected() {
        let enc = CompressedLine::new(SchemeKind::Fpc, vec![0], 8);
        assert!(matches!(
            codec().decompress(&enc),
            Err(DecompressError::SchemeMismatch { .. })
        ));
    }

    #[test]
    fn truncated_encoding_errors() {
        let line = CacheLine::from_u64_words([9, 9, 9, 9, 9, 9, 9, 9]);
        let enc = codec().compress(&line);
        let cut = CompressedLine::new(SchemeKind::Delta, enc.data()[..5].to_vec(), 40);
        assert_eq!(codec().decompress(&cut), Err(DecompressError::Truncated));
    }

    #[test]
    fn incremental_matches_batch_for_every_split() {
        let b = 0xaaaa_bbbb_0000_0000u64;
        let line = CacheLine::from_u64_words([b, b + 4, 7, b + 12, 0, b + 20, 3, b + 28]);
        let flits = line.u64_words();
        let batch = codec().compress(&line);
        for split in 1..WORDS64 {
            let mut inc = IncrementalDelta::new();
            inc.push_flits(&flits[..split]);
            inc.push_flits(&flits[split..]);
            assert_eq!(inc.finish(), batch, "split at {split}");
        }
    }

    #[test]
    fn incremental_partial_sizes_are_monotonic() {
        let line = CacheLine::from_u64_words([100, 101, 102, 103, 104, 105, 106, 107]);
        let flits = line.u64_words();
        let mut inc = IncrementalDelta::new();
        let mut last = 0;
        for &f in &flits {
            let s = inc.push_flits(&[f]);
            assert!(s >= last, "partial size shrank");
            last = s;
        }
        assert!(inc.is_complete());
        assert_eq!(inc.fragment_sizes().len(), WORDS64);
    }

    #[test]
    #[should_panic(expected = "exactly")]
    fn incremental_rejects_overflow() {
        let mut inc = IncrementalDelta::new();
        inc.push_flits(&[0; 9]);
    }

    #[test]
    #[should_panic(expected = "cannot finish")]
    fn incremental_finish_requires_all_flits() {
        let mut inc = IncrementalDelta::new();
        inc.push_flits(&[1, 2, 3]);
        let _ = inc.finish();
    }

    proptest! {
        #[test]
        fn roundtrip_random_lines(bytes in proptest::array::uniform32(any::<u8>())) {
            // Tile the 32 random bytes to fill a line; covers raw fallback.
            let mut full = [0u8; LINE_BYTES];
            for (i, b) in full.iter_mut().enumerate() {
                *b = bytes[i % 32];
            }
            let line = CacheLine::from_bytes(full);
            let enc = codec().compress(&line);
            prop_assert_eq!(codec().decompress(&enc).unwrap(), line);
        }

        #[test]
        fn roundtrip_near_base_lines(base in any::<u64>(), deltas in proptest::array::uniform8(-200i64..200)) {
            let mut flits = [0u64; WORDS64];
            for i in 0..WORDS64 {
                flits[i] = base.wrapping_add(deltas[i] as u64);
            }
            flits[0] = base;
            let line = CacheLine::from_u64_words(flits);
            let enc = codec().compress(&line);
            prop_assert!(enc.size_bytes() <= 2 + 8 + 8 * 2);
            prop_assert_eq!(codec().decompress(&enc).unwrap(), line);
        }

        #[test]
        fn incremental_equals_batch(flits in proptest::array::uniform8(any::<u64>()), split in 1usize..8) {
            let line = CacheLine::from_u64_words(flits);
            let mut inc = IncrementalDelta::new();
            inc.push_flits(&flits[..split]);
            inc.push_flits(&flits[split..]);
            prop_assert_eq!(inc.finish(), codec().compress(&line));
        }
    }
}
