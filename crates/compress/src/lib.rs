#![warn(missing_docs)]

//! Bit-level cache-line compression codecs for the DISCO reproduction.
//!
//! This crate implements, from scratch, every compression scheme the DISCO
//! paper (Wang et al., DAC 2016) evaluates or references, operating on real
//! 64-byte [`CacheLine`]s and producing self-describing [`CompressedLine`]
//! encodings that round-trip exactly:
//!
//! - [`delta::DeltaCodec`] — the paper's dual-base delta compressor (§3.2,
//!   Fig. 4): first-flit base + zero base, per-flit base selection,
//!   1/2/4-byte deltas. [`delta::IncrementalDelta`] supports the
//!   *separate-flit* compression mode required for wormhole flow control
//!   (§3.3-A).
//! - [`bdi::BdiCodec`] — Base-Delta-Immediate (Pekhimenko et al., PACT'12).
//! - [`fpc::FpcCodec`] — Frequent Pattern Compression (Alameldeen &
//!   Wood, ISCA'04), 3-bit prefixes plus zero-run encoding.
//! - [`sfpc::SfpcCodec`] — a simplified FPC with 2-bit prefixes (the "SFPC"
//!   row of Table 1).
//! - [`sc2::Sc2Codec`] — statistical compression with trained canonical
//!   Huffman codes (Arelakis & Stenström, ISCA'14).
//! - [`cpack::CPackCodec`] — pattern + dictionary compression (Chen et al.,
//!   TVLSI'10).
//!
//! Each codec reports the compression/decompression latency and hardware
//! overhead parameters of Table 1 through [`scheme::Compressor`], so the
//! system simulator charges the same cycle costs the paper assumes while
//! using the *measured* compressed sizes for flit counts and cache segment
//! occupancy.
//!
//! # Example
//!
//! ```
//! use disco_compress::{CacheLine, Codec, scheme::Compressor};
//!
//! # fn main() -> Result<(), disco_compress::DecompressError> {
//! // A line of small 64-bit counters: highly delta-compressible.
//! let line = CacheLine::from_u64_words([100, 101, 102, 103, 104, 105, 106, 107]);
//! let codec = Codec::delta();
//! let compressed = codec.compress(&line);
//! assert!(compressed.size_bytes() < 64 / 2);
//! assert_eq!(codec.decompress(&compressed)?, line);
//! # Ok(())
//! # }
//! ```

pub mod bdi;
pub mod bitio;
pub mod corpus;
pub mod cpack;
pub mod delta;
pub mod fpc;
pub mod hybrid;
pub mod line;
pub mod model;
pub mod sc2;
pub mod scheme;
pub mod sfpc;

pub use corpus::{reference_corpus, LineFamily, SizeDistribution};
pub use hybrid::HybridCodec;
pub use line::{CacheLine, LINE_BYTES, WORDS32, WORDS64};
pub use model::{SchemeModel, TABLE1};
pub use scheme::{Codec, CompressedLine, CompressionStats, Compressor, SchemeKind};

use std::error::Error;
use std::fmt;

/// Error returned when a [`CompressedLine`] cannot be decoded.
///
/// All codecs in this crate produce decodable output, so this error only
/// surfaces when an encoding is corrupted, truncated, or handed to the wrong
/// codec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecompressError {
    /// The bitstream ended before the decoder finished.
    Truncated,
    /// The encoding was produced by a different scheme.
    SchemeMismatch {
        /// Scheme the decoder implements.
        expected: SchemeKind,
        /// Scheme recorded in the encoding.
        found: SchemeKind,
    },
    /// The encoding contains an invalid field.
    Invalid(&'static str),
}

impl fmt::Display for DecompressError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecompressError::Truncated => write!(f, "compressed bitstream ended prematurely"),
            DecompressError::SchemeMismatch { expected, found } => {
                write!(f, "encoding is {found}, decoder expects {expected}")
            }
            DecompressError::Invalid(what) => write!(f, "invalid encoding: {what}"),
        }
    }
}

impl Error for DecompressError {}
