//! Base-Delta-Immediate compression (Pekhimenko et al., PACT'12).
//!
//! A line is encoded as one arbitrary base plus per-element deltas, with an
//! implicit second base of zero selected by a per-element mask bit
//! ("immediate" values). Eight encodings are tried in increasing output
//! size; the first that fits wins: zeros, repeated 8-byte value,
//! base8-Δ1/2/4, base4-Δ1/2, base2-Δ1.

use crate::bitio::{fits_signed, sign_extend};
use crate::line::{CacheLine, LINE_BYTES};
use crate::scheme::{CompressedLine, Compressor, SchemeKind};
use crate::DecompressError;

/// BDI encoding identifiers (first byte of the output).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Encoding {
    Zeros = 0,
    Repeated = 1,
    B8D1 = 2,
    B8D2 = 3,
    B8D4 = 4,
    B4D1 = 5,
    B4D2 = 6,
    B2D1 = 7,
    Raw = 8,
}

impl Encoding {
    fn from_byte(b: u8) -> Option<Encoding> {
        Some(match b {
            0 => Encoding::Zeros,
            1 => Encoding::Repeated,
            2 => Encoding::B8D1,
            3 => Encoding::B8D2,
            4 => Encoding::B8D4,
            5 => Encoding::B4D1,
            6 => Encoding::B4D2,
            7 => Encoding::B2D1,
            8 => Encoding::Raw,
            _ => return None,
        })
    }

    /// (base size, delta size) in bytes for the base-delta encodings.
    fn geometry(self) -> Option<(usize, usize)> {
        Some(match self {
            Encoding::B8D1 => (8, 1),
            Encoding::B8D2 => (8, 2),
            Encoding::B8D4 => (8, 4),
            Encoding::B4D1 => (4, 1),
            Encoding::B4D2 => (4, 2),
            Encoding::B2D1 => (2, 1),
            _ => return None,
        })
    }
}

/// The ordered candidate list: smaller outputs first.
const CANDIDATES: [Encoding; 6] = [
    Encoding::B2D1,
    Encoding::B4D1,
    Encoding::B8D1,
    Encoding::B4D2,
    Encoding::B8D2,
    Encoding::B8D4,
];

/// Base-Delta-Immediate codec.
///
/// ```
/// use disco_compress::{CacheLine, bdi::BdiCodec, scheme::Compressor};
///
/// # fn main() -> Result<(), disco_compress::DecompressError> {
/// let codec = BdiCodec::new();
/// let line = CacheLine::from_u32_words([1000, 1001, 1002, 0, 1004, 0, 1006, 1007,
///                                       1008, 1009, 0, 1011, 1012, 1013, 1014, 1015]);
/// let enc = codec.compress(&line);
/// assert!(enc.is_compressed());
/// assert_eq!(codec.decompress(&enc)?, line);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct BdiCodec {
    _private: (),
}

impl BdiCodec {
    /// Creates the codec with all eight encodings enabled.
    pub fn new() -> Self {
        BdiCodec { _private: () }
    }

    /// Reads the `i`-th `size`-byte unsigned element of the line.
    fn element(line: &CacheLine, size: usize, i: usize) -> u64 {
        let bytes = line.as_bytes();
        let mut v = 0u64;
        for j in 0..size {
            v |= (bytes[i * size + j] as u64) << (8 * j);
        }
        v
    }

    /// Tries one base-delta geometry; returns (base, mask, deltas) on fit.
    ///
    /// The base is the first element that is not representable as an
    /// immediate (delta from zero); elements that fit as immediates set
    /// their mask bit and store their delta from zero instead.
    fn try_encoding(
        line: &CacheLine,
        base_size: usize,
        delta_size: usize,
    ) -> Option<(u64, u32, Vec<i64>)> {
        let n = LINE_BYTES / base_size;
        let delta_bits = delta_size as u32 * 8;
        let mut base: Option<u64> = None;
        let mut mask = 0u32;
        let mut deltas = Vec::with_capacity(n);
        for i in 0..n {
            let v = Self::element(line, base_size, i);
            let d_zero = if base_size == 8 {
                v as i64
            } else {
                sign_extend(v, base_size as u32 * 8)
            };
            if fits_signed(d_zero, delta_bits) {
                mask |= 1 << i;
                deltas.push(d_zero);
                continue;
            }
            let b = *base.get_or_insert(v);
            let d = v.wrapping_sub(b) as i64;
            let d = if base_size == 8 {
                d
            } else {
                sign_extend(d as u64, base_size as u32 * 8)
            };
            if fits_signed(d, delta_bits) {
                deltas.push(d);
            } else {
                return None;
            }
        }
        Some((base.unwrap_or(0), mask, deltas))
    }
}

impl Compressor for BdiCodec {
    fn kind(&self) -> SchemeKind {
        SchemeKind::Bdi
    }

    fn compress(&self, line: &CacheLine) -> CompressedLine {
        if line.is_zero() {
            return CompressedLine::new(SchemeKind::Bdi, vec![Encoding::Zeros as u8], 8);
        }
        let flits = line.u64_words();
        if flits.iter().all(|&f| f == flits[0]) {
            let mut data = vec![Encoding::Repeated as u8];
            data.extend_from_slice(&flits[0].to_le_bytes());
            return CompressedLine::new(SchemeKind::Bdi, data, 9 * 8);
        }
        let mut best: Option<Vec<u8>> = None;
        for enc in CANDIDATES {
            let (base_size, delta_size) = enc.geometry().expect("candidates have geometry");
            if let Some((base, mask, deltas)) = Self::try_encoding(line, base_size, delta_size) {
                let n = LINE_BYTES / base_size;
                let mask_bytes = n.div_ceil(8);
                let mut data = Vec::with_capacity(1 + mask_bytes + base_size + n * delta_size);
                data.push(enc as u8);
                data.extend_from_slice(&mask.to_le_bytes()[..mask_bytes]);
                data.extend_from_slice(&base.to_le_bytes()[..base_size]);
                for d in deltas {
                    data.extend_from_slice(&d.to_le_bytes()[..delta_size]);
                }
                if best.as_ref().is_none_or(|b| data.len() < b.len()) {
                    best = Some(data);
                }
            }
        }
        match best {
            Some(data) => {
                let bits = data.len() * 8;
                CompressedLine::new(SchemeKind::Bdi, data, bits)
            }
            None => {
                let mut data = vec![Encoding::Raw as u8];
                data.extend_from_slice(line.as_bytes());
                let bits = data.len() * 8;
                CompressedLine::new(SchemeKind::Bdi, data, bits)
            }
        }
    }

    fn decompress(&self, compressed: &CompressedLine) -> Result<CacheLine, DecompressError> {
        if compressed.scheme() != SchemeKind::Bdi {
            return Err(DecompressError::SchemeMismatch {
                expected: SchemeKind::Bdi,
                found: compressed.scheme(),
            });
        }
        let data = compressed.data();
        let &tag = data.first().ok_or(DecompressError::Truncated)?;
        let enc = Encoding::from_byte(tag).ok_or(DecompressError::Invalid("bad BDI tag"))?;
        match enc {
            Encoding::Zeros => Ok(CacheLine::zeroed()),
            Encoding::Repeated => {
                let bytes: [u8; 8] = data
                    .get(1..9)
                    .ok_or(DecompressError::Truncated)?
                    .try_into()
                    .expect("length checked");
                let v = u64::from_le_bytes(bytes);
                Ok(CacheLine::from_u64_words([v; 8]))
            }
            Encoding::Raw => {
                let bytes: [u8; LINE_BYTES] = data
                    .get(1..1 + LINE_BYTES)
                    .ok_or(DecompressError::Truncated)?
                    .try_into()
                    .expect("length checked");
                Ok(CacheLine::from_bytes(bytes))
            }
            _ => {
                let (base_size, delta_size) = enc.geometry().expect("geometry for base-delta");
                let n = LINE_BYTES / base_size;
                let mask_bytes = n.div_ceil(8);
                let mut pos = 1;
                let mut mask = 0u32;
                for j in 0..mask_bytes {
                    mask |=
                        (*data.get(pos + j).ok_or(DecompressError::Truncated)? as u32) << (8 * j);
                }
                pos += mask_bytes;
                let mut base = 0u64;
                for j in 0..base_size {
                    base |=
                        (*data.get(pos + j).ok_or(DecompressError::Truncated)? as u64) << (8 * j);
                }
                pos += base_size;
                let mut bytes = [0u8; LINE_BYTES];
                for i in 0..n {
                    let mut d = 0u64;
                    for j in 0..delta_size {
                        d |= (*data.get(pos + j).ok_or(DecompressError::Truncated)? as u64)
                            << (8 * j);
                    }
                    pos += delta_size;
                    let delta = sign_extend(d, delta_size as u32 * 8);
                    let b = if mask & (1 << i) != 0 { 0 } else { base };
                    let v = b.wrapping_add(delta as u64);
                    for j in 0..base_size {
                        bytes[i * base_size + j] = (v >> (8 * j)) as u8;
                    }
                }
                Ok(CacheLine::from_bytes(bytes))
            }
        }
    }

    /// Table 1: 1-cycle compression.
    fn compression_latency(&self) -> u64 {
        1
    }

    /// Table 1: "1~5 cycles" — scales with the number of parallel adders
    /// needed, i.e. the element count of the chosen encoding.
    fn decompression_latency(&self, compressed: &CompressedLine) -> u64 {
        match compressed
            .data()
            .first()
            .and_then(|&b| Encoding::from_byte(b))
        {
            Some(Encoding::Zeros) | Some(Encoding::Repeated) => 1,
            Some(Encoding::B8D1) | Some(Encoding::B8D2) | Some(Encoding::B8D4) => 2,
            Some(Encoding::B4D1) | Some(Encoding::B4D2) => 3,
            Some(Encoding::B2D1) => 5,
            _ => 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn codec() -> BdiCodec {
        BdiCodec::new()
    }

    #[test]
    fn zeros() {
        let enc = codec().compress(&CacheLine::zeroed());
        assert_eq!(enc.size_bytes(), 1);
        assert_eq!(codec().decompress(&enc).unwrap(), CacheLine::zeroed());
        assert_eq!(codec().decompression_latency(&enc), 1);
    }

    #[test]
    fn repeated_value() {
        let line = CacheLine::from_u64_words([0x1122_3344_5566_7788; 8]);
        let enc = codec().compress(&line);
        assert_eq!(enc.size_bytes(), 9);
        assert_eq!(codec().decompress(&enc).unwrap(), line);
    }

    #[test]
    fn b8d1_pointers() {
        let b = 0x7fff_0000_1000_0000u64;
        let line =
            CacheLine::from_u64_words([b, b + 64, b + 120, b + 32, b + 8, b + 16, b + 24, b + 96]);
        let enc = codec().compress(&line);
        // 1 tag + 1 mask + 8 base + 8 deltas = 18
        assert_eq!(enc.size_bytes(), 18);
        assert_eq!(codec().decompress(&enc).unwrap(), line);
    }

    #[test]
    fn b4d1_small_spread() {
        let base = 100_000u32;
        let mut words = [0u32; 16];
        for (i, w) in words.iter_mut().enumerate() {
            *w = base + i as u32;
        }
        let line = CacheLine::from_u32_words(words);
        let enc = codec().compress(&line);
        // 1 tag + 2 mask + 4 base + 16 deltas = 23
        assert_eq!(enc.size_bytes(), 23);
        assert_eq!(codec().decompress(&enc).unwrap(), line);
    }

    #[test]
    fn immediates_mix_with_base() {
        // Large values near a base interleaved with small immediates.
        let base = 0x4000_0000u32;
        let line = CacheLine::from_u32_words([
            base,
            1,
            base + 3,
            0,
            base + 100,
            2,
            base + 50,
            7,
            base + 9,
            0,
            base + 11,
            1,
            base + 90,
            3,
            base + 70,
            5,
        ]);
        let enc = codec().compress(&line);
        assert!(enc.is_compressed());
        assert_eq!(codec().decompress(&enc).unwrap(), line);
    }

    #[test]
    fn incompressible_falls_back() {
        let mut bytes = [0u8; LINE_BYTES];
        let mut x = 7u64;
        for b in bytes.iter_mut() {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            *b = (x >> 56) as u8;
        }
        let line = CacheLine::from_bytes(bytes);
        let enc = codec().compress(&line);
        assert_eq!(codec().decompress(&enc).unwrap(), line);
    }

    #[test]
    fn picks_smallest_encoding() {
        // Values fitting b2d1 should not be stored as b8d4.
        let line = CacheLine::from_u32_words([0x0041_0042; 16]);
        let enc = codec().compress(&line);
        // b2d1: 1 tag + 4 mask + 2 base + 32 deltas = 39 bytes
        assert!(enc.size_bytes() <= 39, "got {}", enc.size_bytes());
        assert_eq!(codec().decompress(&enc).unwrap(), line);
    }

    proptest! {
        #[test]
        fn roundtrip_random(flits in proptest::array::uniform8(any::<u64>())) {
            let line = CacheLine::from_u64_words(flits);
            let enc = codec().compress(&line);
            prop_assert_eq!(codec().decompress(&enc).unwrap(), line);
        }

        #[test]
        fn roundtrip_base_delta(base in any::<u32>(), deltas in proptest::array::uniform16(-100i32..100)) {
            let mut words = [0u32; 16];
            for i in 0..16 {
                words[i] = base.wrapping_add(deltas[i] as u32);
            }
            let line = CacheLine::from_u32_words(words);
            let enc = codec().compress(&line);
            prop_assert!(enc.is_compressed());
            prop_assert_eq!(codec().decompress(&enc).unwrap(), line);
        }
    }
}
