//! SC² — statistical cache compression with Huffman coding (Arelakis &
//! Stenström, ISCA'14).
//!
//! SC² builds a **value frequency table** of 32-bit words by sampling
//! cache contents, assigns canonical depth-limited Huffman codes to the
//! most frequent values, and encodes everything else with an escape code
//! followed by the raw word. It achieves the highest compression ratio of
//! the evaluated schemes (Table 1: 2.4×) at the highest de/compression
//! latency (6 / 8–14 cycles) — exactly the trade-off DISCO's latency
//! hiding makes practical (§4.2: DISCO's best results are with SC²).
//!
//! The hardware trains its table online; here training is explicit
//! ([`Sc2Codec::train`]) or implicit from a built-in synthetic sample
//! ([`Sc2Codec::new`]). A trained codec is a pure value — cloning it
//! shares the table, so every placement compares the same statistics.

use crate::bitio::{BitReader, BitWriter};
use crate::line::{CacheLine, LINE_BYTES, WORDS32};
use crate::scheme::{CompressedLine, Compressor, SchemeKind};
use crate::DecompressError;
use std::collections::HashMap;

/// Coded symbols: the most frequent words plus one escape symbol.
const TABLE_WORDS: usize = 1023;
/// Hardware decoders bound code length.
const MAX_CODE_LEN: u8 = 20;

/// A trained canonical-Huffman value-frequency codec.
///
/// ```
/// use disco_compress::{CacheLine, sc2::Sc2Codec, scheme::Compressor};
///
/// # fn main() -> Result<(), disco_compress::DecompressError> {
/// let codec = Sc2Codec::new(); // default statistics (zero-skewed)
/// let line = CacheLine::zeroed();
/// let enc = codec.compress(&line);
/// assert!(enc.size_bytes() <= 8); // ~1-2 bits per zero word
/// assert_eq!(codec.decompress(&enc)?, line);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Sc2Codec {
    /// Table entries in symbol order (index = symbol id); the escape
    /// symbol is the last id and has no word.
    words: Vec<u32>,
    /// Code length per symbol (words + escape).
    lens: Vec<u8>,
    /// Canonical code bits per symbol.
    codes: Vec<u32>,
    /// Word → symbol id.
    index: HashMap<u32, u16>,
    /// Flat decode automaton; leaves are `LEAF_BASE + symbol`.
    tree: Vec<[usize; 2]>,
}

const LEAF_BASE: usize = usize::MAX / 2;

impl Sc2Codec {
    /// Builds the codec from built-in default statistics: a
    /// zero-dominated, small-integer-skewed word distribution typical of
    /// cache contents (the profile the SC² paper reports).
    pub fn new() -> Self {
        let mut freqs: HashMap<u32, u64> = HashMap::new();
        freqs.insert(0, 2_000_000);
        for v in 1..256u32 {
            freqs.insert(v, (40_000 / v as u64).max(64));
        }
        for v in 1..64u32 {
            freqs.insert(v.wrapping_neg(), 2_000); // small negatives
            freqs.insert(v << 16, 1_000); // halfword-padded
            freqs.insert(0x0101_0101u32.wrapping_mul(v), 500); // repeats
        }
        Self::from_frequencies(&freqs, 1_000_000)
    }

    /// Trains the value frequency table by sampling `lines`, as the SC²
    /// hardware samples cache contents.
    pub fn train<'a, I>(lines: I) -> Self
    where
        I: IntoIterator<Item = &'a CacheLine>,
    {
        let mut freqs: HashMap<u32, u64> = HashMap::new();
        let mut total = 0u64;
        for line in lines {
            for w in line.u32_words() {
                *freqs.entry(w).or_insert(0) += 1;
                total += 1;
            }
        }
        Self::from_frequencies(&freqs, total)
    }

    /// Builds the codec from explicit word frequencies. `total` scales the
    /// escape symbol's weight (words not kept in the table).
    pub fn from_frequencies(freqs: &HashMap<u32, u64>, total: u64) -> Self {
        // Keep the most frequent words.
        let mut by_freq: Vec<(u32, u64)> = freqs.iter().map(|(&w, &c)| (w, c)).collect();
        by_freq.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        by_freq.truncate(TABLE_WORDS);
        let kept: u64 = by_freq.iter().map(|&(_, c)| c).sum();
        let escape_weight = total.saturating_sub(kept).max(1);
        let words: Vec<u32> = by_freq.iter().map(|&(w, _)| w).collect();
        let mut counts: Vec<u64> = by_freq.iter().map(|&(_, c)| c.max(1)).collect();
        counts.push(escape_weight);
        let mut lens = huffman_code_lengths(&counts);
        while lens.iter().any(|&l| l > MAX_CODE_LEN) {
            for c in counts.iter_mut() {
                *c = (*c / 2).max(1);
            }
            lens = huffman_code_lengths(&counts);
        }
        let codes = canonical_codes(&lens);
        let tree = build_decode_tree(&lens, &codes);
        let index = words
            .iter()
            .enumerate()
            .map(|(i, &w)| (w, i as u16))
            .collect();
        Sc2Codec {
            words,
            lens,
            codes,
            index,
            tree,
        }
    }

    /// Number of words in the trained table (excluding the escape).
    pub fn table_len(&self) -> usize {
        self.words.len()
    }

    /// Code length assigned to a word, counting the escape expansion.
    pub fn code_bits(&self, word: u32) -> u32 {
        match self.index.get(&word) {
            Some(&s) => self.lens[s as usize] as u32,
            None => self.lens[self.escape_symbol()] as u32 + 32,
        }
    }

    fn escape_symbol(&self) -> usize {
        self.words.len()
    }
}

impl Default for Sc2Codec {
    fn default() -> Self {
        Self::new()
    }
}

/// Computes Huffman code lengths for `counts` (all > 0) via the standard
/// two-queue method on sorted weights — O(n log n), exact.
fn huffman_code_lengths(counts: &[u64]) -> Vec<u8> {
    let n = counts.len();
    if n == 1 {
        return vec![1];
    }
    // Sorted leaves queue + merged-nodes queue.
    let mut leaves: Vec<usize> = (0..n).collect();
    leaves.sort_by_key(|&i| counts[i]);
    let mut leaf_pos = 0usize;
    #[derive(Clone)]
    struct Node {
        weight: u64,
        symbols: Vec<usize>,
    }
    let mut merged: std::collections::VecDeque<Node> = std::collections::VecDeque::new();
    let mut lens = vec![0u8; n];
    let take = |leaf_pos: &mut usize, merged: &mut std::collections::VecDeque<Node>| -> Node {
        let leaf_w = leaves.get(*leaf_pos).map(|&i| counts[i]);
        let node_w = merged.front().map(|m| m.weight);
        match (leaf_w, node_w) {
            (Some(lw), Some(nw)) if lw <= nw => {
                let i = leaves[*leaf_pos];
                *leaf_pos += 1;
                Node {
                    weight: lw,
                    symbols: vec![i],
                }
            }
            (Some(_), Some(_)) | (None, Some(_)) => merged.pop_front().expect("checked"),
            (Some(lw), None) => {
                let i = leaves[*leaf_pos];
                *leaf_pos += 1;
                Node {
                    weight: lw,
                    symbols: vec![i],
                }
            }
            (None, None) => unreachable!("queues cannot both be empty"),
        }
    };
    let mut remaining = n;
    while remaining > 1 {
        let a = take(&mut leaf_pos, &mut merged);
        let b = take(&mut leaf_pos, &mut merged);
        for &s in a.symbols.iter().chain(b.symbols.iter()) {
            lens[s] += 1;
        }
        let mut symbols = a.symbols;
        symbols.extend(b.symbols);
        merged.push_back(Node {
            weight: a.weight + b.weight,
            symbols,
        });
        remaining -= 1;
    }
    lens
}

/// Assigns canonical codes given lengths.
fn canonical_codes(lens: &[u8]) -> Vec<u32> {
    let mut order: Vec<usize> = (0..lens.len()).collect();
    order.sort_by_key(|&s| (lens[s], s));
    let mut codes = vec![0u32; lens.len()];
    let mut code = 0u32;
    let mut prev_len = 0u8;
    for &s in &order {
        let len = lens[s];
        if len == 0 {
            continue;
        }
        code <<= len - prev_len;
        codes[s] = code;
        code += 1;
        prev_len = len;
    }
    codes
}

fn build_decode_tree(lens: &[u8], codes: &[u32]) -> Vec<[usize; 2]> {
    let mut tree = vec![[usize::MAX; 2]];
    for s in 0..lens.len() {
        let len = lens[s];
        if len == 0 {
            continue;
        }
        let code = codes[s];
        let mut node = 0usize;
        for i in (0..len).rev() {
            let bit = ((code >> i) & 1) as usize;
            if i == 0 {
                tree[node][bit] = LEAF_BASE + s;
            } else {
                if tree[node][bit] == usize::MAX {
                    tree.push([usize::MAX; 2]);
                    let idx = tree.len() - 1;
                    tree[node][bit] = idx;
                }
                node = tree[node][bit];
            }
        }
    }
    tree
}

impl Compressor for Sc2Codec {
    fn kind(&self) -> SchemeKind {
        SchemeKind::Sc2
    }

    fn compress(&self, line: &CacheLine) -> CompressedLine {
        let words = line.u32_words();
        let total_bits: u32 = words.iter().map(|&w| self.code_bits(w)).sum();
        if 1 + total_bits as usize > LINE_BYTES * 8 {
            // Raw escape: 1 flag bit + the raw line.
            let mut w = BitWriter::new();
            w.write_bits(0, 1);
            for &b in line.as_bytes() {
                w.write_bits(b as u64, 8);
            }
            let (data, bits) = w.finish();
            return CompressedLine::new(SchemeKind::Sc2, data, bits);
        }
        let mut out = BitWriter::new();
        out.write_bits(1, 1);
        let esc = self.escape_symbol();
        for &word in &words {
            match self.index.get(&word) {
                Some(&s) => {
                    out.write_bits(self.codes[s as usize] as u64, self.lens[s as usize] as u32)
                }
                None => {
                    out.write_bits(self.codes[esc] as u64, self.lens[esc] as u32);
                    out.write_bits(word as u64, 32);
                }
            }
        }
        let (data, bits) = out.finish();
        CompressedLine::new(SchemeKind::Sc2, data, bits)
    }

    fn decompress(&self, compressed: &CompressedLine) -> Result<CacheLine, DecompressError> {
        if compressed.scheme() != SchemeKind::Sc2 {
            return Err(DecompressError::SchemeMismatch {
                expected: SchemeKind::Sc2,
                found: compressed.scheme(),
            });
        }
        let mut r = BitReader::new(compressed.data(), compressed.size_bits());
        if !r.read_bit()? {
            let mut bytes = [0u8; LINE_BYTES];
            for b in bytes.iter_mut() {
                *b = r.read_bits(8)? as u8;
            }
            return Ok(CacheLine::from_bytes(bytes));
        }
        let esc = self.escape_symbol();
        let mut words = [0u32; WORDS32];
        for word in words.iter_mut() {
            let mut node = 0usize;
            let symbol = loop {
                let bit = r.read_bit()? as usize;
                let next = self.tree[node][bit];
                if next == usize::MAX {
                    return Err(DecompressError::Invalid("dead branch in Huffman tree"));
                }
                if next >= LEAF_BASE {
                    break next - LEAF_BASE;
                }
                node = next;
            };
            *word = if symbol == esc {
                r.read_bits(32)? as u32
            } else {
                self.words[symbol]
            };
        }
        Ok(CacheLine::from_u32_words(words))
    }

    /// Table 1: 6-cycle compression.
    fn compression_latency(&self) -> u64 {
        6
    }

    /// Table 1: "8/14 cycles" — the fast path decodes short (≤ 32 B)
    /// encodings in 8 cycles; longer ones take the 14-cycle path.
    fn decompression_latency(&self, compressed: &CompressedLine) -> u64 {
        if compressed.size_bytes() <= LINE_BYTES / 2 {
            8
        } else {
            14
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn codec() -> Sc2Codec {
        Sc2Codec::new()
    }

    #[test]
    fn zero_line_is_tiny() {
        let enc = codec().compress(&CacheLine::zeroed());
        assert!(enc.size_bytes() <= 8, "got {}", enc.size_bytes());
        assert_eq!(codec().decompress(&enc).unwrap(), CacheLine::zeroed());
        assert_eq!(codec().decompression_latency(&enc), 8);
    }

    #[test]
    fn random_line_escapes_to_raw() {
        let mut bytes = [0u8; LINE_BYTES];
        let mut x = 0x243f_6a88_85a3_08d3u64;
        for b in bytes.iter_mut() {
            x = x.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(0xabcd);
            *b = (x >> 48) as u8;
        }
        let line = CacheLine::from_bytes(bytes);
        let enc = codec().compress(&line);
        assert_eq!(codec().decompress(&enc).unwrap(), line);
        assert_eq!(enc.size_bytes(), LINE_BYTES);
        assert_eq!(codec().decompression_latency(&enc), 14);
    }

    #[test]
    fn trained_codec_beats_default_on_its_corpus() {
        let line = CacheLine::from_u32_words([0xdead_beef; 16]);
        let corpus = vec![line; 32];
        let trained = Sc2Codec::train(&corpus);
        let default = Sc2Codec::new();
        assert!(
            trained.compress(&line).size_bits() < default.compress(&line).size_bits(),
            "training on the corpus must shorten its codes"
        );
        assert_eq!(trained.decompress(&trained.compress(&line)).unwrap(), line);
    }

    #[test]
    fn code_lengths_are_bounded() {
        let codec = codec();
        for &l in &codec.lens {
            assert!((1..=MAX_CODE_LEN).contains(&l), "len {l}");
        }
    }

    #[test]
    fn kraft_inequality_holds() {
        let codec = codec();
        let sum: f64 = codec.lens.iter().map(|&l| 2f64.powi(-(l as i32))).sum();
        assert!(sum <= 1.0 + 1e-9, "Kraft sum {sum}");
    }

    #[test]
    fn escape_roundtrips_unknown_words() {
        let trained = Sc2Codec::train(&[CacheLine::zeroed()]);
        let line = CacheLine::from_u32_words([0x1357_9bdf; 16]);
        let enc = trained.compress(&line);
        assert_eq!(trained.decompress(&enc).unwrap(), line);
    }

    #[test]
    fn extreme_skew_is_depth_limited() {
        let mut freqs = HashMap::new();
        freqs.insert(0u32, u64::MAX / 4);
        freqs.insert(1u32, 1);
        let codec = Sc2Codec::from_frequencies(&freqs, u64::MAX / 4 + 2);
        for &l in &codec.lens {
            assert!(l <= MAX_CODE_LEN);
        }
        let line = CacheLine::from_bytes([0xee; LINE_BYTES]);
        assert_eq!(codec.decompress(&codec.compress(&line)).unwrap(), line);
    }

    #[test]
    fn table_keeps_most_frequent_words() {
        let corpus: Vec<CacheLine> = (0..64)
            .map(|i| CacheLine::from_u32_words([i as u32 % 4; 16]))
            .collect();
        let trained = Sc2Codec::train(&corpus);
        for v in 0..4u32 {
            assert!(trained.index.contains_key(&v), "word {v} must be in table");
            assert!(trained.code_bits(v) <= 4);
        }
        assert!(trained.code_bits(0xffff_ffff) > 32);
    }

    #[test]
    fn high_ratio_on_zero_skewed_words() {
        // The Table 1 story: SC² reaches ~2.4× and beyond on skewed data.
        let line = CacheLine::from_u32_words([0, 0, 1, 0, 2, 0, 0, 3, 0, 0, 0, 1, 0, 0, 2, 0]);
        let enc = codec().compress(&line);
        assert!(enc.ratio() > 2.4, "ratio {}", enc.ratio());
    }

    proptest! {
        #[test]
        fn roundtrip_random(words in proptest::array::uniform16(any::<u32>())) {
            let line = CacheLine::from_u32_words(words);
            let enc = codec().compress(&line);
            prop_assert_eq!(codec().decompress(&enc).unwrap(), line);
        }

        #[test]
        fn roundtrip_zero_skewed(words in proptest::array::uniform16(prop_oneof![
            4 => Just(0u32),
            2 => 0u32..16,
            1 => any::<u32>(),
        ])) {
            let line = CacheLine::from_u32_words(words);
            let enc = codec().compress(&line);
            prop_assert_eq!(codec().decompress(&enc).unwrap(), line);
        }

        #[test]
        fn roundtrip_trained(words in proptest::array::uniform16(0u32..8), extra in any::<u32>()) {
            let corpus: Vec<CacheLine> = (0..8).map(|i| CacheLine::from_u32_words([i; 16])).collect();
            let trained = Sc2Codec::train(&corpus);
            let mut w = words;
            w[3] = extra; // possibly unknown word
            let line = CacheLine::from_u32_words(w);
            let enc = trained.compress(&line);
            prop_assert_eq!(trained.decompress(&enc).unwrap(), line);
        }
    }
}
