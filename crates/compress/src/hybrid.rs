//! A best-of hybrid compressor: runs several codecs in parallel (as
//! hardware would) and keeps the smallest encoding.
//!
//! DISCO "does not depend on a specific compression method" (§2) and the
//! paper frames codec choice as a ratio/latency/area trade-off. A hybrid
//! unit is the natural end point of that trade-off: each line is encoded
//! with every candidate and the shortest wins. The output is
//! self-describing (each [`CompressedLine`] carries its producing
//! scheme), so decompression dispatches on the encoding itself and needs
//! no side channel.

use crate::line::CacheLine;
use crate::scheme::{Codec, CompressedLine, Compressor, SchemeKind};
use crate::DecompressError;

/// A bank of candidate codecs with select-smallest logic.
///
/// ```
/// use disco_compress::{hybrid::HybridCodec, CacheLine, scheme::Compressor};
///
/// # fn main() -> Result<(), disco_compress::DecompressError> {
/// let codec = HybridCodec::bdi_fpc();
/// let line = CacheLine::from_u32_words([7; 16]);
/// let enc = codec.compress(&line);
/// assert!(enc.is_compressed());
/// assert_eq!(codec.decompress(&enc)?, line);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct HybridCodec {
    candidates: Vec<Codec>,
}

impl HybridCodec {
    /// Builds a hybrid from explicit candidates.
    ///
    /// # Panics
    ///
    /// Panics if `candidates` is empty or contains duplicate schemes
    /// (the per-scheme self-description would be ambiguous otherwise).
    pub fn new(candidates: Vec<Codec>) -> Self {
        assert!(
            !candidates.is_empty(),
            "hybrid needs at least one candidate"
        );
        let mut kinds: Vec<SchemeKind> = candidates.iter().map(|c| c.kind()).collect();
        kinds.sort_unstable();
        kinds.dedup();
        assert_eq!(kinds.len(), candidates.len(), "duplicate candidate schemes");
        HybridCodec { candidates }
    }

    /// The classic pairing: BDI (fast, base-delta family) + FPC
    /// (pattern family) — each covers the other's blind spots.
    pub fn bdi_fpc() -> Self {
        HybridCodec::new(vec![Codec::bdi(), Codec::fpc()])
    }

    /// The candidate codecs.
    pub fn candidates(&self) -> &[Codec] {
        &self.candidates
    }

    /// Encodes with every candidate and returns the smallest encoding
    /// (ties go to the earlier candidate).
    pub fn compress(&self, line: &CacheLine) -> CompressedLine {
        self.candidates
            .iter()
            .map(|c| c.compress(line))
            .min_by_key(CompressedLine::size_bits)
            .expect("at least one candidate")
    }

    /// Decodes by dispatching on the scheme recorded in the encoding.
    ///
    /// # Errors
    ///
    /// Fails if the encoding's scheme is not among the candidates, or if
    /// the chosen codec rejects it.
    pub fn decompress(&self, compressed: &CompressedLine) -> Result<CacheLine, DecompressError> {
        let codec = self
            .candidates
            .iter()
            .find(|c| c.kind() == compressed.scheme())
            .ok_or(DecompressError::Invalid(
                "scheme not in hybrid candidate set",
            ))?;
        codec.decompress(compressed)
    }

    /// Compression latency: the candidates run in parallel, so the unit
    /// is as slow as its slowest candidate plus one selection cycle.
    pub fn compression_latency(&self) -> u64 {
        1 + self
            .candidates
            .iter()
            .map(|c| c.compression_latency())
            .max()
            .expect("at least one candidate")
    }

    /// Decompression latency of whichever codec produced the encoding.
    pub fn decompression_latency(&self, compressed: &CompressedLine) -> u64 {
        match self
            .candidates
            .iter()
            .find(|c| c.kind() == compressed.scheme())
        {
            Some(c) => c.decompression_latency(compressed),
            None => 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn picks_the_smaller_encoding_per_line() {
        let hybrid = HybridCodec::bdi_fpc();
        let bdi = Codec::bdi();
        let fpc = Codec::fpc();
        // Pointer run: BDI-friendly, FPC-hostile.
        let b = 0x7f00_0000_0000_0000u64;
        let pointers =
            CacheLine::from_u64_words([b, b + 8, b + 16, b + 24, b + 32, b + 40, b + 48, b + 56]);
        // Sparse small ints with zero runs: FPC-friendly.
        let sparse = CacheLine::from_u32_words([0, 0, 0, 5, 0, 0, 0, 9, 0, 0, 0, 2, 0, 0, 0, 1]);
        for line in [pointers, sparse] {
            let h = hybrid.compress(&line);
            let best = bdi
                .compress(&line)
                .size_bits()
                .min(fpc.compress(&line).size_bits());
            assert_eq!(h.size_bits(), best);
            assert_eq!(hybrid.decompress(&h).unwrap(), line);
        }
        // And the two lines must pick *different* winners.
        assert_ne!(
            hybrid.compress(&pointers).scheme(),
            hybrid.compress(&sparse).scheme(),
            "each line family should favour a different candidate"
        );
    }

    #[test]
    fn hybrid_never_loses_to_a_candidate() {
        let hybrid = HybridCodec::bdi_fpc();
        let model_line = CacheLine::from_u32_words([
            0x1000, 0, 0x1008, 1, 0x1010, 2, 0x1018, 3, 0x1020, 0, 0x1028, 1, 0x1030, 2, 0x1038, 3,
        ]);
        let h = hybrid.compress(&model_line).size_bits();
        for c in hybrid.candidates() {
            assert!(h <= c.compress(&model_line).size_bits());
        }
    }

    #[test]
    fn latency_is_slowest_plus_select() {
        let hybrid = HybridCodec::bdi_fpc();
        // BDI compresses in 1, FPC in 3 → hybrid = 3 + 1 select.
        assert_eq!(hybrid.compression_latency(), 4);
    }

    #[test]
    fn foreign_encoding_rejected() {
        let hybrid = HybridCodec::bdi_fpc();
        let delta_enc = Codec::delta().compress(&CacheLine::zeroed());
        assert!(matches!(
            hybrid.decompress(&delta_enc),
            Err(DecompressError::Invalid(_))
        ));
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_candidates_rejected() {
        let _ = HybridCodec::new(vec![Codec::bdi(), Codec::bdi()]);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_candidates_rejected() {
        let _ = HybridCodec::new(Vec::new());
    }

    proptest! {
        #[test]
        fn roundtrip_random(words in proptest::array::uniform16(any::<u32>())) {
            let hybrid = HybridCodec::new(vec![Codec::bdi(), Codec::fpc(), Codec::sfpc(), Codec::cpack()]);
            let line = CacheLine::from_u32_words(words);
            let enc = hybrid.compress(&line);
            prop_assert_eq!(hybrid.decompress(&enc).unwrap(), line);
        }
    }
}
