//! The [`Compressor`] abstraction shared by all codecs, and the [`Codec`]
//! enum the simulator configures.
//!
//! DISCO "does not depend on a specific compression method" (§2); the
//! system simulator is generic over anything implementing [`Compressor`],
//! and every placement (CC, CNC, DISCO) uses the same codec for a fair
//! comparison, exactly as §4.1 prescribes.

use crate::bdi::BdiCodec;
use crate::cpack::CPackCodec;
use crate::delta::DeltaCodec;
use crate::fpc::FpcCodec;
use crate::line::{CacheLine, LINE_BYTES};
use crate::sc2::Sc2Codec;
use crate::sfpc::SfpcCodec;
use crate::DecompressError;
use std::fmt;

/// Identifies a compression scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SchemeKind {
    /// The paper's dual-base delta compressor (§3.2, Fig. 4).
    Delta,
    /// Frequent Pattern Compression.
    Fpc,
    /// Simplified FPC (2-bit prefixes).
    Sfpc,
    /// Base-Delta-Immediate.
    Bdi,
    /// Statistical (Huffman) compression.
    Sc2,
    /// C-Pack pattern + dictionary compression.
    CPack,
}

impl SchemeKind {
    /// All schemes, in Table 1 order (plus Delta first, as it is the
    /// paper's reference configuration).
    pub const ALL: [SchemeKind; 6] = [
        SchemeKind::Delta,
        SchemeKind::Fpc,
        SchemeKind::Sfpc,
        SchemeKind::Bdi,
        SchemeKind::Sc2,
        SchemeKind::CPack,
    ];

    /// Human-readable name as used in the paper.
    pub fn name(self) -> &'static str {
        match self {
            SchemeKind::Delta => "Delta",
            SchemeKind::Fpc => "FPC",
            SchemeKind::Sfpc => "SFPC",
            SchemeKind::Bdi => "BDI",
            SchemeKind::Sc2 => "SC2",
            SchemeKind::CPack => "C-Pack",
        }
    }
}

impl fmt::Display for SchemeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A compressed cache line: the scheme that produced it, the encoded
/// payload, and the exact bit length.
///
/// `size_bytes()` is what the NoC and cache layers consume: the router
/// packs `ceil(size_bytes / 8)` body flits, and the compressed cache
/// allocates `ceil(size_bytes / segment)` data segments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompressedLine {
    scheme: SchemeKind,
    data: Vec<u8>,
    bits: usize,
}

impl CompressedLine {
    /// Builds a compressed line from an encoded bitstream.
    ///
    /// # Panics
    ///
    /// Panics if `bits` exceeds the capacity of `data`.
    pub fn new(scheme: SchemeKind, data: Vec<u8>, bits: usize) -> Self {
        assert!(bits <= data.len() * 8, "bit length exceeds buffer");
        CompressedLine { scheme, data, bits }
    }

    /// The scheme that produced this encoding.
    pub fn scheme(&self) -> SchemeKind {
        self.scheme
    }

    /// Encoded payload bytes (the final byte may be partially used).
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// Exact encoded length in bits.
    pub fn size_bits(&self) -> usize {
        self.bits
    }

    /// Encoded length rounded up to whole bytes, clamped to the
    /// uncompressed line size (a codec never does worse than storing the
    /// raw line plus its 1-byte "uncompressed" tag, which hardware holds in
    /// the existing header).
    pub fn size_bytes(&self) -> usize {
        self.bits.div_ceil(8).min(LINE_BYTES)
    }

    /// True if the encoding is strictly smaller than a raw line.
    pub fn is_compressed(&self) -> bool {
        self.size_bytes() < LINE_BYTES
    }

    /// Compression ratio `64 / size_bytes` (≥ 1.0 by construction).
    pub fn ratio(&self) -> f64 {
        LINE_BYTES as f64 / self.size_bytes().max(1) as f64
    }
}

/// A cache-line compressor with a hardware cost model.
///
/// Implementations must satisfy the round-trip law
/// `decompress(compress(line)) == line` for every line; the property tests
/// in each codec module enforce it.
pub trait Compressor {
    /// Which scheme this is.
    fn kind(&self) -> SchemeKind;

    /// Encodes a line. Infallible: every codec has an "uncompressed"
    /// fallback encoding.
    fn compress(&self, line: &CacheLine) -> CompressedLine;

    /// Decodes an encoding produced by [`compress`](Compressor::compress).
    ///
    /// # Errors
    ///
    /// Fails if the encoding is corrupted, truncated, or belongs to a
    /// different scheme.
    fn decompress(&self, compressed: &CompressedLine) -> Result<CacheLine, DecompressError>;

    /// Compression latency in cycles (Table 1).
    fn compression_latency(&self) -> u64;

    /// Decompression latency in cycles for a given encoding (Table 1; some
    /// schemes are size-dependent, e.g. BDI's "1~5 cycles").
    fn decompression_latency(&self, compressed: &CompressedLine) -> u64;
}

/// A concrete codec selected at configuration time.
///
/// This is the type the full-system simulator stores: a closed enum rather
/// than a trait object so configurations stay `Clone + Send` and
/// comparisons across placements trivially share one codec instance.
///
/// ```
/// use disco_compress::{CacheLine, Codec, scheme::Compressor};
///
/// # fn main() -> Result<(), disco_compress::DecompressError> {
/// for codec in [Codec::delta(), Codec::fpc(), Codec::bdi()] {
///     let line = CacheLine::zeroed();
///     let enc = codec.compress(&line);
///     assert!(enc.is_compressed());
///     assert_eq!(codec.decompress(&enc)?, line);
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub enum Codec {
    /// Dual-base delta (the paper's reference codec).
    Delta(DeltaCodec),
    /// Frequent Pattern Compression.
    Fpc(FpcCodec),
    /// Simplified FPC.
    Sfpc(SfpcCodec),
    /// Base-Delta-Immediate.
    Bdi(BdiCodec),
    /// Statistical Huffman compression.
    Sc2(Sc2Codec),
    /// C-Pack.
    CPack(CPackCodec),
}

impl Codec {
    /// The paper's delta codec with default parameters.
    pub fn delta() -> Self {
        Codec::Delta(DeltaCodec::new())
    }

    /// FPC with default parameters.
    pub fn fpc() -> Self {
        Codec::Fpc(FpcCodec::new())
    }

    /// Simplified FPC.
    pub fn sfpc() -> Self {
        Codec::Sfpc(SfpcCodec::new())
    }

    /// BDI with all encodings enabled.
    pub fn bdi() -> Self {
        Codec::Bdi(BdiCodec::new())
    }

    /// SC² with its built-in default Huffman table.
    pub fn sc2() -> Self {
        Codec::Sc2(Sc2Codec::new())
    }

    /// C-Pack with a 16-entry dictionary.
    pub fn cpack() -> Self {
        Codec::CPack(CPackCodec::new())
    }

    /// Constructs the default codec for a scheme.
    pub fn from_kind(kind: SchemeKind) -> Self {
        match kind {
            SchemeKind::Delta => Codec::delta(),
            SchemeKind::Fpc => Codec::fpc(),
            SchemeKind::Sfpc => Codec::sfpc(),
            SchemeKind::Bdi => Codec::bdi(),
            SchemeKind::Sc2 => Codec::sc2(),
            SchemeKind::CPack => Codec::cpack(),
        }
    }
}

impl Compressor for Codec {
    fn kind(&self) -> SchemeKind {
        match self {
            Codec::Delta(c) => c.kind(),
            Codec::Fpc(c) => c.kind(),
            Codec::Sfpc(c) => c.kind(),
            Codec::Bdi(c) => c.kind(),
            Codec::Sc2(c) => c.kind(),
            Codec::CPack(c) => c.kind(),
        }
    }

    fn compress(&self, line: &CacheLine) -> CompressedLine {
        match self {
            Codec::Delta(c) => c.compress(line),
            Codec::Fpc(c) => c.compress(line),
            Codec::Sfpc(c) => c.compress(line),
            Codec::Bdi(c) => c.compress(line),
            Codec::Sc2(c) => c.compress(line),
            Codec::CPack(c) => c.compress(line),
        }
    }

    fn decompress(&self, compressed: &CompressedLine) -> Result<CacheLine, DecompressError> {
        match self {
            Codec::Delta(c) => c.decompress(compressed),
            Codec::Fpc(c) => c.decompress(compressed),
            Codec::Sfpc(c) => c.decompress(compressed),
            Codec::Bdi(c) => c.decompress(compressed),
            Codec::Sc2(c) => c.decompress(compressed),
            Codec::CPack(c) => c.decompress(compressed),
        }
    }

    fn compression_latency(&self) -> u64 {
        match self {
            Codec::Delta(c) => c.compression_latency(),
            Codec::Fpc(c) => c.compression_latency(),
            Codec::Sfpc(c) => c.compression_latency(),
            Codec::Bdi(c) => c.compression_latency(),
            Codec::Sc2(c) => c.compression_latency(),
            Codec::CPack(c) => c.compression_latency(),
        }
    }

    fn decompression_latency(&self, compressed: &CompressedLine) -> u64 {
        match self {
            Codec::Delta(c) => c.decompression_latency(compressed),
            Codec::Fpc(c) => c.decompression_latency(compressed),
            Codec::Sfpc(c) => c.decompression_latency(compressed),
            Codec::Bdi(c) => c.decompression_latency(compressed),
            Codec::Sc2(c) => c.decompression_latency(compressed),
            Codec::CPack(c) => c.decompression_latency(compressed),
        }
    }
}

/// Running compression statistics (lines seen, bytes in/out, ratio).
///
/// ```
/// use disco_compress::{CacheLine, Codec, CompressionStats, scheme::Compressor};
///
/// let codec = Codec::delta();
/// let mut stats = CompressionStats::new();
/// stats.record(&codec.compress(&CacheLine::zeroed()));
/// assert!(stats.mean_ratio() > 1.0);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CompressionStats {
    lines: u64,
    raw_bytes: u64,
    compressed_bytes: u64,
    compressed_lines: u64,
}

impl CompressionStats {
    /// Empty statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one encoded line.
    pub fn record(&mut self, compressed: &CompressedLine) {
        self.lines += 1;
        self.raw_bytes += LINE_BYTES as u64;
        self.compressed_bytes += compressed.size_bytes() as u64;
        if compressed.is_compressed() {
            self.compressed_lines += 1;
        }
    }

    /// Number of lines recorded.
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// Aggregate compression ratio (raw / compressed bytes).
    pub fn mean_ratio(&self) -> f64 {
        if self.compressed_bytes == 0 {
            return 1.0;
        }
        self.raw_bytes as f64 / self.compressed_bytes as f64
    }

    /// Fraction of lines that actually shrank.
    pub fn coverage(&self) -> f64 {
        if self.lines == 0 {
            return 0.0;
        }
        self.compressed_lines as f64 / self.lines as f64
    }

    /// Total compressed output bytes.
    pub fn compressed_bytes(&self) -> u64 {
        self.compressed_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_are_stable() {
        assert_eq!(SchemeKind::Delta.name(), "Delta");
        assert_eq!(SchemeKind::Sc2.name(), "SC2");
        assert_eq!(format!("{}", SchemeKind::CPack), "C-Pack");
    }

    #[test]
    fn all_kinds_build_default_codecs() {
        for kind in SchemeKind::ALL {
            let codec = Codec::from_kind(kind);
            assert_eq!(codec.kind(), kind);
        }
    }

    #[test]
    fn compressed_line_size_rounds_up() {
        let c = CompressedLine::new(SchemeKind::Delta, vec![0; 3], 17);
        assert_eq!(c.size_bits(), 17);
        assert_eq!(c.size_bytes(), 3);
        assert!(c.is_compressed());
    }

    #[test]
    fn compressed_line_clamps_to_line_size() {
        let c = CompressedLine::new(SchemeKind::Fpc, vec![0; 80], 80 * 8);
        assert_eq!(c.size_bytes(), LINE_BYTES);
        assert!(!c.is_compressed());
        assert!((c.ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "bit length exceeds buffer")]
    fn compressed_line_validates_bits() {
        let _ = CompressedLine::new(SchemeKind::Delta, vec![0; 1], 9);
    }

    #[test]
    fn stats_accumulate() {
        let mut stats = CompressionStats::new();
        stats.record(&CompressedLine::new(SchemeKind::Delta, vec![0; 16], 128));
        stats.record(&CompressedLine::new(SchemeKind::Delta, vec![0; 64], 512));
        assert_eq!(stats.lines(), 2);
        assert!((stats.mean_ratio() - 128.0 / 80.0).abs() < 1e-12);
        assert!((stats.coverage() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_are_neutral() {
        let stats = CompressionStats::new();
        assert_eq!(stats.mean_ratio(), 1.0);
        assert_eq!(stats.coverage(), 0.0);
    }

    #[test]
    fn codec_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Codec>();
        assert_send_sync::<CompressedLine>();
    }
}

// ---------------------------------------------------------------------------
// Checkpointing (see crates/snapshot/manifest.txt)
// ---------------------------------------------------------------------------

impl disco_snapshot::Snap for SchemeKind {
    fn snap(&self, w: &mut disco_snapshot::Writer) {
        let tag = SchemeKind::ALL
            .iter()
            .position(|s| s == self)
            .expect("ALL covers every scheme") as u8;
        w.put(&tag);
    }
    fn restore(r: &mut disco_snapshot::Reader<'_>) -> Result<Self, disco_snapshot::SnapError> {
        let tag: u8 = r.take()?;
        SchemeKind::ALL
            .get(tag as usize)
            .copied()
            .ok_or_else(|| disco_snapshot::malformed(format!("SchemeKind tag {tag}")))
    }
}

impl disco_snapshot::Snap for CompressedLine {
    fn snap(&self, w: &mut disco_snapshot::Writer) {
        w.put(&self.scheme);
        w.put(&self.data);
        w.put(&self.bits);
    }
    fn restore(r: &mut disco_snapshot::Reader<'_>) -> Result<Self, disco_snapshot::SnapError> {
        let scheme: SchemeKind = r.take()?;
        let data: Vec<u8> = r.take()?;
        let bits: usize = r.take()?;
        if bits > data.len() * 8 {
            return Err(disco_snapshot::malformed(format!(
                "CompressedLine bit length {bits} exceeds {}-byte buffer",
                data.len()
            )));
        }
        Ok(CompressedLine { scheme, data, bits })
    }
}

disco_snapshot::snap_fields!(CompressionStats {
    lines,
    raw_bytes,
    compressed_bytes,
    compressed_lines,
});
