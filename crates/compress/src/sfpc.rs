//! Simplified Frequent Pattern Compression ("SFPC", Table 1).
//!
//! A cut-down FPC using 2-bit prefixes and only the three cheapest
//! patterns. The shallower prefix decode shaves one cycle off FPC's
//! decompression latency (4 vs 5, Table 1) at the cost of compression
//! ratio (1.33 vs 1.5).

use crate::bitio::{fits_signed, sign_extend, BitReader, BitWriter};
use crate::line::{CacheLine, WORDS32};
use crate::scheme::{CompressedLine, Compressor, SchemeKind};
use crate::DecompressError;

const P_ZERO: u64 = 0b00;
const P_SE8: u64 = 0b01;
const P_REPEATED_BYTE: u64 = 0b10;
const P_UNCOMPRESSED: u64 = 0b11;

/// Simplified FPC codec.
///
/// ```
/// use disco_compress::{CacheLine, sfpc::SfpcCodec, scheme::Compressor};
///
/// # fn main() -> Result<(), disco_compress::DecompressError> {
/// let codec = SfpcCodec::new();
/// let line = CacheLine::zeroed();
/// let enc = codec.compress(&line);
/// assert_eq!(enc.size_bits(), 16 * 2); // one 2-bit prefix per zero word
/// assert_eq!(codec.decompress(&enc)?, line);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct SfpcCodec {
    _private: (),
}

impl SfpcCodec {
    /// Creates the codec.
    pub fn new() -> Self {
        SfpcCodec { _private: () }
    }
}

impl Compressor for SfpcCodec {
    fn kind(&self) -> SchemeKind {
        SchemeKind::Sfpc
    }

    fn compress(&self, line: &CacheLine) -> CompressedLine {
        let mut w = BitWriter::new();
        for word in line.u32_words() {
            let bytes = word.to_le_bytes();
            if word == 0 {
                w.write_bits(P_ZERO, 2);
            } else if fits_signed(word as i32 as i64, 8) {
                w.write_bits(P_SE8, 2);
                w.write_bits(word as u64 & 0xff, 8);
            } else if bytes.iter().all(|&b| b == bytes[0]) {
                w.write_bits(P_REPEATED_BYTE, 2);
                w.write_bits(bytes[0] as u64, 8);
            } else {
                w.write_bits(P_UNCOMPRESSED, 2);
                w.write_bits(word as u64, 32);
            }
        }
        let (data, bits) = w.finish();
        CompressedLine::new(SchemeKind::Sfpc, data, bits)
    }

    fn decompress(&self, compressed: &CompressedLine) -> Result<CacheLine, DecompressError> {
        if compressed.scheme() != SchemeKind::Sfpc {
            return Err(DecompressError::SchemeMismatch {
                expected: SchemeKind::Sfpc,
                found: compressed.scheme(),
            });
        }
        let mut r = BitReader::new(compressed.data(), compressed.size_bits());
        let mut words = [0u32; WORDS32];
        for word in words.iter_mut() {
            *word = match r.read_bits(2)? {
                P_ZERO => 0,
                P_SE8 => sign_extend(r.read_bits(8)?, 8) as u32,
                P_REPEATED_BYTE => {
                    let b = r.read_bits(8)? as u32;
                    b | (b << 8) | (b << 16) | (b << 24)
                }
                P_UNCOMPRESSED => r.read_bits(32)? as u32,
                _ => unreachable!("2-bit prefix"),
            };
        }
        Ok(CacheLine::from_u32_words(words))
    }

    /// Parallel single-level pattern match: 2 cycles.
    fn compression_latency(&self) -> u64 {
        2
    }

    /// Table 1: 4-cycle decompression.
    fn decompression_latency(&self, _compressed: &CompressedLine) -> u64 {
        4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn codec() -> SfpcCodec {
        SfpcCodec::new()
    }

    #[test]
    fn zero_line() {
        let enc = codec().compress(&CacheLine::zeroed());
        assert_eq!(enc.size_bytes(), 4);
        assert_eq!(codec().decompress(&enc).unwrap(), CacheLine::zeroed());
    }

    #[test]
    fn small_ints() {
        let line = CacheLine::from_u32_words([(-100i32) as u32; 16]);
        let enc = codec().compress(&line);
        assert_eq!(enc.size_bits(), 16 * 10);
        assert_eq!(codec().decompress(&enc).unwrap(), line);
    }

    #[test]
    fn repeated_bytes() {
        let line = CacheLine::from_u32_words([0x7f7f_7f7f; 16]);
        let enc = codec().compress(&line);
        assert_eq!(enc.size_bits(), 16 * 10);
        assert_eq!(codec().decompress(&enc).unwrap(), line);
    }

    #[test]
    fn sfpc_never_beats_fpc_on_zeros() {
        // SFPC lacks zero runs, so a zero line costs 32 bits vs FPC's 12.
        use crate::fpc::FpcCodec;
        let z = CacheLine::zeroed();
        assert!(
            SfpcCodec::new().compress(&z).size_bits() > FpcCodec::new().compress(&z).size_bits()
        );
    }

    #[test]
    fn latency_is_one_less_than_fpc() {
        use crate::fpc::FpcCodec;
        let enc = codec().compress(&CacheLine::zeroed());
        let fpc_enc = FpcCodec::new().compress(&CacheLine::zeroed());
        assert_eq!(
            codec().decompression_latency(&enc) + 1,
            FpcCodec::new().decompression_latency(&fpc_enc)
        );
    }

    proptest! {
        #[test]
        fn roundtrip_random(words in proptest::array::uniform16(any::<u32>())) {
            let line = CacheLine::from_u32_words(words);
            let enc = codec().compress(&line);
            prop_assert_eq!(codec().decompress(&enc).unwrap(), line);
        }
    }
}
