//! Bit-granular writer/reader used by the prefix-code codecs (FPC, SFPC,
//! SC², C-Pack).
//!
//! Bits are written most-significant-first within each value and packed
//! little-endian across the byte buffer in write order, which keeps encoded
//! sizes identical to a hardware shift-register serializer.

use crate::DecompressError;

/// Appends bit fields to a growable byte buffer.
///
/// ```
/// use disco_compress::bitio::{BitReader, BitWriter};
///
/// # fn main() -> Result<(), disco_compress::DecompressError> {
/// let mut w = BitWriter::new();
/// w.write_bits(0b101, 3);
/// w.write_bits(0xfeed, 16);
/// let (bytes, bits) = w.finish();
/// let mut r = BitReader::new(&bytes, bits);
/// assert_eq!(r.read_bits(3)?, 0b101);
/// assert_eq!(r.read_bits(16)?, 0xfeed);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct BitWriter {
    buf: Vec<u8>,
    /// Total number of valid bits in `buf`.
    bits: usize,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of bits written so far.
    pub fn bit_len(&self) -> usize {
        self.bits
    }

    /// Appends the low `n` bits of `value`, most significant first.
    ///
    /// # Panics
    ///
    /// Panics if `n > 64`.
    pub fn write_bits(&mut self, value: u64, n: u32) {
        assert!(n <= 64, "cannot write more than 64 bits at once");
        for i in (0..n).rev() {
            let bit = (value >> i) & 1;
            let byte_idx = self.bits / 8;
            let bit_idx = 7 - (self.bits % 8);
            if byte_idx == self.buf.len() {
                self.buf.push(0);
            }
            self.buf[byte_idx] |= (bit as u8) << bit_idx;
            self.bits += 1;
        }
    }

    /// Consumes the writer, returning the packed bytes and exact bit count.
    pub fn finish(self) -> (Vec<u8>, usize) {
        (self.buf, self.bits)
    }
}

/// Reads bit fields previously produced by [`BitWriter`].
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    data: &'a [u8],
    bits: usize,
    pos: usize,
}

impl<'a> BitReader<'a> {
    /// Wraps `data`, of which only the first `bits` bits are valid.
    pub fn new(data: &'a [u8], bits: usize) -> Self {
        BitReader { data, bits, pos: 0 }
    }

    /// Number of unread bits.
    pub fn remaining(&self) -> usize {
        self.bits - self.pos
    }

    /// Reads the next `n` bits as an unsigned value.
    ///
    /// # Errors
    ///
    /// Returns [`DecompressError::Truncated`] if fewer than `n` bits remain.
    ///
    /// # Panics
    ///
    /// Panics if `n > 64`.
    pub fn read_bits(&mut self, n: u32) -> Result<u64, DecompressError> {
        assert!(n <= 64, "cannot read more than 64 bits at once");
        if self.remaining() < n as usize {
            return Err(DecompressError::Truncated);
        }
        let mut value = 0u64;
        for _ in 0..n {
            let byte_idx = self.pos / 8;
            let bit_idx = 7 - (self.pos % 8);
            let bit = (self.data[byte_idx] >> bit_idx) & 1;
            value = (value << 1) | bit as u64;
            self.pos += 1;
        }
        Ok(value)
    }

    /// Reads one bit.
    ///
    /// # Errors
    ///
    /// Returns [`DecompressError::Truncated`] at end of stream.
    pub fn read_bit(&mut self) -> Result<bool, DecompressError> {
        Ok(self.read_bits(1)? == 1)
    }
}

/// Sign-extends the low `n` bits of `value` to a full `i64`.
pub fn sign_extend(value: u64, n: u32) -> i64 {
    debug_assert!((1..=64).contains(&n));
    let shift = 64 - n;
    ((value << shift) as i64) >> shift
}

/// True if `value` fits in `n` bits as a signed two's-complement number.
pub fn fits_signed(value: i64, n: u32) -> bool {
    debug_assert!((1..=64).contains(&n));
    if n == 64 {
        return true;
    }
    let min = -(1i64 << (n - 1));
    let max = (1i64 << (n - 1)) - 1;
    value >= min && value <= max
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_roundtrip() {
        let mut w = BitWriter::new();
        w.write_bits(0b1, 1);
        w.write_bits(0b0110, 4);
        w.write_bits(0xdead_beef, 32);
        w.write_bits(u64::MAX, 64);
        let total = 1 + 4 + 32 + 64;
        assert_eq!(w.bit_len(), total);
        let (bytes, bits) = w.finish();
        assert_eq!(bits, total);
        let mut r = BitReader::new(&bytes, bits);
        assert_eq!(r.read_bits(1).unwrap(), 0b1);
        assert_eq!(r.read_bits(4).unwrap(), 0b0110);
        assert_eq!(r.read_bits(32).unwrap(), 0xdead_beef);
        assert_eq!(r.read_bits(64).unwrap(), u64::MAX);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn truncated_read_errors() {
        let mut w = BitWriter::new();
        w.write_bits(0b101, 3);
        let (bytes, bits) = w.finish();
        let mut r = BitReader::new(&bytes, bits);
        assert_eq!(r.read_bits(2).unwrap(), 0b10);
        assert_eq!(r.read_bits(2), Err(DecompressError::Truncated));
    }

    #[test]
    fn zero_width_write_is_noop() {
        let mut w = BitWriter::new();
        w.write_bits(0xff, 0);
        assert_eq!(w.bit_len(), 0);
    }

    #[test]
    fn sign_extend_works() {
        assert_eq!(sign_extend(0b1111, 4), -1);
        assert_eq!(sign_extend(0b0111, 4), 7);
        assert_eq!(sign_extend(0b1000, 4), -8);
        assert_eq!(sign_extend(0xff, 8), -1);
        assert_eq!(sign_extend(0x7f, 8), 127);
    }

    #[test]
    fn fits_signed_bounds() {
        assert!(fits_signed(127, 8));
        assert!(fits_signed(-128, 8));
        assert!(!fits_signed(128, 8));
        assert!(!fits_signed(-129, 8));
        assert!(fits_signed(0, 1));
        assert!(fits_signed(-1, 1));
        assert!(!fits_signed(1, 1));
        assert!(fits_signed(i64::MIN, 64));
    }

    #[test]
    fn bit_packing_is_msb_first() {
        let mut w = BitWriter::new();
        w.write_bits(0b1010_1010, 8);
        let (bytes, _) = w.finish();
        assert_eq!(bytes, vec![0b1010_1010]);
    }
}
