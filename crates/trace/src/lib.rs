#![warn(missing_docs)]

//! Deterministic event tracing and latency provenance for the DISCO
//! simulator.
//!
//! Three layers, each usable on its own:
//!
//! 1. **Events** ([`Event`], [`Record`]): typed, all-integer descriptions
//!    of packet lifecycle milestones (inject/eject), per-hop router
//!    pipeline actions (RC/VA/SA/ST), VC stalls with a reason code,
//!    codec engine start/finish, and L2/DRAM access boundaries. Every
//!    record is stamped with the *simulated* cycle — never wall-clock —
//!    so a trace is a pure function of the simulation seed.
//! 2. **Collection** ([`Tracer`], [`emit!`]): a fixed-capacity
//!    drop-oldest ring buffer. Emission sites go through the [`emit!`]
//!    macro, which compiles to nothing unless the *calling* crate's
//!    `trace` cargo feature is on — the hot path stays panic-free and
//!    byte-identical with the feature off.
//! 3. **Analysis** ([`provenance::ProvenanceAnalyzer`], [`export`]):
//!    a provenance pass decomposing each packet's end-to-end latency
//!    into {serialization, link, queuing, codec, protocol} cycles that
//!    sum *exactly* to the measured latency, plus the paper's
//!    hidden-latency coverage (codec cycles overlapped with queuing),
//!    and exporters to JSONL and Chrome/Perfetto `trace.json`.
//!
//! Determinism contract: events must be recorded from serial,
//! node-ordered code (the commit phase of the cycle kernel), and every
//! field is an integer derived from simulation state. Under that
//! contract the exported JSONL is byte-identical at any shard count.

pub mod event;
pub mod export;
pub mod provenance;
pub mod ring;

pub use event::{codec, site, stall, Event, Record};
pub use provenance::{PacketProvenance, ProvenanceAnalyzer, ProvenanceReport, ProvenanceTotals};
pub use ring::{Tracer, DEFAULT_CAPACITY};

/// Records an event into `$sink` — a no-op unless the **calling** crate
/// is built with its `trace` cargo feature.
///
/// `$sink` is any value with a `trace_record(Event)` method (a
/// [`Tracer`], an [`EventList`], or a wrapper forwarding to one). With
/// the feature off the whole expansion is removed before name
/// resolution, so neither operand is evaluated and the call site costs
/// nothing; arguments must therefore only reference values that are
/// used elsewhere, or the feature-off build trips unused warnings.
#[macro_export]
macro_rules! emit {
    ($sink:expr, $ev:expr) => {{
        #[cfg(feature = "trace")]
        {
            $sink.trace_record($ev);
        }
    }};
}

/// An ordered, growable list of events with the same `trace_record`
/// surface as [`Tracer`], for carrying events out of the pure compute
/// phase (e.g. on `RouterOutcome`) to be cycle-stamped at commit time.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EventList(pub Vec<Event>);

impl EventList {
    /// Appends one event (sink surface used by [`emit!`]).
    pub fn trace_record(&mut self, event: Event) {
        self.0.push(event);
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when no events are buffered.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Takes the buffered events, leaving the list empty.
    pub fn drain(&mut self) -> Vec<Event> {
        std::mem::take(&mut self.0)
    }
}

impl disco_snapshot::Snap for EventList {
    fn snap(&self, w: &mut disco_snapshot::Writer) {
        w.put(&self.0);
    }
    fn restore(r: &mut disco_snapshot::Reader<'_>) -> Result<Self, disco_snapshot::SnapError> {
        Ok(EventList(r.take()?))
    }
}
