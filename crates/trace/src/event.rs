//! Typed trace events and their cycle-stamped records.
//!
//! Every field is an integer (or bool) derived from simulation state, so
//! serialized records are bit-reproducible across hosts and shard
//! counts. Identifier widths follow the simulator: packet ids are `u64`
//! ([`PacketId`](../../noc/src/packet.rs) indices), node ids fit `u16`
//! (meshes are at most 256×256), ports/VCs/directions fit `u8`.

use std::fmt::Write as _;

/// VC stall reason codes carried by [`Event::VcStall`].
pub mod stall {
    /// The winning VC had no downstream credit this cycle.
    pub const NO_CREDIT: u8 = 0;
    /// Lost switch allocation to a higher-priority or round-robin rival.
    pub const LOST_ARBITRATION: u8 = 1;
    /// VC allocation failed: no free output VC of the packet's class.
    pub const NO_FREE_VC: u8 = 2;
    /// The output port is fault-stalled (injected port stall or flaky
    /// link window; `faults` feature).
    pub const FAULT_STALL: u8 = 3;
}

/// Codec operation and outcome codes carried by the codec events.
pub mod codec {
    /// Operation: compression (whole-packet, streaming, or NI-queued).
    pub const COMPRESS: u8 = 0;
    /// Operation: decompression.
    pub const DECOMPRESS: u8 = 1;

    /// Outcome: the operation committed its result.
    pub const DONE: u8 = 0;
    /// Outcome: aborted (packet departed, backlog emptied, engine idle).
    pub const ABORTED: u8 = 1;
    /// Outcome: finished but the payload was incompressible.
    pub const INCOMPRESSIBLE: u8 = 2;
    /// Outcome: decompression result did not fit the input buffer.
    pub const GROWTH_STALL: u8 = 3;
}

/// Endpoint (non-in-network) codec site codes for [`Event::EndpointCodec`].
pub mod site {
    /// Bank responding to a read (CC decompress, CNC decompress+compress).
    pub const BANK_SEND: u8 = 0;
    /// Core/NI sending a line into the network (CNC compress).
    pub const ENDPOINT_SEND: u8 = 1;
    /// Preparing a line for compressed L2 storage.
    pub const STORE_PREP: u8 = 2;
    /// Core receiving a compressed response (decompress before use).
    pub const CORE_RECEIVE: u8 = 3;
    /// Bank eviction path (decompress before writeback payload built).
    pub const BANK_EVICT: u8 = 4;
    /// Memory writeback decompress at the memory controller.
    pub const WRITEBACK: u8 = 5;
}

/// One simulation event. See module docs for field width conventions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// A packet entered the source NI injection queue.
    Inject {
        /// Packet id.
        packet: u64,
        /// Source node.
        src: u16,
        /// Destination node.
        dst: u16,
        /// Packet class index (request/response/writeback).
        class: u8,
        /// Packet size in flits at injection time.
        flits: u8,
    },
    /// The NI popped the packet from its queue and began injecting flits.
    NiStart {
        /// Packet id.
        packet: u64,
        /// Injecting node.
        node: u16,
    },
    /// The NI accepted the packet's last flit into the local input VC.
    NiDone {
        /// Packet id.
        packet: u64,
        /// Injecting node.
        node: u16,
    },
    /// Route computation picked an output direction for a head flit.
    Route {
        /// Packet id.
        packet: u64,
        /// Router node.
        node: u16,
        /// Input port index.
        in_port: u8,
        /// Input VC index.
        in_vc: u8,
        /// Chosen output direction index.
        out_dir: u8,
    },
    /// VC allocation granted an output VC to a routed head flit.
    VcAlloc {
        /// Packet id.
        packet: u64,
        /// Router node.
        node: u16,
        /// Input port index.
        in_port: u8,
        /// Input VC index.
        in_vc: u8,
        /// Output direction index.
        out_dir: u8,
        /// Granted output VC index.
        out_vc: u8,
    },
    /// A flit won switch allocation and traversed the crossbar (ST).
    ///
    /// Emitted only for head and tail flits (body flits add volume but
    /// no analytical information; the tail carries the hop's departure
    /// time, the head its start).
    Traverse {
        /// Packet id.
        packet: u64,
        /// Router node.
        node: u16,
        /// Output direction index.
        out_dir: u8,
        /// True when this is the packet's head flit.
        head: bool,
        /// True when this is the packet's tail flit.
        tail: bool,
    },
    /// The packet's tail flit left through the Local port: delivered.
    Eject {
        /// Packet id.
        packet: u64,
        /// Delivering node.
        node: u16,
    },
    /// A ready VC failed to move a flit this cycle.
    VcStall {
        /// Packet id at the head of the stalled VC.
        packet: u64,
        /// Router node.
        node: u16,
        /// Input port index.
        port: u8,
        /// Input VC index.
        vc: u8,
        /// Reason code from [`stall`].
        reason: u8,
    },
    /// An in-network codec engine started working on a resident packet.
    CodecStart {
        /// Packet id.
        packet: u64,
        /// Router node hosting the engine.
        node: u16,
        /// Operation code from [`codec`].
        op: u8,
        /// True when the engine locks the VC (blocking decompression).
        blocking: bool,
    },
    /// An in-network codec engine finished (or abandoned) its packet.
    CodecEnd {
        /// Packet id.
        packet: u64,
        /// Router node hosting the engine.
        node: u16,
        /// Operation code from [`codec`].
        op: u8,
        /// Outcome code from [`codec`].
        outcome: u8,
    },
    /// An endpoint codec charged latency outside the network (CC/CNC
    /// placements and fallback paths); never overlapped with queuing.
    EndpointCodec {
        /// Site code from [`site`].
        site: u8,
        /// Cycles charged. 64-bit: long fault-retry runs overflow a u32
        /// accumulator upstream, so the event carries full width.
        cycles: u64,
    },
    /// A NUCA L2 bank lookup crossed the cache boundary.
    L2Access {
        /// Bank node/index.
        node: u16,
        /// Line address.
        line: u64,
        /// True on hit.
        hit: bool,
    },
    /// A NUCA L2 bank insert/update wrote the cache arrays.
    L2Insert {
        /// Bank node/index.
        node: u16,
        /// Line address.
        line: u64,
    },
    /// A DRAM access left the chip.
    DramAccess {
        /// Line address.
        line: u64,
        /// True for writes.
        write: bool,
        /// True when the open-row buffer hit.
        row_hit: bool,
    },
    /// A fault was injected (`faults` feature).
    FaultInject {
        /// Fault kind code (`disco_faults::FaultKind::code`).
        kind: u8,
        /// Affected packet id (0 for packet-less sites).
        packet: u64,
        /// Node at which the fault struck.
        node: u16,
    },
    /// A fault was detected (checksum mismatch, loss timeout, or
    /// decompress-and-verify failure).
    FaultDetect {
        /// Fault kind code of the detected fault.
        kind: u8,
        /// Affected packet id.
        packet: u64,
        /// Node at which detection happened.
        node: u16,
    },
    /// The NI retransmitted a lost or corrupted transfer.
    Retransmit {
        /// The replacement packet's id.
        packet: u64,
        /// Retry attempt number (1 = first retransmission).
        attempt: u32,
    },
    /// A corrupted compression was abandoned and the line delivered
    /// uncompressed instead.
    FaultFallback {
        /// Affected packet id.
        packet: u64,
        /// Node hosting the compressor that failed verification.
        node: u16,
    },
}

impl Event {
    /// Short stable name used by both exporters.
    pub fn name(&self) -> &'static str {
        match self {
            Event::Inject { .. } => "inject",
            Event::NiStart { .. } => "ni_start",
            Event::NiDone { .. } => "ni_done",
            Event::Route { .. } => "route",
            Event::VcAlloc { .. } => "vc_alloc",
            Event::Traverse { .. } => "traverse",
            Event::Eject { .. } => "eject",
            Event::VcStall { .. } => "vc_stall",
            Event::CodecStart { .. } => "codec_start",
            Event::CodecEnd { .. } => "codec_end",
            Event::EndpointCodec { .. } => "endpoint_codec",
            Event::L2Access { .. } => "l2_access",
            Event::L2Insert { .. } => "l2_insert",
            Event::DramAccess { .. } => "dram_access",
            Event::FaultInject { .. } => "fault_inject",
            Event::FaultDetect { .. } => "fault_detect",
            Event::Retransmit { .. } => "retransmit",
            Event::FaultFallback { .. } => "fault_fallback",
        }
    }
}

/// A cycle-stamped event, as stored in the ring buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Record {
    /// Simulated cycle at which the event was committed.
    pub cycle: u64,
    /// The event.
    pub event: Event,
}

impl Record {
    /// Appends this record as one compact JSON object (no newline).
    ///
    /// All values are integers or booleans, keys are emitted in a fixed
    /// order, and there is no whitespace — the output is a deterministic
    /// function of the record.
    pub fn write_json(&self, out: &mut String) {
        let _ = write!(
            out,
            "{{\"cycle\":{},\"event\":\"{}\"",
            self.cycle,
            self.event.name()
        );
        match self.event {
            Event::Inject {
                packet,
                src,
                dst,
                class,
                flits,
            } => {
                let _ = write!(
                    out,
                    ",\"packet\":{packet},\"src\":{src},\"dst\":{dst},\"class\":{class},\"flits\":{flits}"
                );
            }
            Event::NiStart { packet, node } | Event::NiDone { packet, node } => {
                let _ = write!(out, ",\"packet\":{packet},\"node\":{node}");
            }
            Event::Route {
                packet,
                node,
                in_port,
                in_vc,
                out_dir,
            } => {
                let _ = write!(
                    out,
                    ",\"packet\":{packet},\"node\":{node},\"in_port\":{in_port},\"in_vc\":{in_vc},\"out_dir\":{out_dir}"
                );
            }
            Event::VcAlloc {
                packet,
                node,
                in_port,
                in_vc,
                out_dir,
                out_vc,
            } => {
                let _ = write!(
                    out,
                    ",\"packet\":{packet},\"node\":{node},\"in_port\":{in_port},\"in_vc\":{in_vc},\"out_dir\":{out_dir},\"out_vc\":{out_vc}"
                );
            }
            Event::Traverse {
                packet,
                node,
                out_dir,
                head,
                tail,
            } => {
                let _ = write!(
                    out,
                    ",\"packet\":{packet},\"node\":{node},\"out_dir\":{out_dir},\"head\":{head},\"tail\":{tail}"
                );
            }
            Event::Eject { packet, node } => {
                let _ = write!(out, ",\"packet\":{packet},\"node\":{node}");
            }
            Event::VcStall {
                packet,
                node,
                port,
                vc,
                reason,
            } => {
                let _ = write!(
                    out,
                    ",\"packet\":{packet},\"node\":{node},\"port\":{port},\"vc\":{vc},\"reason\":{reason}"
                );
            }
            Event::CodecStart {
                packet,
                node,
                op,
                blocking,
            } => {
                let _ = write!(
                    out,
                    ",\"packet\":{packet},\"node\":{node},\"op\":{op},\"blocking\":{blocking}"
                );
            }
            Event::CodecEnd {
                packet,
                node,
                op,
                outcome,
            } => {
                let _ = write!(
                    out,
                    ",\"packet\":{packet},\"node\":{node},\"op\":{op},\"outcome\":{outcome}"
                );
            }
            Event::EndpointCodec { site, cycles } => {
                let _ = write!(out, ",\"site\":{site},\"cycles\":{cycles}");
            }
            Event::L2Access { node, line, hit } => {
                let _ = write!(out, ",\"node\":{node},\"line\":{line},\"hit\":{hit}");
            }
            Event::L2Insert { node, line } => {
                let _ = write!(out, ",\"node\":{node},\"line\":{line}");
            }
            Event::DramAccess {
                line,
                write,
                row_hit,
            } => {
                let _ = write!(
                    out,
                    ",\"line\":{line},\"write\":{write},\"row_hit\":{row_hit}"
                );
            }
            Event::FaultInject { kind, packet, node }
            | Event::FaultDetect { kind, packet, node } => {
                let _ = write!(out, ",\"kind\":{kind},\"packet\":{packet},\"node\":{node}");
            }
            Event::Retransmit { packet, attempt } => {
                let _ = write!(out, ",\"packet\":{packet},\"attempt\":{attempt}");
            }
            Event::FaultFallback { packet, node } => {
                let _ = write!(out, ",\"packet\":{packet},\"node\":{node}");
            }
        }
        out.push('}');
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_is_compact_and_keyed() {
        let rec = Record {
            cycle: 7,
            event: Event::Inject {
                packet: 3,
                src: 0,
                dst: 15,
                class: 1,
                flits: 5,
            },
        };
        let mut s = String::new();
        rec.write_json(&mut s);
        assert_eq!(
            s,
            "{\"cycle\":7,\"event\":\"inject\",\"packet\":3,\"src\":0,\"dst\":15,\"class\":1,\"flits\":5}"
        );
    }

    #[test]
    fn every_variant_serializes_with_its_name() {
        let variants = [
            Event::NiStart { packet: 1, node: 2 },
            Event::NiDone { packet: 1, node: 2 },
            Event::Route {
                packet: 1,
                node: 2,
                in_port: 0,
                in_vc: 1,
                out_dir: 2,
            },
            Event::VcAlloc {
                packet: 1,
                node: 2,
                in_port: 0,
                in_vc: 1,
                out_dir: 2,
                out_vc: 0,
            },
            Event::Traverse {
                packet: 1,
                node: 2,
                out_dir: 4,
                head: true,
                tail: false,
            },
            Event::Eject { packet: 1, node: 2 },
            Event::VcStall {
                packet: 1,
                node: 2,
                port: 3,
                vc: 0,
                reason: stall::NO_CREDIT,
            },
            Event::CodecStart {
                packet: 1,
                node: 2,
                op: codec::COMPRESS,
                blocking: false,
            },
            Event::CodecEnd {
                packet: 1,
                node: 2,
                op: codec::COMPRESS,
                outcome: codec::DONE,
            },
            Event::EndpointCodec {
                site: site::BANK_SEND,
                cycles: 9,
            },
            Event::L2Access {
                node: 2,
                line: 77,
                hit: true,
            },
            Event::L2Insert { node: 2, line: 77 },
            Event::DramAccess {
                line: 77,
                write: false,
                row_hit: true,
            },
            Event::FaultInject {
                kind: 0,
                packet: 1,
                node: 2,
            },
            Event::FaultDetect {
                kind: 3,
                packet: 1,
                node: 2,
            },
            Event::Retransmit {
                packet: 1,
                attempt: 2,
            },
            Event::FaultFallback { packet: 1, node: 2 },
        ];
        for ev in variants {
            let mut s = String::new();
            Record {
                cycle: 0,
                event: ev,
            }
            .write_json(&mut s);
            assert!(s.contains(ev.name()), "{s}");
            assert!(s.starts_with('{') && s.ends_with('}'));
        }
    }

    #[test]
    fn endpoint_codec_carries_u64_cycle_sums() {
        // Regression: the accumulated endpoint-codec latency of a long
        // fault-retry run exceeds u32; the record must carry full width.
        let big = u64::from(u32::MAX) + 17;
        let mut s = String::new();
        Record {
            cycle: 1,
            event: Event::EndpointCodec {
                site: site::WRITEBACK,
                cycles: big,
            },
        }
        .write_json(&mut s);
        assert!(s.contains(&format!("\"cycles\":{big}")), "{s}");
    }
}
