//! Typed trace events and their cycle-stamped records.
//!
//! Every field is an integer (or bool) derived from simulation state, so
//! serialized records are bit-reproducible across hosts and shard
//! counts. Identifier widths follow the simulator: packet ids are `u64`
//! ([`PacketId`](../../noc/src/packet.rs) indices), node ids fit `u16`
//! (meshes are at most 256×256), ports/VCs/directions fit `u8`.

use std::fmt::Write as _;

/// VC stall reason codes carried by [`Event::VcStall`].
pub mod stall {
    /// The winning VC had no downstream credit this cycle.
    pub const NO_CREDIT: u8 = 0;
    /// Lost switch allocation to a higher-priority or round-robin rival.
    pub const LOST_ARBITRATION: u8 = 1;
    /// VC allocation failed: no free output VC of the packet's class.
    pub const NO_FREE_VC: u8 = 2;
    /// The output port is fault-stalled (injected port stall or flaky
    /// link window; `faults` feature).
    pub const FAULT_STALL: u8 = 3;
}

/// Codec operation and outcome codes carried by the codec events.
pub mod codec {
    /// Operation: compression (whole-packet, streaming, or NI-queued).
    pub const COMPRESS: u8 = 0;
    /// Operation: decompression.
    pub const DECOMPRESS: u8 = 1;

    /// Outcome: the operation committed its result.
    pub const DONE: u8 = 0;
    /// Outcome: aborted (packet departed, backlog emptied, engine idle).
    pub const ABORTED: u8 = 1;
    /// Outcome: finished but the payload was incompressible.
    pub const INCOMPRESSIBLE: u8 = 2;
    /// Outcome: decompression result did not fit the input buffer.
    pub const GROWTH_STALL: u8 = 3;
}

/// Endpoint (non-in-network) codec site codes for [`Event::EndpointCodec`].
pub mod site {
    /// Bank responding to a read (CC decompress, CNC decompress+compress).
    pub const BANK_SEND: u8 = 0;
    /// Core/NI sending a line into the network (CNC compress).
    pub const ENDPOINT_SEND: u8 = 1;
    /// Preparing a line for compressed L2 storage.
    pub const STORE_PREP: u8 = 2;
    /// Core receiving a compressed response (decompress before use).
    pub const CORE_RECEIVE: u8 = 3;
    /// Bank eviction path (decompress before writeback payload built).
    pub const BANK_EVICT: u8 = 4;
    /// Memory writeback decompress at the memory controller.
    pub const WRITEBACK: u8 = 5;
}

/// One simulation event. See module docs for field width conventions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// A packet entered the source NI injection queue.
    Inject {
        /// Packet id.
        packet: u64,
        /// Source node.
        src: u16,
        /// Destination node.
        dst: u16,
        /// Packet class index (request/response/writeback).
        class: u8,
        /// Packet size in flits at injection time.
        flits: u8,
    },
    /// The NI popped the packet from its queue and began injecting flits.
    NiStart {
        /// Packet id.
        packet: u64,
        /// Injecting node.
        node: u16,
    },
    /// The NI accepted the packet's last flit into the local input VC.
    NiDone {
        /// Packet id.
        packet: u64,
        /// Injecting node.
        node: u16,
    },
    /// Route computation picked an output direction for a head flit.
    Route {
        /// Packet id.
        packet: u64,
        /// Router node.
        node: u16,
        /// Input port index.
        in_port: u8,
        /// Input VC index.
        in_vc: u8,
        /// Chosen output direction index.
        out_dir: u8,
    },
    /// VC allocation granted an output VC to a routed head flit.
    VcAlloc {
        /// Packet id.
        packet: u64,
        /// Router node.
        node: u16,
        /// Input port index.
        in_port: u8,
        /// Input VC index.
        in_vc: u8,
        /// Output direction index.
        out_dir: u8,
        /// Granted output VC index.
        out_vc: u8,
    },
    /// A flit won switch allocation and traversed the crossbar (ST).
    ///
    /// Emitted only for head and tail flits (body flits add volume but
    /// no analytical information; the tail carries the hop's departure
    /// time, the head its start).
    Traverse {
        /// Packet id.
        packet: u64,
        /// Router node.
        node: u16,
        /// Output direction index.
        out_dir: u8,
        /// True when this is the packet's head flit.
        head: bool,
        /// True when this is the packet's tail flit.
        tail: bool,
    },
    /// The packet's tail flit left through the Local port: delivered.
    Eject {
        /// Packet id.
        packet: u64,
        /// Delivering node.
        node: u16,
    },
    /// A ready VC failed to move a flit this cycle.
    VcStall {
        /// Packet id at the head of the stalled VC.
        packet: u64,
        /// Router node.
        node: u16,
        /// Input port index.
        port: u8,
        /// Input VC index.
        vc: u8,
        /// Reason code from [`stall`].
        reason: u8,
    },
    /// An in-network codec engine started working on a resident packet.
    CodecStart {
        /// Packet id.
        packet: u64,
        /// Router node hosting the engine.
        node: u16,
        /// Operation code from [`codec`].
        op: u8,
        /// True when the engine locks the VC (blocking decompression).
        blocking: bool,
    },
    /// An in-network codec engine finished (or abandoned) its packet.
    CodecEnd {
        /// Packet id.
        packet: u64,
        /// Router node hosting the engine.
        node: u16,
        /// Operation code from [`codec`].
        op: u8,
        /// Outcome code from [`codec`].
        outcome: u8,
    },
    /// An endpoint codec charged latency outside the network (CC/CNC
    /// placements and fallback paths); never overlapped with queuing.
    EndpointCodec {
        /// Site code from [`site`].
        site: u8,
        /// Cycles charged. 64-bit: long fault-retry runs overflow a u32
        /// accumulator upstream, so the event carries full width.
        cycles: u64,
    },
    /// A NUCA L2 bank lookup crossed the cache boundary.
    L2Access {
        /// Bank node/index.
        node: u16,
        /// Line address.
        line: u64,
        /// True on hit.
        hit: bool,
    },
    /// A NUCA L2 bank insert/update wrote the cache arrays.
    L2Insert {
        /// Bank node/index.
        node: u16,
        /// Line address.
        line: u64,
    },
    /// A DRAM access left the chip.
    DramAccess {
        /// Line address.
        line: u64,
        /// True for writes.
        write: bool,
        /// True when the open-row buffer hit.
        row_hit: bool,
    },
    /// A fault was injected (`faults` feature).
    FaultInject {
        /// Fault kind code (`disco_faults::FaultKind::code`).
        kind: u8,
        /// Affected packet id (0 for packet-less sites).
        packet: u64,
        /// Node at which the fault struck.
        node: u16,
    },
    /// A fault was detected (checksum mismatch, loss timeout, or
    /// decompress-and-verify failure).
    FaultDetect {
        /// Fault kind code of the detected fault.
        kind: u8,
        /// Affected packet id.
        packet: u64,
        /// Node at which detection happened.
        node: u16,
    },
    /// The NI retransmitted a lost or corrupted transfer.
    Retransmit {
        /// The replacement packet's id.
        packet: u64,
        /// Retry attempt number (1 = first retransmission).
        attempt: u32,
    },
    /// A corrupted compression was abandoned and the line delivered
    /// uncompressed instead.
    FaultFallback {
        /// Affected packet id.
        packet: u64,
        /// Node hosting the compressor that failed verification.
        node: u16,
    },
}

impl Event {
    /// Short stable name used by both exporters.
    pub fn name(&self) -> &'static str {
        match self {
            Event::Inject { .. } => "inject",
            Event::NiStart { .. } => "ni_start",
            Event::NiDone { .. } => "ni_done",
            Event::Route { .. } => "route",
            Event::VcAlloc { .. } => "vc_alloc",
            Event::Traverse { .. } => "traverse",
            Event::Eject { .. } => "eject",
            Event::VcStall { .. } => "vc_stall",
            Event::CodecStart { .. } => "codec_start",
            Event::CodecEnd { .. } => "codec_end",
            Event::EndpointCodec { .. } => "endpoint_codec",
            Event::L2Access { .. } => "l2_access",
            Event::L2Insert { .. } => "l2_insert",
            Event::DramAccess { .. } => "dram_access",
            Event::FaultInject { .. } => "fault_inject",
            Event::FaultDetect { .. } => "fault_detect",
            Event::Retransmit { .. } => "retransmit",
            Event::FaultFallback { .. } => "fault_fallback",
        }
    }
}

/// A cycle-stamped event, as stored in the ring buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Record {
    /// Simulated cycle at which the event was committed.
    pub cycle: u64,
    /// The event.
    pub event: Event,
}

impl Record {
    /// Appends this record as one compact JSON object (no newline).
    ///
    /// All values are integers or booleans, keys are emitted in a fixed
    /// order, and there is no whitespace — the output is a deterministic
    /// function of the record.
    pub fn write_json(&self, out: &mut String) {
        let _ = write!(
            out,
            "{{\"cycle\":{},\"event\":\"{}\"",
            self.cycle,
            self.event.name()
        );
        match self.event {
            Event::Inject {
                packet,
                src,
                dst,
                class,
                flits,
            } => {
                let _ = write!(
                    out,
                    ",\"packet\":{packet},\"src\":{src},\"dst\":{dst},\"class\":{class},\"flits\":{flits}"
                );
            }
            Event::NiStart { packet, node } | Event::NiDone { packet, node } => {
                let _ = write!(out, ",\"packet\":{packet},\"node\":{node}");
            }
            Event::Route {
                packet,
                node,
                in_port,
                in_vc,
                out_dir,
            } => {
                let _ = write!(
                    out,
                    ",\"packet\":{packet},\"node\":{node},\"in_port\":{in_port},\"in_vc\":{in_vc},\"out_dir\":{out_dir}"
                );
            }
            Event::VcAlloc {
                packet,
                node,
                in_port,
                in_vc,
                out_dir,
                out_vc,
            } => {
                let _ = write!(
                    out,
                    ",\"packet\":{packet},\"node\":{node},\"in_port\":{in_port},\"in_vc\":{in_vc},\"out_dir\":{out_dir},\"out_vc\":{out_vc}"
                );
            }
            Event::Traverse {
                packet,
                node,
                out_dir,
                head,
                tail,
            } => {
                let _ = write!(
                    out,
                    ",\"packet\":{packet},\"node\":{node},\"out_dir\":{out_dir},\"head\":{head},\"tail\":{tail}"
                );
            }
            Event::Eject { packet, node } => {
                let _ = write!(out, ",\"packet\":{packet},\"node\":{node}");
            }
            Event::VcStall {
                packet,
                node,
                port,
                vc,
                reason,
            } => {
                let _ = write!(
                    out,
                    ",\"packet\":{packet},\"node\":{node},\"port\":{port},\"vc\":{vc},\"reason\":{reason}"
                );
            }
            Event::CodecStart {
                packet,
                node,
                op,
                blocking,
            } => {
                let _ = write!(
                    out,
                    ",\"packet\":{packet},\"node\":{node},\"op\":{op},\"blocking\":{blocking}"
                );
            }
            Event::CodecEnd {
                packet,
                node,
                op,
                outcome,
            } => {
                let _ = write!(
                    out,
                    ",\"packet\":{packet},\"node\":{node},\"op\":{op},\"outcome\":{outcome}"
                );
            }
            Event::EndpointCodec { site, cycles } => {
                let _ = write!(out, ",\"site\":{site},\"cycles\":{cycles}");
            }
            Event::L2Access { node, line, hit } => {
                let _ = write!(out, ",\"node\":{node},\"line\":{line},\"hit\":{hit}");
            }
            Event::L2Insert { node, line } => {
                let _ = write!(out, ",\"node\":{node},\"line\":{line}");
            }
            Event::DramAccess {
                line,
                write,
                row_hit,
            } => {
                let _ = write!(
                    out,
                    ",\"line\":{line},\"write\":{write},\"row_hit\":{row_hit}"
                );
            }
            Event::FaultInject { kind, packet, node }
            | Event::FaultDetect { kind, packet, node } => {
                let _ = write!(out, ",\"kind\":{kind},\"packet\":{packet},\"node\":{node}");
            }
            Event::Retransmit { packet, attempt } => {
                let _ = write!(out, ",\"packet\":{packet},\"attempt\":{attempt}");
            }
            Event::FaultFallback { packet, node } => {
                let _ = write!(out, ",\"packet\":{packet},\"node\":{node}");
            }
        }
        out.push('}');
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_is_compact_and_keyed() {
        let rec = Record {
            cycle: 7,
            event: Event::Inject {
                packet: 3,
                src: 0,
                dst: 15,
                class: 1,
                flits: 5,
            },
        };
        let mut s = String::new();
        rec.write_json(&mut s);
        assert_eq!(
            s,
            "{\"cycle\":7,\"event\":\"inject\",\"packet\":3,\"src\":0,\"dst\":15,\"class\":1,\"flits\":5}"
        );
    }

    #[test]
    fn every_variant_serializes_with_its_name() {
        let variants = [
            Event::NiStart { packet: 1, node: 2 },
            Event::NiDone { packet: 1, node: 2 },
            Event::Route {
                packet: 1,
                node: 2,
                in_port: 0,
                in_vc: 1,
                out_dir: 2,
            },
            Event::VcAlloc {
                packet: 1,
                node: 2,
                in_port: 0,
                in_vc: 1,
                out_dir: 2,
                out_vc: 0,
            },
            Event::Traverse {
                packet: 1,
                node: 2,
                out_dir: 4,
                head: true,
                tail: false,
            },
            Event::Eject { packet: 1, node: 2 },
            Event::VcStall {
                packet: 1,
                node: 2,
                port: 3,
                vc: 0,
                reason: stall::NO_CREDIT,
            },
            Event::CodecStart {
                packet: 1,
                node: 2,
                op: codec::COMPRESS,
                blocking: false,
            },
            Event::CodecEnd {
                packet: 1,
                node: 2,
                op: codec::COMPRESS,
                outcome: codec::DONE,
            },
            Event::EndpointCodec {
                site: site::BANK_SEND,
                cycles: 9,
            },
            Event::L2Access {
                node: 2,
                line: 77,
                hit: true,
            },
            Event::L2Insert { node: 2, line: 77 },
            Event::DramAccess {
                line: 77,
                write: false,
                row_hit: true,
            },
            Event::FaultInject {
                kind: 0,
                packet: 1,
                node: 2,
            },
            Event::FaultDetect {
                kind: 3,
                packet: 1,
                node: 2,
            },
            Event::Retransmit {
                packet: 1,
                attempt: 2,
            },
            Event::FaultFallback { packet: 1, node: 2 },
        ];
        for ev in variants {
            let mut s = String::new();
            Record {
                cycle: 0,
                event: ev,
            }
            .write_json(&mut s);
            assert!(s.contains(ev.name()), "{s}");
            assert!(s.starts_with('{') && s.ends_with('}'));
        }
    }

    #[test]
    fn endpoint_codec_carries_u64_cycle_sums() {
        // Regression: the accumulated endpoint-codec latency of a long
        // fault-retry run exceeds u32; the record must carry full width.
        let big = u64::from(u32::MAX) + 17;
        let mut s = String::new();
        Record {
            cycle: 1,
            event: Event::EndpointCodec {
                site: site::WRITEBACK,
                cycles: big,
            },
        }
        .write_json(&mut s);
        assert!(s.contains(&format!("\"cycles\":{big}")), "{s}");
    }
}

// ---------------------------------------------------------------------------
// Checkpointing (see crates/snapshot/manifest.txt)
// ---------------------------------------------------------------------------

impl disco_snapshot::Snap for Event {
    fn snap(&self, w: &mut disco_snapshot::Writer) {
        match *self {
            Event::Inject {
                packet,
                src,
                dst,
                class,
                flits,
            } => {
                w.put(&0u8);
                w.put(&packet);
                w.put(&src);
                w.put(&dst);
                w.put(&class);
                w.put(&flits);
            }
            Event::NiStart { packet, node } => {
                w.put(&1u8);
                w.put(&packet);
                w.put(&node);
            }
            Event::NiDone { packet, node } => {
                w.put(&2u8);
                w.put(&packet);
                w.put(&node);
            }
            Event::Route {
                packet,
                node,
                in_port,
                in_vc,
                out_dir,
            } => {
                w.put(&3u8);
                w.put(&packet);
                w.put(&node);
                w.put(&in_port);
                w.put(&in_vc);
                w.put(&out_dir);
            }
            Event::VcAlloc {
                packet,
                node,
                in_port,
                in_vc,
                out_dir,
                out_vc,
            } => {
                w.put(&4u8);
                w.put(&packet);
                w.put(&node);
                w.put(&in_port);
                w.put(&in_vc);
                w.put(&out_dir);
                w.put(&out_vc);
            }
            Event::Traverse {
                packet,
                node,
                out_dir,
                head,
                tail,
            } => {
                w.put(&5u8);
                w.put(&packet);
                w.put(&node);
                w.put(&out_dir);
                w.put(&head);
                w.put(&tail);
            }
            Event::Eject { packet, node } => {
                w.put(&6u8);
                w.put(&packet);
                w.put(&node);
            }
            Event::VcStall {
                packet,
                node,
                port,
                vc,
                reason,
            } => {
                w.put(&7u8);
                w.put(&packet);
                w.put(&node);
                w.put(&port);
                w.put(&vc);
                w.put(&reason);
            }
            Event::CodecStart {
                packet,
                node,
                op,
                blocking,
            } => {
                w.put(&8u8);
                w.put(&packet);
                w.put(&node);
                w.put(&op);
                w.put(&blocking);
            }
            Event::CodecEnd {
                packet,
                node,
                op,
                outcome,
            } => {
                w.put(&9u8);
                w.put(&packet);
                w.put(&node);
                w.put(&op);
                w.put(&outcome);
            }
            Event::EndpointCodec { site, cycles } => {
                w.put(&10u8);
                w.put(&site);
                w.put(&cycles);
            }
            Event::L2Access { node, line, hit } => {
                w.put(&11u8);
                w.put(&node);
                w.put(&line);
                w.put(&hit);
            }
            Event::L2Insert { node, line } => {
                w.put(&12u8);
                w.put(&node);
                w.put(&line);
            }
            Event::DramAccess {
                line,
                write,
                row_hit,
            } => {
                w.put(&13u8);
                w.put(&line);
                w.put(&write);
                w.put(&row_hit);
            }
            Event::FaultInject { kind, packet, node } => {
                w.put(&14u8);
                w.put(&kind);
                w.put(&packet);
                w.put(&node);
            }
            Event::FaultDetect { kind, packet, node } => {
                w.put(&15u8);
                w.put(&kind);
                w.put(&packet);
                w.put(&node);
            }
            Event::Retransmit { packet, attempt } => {
                w.put(&16u8);
                w.put(&packet);
                w.put(&attempt);
            }
            Event::FaultFallback { packet, node } => {
                w.put(&17u8);
                w.put(&packet);
                w.put(&node);
            }
        }
    }

    fn restore(r: &mut disco_snapshot::Reader<'_>) -> Result<Self, disco_snapshot::SnapError> {
        Ok(match r.take::<u8>()? {
            0 => Event::Inject {
                packet: r.take()?,
                src: r.take()?,
                dst: r.take()?,
                class: r.take()?,
                flits: r.take()?,
            },
            1 => Event::NiStart {
                packet: r.take()?,
                node: r.take()?,
            },
            2 => Event::NiDone {
                packet: r.take()?,
                node: r.take()?,
            },
            3 => Event::Route {
                packet: r.take()?,
                node: r.take()?,
                in_port: r.take()?,
                in_vc: r.take()?,
                out_dir: r.take()?,
            },
            4 => Event::VcAlloc {
                packet: r.take()?,
                node: r.take()?,
                in_port: r.take()?,
                in_vc: r.take()?,
                out_dir: r.take()?,
                out_vc: r.take()?,
            },
            5 => Event::Traverse {
                packet: r.take()?,
                node: r.take()?,
                out_dir: r.take()?,
                head: r.take()?,
                tail: r.take()?,
            },
            6 => Event::Eject {
                packet: r.take()?,
                node: r.take()?,
            },
            7 => Event::VcStall {
                packet: r.take()?,
                node: r.take()?,
                port: r.take()?,
                vc: r.take()?,
                reason: r.take()?,
            },
            8 => Event::CodecStart {
                packet: r.take()?,
                node: r.take()?,
                op: r.take()?,
                blocking: r.take()?,
            },
            9 => Event::CodecEnd {
                packet: r.take()?,
                node: r.take()?,
                op: r.take()?,
                outcome: r.take()?,
            },
            10 => Event::EndpointCodec {
                site: r.take()?,
                cycles: r.take()?,
            },
            11 => Event::L2Access {
                node: r.take()?,
                line: r.take()?,
                hit: r.take()?,
            },
            12 => Event::L2Insert {
                node: r.take()?,
                line: r.take()?,
            },
            13 => Event::DramAccess {
                line: r.take()?,
                write: r.take()?,
                row_hit: r.take()?,
            },
            14 => Event::FaultInject {
                kind: r.take()?,
                packet: r.take()?,
                node: r.take()?,
            },
            15 => Event::FaultDetect {
                kind: r.take()?,
                packet: r.take()?,
                node: r.take()?,
            },
            16 => Event::Retransmit {
                packet: r.take()?,
                attempt: r.take()?,
            },
            17 => Event::FaultFallback {
                packet: r.take()?,
                node: r.take()?,
            },
            tag => return Err(disco_snapshot::malformed(format!("Event tag {tag}"))),
        })
    }
}

disco_snapshot::snap_fields!(Record { cycle, event });
