//! Trace exporters: line-delimited JSON and Chrome/Perfetto JSON.
//!
//! Both formats are emitted with fixed key order, integer-only values,
//! and no whitespace, so the bytes are a deterministic function of the
//! record stream — the determinism tests compare them directly.

use crate::event::{codec, Event, Record};
use std::fmt::Write as _;

/// Serializes records as JSONL: one compact JSON object per line,
/// trailing newline included.
pub fn jsonl_string(records: &[Record]) -> String {
    let mut out = String::with_capacity(records.len() * 64);
    for rec in records {
        rec.write_json(&mut out);
        out.push('\n');
    }
    out
}

/// Thread lane ids used in the Chrome export: one "process" per node,
/// with the router pipeline, codec engines, and memory system on
/// separate "threads".
mod lane {
    pub const ROUTER: u8 = 0;
    pub const CODEC: u8 = 1;
    pub const MEMORY: u8 = 2;
    pub const ENDPOINT: u8 = 3;
}

fn codec_name(op: u8) -> &'static str {
    if op == codec::DECOMPRESS {
        "decompress"
    } else {
        "compress"
    }
}

fn instant(out: &mut String, name: &str, ts: u64, pid: u64, tid: u8, args: &str) {
    let _ = write!(
        out,
        "{{\"name\":\"{name}\",\"ph\":\"i\",\"ts\":{ts},\"pid\":{pid},\"tid\":{tid},\"s\":\"t\",\"args\":{{{args}}}}}"
    );
}

/// Serializes records in the Chrome trace-event JSON format that
/// Perfetto and `chrome://tracing` load directly.
///
/// Mapping: `ts` is the simulated cycle (rendered as microseconds),
/// `pid` is the mesh node, `tid` separates the router pipeline, codec
/// engines, and memory lanes. Codec operations become `B`/`E` duration
/// slices; endpoint codec charges become `X` complete slices; all other
/// events are thread-scoped instants.
pub fn chrome_trace_string(records: &[Record]) -> String {
    let mut out = String::with_capacity(records.len() * 96 + 32);
    out.push_str("{\"traceEvents\":[");
    for (i, rec) in records.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let ts = rec.cycle;
        match rec.event {
            Event::Inject { packet, src, dst, class, flits } => instant(
                &mut out,
                "inject",
                ts,
                u64::from(src),
                lane::ROUTER,
                &format!("\"packet\":{packet},\"dst\":{dst},\"class\":{class},\"flits\":{flits}"),
            ),
            Event::NiStart { packet, node } => instant(
                &mut out,
                "ni_start",
                ts,
                u64::from(node),
                lane::ROUTER,
                &format!("\"packet\":{packet}"),
            ),
            Event::NiDone { packet, node } => instant(
                &mut out,
                "ni_done",
                ts,
                u64::from(node),
                lane::ROUTER,
                &format!("\"packet\":{packet}"),
            ),
            Event::Route { packet, node, in_port, in_vc, out_dir } => instant(
                &mut out,
                "route",
                ts,
                u64::from(node),
                lane::ROUTER,
                &format!(
                    "\"packet\":{packet},\"in_port\":{in_port},\"in_vc\":{in_vc},\"out_dir\":{out_dir}"
                ),
            ),
            Event::VcAlloc { packet, node, out_dir, out_vc, .. } => instant(
                &mut out,
                "vc_alloc",
                ts,
                u64::from(node),
                lane::ROUTER,
                &format!("\"packet\":{packet},\"out_dir\":{out_dir},\"out_vc\":{out_vc}"),
            ),
            Event::Traverse { packet, node, out_dir, head, tail } => instant(
                &mut out,
                "traverse",
                ts,
                u64::from(node),
                lane::ROUTER,
                &format!("\"packet\":{packet},\"out_dir\":{out_dir},\"head\":{head},\"tail\":{tail}"),
            ),
            Event::Eject { packet, node } => instant(
                &mut out,
                "eject",
                ts,
                u64::from(node),
                lane::ROUTER,
                &format!("\"packet\":{packet}"),
            ),
            Event::VcStall { packet, node, port, vc, reason } => instant(
                &mut out,
                "vc_stall",
                ts,
                u64::from(node),
                lane::ROUTER,
                &format!("\"packet\":{packet},\"port\":{port},\"vc\":{vc},\"reason\":{reason}"),
            ),
            Event::CodecStart { packet, node, op, blocking } => {
                let _ = write!(
                    out,
                    "{{\"name\":\"{}\",\"ph\":\"B\",\"ts\":{ts},\"pid\":{},\"tid\":{},\"args\":{{\"packet\":{packet},\"blocking\":{blocking}}}}}",
                    codec_name(op),
                    node,
                    lane::CODEC,
                );
            }
            Event::CodecEnd { packet, node, op, outcome } => {
                let _ = write!(
                    out,
                    "{{\"name\":\"{}\",\"ph\":\"E\",\"ts\":{ts},\"pid\":{},\"tid\":{},\"args\":{{\"packet\":{packet},\"outcome\":{outcome}}}}}",
                    codec_name(op),
                    node,
                    lane::CODEC,
                );
            }
            Event::EndpointCodec { site, cycles } => {
                let _ = write!(
                    out,
                    "{{\"name\":\"endpoint_codec\",\"ph\":\"X\",\"ts\":{ts},\"dur\":{cycles},\"pid\":0,\"tid\":{},\"args\":{{\"site\":{site}}}}}",
                    lane::ENDPOINT,
                );
            }
            Event::L2Access { node, line, hit } => instant(
                &mut out,
                "l2_access",
                ts,
                u64::from(node),
                lane::MEMORY,
                &format!("\"line\":{line},\"hit\":{hit}"),
            ),
            Event::L2Insert { node, line } => instant(
                &mut out,
                "l2_insert",
                ts,
                u64::from(node),
                lane::MEMORY,
                &format!("\"line\":{line}"),
            ),
            Event::DramAccess { line, write, row_hit } => instant(
                &mut out,
                "dram_access",
                ts,
                0,
                lane::MEMORY,
                &format!("\"line\":{line},\"write\":{write},\"row_hit\":{row_hit}"),
            ),
            Event::FaultInject { kind, packet, node } => instant(
                &mut out,
                "fault_inject",
                ts,
                u64::from(node),
                lane::ROUTER,
                &format!("\"kind\":{kind},\"packet\":{packet}"),
            ),
            Event::FaultDetect { kind, packet, node } => instant(
                &mut out,
                "fault_detect",
                ts,
                u64::from(node),
                lane::ROUTER,
                &format!("\"kind\":{kind},\"packet\":{packet}"),
            ),
            Event::Retransmit { packet, attempt } => instant(
                &mut out,
                "retransmit",
                ts,
                0,
                lane::ROUTER,
                &format!("\"packet\":{packet},\"attempt\":{attempt}"),
            ),
            Event::FaultFallback { packet, node } => instant(
                &mut out,
                "fault_fallback",
                ts,
                u64::from(node),
                lane::ROUTER,
                &format!("\"packet\":{packet}"),
            ),
        }
    }
    out.push_str("],\"displayTimeUnit\":\"ns\"}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Record> {
        vec![
            Record {
                cycle: 1,
                event: Event::Inject {
                    packet: 9,
                    src: 0,
                    dst: 3,
                    class: 2,
                    flits: 5,
                },
            },
            Record {
                cycle: 2,
                event: Event::CodecStart {
                    packet: 9,
                    node: 0,
                    op: codec::COMPRESS,
                    blocking: false,
                },
            },
            Record {
                cycle: 6,
                event: Event::CodecEnd {
                    packet: 9,
                    node: 0,
                    op: codec::COMPRESS,
                    outcome: codec::DONE,
                },
            },
            Record {
                cycle: 8,
                event: Event::Eject { packet: 9, node: 3 },
            },
        ]
    }

    #[test]
    fn jsonl_has_one_line_per_record() {
        let s = jsonl_string(&sample());
        assert_eq!(s.lines().count(), 4);
        for line in s.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        }
        assert!(s.ends_with('\n'));
    }

    #[test]
    fn chrome_trace_is_wrapped_and_balanced() {
        let s = chrome_trace_string(&sample());
        assert!(s.starts_with("{\"traceEvents\":["));
        assert!(s.ends_with("}"));
        assert!(s.contains("\"ph\":\"B\""));
        assert!(s.contains("\"ph\":\"E\""));
        assert!(s.contains("\"ph\":\"i\""));
        // No trailing comma before the closing bracket.
        assert!(!s.contains(",]"));
        assert_eq!(s.matches('[').count(), s.matches(']').count());
        assert_eq!(s.matches('{').count(), s.matches('}').count());
    }

    #[test]
    fn empty_trace_is_still_valid() {
        let s = chrome_trace_string(&[]);
        assert!(s.contains("\"traceEvents\":[]"));
    }
}
