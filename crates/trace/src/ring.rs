//! Fixed-capacity, drop-oldest ring buffer of cycle-stamped records.
//!
//! Overflow policy: when full, the **oldest** record is discarded and
//! counted in [`Tracer::dropped`]. Keeping the newest records favours
//! the steady-state window of a run over its warm-up, and keeps the
//! hot-path cost O(1) with no allocation after warm-up. Harnesses that
//! need a lossless stream (the provenance pass, the determinism tests)
//! drain the buffer every cycle, so the capacity never binds there;
//! drops only occur when a raw [`Tracer`] is left to accumulate.

use crate::event::{Event, Record};
use crate::EventList;
use std::collections::VecDeque;

/// Default ring capacity (records). Power of two, ≈64 K records.
pub const DEFAULT_CAPACITY: usize = 1 << 16;

/// Cycle-stamped ring-buffer event collector.
///
/// The current cycle is set once per simulated cycle via
/// [`Tracer::set_cycle`] (from the serial commit path); every record
/// emitted until the next call is stamped with that cycle. The tracer
/// never consults the host clock.
#[derive(Debug, Clone)]
pub struct Tracer {
    buf: VecDeque<Record>,
    capacity: usize,
    cycle: u64,
    emitted: u64,
    dropped: u64,
}

impl Default for Tracer {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_CAPACITY)
    }
}

impl Tracer {
    /// Creates a tracer holding at most `capacity` records (min 1).
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Tracer {
            buf: VecDeque::with_capacity(capacity.min(DEFAULT_CAPACITY)),
            capacity,
            cycle: 0,
            emitted: 0,
            dropped: 0,
        }
    }

    /// Sets the cycle stamp for subsequently recorded events.
    pub fn set_cycle(&mut self, cycle: u64) {
        self.cycle = cycle;
    }

    /// Records one event at the current cycle, dropping the oldest
    /// record if the ring is full.
    pub fn trace_record(&mut self, event: Event) {
        self.emitted += 1;
        if self.buf.len() >= self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(Record {
            cycle: self.cycle,
            event,
        });
    }

    /// Records a batch of events (e.g. an [`EventList`] carried out of
    /// the compute phase) in order, at the current cycle.
    pub fn record_all(&mut self, events: &EventList) {
        for &ev in &events.0 {
            self.trace_record(ev);
        }
    }

    /// Takes all buffered records, preserving the lifetime counters.
    pub fn drain(&mut self) -> Vec<Record> {
        self.buf.drain(..).collect()
    }

    /// Changes the capacity in place, dropping oldest records if the
    /// buffer already exceeds the new bound.
    pub fn set_capacity(&mut self, capacity: usize) {
        self.capacity = capacity.max(1);
        while self.buf.len() > self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
    }

    /// Ring capacity in records.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Records currently buffered.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when no records are buffered.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Total events ever recorded (including later-dropped ones).
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Events discarded by the drop-oldest overflow policy.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(packet: u64) -> Event {
        Event::Eject { packet, node: 0 }
    }

    #[test]
    fn stamps_with_the_set_cycle() {
        let mut t = Tracer::with_capacity(8);
        t.set_cycle(41);
        t.trace_record(ev(1));
        t.set_cycle(42);
        t.trace_record(ev(2));
        let recs = t.drain();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].cycle, 41);
        assert_eq!(recs[1].cycle, 42);
        assert!(t.is_empty());
        assert_eq!(t.emitted(), 2);
    }

    #[test]
    fn overflow_drops_oldest_and_counts() {
        let mut t = Tracer::with_capacity(4);
        for p in 0..10 {
            t.trace_record(ev(p));
        }
        assert_eq!(t.len(), 4);
        assert_eq!(t.emitted(), 10);
        assert_eq!(t.dropped(), 6);
        let recs = t.drain();
        let kept: Vec<u64> = recs
            .iter()
            .map(|r| match r.event {
                Event::Eject { packet, .. } => packet,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(kept, vec![6, 7, 8, 9]);
    }

    #[test]
    fn shrinking_capacity_truncates_from_the_front() {
        let mut t = Tracer::with_capacity(8);
        for p in 0..8 {
            t.trace_record(ev(p));
        }
        t.set_capacity(2);
        assert_eq!(t.len(), 2);
        assert_eq!(t.dropped(), 6);
        assert_eq!(t.capacity(), 2);
    }

    #[test]
    fn record_all_preserves_order() {
        let mut t = Tracer::default();
        let mut list = EventList::default();
        list.trace_record(ev(5));
        list.trace_record(ev(6));
        t.record_all(&list);
        let recs = t.drain();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].event, ev(5));
        assert_eq!(recs[1].event, ev(6));
    }

    #[test]
    fn capacity_is_at_least_one() {
        let mut t = Tracer::with_capacity(0);
        t.trace_record(ev(1));
        assert_eq!(t.len(), 1);
    }
}

disco_snapshot::snap_fields!(Tracer {
    buf,
    capacity,
    cycle,
    emitted,
    dropped,
});
