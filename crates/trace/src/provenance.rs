//! Latency provenance: decompose each packet's end-to-end latency into
//! {serialization, link, queuing, codec, protocol} cycles that sum
//! **exactly** to the measured latency, and compute the paper's
//! hidden-latency coverage (codec cycles overlapped with time the
//! packet was queued anyway).
//!
//! # The decomposition
//!
//! For a packet injected (enqueued at the source NI) at cycle `t0`,
//! whose first flit entered the network at `s` ([`Event::NiStart`]),
//! whose last flit was accepted at `a` ([`Event::NiDone`], tail ready
//! at `a+1`), whose tail left hop `i` at commit cycle `d_i`
//! (tail [`Event::Traverse`]), and which was delivered at
//! `te = d_H` ([`Event::Eject`] — the cycle `NetworkStats` measures):
//!
//! * **protocol** `= s − t0` — source NI queuing before injection
//!   begins (backpressure from the local input VC, NI-queued
//!   compression holds).
//! * **serialization** `= (a+1) − s` — pushing the packet's flits over
//!   the narrow NI interface, one per cycle; shrinks when compression
//!   shortens the packet.
//! * **link** `= H·P` — the pipeline/link latency of `H` hops at `P`
//!   (`NocConfig::pipeline_stages`) cycles each; the unavoidable floor.
//! * **queuing + codec** `= Σᵢ wᵢ` where `w₀ = d₀ − (a+1)` and
//!   `wᵢ = dᵢ − (dᵢ₋₁ + P)` — the tail's wait at each hop beyond the
//!   pipeline floor. The portion overlapped by a *blocking* codec span
//!   (VC-locked decompression) is charged to **codec**; the remainder
//!   is **queuing**.
//!
//! The five components telescope: their sum is `te − t0` with no
//! rounding, for every packet (checked, surfaced as
//! [`ProvenanceReport::exact`]). Components are *signed*: a mid-flight
//! compression rebuilds the resident flits ready-at-now, so a reshaped
//! tail can depart a hop earlier than the uncompressed tail would have
//! arrived — a negative `wᵢ` is real time credit bought by compression.
//!
//! # Hidden-latency coverage
//!
//! A non-blocking codec span at a node the packet visited, overlapped
//! with the packet's residency window at that node, is *hidden* work —
//! the paper's central claim is that DISCO hides most codec cycles
//! there. Blocking spans and endpoint (CC/CNC) codec charges are
//! *exposed*. Coverage `= hidden / (hidden + exposed + endpoint)`.

use crate::event::{Event, Record};
use std::collections::BTreeMap;

/// One packet's exact latency decomposition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketProvenance {
    /// Packet id.
    pub packet: u64,
    /// Source node.
    pub src: u16,
    /// Destination node.
    pub dst: u16,
    /// Measured end-to-end latency (eject − inject), as `NetworkStats`
    /// counts it.
    pub latency: u64,
    /// Source-NI queuing cycles before injection began.
    pub protocol: i64,
    /// NI serialization cycles.
    pub serialization: i64,
    /// Pipeline/link floor cycles (hops × pipeline stages).
    pub link: i64,
    /// Router queuing cycles not overlapped by blocking codec work.
    pub queuing: i64,
    /// Blocking codec cycles overlapped with residency (exposed).
    pub codec: i64,
    /// Non-blocking codec cycles overlapped with residency (hidden).
    pub hidden: u64,
}

impl PacketProvenance {
    /// Sum of the five components; equals `latency` for every packet
    /// the analyzer marks complete.
    pub fn component_sum(&self) -> i64 {
        self.protocol + self.serialization + self.link + self.queuing + self.codec
    }
}

/// Aggregate decomposition over all complete packets of a run.
///
/// Every field is surfaced in `report.rs` (`provenance.*` keys) and
/// covered by the disco-verify counters-surfaced lint.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProvenanceTotals {
    /// Packets with a full inject→eject event history.
    pub packets: u64,
    /// Packets excluded for missing milestones (in flight at shutdown,
    /// or injected before capture began).
    pub incomplete: u64,
    /// Σ measured end-to-end latency over complete packets; must equal
    /// `NetworkStats::total_packet_latency` when capture is lossless
    /// and every delivered packet completed.
    pub latency_cycles: u64,
    /// Σ serialization component.
    pub serialization_cycles: i64,
    /// Σ link component.
    pub link_cycles: i64,
    /// Σ queuing component.
    pub queuing_cycles: i64,
    /// Σ codec (exposed, in-network blocking) component.
    pub codec_cycles: i64,
    /// Σ protocol component.
    pub protocol_cycles: i64,
    /// Σ codec cycles hidden under queuing (non-blocking overlap).
    pub codec_hidden_cycles: u64,
    /// Σ codec cycles exposed on the critical path (blocking overlap).
    pub codec_exposed_cycles: u64,
    /// Σ endpoint codec cycles (CC/CNC placements, fallback paths) —
    /// never overlapped with network queuing by construction.
    pub endpoint_codec_cycles: u64,
}

/// Result of the provenance pass.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProvenanceReport {
    /// Aggregates over all complete packets.
    pub totals: ProvenanceTotals,
    /// Per-packet decompositions, in packet-id order.
    pub packets: Vec<PacketProvenance>,
    /// True iff every complete packet's five components summed exactly
    /// to its measured latency.
    pub exact: bool,
}

impl ProvenanceReport {
    /// Fraction of all codec work (in-network + endpoint) that was
    /// hidden under router queuing. The paper's headline metric: DISCO
    /// should approach 1.0 where CC/CNC sit at 0.
    pub fn hidden_coverage(&self) -> f64 {
        let t = &self.totals;
        let denom = t.codec_hidden_cycles + t.codec_exposed_cycles + t.endpoint_codec_cycles;
        if denom == 0 {
            return 0.0;
        }
        t.codec_hidden_cycles as f64 / denom as f64
    }
}

#[derive(Debug, Clone, Copy)]
struct CodecSpan {
    node: u16,
    op: u8,
    blocking: bool,
    start: u64,
    end: Option<u64>,
}

#[derive(Debug, Clone, Default)]
struct Track {
    src: u16,
    dst: u16,
    inject: Option<u64>,
    ni_start: Option<u64>,
    ni_done: Option<u64>,
    eject: Option<u64>,
    /// (node, tail-departure commit cycle) per hop, path order.
    hops: Vec<(u16, u64)>,
    codec: Vec<CodecSpan>,
}

/// Streaming analyzer: feed it every [`Record`] of a run (the system
/// harness drains the tracer once per cycle, so feeding is lossless),
/// then call [`ProvenanceAnalyzer::finish`].
///
/// Finalization is lazy on purpose: a codec abort for a packet is
/// detected one cycle *after* the packet left the router, so
/// [`Event::CodecEnd`] can arrive after [`Event::Eject`]. Tracks are
/// therefore only resolved when the run is over.
#[derive(Debug, Clone)]
pub struct ProvenanceAnalyzer {
    pipeline_stages: u64,
    tracks: BTreeMap<u64, Track>,
    endpoint_codec_cycles: u64,
}

impl ProvenanceAnalyzer {
    /// Creates an analyzer for a network with the given per-hop
    /// pipeline depth (`NocConfig::pipeline_stages`).
    pub fn new(pipeline_stages: u64) -> Self {
        ProvenanceAnalyzer {
            pipeline_stages,
            tracks: BTreeMap::new(),
            endpoint_codec_cycles: 0,
        }
    }

    /// Ingests one record.
    pub fn ingest(&mut self, rec: &Record) {
        let cycle = rec.cycle;
        match rec.event {
            Event::Inject {
                packet, src, dst, ..
            } => {
                let t = self.tracks.entry(packet).or_default();
                t.src = src;
                t.dst = dst;
                t.inject = Some(cycle);
            }
            Event::NiStart { packet, .. } => {
                self.tracks.entry(packet).or_default().ni_start = Some(cycle);
            }
            Event::NiDone { packet, .. } => {
                self.tracks.entry(packet).or_default().ni_done = Some(cycle);
            }
            Event::Traverse {
                packet, node, tail, ..
            } => {
                if tail {
                    self.tracks
                        .entry(packet)
                        .or_default()
                        .hops
                        .push((node, cycle));
                }
            }
            Event::Eject { packet, .. } => {
                self.tracks.entry(packet).or_default().eject = Some(cycle);
            }
            Event::CodecStart {
                packet,
                node,
                op,
                blocking,
            } => {
                self.tracks
                    .entry(packet)
                    .or_default()
                    .codec
                    .push(CodecSpan {
                        node,
                        op,
                        blocking,
                        start: cycle,
                        end: None,
                    });
            }
            Event::CodecEnd {
                packet, node, op, ..
            } => {
                if let Some(t) = self.tracks.get_mut(&packet) {
                    if let Some(span) = t
                        .codec
                        .iter_mut()
                        .rev()
                        .find(|s| s.end.is_none() && s.node == node && s.op == op)
                    {
                        span.end = Some(cycle);
                    }
                }
            }
            Event::EndpointCodec { cycles, .. } => {
                self.endpoint_codec_cycles += cycles;
            }
            // Routing-pipeline, memory, and fault events carry no
            // latency provenance (a retransmitted packet is a fresh
            // Inject and gets its own track).
            Event::Route { .. }
            | Event::VcAlloc { .. }
            | Event::VcStall { .. }
            | Event::L2Access { .. }
            | Event::L2Insert { .. }
            | Event::DramAccess { .. }
            | Event::FaultInject { .. }
            | Event::FaultDetect { .. }
            | Event::Retransmit { .. }
            | Event::FaultFallback { .. } => {}
        }
    }

    /// Ingests a batch of records in order.
    pub fn ingest_all(&mut self, records: &[Record]) {
        for rec in records {
            self.ingest(rec);
        }
    }

    /// Resolves all tracks into the final report.
    pub fn finish(self) -> ProvenanceReport {
        let pipeline = self.pipeline_stages as i64;
        let mut report = ProvenanceReport {
            exact: true,
            ..ProvenanceReport::default()
        };
        report.totals.endpoint_codec_cycles = self.endpoint_codec_cycles;
        for (&packet, track) in &self.tracks {
            let (Some(t0), Some(s), Some(a), Some(te)) =
                (track.inject, track.ni_start, track.ni_done, track.eject)
            else {
                report.totals.incomplete += 1;
                continue;
            };
            let Some(&(_, d_last)) = track.hops.last() else {
                report.totals.incomplete += 1;
                continue;
            };
            if d_last != te || track.hops.is_empty() {
                // A delivered packet's last tail traversal *is* its
                // ejection; anything else means the capture was lossy.
                report.totals.incomplete += 1;
                continue;
            }

            let protocol = s as i64 - t0 as i64;
            let serialization = (a as i64 + 1) - s as i64;
            let hops = track.hops.len() as i64;
            let link = (hops - 1) * pipeline;

            // Residency window [arrival, departure) per hop, and the
            // wait (window length) beyond the pipeline floor.
            let mut windows: Vec<(u16, i64, i64)> = Vec::with_capacity(track.hops.len());
            let mut raw_wait = 0i64;
            let mut arrival = a as i64 + 1;
            for &(node, depart) in &track.hops {
                let depart = depart as i64;
                windows.push((node, arrival, depart));
                raw_wait += depart - arrival;
                arrival = depart + pipeline;
            }

            let mut exposed = 0i64;
            let mut hidden = 0i64;
            for span in &track.codec {
                let Some(end) = span.end else { continue };
                let (cs, ce) = (span.start as i64, end as i64);
                // The packet visits each node once (minimal routing);
                // find its residency window there.
                let Some(&(_, w0, w1)) = windows.iter().find(|w| w.0 == span.node) else {
                    continue;
                };
                // Source-node spans may also overlap the NI period
                // (queued compression works on packets still in the NI
                // queue), which counts as hidden but never as exposed.
                let hidden_w0 = if span.node == track.src {
                    t0 as i64
                } else {
                    w0
                };
                if span.blocking {
                    exposed += overlap(cs, ce, w0, w1);
                } else {
                    hidden += overlap(cs, ce, hidden_w0, w1);
                }
            }
            let queuing = raw_wait - exposed;
            let latency = te - t0;

            let pp = PacketProvenance {
                packet,
                src: track.src,
                dst: track.dst,
                latency,
                protocol,
                serialization,
                link,
                queuing,
                codec: exposed,
                hidden: hidden.max(0) as u64,
            };
            if pp.component_sum() != latency as i64 {
                report.exact = false;
            }
            report.totals.packets += 1;
            report.totals.latency_cycles += latency;
            report.totals.protocol_cycles += protocol;
            report.totals.serialization_cycles += serialization;
            report.totals.link_cycles += link;
            report.totals.queuing_cycles += queuing;
            report.totals.codec_cycles += exposed;
            report.totals.codec_hidden_cycles += hidden.max(0) as u64;
            report.totals.codec_exposed_cycles += exposed.max(0) as u64;
            report.packets.push(pp);
        }
        report
    }
}

/// Length of the intersection of half-open intervals `[a0, a1)` and
/// `[b0, b1)`, clamped at zero.
fn overlap(a0: i64, a1: i64, b0: i64, b1: i64) -> i64 {
    (a1.min(b1) - a0.max(b0)).max(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::codec;

    const P: u64 = 2;

    fn rec(cycle: u64, event: Event) -> Record {
        Record { cycle, event }
    }

    /// Packet 9: inject@0, ni_start@1, ni_done@3, tail departs src 0 at
    /// 6, node 1 at 9, node 2 (Local) at 12, eject@12.
    fn base_stream() -> Vec<Record> {
        vec![
            rec(
                0,
                Event::Inject {
                    packet: 9,
                    src: 0,
                    dst: 2,
                    class: 2,
                    flits: 3,
                },
            ),
            rec(1, Event::NiStart { packet: 9, node: 0 }),
            rec(3, Event::NiDone { packet: 9, node: 0 }),
            rec(
                6,
                Event::Traverse {
                    packet: 9,
                    node: 0,
                    out_dir: 0,
                    head: false,
                    tail: true,
                },
            ),
            rec(
                9,
                Event::Traverse {
                    packet: 9,
                    node: 1,
                    out_dir: 0,
                    head: false,
                    tail: true,
                },
            ),
            rec(
                12,
                Event::Traverse {
                    packet: 9,
                    node: 2,
                    out_dir: 4,
                    head: false,
                    tail: true,
                },
            ),
            rec(12, Event::Eject { packet: 9, node: 2 }),
        ]
    }

    #[test]
    fn plain_packet_decomposes_exactly() {
        let mut an = ProvenanceAnalyzer::new(P);
        an.ingest_all(&base_stream());
        let rep = an.finish();
        assert!(rep.exact);
        assert_eq!(rep.totals.packets, 1);
        assert_eq!(rep.totals.incomplete, 0);
        let p = rep.packets[0];
        assert_eq!(p.latency, 12);
        assert_eq!(p.protocol, 1); // s(1) - t0(0)
        assert_eq!(p.serialization, 3); // a+1(4) - s(1)
        assert_eq!(p.link, 4); // 2 hops * P
        assert_eq!(p.queuing, 4); // w0=6-4, w1=9-8, w2=12-11
        assert_eq!(p.codec, 0);
        assert_eq!(p.component_sum(), 12);
    }

    #[test]
    fn nonblocking_codec_overlap_is_hidden() {
        let mut stream = base_stream();
        stream.push(rec(
            7,
            Event::CodecStart {
                packet: 9,
                node: 1,
                op: codec::COMPRESS,
                blocking: false,
            },
        ));
        stream.push(rec(
            9,
            Event::CodecEnd {
                packet: 9,
                node: 1,
                op: codec::COMPRESS,
                outcome: codec::DONE,
            },
        ));
        let mut an = ProvenanceAnalyzer::new(P);
        an.ingest_all(&stream);
        let rep = an.finish();
        let p = rep.packets[0];
        // Residency at node 1 is [8, 9); span [7, 9) overlaps 1 cycle.
        assert_eq!(p.hidden, 1);
        assert_eq!(p.codec, 0);
        assert_eq!(p.queuing, 4); // hidden work does not change the sum
        assert!(rep.exact);
        assert!((rep.hidden_coverage() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn blocking_codec_overlap_moves_queuing_to_codec() {
        let mut stream = base_stream();
        stream.push(rec(
            4,
            Event::CodecStart {
                packet: 9,
                node: 0,
                op: codec::DECOMPRESS,
                blocking: true,
            },
        ));
        stream.push(rec(
            6,
            Event::CodecEnd {
                packet: 9,
                node: 0,
                op: codec::DECOMPRESS,
                outcome: codec::DONE,
            },
        ));
        let mut an = ProvenanceAnalyzer::new(P);
        an.ingest_all(&stream);
        let rep = an.finish();
        let p = rep.packets[0];
        // Residency at src is [4, 6); the whole blocking span is exposed.
        assert_eq!(p.codec, 2);
        assert_eq!(p.queuing, 2);
        assert_eq!(p.component_sum(), 12);
        assert!(rep.exact);
        assert_eq!(rep.totals.codec_exposed_cycles, 2);
        assert!((rep.hidden_coverage() - 0.0).abs() < 1e-12);
    }

    #[test]
    fn ni_queued_compression_counts_as_hidden_at_the_source() {
        let mut stream = base_stream();
        // Queued compression working while the packet sits in the NI
        // queue: [0, 1) is before ni_start but inside the src window.
        stream.push(rec(
            0,
            Event::CodecStart {
                packet: 9,
                node: 0,
                op: codec::COMPRESS,
                blocking: false,
            },
        ));
        stream.push(rec(
            1,
            Event::CodecEnd {
                packet: 9,
                node: 0,
                op: codec::COMPRESS,
                outcome: codec::DONE,
            },
        ));
        let mut an = ProvenanceAnalyzer::new(P);
        an.ingest_all(&stream);
        let rep = an.finish();
        assert_eq!(rep.packets[0].hidden, 1);
        assert!(rep.exact);
    }

    #[test]
    fn endpoint_codec_cycles_dilute_coverage() {
        let mut stream = base_stream();
        stream.push(rec(
            6,
            Event::CodecStart {
                packet: 9,
                node: 1,
                op: codec::COMPRESS,
                blocking: false,
            },
        ));
        stream.push(rec(
            9,
            Event::CodecEnd {
                packet: 9,
                node: 1,
                op: codec::COMPRESS,
                outcome: codec::DONE,
            },
        ));
        stream.push(rec(
            2,
            Event::EndpointCodec {
                site: crate::event::site::BANK_SEND,
                cycles: 3,
            },
        ));
        let mut an = ProvenanceAnalyzer::new(P);
        an.ingest_all(&stream);
        let rep = an.finish();
        assert_eq!(rep.totals.codec_hidden_cycles, 1);
        assert_eq!(rep.totals.endpoint_codec_cycles, 3);
        assert!((rep.hidden_coverage() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn in_flight_packets_are_counted_incomplete() {
        let mut an = ProvenanceAnalyzer::new(P);
        an.ingest(&rec(
            0,
            Event::Inject {
                packet: 1,
                src: 0,
                dst: 3,
                class: 0,
                flits: 1,
            },
        ));
        an.ingest(&rec(1, Event::NiStart { packet: 1, node: 0 }));
        let rep = an.finish();
        assert_eq!(rep.totals.packets, 0);
        assert_eq!(rep.totals.incomplete, 1);
        assert!(rep.packets.is_empty());
    }

    #[test]
    fn codec_end_after_eject_still_resolves() {
        let mut stream = base_stream();
        stream.push(rec(
            11,
            Event::CodecStart {
                packet: 9,
                node: 2,
                op: codec::COMPRESS,
                blocking: false,
            },
        ));
        // Abort detected one cycle after delivery.
        stream.push(rec(
            13,
            Event::CodecEnd {
                packet: 9,
                node: 2,
                op: codec::COMPRESS,
                outcome: codec::ABORTED,
            },
        ));
        let mut an = ProvenanceAnalyzer::new(P);
        an.ingest_all(&stream);
        let rep = an.finish();
        assert_eq!(rep.totals.packets, 1);
        // Residency at node 2 is [11, 12); span [11, 13) overlaps 1.
        assert_eq!(rep.packets[0].hidden, 1);
        assert!(rep.exact);
    }

    #[test]
    fn single_hop_packet_has_zero_link() {
        // src == dst: the only tail traversal is the Local departure.
        let stream = vec![
            rec(
                0,
                Event::Inject {
                    packet: 4,
                    src: 5,
                    dst: 5,
                    class: 0,
                    flits: 1,
                },
            ),
            rec(1, Event::NiStart { packet: 4, node: 5 }),
            rec(1, Event::NiDone { packet: 4, node: 5 }),
            rec(
                3,
                Event::Traverse {
                    packet: 4,
                    node: 5,
                    out_dir: 4,
                    head: true,
                    tail: true,
                },
            ),
            rec(3, Event::Eject { packet: 4, node: 5 }),
        ];
        let mut an = ProvenanceAnalyzer::new(P);
        an.ingest_all(&stream);
        let rep = an.finish();
        let p = rep.packets[0];
        assert_eq!(p.link, 0);
        assert_eq!(p.latency, 3);
        assert_eq!(p.component_sum(), 3);
        assert!(rep.exact);
    }
}

// ---------------------------------------------------------------------------
// Checkpointing (see crates/snapshot/manifest.txt)
// ---------------------------------------------------------------------------

disco_snapshot::snap_fields!(CodecSpan {
    node,
    op,
    blocking,
    start,
    end,
});

disco_snapshot::snap_fields!(Track {
    src,
    dst,
    inject,
    ni_start,
    ni_done,
    eject,
    hops,
    codec,
});

disco_snapshot::snap_fields!(ProvenanceAnalyzer {
    pipeline_stages,
    tracks,
    endpoint_codec_cycles,
});
