#![warn(missing_docs)]

//! Deterministic fault injection for the DISCO simulator.
//!
//! A [`FaultPlan`] is a *schedule*, not a stream: whether a fault fires
//! at `(cycle, site)` is a pure function of the plan's seed, the fault
//! kind, the cycle, and a stable site key. Nothing draws from a shared
//! RNG, so the schedule is byte-identical no matter how the cycle
//! kernel's compute phase is sharded (`compute_shards` ∈ {1, 4, 16, …})
//! and no matter in which order sites consult it within a cycle.
//!
//! The crate is dependency-free and always compiled; the simulator wires
//! it into the cycle kernel only under the `faults` cargo feature of the
//! consuming crates (`disco-noc` / `disco-core` / `disco-cache`).
//!
//! Three pieces live here:
//!
//! - [`FaultPlan`] — rates, dead links, retry policy, and the keyed
//!   hash that decides where faults strike;
//! - [`checksum`] — the FNV-1a end-to-end payload checksum appended at
//!   NI injection and verified at ejection;
//! - [`FaultStats`] — the accounting block surfaced in `report.rs`,
//!   with the reconciliation invariant `injected = detected =
//!   recovered + unrecoverable` checked by [`FaultStats::reconciles`].

/// Everything that can be injected. Stall kinds degrade timing only;
/// integrity kinds corrupt or destroy data and must be detected and
/// recovered (or counted unrecoverable).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// A link eats a whole packet: the drop decision fires on the head
    /// flit at a router output and consumes every flit of the packet.
    LinkDrop,
    /// A flaky link: the output port refuses to drive flits for a
    /// window of cycles (transient, recovers by itself).
    LinkFlaky,
    /// A router output port stalls for a window of cycles (arbiter or
    /// driver fault; transient).
    PortStall,
    /// A single bit of a raw data payload flips in flight (soft error
    /// on a data flit).
    PayloadBitFlip,
    /// A compressor engine emits a corrupted encoding; caught by
    /// decompress-and-verify at the compression site, which falls back
    /// to uncompressed delivery.
    CodecCorruption,
    /// A DRAM bank stalls for a burst of cycles (refresh storm or
    /// thermal throttle; timing only).
    DramStall,
}

impl FaultKind {
    /// Every kind, in stable order.
    pub const ALL: [FaultKind; 6] = [
        FaultKind::LinkDrop,
        FaultKind::LinkFlaky,
        FaultKind::PortStall,
        FaultKind::PayloadBitFlip,
        FaultKind::CodecCorruption,
        FaultKind::DramStall,
    ];

    /// Stable numeric code: part of the hash key and of trace records.
    pub fn code(self) -> u8 {
        match self {
            FaultKind::LinkDrop => 0,
            FaultKind::LinkFlaky => 1,
            FaultKind::PortStall => 2,
            FaultKind::PayloadBitFlip => 3,
            FaultKind::CodecCorruption => 4,
            FaultKind::DramStall => 5,
        }
    }

    /// Short stable name (for reports and sweep output).
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::LinkDrop => "link_drop",
            FaultKind::LinkFlaky => "link_flaky",
            FaultKind::PortStall => "port_stall",
            FaultKind::PayloadBitFlip => "payload_bit_flip",
            FaultKind::CodecCorruption => "codec_corruption",
            FaultKind::DramStall => "dram_stall",
        }
    }
}

/// Stable site keys. Each injection point hashes a namespaced key so two
/// different kinds of site never collide (a router port and a DRAM bank
/// with the same index must not share fault schedules).
pub mod site {
    const LINK_NS: u64 = 1 << 56;
    const PORT_NS: u64 = 2 << 56;
    const CODEC_NS: u64 = 3 << 56;
    const DRAM_NS: u64 = 4 << 56;

    /// The link leaving `node` through output direction `dir`.
    pub fn link(node: usize, dir: usize) -> u64 {
        LINK_NS | ((node as u64) << 8) | dir as u64
    }

    /// The output port `dir` of router `node`.
    pub fn port(node: usize, dir: usize) -> u64 {
        PORT_NS | ((node as u64) << 8) | dir as u64
    }

    /// The compressor engine at router `node`.
    pub fn codec(node: usize) -> u64 {
        CODEC_NS | node as u64
    }

    /// DRAM bank `bank`.
    pub fn dram_bank(bank: usize) -> u64 {
        DRAM_NS | bank as u64
    }
}

/// SplitMix64 finalizer: a full-avalanche 64-bit mix.
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A deterministic fault schedule plus the detection/recovery policy
/// knobs the NI retransmission layer obeys.
///
/// ```
/// use disco_faults::{FaultKind, FaultPlan};
///
/// let plan = FaultPlan::uniform(7, 1e-3);
/// // The schedule is a pure function of (seed, kind, cycle, site):
/// let a = plan.fires(FaultKind::LinkDrop, 123, disco_faults::site::link(4, 1));
/// let b = plan.fires(FaultKind::LinkDrop, 123, disco_faults::site::link(4, 1));
/// assert_eq!(a, b);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed of the keyed hash. Independent of the workload seed.
    pub seed: u64,
    /// Per packet-link-traversal probability of a whole-packet drop.
    pub link_drop_rate: f64,
    /// Per `(link, window)` probability of a flaky-link outage window.
    pub link_flaky_rate: f64,
    /// Per `(port, window)` probability of a port-stall window.
    pub port_stall_rate: f64,
    /// Per packet-link-traversal probability of a payload bit flip
    /// (applies to raw data payloads; fires on the tail flit).
    pub payload_bit_flip_rate: f64,
    /// Per compression-commit probability of a corrupted encoding.
    pub codec_corruption_rate: f64,
    /// Per `(bank, window)` probability of a DRAM stall burst.
    pub dram_stall_rate: f64,
    /// Permanently dead links as `(node, direction index)`: every packet
    /// routed over one is black-holed; fault-aware escape routing steers
    /// around the escapable ones.
    pub dead_links: Vec<(usize, usize)>,
    /// Width, in cycles, of the windows the transient stall kinds
    /// ([`FaultKind::LinkFlaky`] / [`FaultKind::PortStall`] /
    /// [`FaultKind::DramStall`]) are drawn over.
    pub stall_window: u64,
    /// Extra service delay a DRAM stall burst adds, in cycles.
    pub dram_stall_penalty: u64,
    /// Retransmission attempts per transfer before the NI gives up and
    /// the loss counts as unrecoverable.
    pub max_retries: u32,
    /// Base loss-detection timeout before the first retransmission, in
    /// cycles; doubles on every further attempt (exponential backoff).
    pub retry_timeout: u64,
}

impl FaultPlan {
    /// A quiet plan (all rates zero, no dead links) with the default
    /// recovery policy.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            link_drop_rate: 0.0,
            link_flaky_rate: 0.0,
            port_stall_rate: 0.0,
            payload_bit_flip_rate: 0.0,
            codec_corruption_rate: 0.0,
            dram_stall_rate: 0.0,
            dead_links: Vec::new(),
            stall_window: 16,
            dram_stall_penalty: 64,
            max_retries: 8,
            retry_timeout: 64,
        }
    }

    /// A plan with every rate set to `rate` (the sweep configuration).
    pub fn uniform(seed: u64, rate: f64) -> Self {
        FaultPlan {
            link_drop_rate: rate,
            link_flaky_rate: rate,
            port_stall_rate: rate,
            payload_bit_flip_rate: rate,
            codec_corruption_rate: rate,
            dram_stall_rate: rate,
            ..FaultPlan::new(seed)
        }
    }

    /// The configured rate for `kind`.
    pub fn rate(&self, kind: FaultKind) -> f64 {
        match kind {
            FaultKind::LinkDrop => self.link_drop_rate,
            FaultKind::LinkFlaky => self.link_flaky_rate,
            FaultKind::PortStall => self.port_stall_rate,
            FaultKind::PayloadBitFlip => self.payload_bit_flip_rate,
            FaultKind::CodecCorruption => self.codec_corruption_rate,
            FaultKind::DramStall => self.dram_stall_rate,
        }
    }

    /// Whether this plan can inject anything at all. An inactive plan
    /// must behave exactly like no plan: the simulator skips the whole
    /// fault machinery for it, which is what makes a rate-0 run
    /// byte-identical to a `faults`-off build.
    pub fn is_active(&self) -> bool {
        FaultKind::ALL.iter().any(|&k| self.rate(k) > 0.0) || !self.dead_links.is_empty()
    }

    /// The raw 64-bit draw for `(kind, cycle, site)` — a pure keyed
    /// hash. Exposed so injection sites can derive secondary decisions
    /// (which bit to flip, which byte to corrupt) from the same draw.
    pub fn draw(&self, kind: FaultKind, cycle: u64, site: u64) -> u64 {
        let mut h = self.seed ^ 0x9e37_79b9_7f4a_7c15;
        h = mix64(h ^ u64::from(kind.code()));
        h = mix64(h ^ cycle);
        mix64(h ^ site)
    }

    /// Whether `kind` fires at `(cycle, site)` under its configured
    /// rate. Deterministic; independent draws per kind and site.
    pub fn fires(&self, kind: FaultKind, cycle: u64, site: u64) -> bool {
        let rate = self.rate(kind);
        if rate <= 0.0 {
            return false;
        }
        if rate >= 1.0 {
            return true;
        }
        let threshold = (rate * u64::MAX as f64) as u64;
        self.draw(kind, cycle, site) < threshold
    }

    /// Whether a *window* containing `cycle` fires at `site`: the draw
    /// is keyed by `cycle / stall_window`, so a hit covers the whole
    /// window — the burst shape of the transient stall kinds.
    pub fn window_fires(&self, kind: FaultKind, cycle: u64, site: u64) -> bool {
        self.fires(kind, cycle / self.stall_window.max(1), site)
    }

    /// Whether the link leaving `node` through direction `dir` is
    /// configured permanently dead.
    pub fn link_is_dead(&self, node: usize, dir: usize) -> bool {
        self.dead_links.iter().any(|&(n, d)| n == node && d == dir)
    }
}

/// FNV-1a over a byte slice: the end-to-end payload checksum carried (as
/// side-band metadata) from NI injection to ejection. 64 bits keep the
/// silent-corruption escape probability negligible at simulated scales.
pub fn checksum(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Fault accounting, surfaced in the stats report.
///
/// The ledger invariant: every *integrity* fault (drop, bit flip, codec
/// corruption) increments `injected` exactly once, is eventually
/// `detected` exactly once, and ends up either `recovered` or
/// `unrecoverable`. Stall kinds degrade timing only and are accounted
/// in the `*_stall_cycles` counters, outside the ledger.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Integrity faults injected (drops + bit flips + codec corruptions).
    pub injected: u64,
    /// Integrity faults detected (checksum mismatch, loss timeout, or
    /// decompress-and-verify mismatch).
    pub detected: u64,
    /// Integrity faults whose transfer was ultimately delivered intact
    /// (by retransmission or compression fallback).
    pub recovered: u64,
    /// Integrity faults whose transfer was abandoned after the retry
    /// bound.
    pub unrecoverable: u64,
    /// NI retransmission attempts issued.
    pub retries: u64,
    /// Compressions abandoned to uncompressed delivery after a
    /// decompress-and-verify mismatch.
    pub fallback_deliveries: u64,
    /// Corrupted payloads that passed verification (must stay 0; any
    /// other value fails the run's health check).
    pub undetected: u64,
    /// Whole-packet link drops injected.
    pub link_drops: u64,
    /// Payload bit flips injected.
    pub payload_bit_flips: u64,
    /// Corrupted compressor outputs injected.
    pub codec_corruptions: u64,
    /// Cycles router output ports spent fault-stalled with traffic
    /// waiting (port stalls + flaky links).
    pub port_stall_cycles: u64,
    /// Extra DRAM service cycles added by stall bursts.
    pub dram_stall_cycles: u64,
}

impl FaultStats {
    /// Adds `other` into `self`, field by field.
    pub fn accumulate(&mut self, other: &FaultStats) {
        self.injected += other.injected;
        self.detected += other.detected;
        self.recovered += other.recovered;
        self.unrecoverable += other.unrecoverable;
        self.retries += other.retries;
        self.fallback_deliveries += other.fallback_deliveries;
        self.undetected += other.undetected;
        self.link_drops += other.link_drops;
        self.payload_bit_flips += other.payload_bit_flips;
        self.codec_corruptions += other.codec_corruptions;
        self.port_stall_cycles += other.port_stall_cycles;
        self.dram_stall_cycles += other.dram_stall_cycles;
    }

    /// The ledger invariant at drain time: every injected fault was
    /// detected, and every detected fault was resolved one way or the
    /// other.
    pub fn reconciles(&self) -> bool {
        self.injected == self.detected && self.injected == self.recovered + self.unrecoverable
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_deterministic() {
        let a = FaultPlan::uniform(42, 0.25);
        let b = FaultPlan::uniform(42, 0.25);
        for cycle in 0..200 {
            for node in 0..16 {
                let s = site::link(node, 2);
                assert_eq!(
                    a.fires(FaultKind::LinkDrop, cycle, s),
                    b.fires(FaultKind::LinkDrop, cycle, s)
                );
                assert_eq!(
                    a.draw(FaultKind::PayloadBitFlip, cycle, s),
                    b.draw(FaultKind::PayloadBitFlip, cycle, s)
                );
            }
        }
    }

    #[test]
    fn rate_zero_never_fires_rate_one_always() {
        let quiet = FaultPlan::uniform(1, 0.0);
        let loud = FaultPlan::uniform(1, 1.0);
        for cycle in 0..100 {
            let s = site::port(3, 1);
            assert!(!quiet.fires(FaultKind::PortStall, cycle, s));
            assert!(loud.fires(FaultKind::PortStall, cycle, s));
        }
    }

    #[test]
    fn kinds_and_sites_draw_independently() {
        let plan = FaultPlan::uniform(9, 0.5);
        let mut distinct = std::collections::HashSet::new();
        for kind in FaultKind::ALL {
            for node in 0..8 {
                distinct.insert(plan.draw(kind, 77, site::link(node, 0)));
            }
        }
        // 6 kinds × 8 sites must not collapse onto shared draws.
        assert_eq!(distinct.len(), 48);
    }

    #[test]
    fn seed_changes_the_schedule() {
        let a = FaultPlan::uniform(1, 0.5);
        let b = FaultPlan::uniform(2, 0.5);
        let differs = (0..64)
            .any(|c| a.fires(FaultKind::LinkDrop, c, 0) != b.fires(FaultKind::LinkDrop, c, 0));
        assert!(differs, "different seeds must give different schedules");
    }

    #[test]
    fn window_fires_covers_whole_windows() {
        let mut plan = FaultPlan::uniform(5, 0.3);
        plan.stall_window = 32;
        let s = site::dram_bank(2);
        for window in 0..20u64 {
            let first = plan.window_fires(FaultKind::DramStall, window * 32, s);
            for offset in 1..32 {
                assert_eq!(
                    first,
                    plan.window_fires(FaultKind::DramStall, window * 32 + offset, s),
                    "one draw per window"
                );
            }
        }
    }

    #[test]
    fn empirical_rate_tracks_configured_rate() {
        let plan = FaultPlan::uniform(11, 0.1);
        let hits = (0..100_000u64)
            .filter(|&c| plan.fires(FaultKind::LinkDrop, c, site::link(0, 1)))
            .count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.1).abs() < 0.01, "observed {rate}");
    }

    #[test]
    fn inactive_plans_are_recognized() {
        assert!(!FaultPlan::new(3).is_active());
        assert!(FaultPlan::uniform(3, 1e-6).is_active());
        let mut dead = FaultPlan::new(3);
        dead.dead_links.push((5, 1));
        assert!(dead.is_active());
        assert!(dead.link_is_dead(5, 1));
        assert!(!dead.link_is_dead(5, 2));
    }

    #[test]
    fn checksum_separates_payloads() {
        let a = checksum(b"hello");
        let b = checksum(b"hellp");
        assert_ne!(a, b);
        assert_eq!(a, checksum(b"hello"));
        assert_ne!(checksum(&[]), 0);
    }

    #[test]
    fn accumulate_sums_every_field() {
        let one = FaultStats {
            injected: 1,
            detected: 2,
            recovered: 3,
            unrecoverable: 4,
            retries: 5,
            fallback_deliveries: 6,
            undetected: 7,
            link_drops: 8,
            payload_bit_flips: 9,
            codec_corruptions: 10,
            port_stall_cycles: 11,
            dram_stall_cycles: 12,
        };
        let mut total = one;
        total.accumulate(&one);
        assert_eq!(
            total,
            FaultStats {
                injected: 2,
                detected: 4,
                recovered: 6,
                unrecoverable: 8,
                retries: 10,
                fallback_deliveries: 12,
                undetected: 14,
                link_drops: 16,
                payload_bit_flips: 18,
                codec_corruptions: 20,
                port_stall_cycles: 22,
                dram_stall_cycles: 24,
            }
        );
    }

    #[test]
    fn ledger_reconciliation() {
        let mut s = FaultStats::default();
        assert!(s.reconciles());
        s.injected = 5;
        s.detected = 5;
        s.recovered = 4;
        s.unrecoverable = 1;
        assert!(s.reconciles());
        s.recovered = 5;
        assert!(!s.reconciles(), "over-recovery must not reconcile");
        s.recovered = 4;
        s.detected = 4;
        assert!(!s.reconciles(), "missed detection must not reconcile");
    }
}

// ---------------------------------------------------------------------------
// Checkpointing (see crates/snapshot/manifest.txt)
// ---------------------------------------------------------------------------

disco_snapshot::snap_fields!(FaultPlan {
    seed,
    link_drop_rate,
    link_flaky_rate,
    port_stall_rate,
    payload_bit_flip_rate,
    codec_corruption_rate,
    dram_stall_rate,
    dead_links,
    stall_window,
    dram_stall_penalty,
    max_retries,
    retry_timeout,
});

disco_snapshot::snap_fields!(FaultStats {
    injected,
    detected,
    recovered,
    unrecoverable,
    retries,
    fallback_deliveries,
    undetected,
    link_drops,
    payload_bit_flips,
    codec_corruptions,
    port_stall_cycles,
    dram_stall_cycles,
});
