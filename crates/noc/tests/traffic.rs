//! Network-level integration and property tests: conservation and
//! delivery under randomized traffic, across all flow controls.

use disco_compress::CacheLine;
use disco_noc::{FlowControl, Mesh, Network, NocConfig, NodeId, PacketClass, Payload};
use proptest::prelude::*;

fn drain(net: &mut Network, expect: usize, limit: u64) -> Vec<u64> {
    let nodes = net.topology().tiles();
    let mut got = Vec::new();
    while got.len() < expect {
        net.tick();
        for n in 0..nodes {
            got.extend(net.take_delivered(NodeId(n)).into_iter().map(|p| p.tag));
        }
        assert!(
            net.now() < limit,
            "deadline: {}/{} delivered",
            got.len(),
            expect
        );
    }
    got
}

#[test]
fn every_flow_control_delivers_everything() {
    for fc in [
        FlowControl::Wormhole,
        FlowControl::VirtualCutThrough,
        FlowControl::StoreAndForward,
    ] {
        let config = NocConfig {
            flow_control: fc,
            buffer_depth: 8,
            ..NocConfig::default()
        };
        let mut net = Network::new(Mesh::new(3, 3), config);
        let mut sent = 0;
        for src in 0..9usize {
            for dst in 0..9usize {
                if src != dst {
                    let line = CacheLine::from_u64_words([src as u64; 8]);
                    net.send(
                        NodeId(src),
                        NodeId(dst),
                        PacketClass::Response,
                        Payload::Raw(line),
                        true,
                        sent,
                    );
                    sent += 1;
                }
            }
        }
        let got = drain(&mut net, sent as usize, 50_000);
        assert_eq!(got.len(), sent as usize, "{fc:?}");
        assert!(net.is_idle());
    }
}

#[test]
fn payload_survives_transit_byte_exact() {
    let mut net = Network::new(Mesh::new(4, 4), NocConfig::default());
    let mut bytes = [0u8; 64];
    for (i, b) in bytes.iter_mut().enumerate() {
        *b = (i as u8).wrapping_mul(37).wrapping_add(5);
    }
    let line = CacheLine::from_bytes(bytes);
    net.send(
        NodeId(3),
        NodeId(12),
        PacketClass::Response,
        Payload::Raw(line),
        true,
        0,
    );
    loop {
        net.tick();
        let got = net.take_delivered(NodeId(12));
        if let Some(pkt) = got.first() {
            match &pkt.payload {
                Payload::Raw(l) => assert_eq!(*l, line),
                other => panic!("wrong payload {other:?}"),
            }
            break;
        }
        assert!(net.now() < 1_000);
    }
}

#[test]
fn mixed_classes_share_the_network() {
    let mut net = Network::new(Mesh::new(4, 4), NocConfig::default());
    let mut sent = 0u64;
    for i in 0..16usize {
        for j in 0..16usize {
            if i == j {
                continue;
            }
            let (class, payload) = match (i + j) % 3 {
                0 => (PacketClass::Request, Payload::None),
                1 => (PacketClass::Response, Payload::Raw(CacheLine::zeroed())),
                _ => (PacketClass::Coherence, Payload::None),
            };
            net.send(NodeId(i), NodeId(j), class, payload, false, sent);
            sent += 1;
        }
    }
    let got = drain(&mut net, sent as usize, 100_000);
    let mut tags: Vec<u64> = got;
    tags.sort_unstable();
    tags.dedup();
    assert_eq!(tags.len(), sent as usize, "no packet lost or duplicated");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_traffic_is_conserved(
        sends in proptest::collection::vec((0usize..9, 0usize..9, any::<bool>()), 1..60),
        cols in 2usize..4,
        rows in 2usize..4,
    ) {
        let mesh = Mesh::new(cols, rows);
        let n = mesh.nodes();
        let mut net = Network::new(mesh, NocConfig::default());
        let mut expected = 0usize;
        for (tag, (s, d, data)) in sends.iter().enumerate() {
            let (s, d) = (s % n, d % n);
            if s == d {
                continue;
            }
            let (class, payload) = if *data {
                (PacketClass::Response, Payload::Raw(CacheLine::from_u64_words([tag as u64; 8])))
            } else {
                (PacketClass::Request, Payload::None)
            };
            net.send(NodeId(s), NodeId(d), class, payload, *data, tag as u64);
            expected += 1;
        }
        let got = drain(&mut net, expected, 200_000);
        prop_assert_eq!(got.len(), expected);
        prop_assert!(net.is_idle());
    }
}
