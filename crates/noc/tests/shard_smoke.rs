//! Minimal pinned workload for the sanitizer CI legs (Miri and
//! ThreadSanitizer run this against the `parallel` compute-shard
//! kernel). Deliberately tiny — a 2x2 mesh, eight packets, a bounded
//! tick budget — because interpreted/instrumented executions are orders
//! of magnitude slower than native. No filesystem, environment, clock,
//! or randomness: everything a data race could corrupt is checked by
//! exact equality against the serial (1-shard) run.

use disco_compress::CacheLine;
use disco_noc::{Mesh, Network, NocConfig, NodeId, PacketClass, Payload};

/// Runs the pinned workload at `shards` compute shards and returns the
/// delivery order (cycle, node, tag) plus the final stats rendering.
fn run(shards: usize) -> (Vec<(u64, usize, u64)>, String) {
    let config = NocConfig {
        compute_shards: shards,
        ..NocConfig::default()
    };
    let mut net = Network::new(Mesh::new(2, 2), config);
    let mut tag = 0u64;
    for src in 0..4usize {
        for dst in 0..4usize {
            if src != dst && (src + dst) % 2 == 1 {
                let line = CacheLine::from_u64_words([(src * 16 + dst) as u64; 8]);
                net.send(
                    NodeId(src),
                    NodeId(dst),
                    PacketClass::Response,
                    Payload::Raw(line),
                    true,
                    tag,
                );
                tag += 1;
            }
        }
    }
    let mut deliveries = Vec::new();
    for _ in 0..200 {
        net.tick();
        for n in 0..4 {
            for p in net.take_delivered(NodeId(n)) {
                deliveries.push((net.now(), n, p.tag));
            }
        }
        if net.is_idle() {
            break;
        }
    }
    assert!(net.is_idle(), "{shards} shards: workload must drain");
    assert_eq!(
        deliveries.len(),
        tag as usize,
        "{shards} shards: every packet delivered"
    );
    (deliveries, format!("{:?}", net.stats()))
}

/// The parallel compute phase must be byte-identical to the serial one:
/// same delivery cycles, same order, same stats. Without the `parallel`
/// feature the shard request degrades to 1 and this is a self-check.
#[test]
fn two_shards_match_serial_exactly() {
    let (serial_deliveries, serial_stats) = run(1);
    let (sharded_deliveries, sharded_stats) = run(2);
    assert_eq!(serial_deliveries, sharded_deliveries);
    assert_eq!(serial_stats, sharded_stats);
}
