//! Pins the zero-allocation contract of the cycle kernel: once the
//! per-shard arenas have reached their high-water capacity, a
//! steady-state [`Network::tick`] performs **no** heap allocation — no
//! per-router outcome vectors, no RC/VA/SA candidate lists, no per-flit
//! `flits_for` buffers.
//!
//! The measurement uses a counting global allocator gated by a
//! thread-local flag, so only allocations made *by this test's thread
//! inside the measurement window* count — the libtest harness runs on
//! other threads and must not pollute the counter. This file must stay
//! a single-`#[test]` binary for the same reason.
#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

use disco_compress::CacheLine;
use disco_noc::{Mesh, Network, NocConfig, NodeId, PacketClass, Payload, Ring};

static ALLOCS: AtomicU64 = AtomicU64::new(0);

std::thread_local! {
    static COUNTING: Cell<bool> = const { Cell::new(false) };
}

struct CountingAlloc;

// SAFETY: defers entirely to `System`; the only addition is a counter
// bump, which allocates nothing itself (`try_with` + const-initialized
// `Cell` avoid lazy TLS allocation and teardown re-entrancy).
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.try_with(|c| c.get()).unwrap_or(false) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.try_with(|c| c.get()).unwrap_or(false) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Drives one warm-up response from node 0 to `dst` so every router's
/// outcome slot, candidate arena, and VC deque reaches capacity, then
/// measures a second identical response mid-flight: ticks inside the
/// window must allocate exactly nothing.
fn assert_steady_state_allocates_nothing(name: &str, net: &mut Network, dst: NodeId) {
    let line = CacheLine::from_u64_words([1, 2, 3, 4, 5, 6, 7, 8]);

    // Warm-up flight. Record the flight time so the measurement window
    // below can be sized to end strictly before the second packet's
    // delivery (the delivered-queue push is bookkeeping outside the
    // kernel contract).
    net.send(
        NodeId(0),
        dst,
        PacketClass::Response,
        Payload::Raw(line),
        true,
        0,
    );
    let mut flight_ticks = 0u32;
    let mut arrived = 0;
    for _ in 0..600 {
        net.tick();
        flight_ticks += 1;
        arrived += net.take_delivered(dst).len();
        if arrived == 1 {
            break;
        }
    }
    assert_eq!(arrived, 1, "{name}: warm-up packet must arrive");
    assert!(net.is_idle(), "{name}: warm-up packet must drain");
    assert!(flight_ticks > 8, "{name}: flight time too short to measure");

    // Second packet, same route — the run is deterministic, so it takes
    // exactly `flight_ticks` again. `send` itself may allocate (packet
    // store insert); that's outside the window.
    net.send(
        NodeId(0),
        dst,
        PacketClass::Response,
        Payload::Raw(line),
        true,
        1,
    );
    net.tick();
    net.tick();

    COUNTING.with(|c| c.set(true));
    let before = ALLOCS.load(Ordering::Relaxed);
    for _ in 0..flight_ticks / 2 {
        net.tick();
    }
    let after = ALLOCS.load(Ordering::Relaxed);
    COUNTING.with(|c| c.set(false));
    assert_eq!(
        after - before,
        0,
        "{name}: steady-state ticks must not touch the heap"
    );

    // The measured packet still arrives intact.
    let mut got = Vec::new();
    for _ in 0..600 {
        net.tick();
        got.extend(net.take_delivered(dst));
        if !got.is_empty() {
            break;
        }
    }
    assert_eq!(got.len(), 1, "{name}");
    match &got[0].payload {
        Payload::Raw(l) => assert_eq!(*l, line),
        other => panic!("{name}: expected raw payload, got {other:?}"),
    }
}

/// A 16x1 mesh line and a 16-node ring (low-buffer router parameters):
/// the zero-alloc contract is topology-independent, so both substrates
/// get the same mid-flight window.
#[test]
fn steady_state_cycles_allocate_nothing() {
    let mut mesh = Network::new(Mesh::new(16, 1), NocConfig::default());
    assert_steady_state_allocates_nothing("mesh 16x1", &mut mesh, NodeId(15));

    let mut ring = Network::new(Ring::new(16), NocConfig::low_buffer_ring());
    assert_steady_state_allocates_nothing("ring 16", &mut ring, NodeId(8));
}
