//! The pure **compute** half of the cycle kernel.
//!
//! [`compute_router`] runs one router's RC, VA, and SA stages as a pure
//! function over an immutable snapshot of that router's state at the
//! start of the cycle, and writes the decisions as typed action lists
//! into a caller-provided [`RouterOutcome`]. It mutates no router state:
//! within-cycle dependencies (VA sees this cycle's RC, SA sees this
//! cycle's VA) are tracked in small overlays of the per-VC state and the
//! output allocation table, while buffers and credits are only read.
//!
//! The overlays and the SA candidate list live in a reusable
//! [`ComputeScratch`] arena, and the outcome's action lists are cleared
//! (not reallocated) on entry — so a steady-state cycle performs **zero
//! heap allocations**: every buffer reaches its high-water capacity once
//! and is reused for the rest of the run. `crates/noc/tests` pins this
//! with a counting global allocator.
//!
//! Because every router's outcome depends only on the cycle-start
//! snapshot, the compute phase may run for all routers in any order —
//! or in parallel (`parallel` feature) — and the result is identical by
//! construction. All mutation happens afterwards in the commit pass
//! ([`crate::commit`]), in fixed node order.

use crate::config::FlowControl;
use crate::packet::{Flit, PacketClass, PacketId, PacketStore, Payload};
use crate::router::{Router, VcState};
use crate::routing::{output_vc_range, route};
use crate::stats::NetworkStats;
use crate::topology::{PortId, Topology};

/// A flit leaving a router this cycle, to be applied by the commit pass.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Departure {
    pub flit: Flit,
    pub in_port: usize,
    pub in_vc: usize,
    pub out: PortId,
    pub out_vc: usize,
}

/// Everything one router decided in one cycle's compute phase: typed
/// action lists plus this router's stat delta. The commit pass applies
/// the lists in node order; nothing here aliases router state. Outcomes
/// are arena-owned and reused across cycles — [`RouterOutcome::reset`]
/// clears contents while keeping every allocation.
#[derive(Debug, Clone, Default)]
pub(crate) struct RouterOutcome {
    /// RC results: `(in_port, in_vc, out_port)` — the VC becomes `Routed`.
    pub routes: Vec<(usize, usize, PortId)>,
    /// VA results: `(in_port, in_vc, out_port, out_vc)` — the VC becomes
    /// `Active` and acquires the output VC.
    pub grants: Vec<(usize, usize, PortId, usize)>,
    /// SA winners: one flit leaves per output port, with the credit
    /// decrement, link delivery or ejection applied at commit.
    pub departures: Vec<Departure>,
    /// Post-arbitration round-robin pointers, one per output port.
    pub rr_sa: Vec<usize>,
    /// This cycle's allocation losers (the DISCO compression candidates).
    pub sa_losers: Vec<(usize, usize)>,
    /// This router's contribution to the network counters this cycle.
    pub stats: NetworkStats,
    /// Trace events decided this cycle, in stage order. Carried out of
    /// the pure compute phase and cycle-stamped by the commit pass in
    /// node order, which keeps the trace shard-count invariant.
    #[cfg(feature = "trace")]
    pub events: disco_trace::EventList,
    /// Output-port arbitration rounds forfeited to an injected port
    /// stall or flaky-link outage this cycle; folded into
    /// `FaultStats::port_stall_cycles` by the commit pass.
    #[cfg(feature = "faults")]
    pub fault_port_stalls: u64,
}

impl RouterOutcome {
    /// Clears per-cycle contents while retaining every allocation, and
    /// seeds the round-robin pointers from the router snapshot.
    fn reset(&mut self, rr_sa: &[usize]) {
        self.routes.clear();
        self.grants.clear();
        self.departures.clear();
        self.sa_losers.clear();
        self.rr_sa.clear();
        self.rr_sa.extend_from_slice(rr_sa);
        self.stats = NetworkStats::new();
        #[cfg(feature = "trace")]
        self.events.0.clear();
        #[cfg(feature = "faults")]
        {
            self.fault_port_stalls = 0;
        }
    }
}

/// Reusable per-shard working memory for [`compute_router`]: the RC/VA
/// overlays and the SA candidate list. One arena serves every router of
/// a shard in sequence; capacities grow to the high-water mark once and
/// then stay — no per-router, per-cycle allocation.
#[derive(Debug, Clone, Default)]
pub(crate) struct ComputeScratch {
    /// VC-state overlay (VA sees this cycle's RC), `port * vcs + vc`.
    state: Vec<VcState>,
    /// Output-allocation overlay (SA sees this cycle's VA), same layout.
    alloc: Vec<Option<(usize, usize)>>,
    /// SA candidates for the output port under arbitration:
    /// `(port, vc, out_vc, prio)`.
    candidates: Vec<(usize, usize, usize, u8)>,
}

/// Priority class for switch allocation (§3.3-B): lower wins.
fn sa_priority(router: &Router, store: &PacketStore, packet: PacketId) -> u8 {
    let pkt = store.get(packet);
    let policy = router.config.scheduling;
    if policy.demote_uncompressed
        && pkt.compressible
        && !pkt.critical
        && matches!(pkt.payload, Payload::Raw(_))
    {
        return 2;
    }
    if policy.prioritize_critical && pkt.class == PacketClass::Coherence {
        return 1;
    }
    0
}

/// The virtual channels a packet class may use: the VC space is split
/// into one virtual network per class group to stay deadlock-free.
fn class_vcs(router: &Router, class: PacketClass) -> std::ops::Range<usize> {
    class.vc_range(router.config.vcs)
}

/// Runs RC + VA + SA for one router against its cycle-start snapshot and
/// writes the typed outcome into `out`. Pure with respect to the router:
/// `router` is only read; the only mutation targets are the caller's
/// arena (`scratch`) and outcome slot (`out`), which alias no router
/// state.
pub(crate) fn compute_router(
    router: &Router,
    now: u64,
    store: &PacketStore,
    topo: &Topology,
    gate: crate::faults::FaultGate<'_>,
    scratch: &mut ComputeScratch,
    out: &mut RouterOutcome,
) {
    out.reset(&router.rr_sa);
    // Idle fast path: with no buffered flit there is no RC candidate, no
    // VA-eligible VC with a front packet, no SA candidate, and no VA
    // loser — the stage loops below would decide nothing. On big meshes
    // most routers are idle most cycles; skip them outright.
    if router.total_buffered() == 0 {
        return;
    }
    let vcs = router.config.vcs;
    let ports = router.ports;
    let flat = |port: usize, v: usize| port * vcs + v;
    // Local overlays: VA must see this cycle's RC and SA must see this
    // cycle's VA, all without touching the router.
    let ComputeScratch {
        state,
        alloc,
        candidates,
    } = scratch;
    state.clear();
    alloc.clear();
    for i in 0..ports * vcs {
        state.push(router.inputs[i].state);
        alloc.push(router.out_alloc[i]);
    }

    // RC + VA, in the same (port, vc) order as the legacy in-place loop.
    for port in 0..ports {
        for v in 0..vcs {
            // RC: a fresh head flit gets its output port.
            if state[flat(port, v)] == VcState::Idle {
                let front = match router.inputs[flat(port, v)].buffer.front() {
                    Some(f) if f.kind.is_head() && f.ready_at <= now => *f,
                    _ => continue,
                };
                let pkt = store.get(front.packet);
                let group = class_vcs(router, pkt.class);
                let dir = route(
                    router.config.routing,
                    topo,
                    router.node,
                    pkt.dst,
                    front.packet.0,
                    |p| {
                        group
                            .clone()
                            .map(|vc| router.credits[flat(p.0, vc)])
                            .max()
                            .unwrap_or(0)
                    },
                );
                // Escape faulted links where a deadlock-free detour
                // exists; the identity when no fault plan is active.
                let dir = gate.adjust_route(topo, router.node, pkt.dst, dir);
                state[flat(port, v)] = VcState::Routed(dir);
                out.routes.push((port, v, dir));
                disco_trace::emit!(
                    out.events,
                    disco_trace::Event::Route {
                        packet: front.packet.0,
                        node: router.node.0 as u16,
                        in_port: port as u8,
                        in_vc: v as u8,
                        out_dir: dir.0 as u8,
                    }
                );
            }
            // VA: acquire the class VC on the output port.
            if let VcState::Routed(dir) = state[flat(port, v)] {
                let packet = match router.inputs[flat(port, v)].front_packet() {
                    Some(p) => p,
                    None => continue,
                };
                let pkt = store.get(packet);
                // Acquire any free VC of the class group on the output
                // port, narrowed by the topology's dateline discipline
                // (identity on the mesh; low/high half-groups on the
                // wrap topologies). VCT/SAF additionally need
                // whole-packet credit (§3.3-A).
                let class_group = class_vcs(router, pkt.class);
                let out_vc =
                    output_vc_range(topo, router.node, dir, pkt.dst, class_group).find(|&cand| {
                        if alloc[flat(dir.0, cand)].is_some() {
                            return false;
                        }
                        match router.config.flow_control {
                            FlowControl::Wormhole => true,
                            _ => router.credits[flat(dir.0, cand)] >= pkt.size_flits(),
                        }
                    });
                let Some(out_vc) = out_vc else { continue };
                alloc[flat(dir.0, out_vc)] = Some((port, v));
                state[flat(port, v)] = VcState::Active { out: dir, out_vc };
                out.grants.push((port, v, dir, out_vc));
                disco_trace::emit!(
                    out.events,
                    disco_trace::Event::VcAlloc {
                        packet: packet.0,
                        node: router.node.0 as u16,
                        in_port: port as u8,
                        in_vc: v as u8,
                        out_dir: dir.0 as u8,
                        out_vc: out_vc as u8,
                    }
                );
            }
        }
    }

    // SA + traversal decisions: one winner per output port. Credits are
    // read from the snapshot only — each output is arbitrated exactly
    // once per cycle and outputs never share a credit counter, so no
    // overlay is needed.
    for oi in 0..ports {
        let outdir = PortId(oi);
        // Gather candidates into the reusable arena: active VCs routed to
        // this output with a ready front flit and downstream credit.
        candidates.clear();
        for port in 0..ports {
            for v in 0..vcs {
                let (o, out_vc) = match state[flat(port, v)] {
                    VcState::Active { out: o, out_vc } => (o, out_vc),
                    _ => continue,
                };
                if o != outdir {
                    continue;
                }
                let vc = &router.inputs[flat(port, v)];
                let front = match vc.buffer.front() {
                    Some(f) if f.ready_at <= now => *f,
                    _ => continue,
                };
                if vc.locked {
                    // Committed de/compression: the shadow is invalid
                    // and must not be scheduled.
                    continue;
                }
                if router.credits[flat(oi, out_vc)] == 0 {
                    out.sa_losers.push((port, v));
                    disco_trace::emit!(
                        out.events,
                        disco_trace::Event::VcStall {
                            packet: front.packet.0,
                            node: router.node.0 as u16,
                            port: port as u8,
                            vc: v as u8,
                            reason: disco_trace::stall::NO_CREDIT,
                        }
                    );
                    continue;
                }
                if router.config.flow_control == FlowControl::StoreAndForward
                    && front.kind.is_head()
                    && !front.kind.is_tail()
                    && !vc.has_tail_of(front.packet)
                {
                    // SAF: the whole packet must be buffered before the
                    // head may leave.
                    continue;
                }
                let prio = sa_priority(router, store, front.packet);
                candidates.push((port, v, out_vc, prio));
            }
        }
        // An injected port stall (or flaky-link outage window) forfeits
        // this output's arbitration round outright: every candidate
        // idles — and, like any SA loser, becomes a DISCO compression
        // candidate.
        #[cfg(feature = "faults")]
        if !candidates.is_empty()
            && !router.is_local_port(outdir)
            && gate.output_blocked(now, router.node.0, oi)
        {
            out.fault_port_stalls += 1;
            for c in candidates.iter() {
                out.sa_losers.push((c.0, c.1));
                disco_trace::emit!(
                    out.events,
                    disco_trace::Event::VcStall {
                        packet: router.inputs[flat(c.0, c.1)]
                            .buffer
                            .front()
                            .map_or(0, |f| f.packet.0),
                        node: router.node.0 as u16,
                        port: c.0 as u8,
                        vc: c.1 as u8,
                        reason: disco_trace::stall::FAULT_STALL,
                    }
                );
            }
            continue;
        }
        // Winner: highest priority class, round-robin within it. The
        // lexicographic key picks the best-priority candidate closest
        // after the round-robin pointer.
        let rr = out.rr_sa[oi];
        let Some(winner) = candidates
            .iter()
            .min_by_key(|c| {
                let flat_in = c.0 * vcs + c.1;
                (c.3, (flat_in + ports * vcs - rr) % (ports * vcs))
            })
            .copied()
        else {
            continue;
        };
        out.rr_sa[oi] = (winner.0 * vcs + winner.1 + 1) % (ports * vcs);
        // Everyone else idles: these are DISCO's compression candidates.
        for c in candidates.iter() {
            if (c.0, c.1) != (winner.0, winner.1) {
                out.sa_losers.push((c.0, c.1));
                disco_trace::emit!(
                    out.events,
                    disco_trace::Event::VcStall {
                        packet: router.inputs[flat(c.0, c.1)]
                            .buffer
                            .front()
                            .map_or(0, |f| f.packet.0),
                        node: router.node.0 as u16,
                        port: c.0 as u8,
                        vc: c.1 as u8,
                        reason: disco_trace::stall::LOST_ARBITRATION,
                    }
                );
            }
        }
        let (port, v, out_vc, _) = winner;
        let flit = match router.inputs[flat(port, v)].buffer.front() {
            Some(f) => *f,
            None => {
                // A candidate was admitted above only with a ready front
                // flit; an empty buffer here is unreachable.
                debug_assert!(false, "SA winner lost its front flit");
                continue;
            }
        };
        if flit.kind.is_tail() {
            // Release the output VC and idle the input within this
            // cycle's overlay (matters for the VA-loser sweep below).
            alloc[flat(oi, out_vc)] = None;
            state[flat(port, v)] = VcState::Idle;
        }
        // Traverse events only for head and tail flits: the head marks
        // the hop's start, the tail its departure time (what the
        // provenance pass consumes); body flits would only add volume.
        #[cfg(feature = "trace")]
        if flit.kind.is_head() || flit.kind.is_tail() {
            disco_trace::emit!(
                out.events,
                disco_trace::Event::Traverse {
                    packet: flit.packet.0,
                    node: router.node.0 as u16,
                    out_dir: oi as u8,
                    head: flit.kind.is_head(),
                    tail: flit.kind.is_tail(),
                }
            );
        }
        out.departures.push(Departure {
            flit,
            in_port: port,
            in_vc: v,
            out: outdir,
            out_vc,
        });
    }

    // VA losers also idle and are therefore compression candidates
    // (§3.2 step 1 collects losers of both VC and switch allocation).
    for port in 0..ports {
        for v in 0..vcs {
            let vc = &router.inputs[flat(port, v)];
            if vc.locked {
                continue;
            }
            if let VcState::Routed(_) = state[flat(port, v)] {
                if matches!(vc.buffer.front(), Some(f) if f.ready_at <= now) {
                    out.sa_losers.push((port, v));
                    disco_trace::emit!(
                        out.events,
                        disco_trace::Event::VcStall {
                            packet: vc.buffer.front().map_or(0, |f| f.packet.0),
                            node: router.node.0 as u16,
                            port: port as u8,
                            vc: v as u8,
                            reason: disco_trace::stall::NO_FREE_VC,
                        }
                    );
                }
            }
        }
    }

    // Stat delta: everything the legacy loop counted inline, derived
    // purely from the decisions above.
    out.stats.sa_losses = out.sa_losers.len() as u64;
    if !out.departures.is_empty() {
        out.stats.arbitrations = 1;
    }
    for dep in &out.departures {
        out.stats.buffer_reads += 1;
        out.stats.crossbar_flits += 1;
        if router.is_local_port(dep.out) {
            if dep.flit.kind.is_tail() {
                let pkt = store.get(dep.flit.packet);
                out.stats.packets_delivered += 1;
                let latency = now - pkt.injected_at;
                out.stats.total_packet_latency += latency;
                out.stats.total_hops += topo.hops(pkt.src, pkt.dst) as u64;
                let ci = crate::stats::class_index(pkt.class);
                out.stats.delivered_by_class[ci] += 1;
                out.stats.latency_by_class[ci] += latency;
            }
        } else if topo.out_link(router.node, dep.out).is_some() {
            // Express traversals are priced separately (longer wire);
            // the buffer write at the far end costs the same either way.
            if topo.express_span() > 0
                && matches!(
                    dep.out,
                    crate::topology::EXPRESS_EAST | crate::topology::EXPRESS_WEST
                )
            {
                out.stats.express_link_flits += 1;
            } else {
                out.stats.link_flits += 1;
            }
            out.stats.buffer_writes += 1;
        } else {
            // The commit pass drops this flit (no link to corrupt);
            // the counter keeps the conservation bug visible in release
            // builds where the debug assertion is compiled out.
            out.stats.routing_violations += 1;
        }
    }
}
