//! Network-level event counters for performance and energy accounting.

/// Counters accumulated by the network; the energy model multiplies these
/// by per-event energies (Orion-style).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetworkStats {
    /// Cycles simulated.
    pub cycles: u64,
    /// Packets injected.
    pub packets_injected: u64,
    /// Packets delivered.
    pub packets_delivered: u64,
    /// Flits traversing single-hop inter-router links.
    pub link_flits: u64,
    /// Flits traversing long-range express links (express-mesh only;
    /// priced separately — a span-`R` wire costs more per traversal).
    pub express_link_flits: u64,
    /// Flit writes into input buffers (injection + link arrival).
    pub buffer_writes: u64,
    /// Flit reads out of input buffers (switch traversal).
    pub buffer_reads: u64,
    /// Crossbar traversals.
    pub crossbar_flits: u64,
    /// Switch-allocation arbitration rounds that had at least one
    /// requester.
    pub arbitrations: u64,
    /// Requests that lost switch allocation (idling packets — the resource
    /// DISCO harvests).
    pub sa_losses: u64,
    /// Sum over delivered packets of (delivery − injection) cycles.
    pub total_packet_latency: u64,
    /// Sum of per-delivered-packet hop counts.
    pub total_hops: u64,
    /// Delivered packets by class (Request, Response, Coherence).
    pub delivered_by_class: [u64; 3],
    /// Summed end-to-end latency by class (same indexing).
    pub latency_by_class: [u64; 3],
    /// Flits a router tried to forward off the mesh edge. The commit pass
    /// drops such a flit rather than corrupt a neighbour that does not
    /// exist, so a non-zero count means flit conservation is broken — a
    /// routing-function bug, never a runtime condition.
    pub routing_violations: u64,
}

impl NetworkStats {
    /// Zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds another counter block into this one, field by field. The
    /// commit pass merges the per-router deltas of the compute phase in
    /// node order; u64 addition commutes, so the totals are identical
    /// for any shard count.
    pub fn accumulate(&mut self, delta: &NetworkStats) {
        self.cycles += delta.cycles;
        self.packets_injected += delta.packets_injected;
        self.packets_delivered += delta.packets_delivered;
        self.link_flits += delta.link_flits;
        self.express_link_flits += delta.express_link_flits;
        self.buffer_writes += delta.buffer_writes;
        self.buffer_reads += delta.buffer_reads;
        self.crossbar_flits += delta.crossbar_flits;
        self.arbitrations += delta.arbitrations;
        self.sa_losses += delta.sa_losses;
        self.total_packet_latency += delta.total_packet_latency;
        self.total_hops += delta.total_hops;
        for i in 0..3 {
            self.delivered_by_class[i] += delta.delivered_by_class[i];
            self.latency_by_class[i] += delta.latency_by_class[i];
        }
        self.routing_violations += delta.routing_violations;
    }

    /// Mean end-to-end packet latency in cycles.
    pub fn avg_packet_latency(&self) -> f64 {
        if self.packets_delivered == 0 {
            return 0.0;
        }
        self.total_packet_latency as f64 / self.packets_delivered as f64
    }

    /// Mean hops per delivered packet.
    pub fn avg_hops(&self) -> f64 {
        if self.packets_delivered == 0 {
            return 0.0;
        }
        self.total_hops as f64 / self.packets_delivered as f64
    }

    /// Mean end-to-end latency of one packet class.
    pub fn avg_latency_of(&self, class: crate::packet::PacketClass) -> f64 {
        let i = class_index(class);
        if self.delivered_by_class[i] == 0 {
            return 0.0;
        }
        self.latency_by_class[i] as f64 / self.delivered_by_class[i] as f64
    }
}

/// Stable index of a packet class in the per-class arrays.
pub fn class_index(class: crate::packet::PacketClass) -> usize {
    match class {
        crate::packet::PacketClass::Request => 0,
        crate::packet::PacketClass::Response => 1,
        crate::packet::PacketClass::Coherence => 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn averages_handle_empty() {
        let s = NetworkStats::new();
        assert_eq!(s.avg_packet_latency(), 0.0);
        assert_eq!(s.avg_hops(), 0.0);
    }

    #[test]
    fn averages_divide() {
        let s = NetworkStats {
            packets_delivered: 4,
            total_packet_latency: 100,
            total_hops: 12,
            ..NetworkStats::new()
        };
        assert_eq!(s.avg_packet_latency(), 25.0);
        assert_eq!(s.avg_hops(), 3.0);
    }

    #[test]
    fn per_class_latency_divides() {
        use crate::packet::PacketClass;
        let mut s = NetworkStats::new();
        s.delivered_by_class[class_index(PacketClass::Response)] = 2;
        s.latency_by_class[class_index(PacketClass::Response)] = 60;
        assert_eq!(s.avg_latency_of(PacketClass::Response), 30.0);
        assert_eq!(s.avg_latency_of(PacketClass::Request), 0.0);
    }

    #[test]
    fn accumulate_sums_every_field() {
        let mut a = NetworkStats {
            cycles: 1,
            packets_injected: 2,
            packets_delivered: 3,
            link_flits: 4,
            express_link_flits: 13,
            buffer_writes: 5,
            buffer_reads: 6,
            crossbar_flits: 7,
            arbitrations: 8,
            sa_losses: 9,
            total_packet_latency: 10,
            total_hops: 11,
            delivered_by_class: [1, 2, 3],
            latency_by_class: [4, 5, 6],
            routing_violations: 12,
        };
        let b = a;
        a.accumulate(&b);
        assert_eq!(a.cycles, 2);
        assert_eq!(a.packets_injected, 4);
        assert_eq!(a.packets_delivered, 6);
        assert_eq!(a.link_flits, 8);
        assert_eq!(a.express_link_flits, 26);
        assert_eq!(a.buffer_writes, 10);
        assert_eq!(a.buffer_reads, 12);
        assert_eq!(a.crossbar_flits, 14);
        assert_eq!(a.arbitrations, 16);
        assert_eq!(a.sa_losses, 18);
        assert_eq!(a.total_packet_latency, 20);
        assert_eq!(a.total_hops, 22);
        assert_eq!(a.delivered_by_class, [2, 4, 6]);
        assert_eq!(a.latency_by_class, [8, 10, 12]);
        assert_eq!(a.routing_violations, 24);
    }

    #[test]
    fn latency_accumulators_are_64_bit() {
        // Regression guard for the accumulator widths: long runs with
        // fault-recovery retransmissions push per-class latency sums past
        // u32 range, so every cycle sum must be u64.
        let big = u64::from(u32::MAX) + 3;
        let mut a = NetworkStats {
            total_packet_latency: big,
            latency_by_class: [big, big, big],
            packets_delivered: 1,
            delivered_by_class: [1, 1, 1],
            ..NetworkStats::new()
        };
        let b = a;
        a.accumulate(&b);
        assert_eq!(a.total_packet_latency, 2 * big);
        assert_eq!(a.latency_by_class, [2 * big; 3]);
        assert_eq!(a.avg_packet_latency(), big as f64);
    }

    #[test]
    fn class_indices_are_distinct() {
        use crate::packet::PacketClass;
        let idx = [
            class_index(PacketClass::Request),
            class_index(PacketClass::Response),
            class_index(PacketClass::Coherence),
        ];
        let mut sorted = idx;
        sorted.sort_unstable();
        assert_eq!(sorted, [0, 1, 2]);
    }
}

disco_snapshot::snap_fields!(NetworkStats {
    cycles,
    packets_injected,
    packets_delivered,
    link_flits,
    express_link_flits,
    buffer_writes,
    buffer_reads,
    crossbar_flits,
    arbitrations,
    sa_losses,
    total_packet_latency,
    total_hops,
    delivered_by_class,
    latency_by_class,
    routing_violations,
});
