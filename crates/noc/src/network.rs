//! The cycle-stepped network: routers, links, NI injection/ejection, and
//! the extension API the DISCO layer drives.

use crate::config::{FlowControl, NocConfig};
use crate::packet::{flit_at, Packet, PacketClass, PacketId, PacketStore, Payload};
use crate::phase::{ComputeScratch, RouterOutcome};
use crate::router::Router;
use crate::stats::NetworkStats;
use crate::topology::{NodeId, PortId, Topology, TopologySpec};
use std::collections::VecDeque;
use std::sync::Mutex;

/// One shard's reusable compute arena: the outcome slots for the
/// shard's contiguous router range plus the RC/VA/SA scratch space.
/// Allocations grow to their high-water mark once and are reused every
/// cycle afterwards — the steady-state compute phase allocates nothing.
///
/// The `Mutex` is uncontended by construction (shards are disjoint and
/// each worker touches only its own slot); it exists to make the
/// hand-off to worker threads safe in the type system without putting
/// any interior mutability into the pure compute code itself.
#[derive(Debug, Default)]
pub(crate) struct ShardSlot {
    /// One outcome per router in this shard's span, in node order.
    pub(crate) outcomes: Vec<RouterOutcome>,
    /// Overlay + candidate arenas reused across the shard's routers.
    pub(crate) scratch: ComputeScratch,
}

/// Maximum packet size in flits: an uncompressed 64 B payload.
pub const MAX_PACKET_FLITS: usize = disco_compress::LINE_BYTES / crate::packet::FLIT_BYTES;

/// In-progress injection of one packet at a node's NI.
#[derive(Debug, Clone, Copy)]
struct InjectProgress {
    packet: PacketId,
    sent: usize,
    total: usize,
}

/// The network, over any [`Topology`].
///
/// ```
/// use disco_noc::{Network, NocConfig};
/// use disco_noc::topology::{Mesh, NodeId};
/// use disco_noc::packet::{PacketClass, Payload};
///
/// let mut net = Network::new(Mesh::new(4, 4), NocConfig::default());
/// net.send(NodeId(0), NodeId(15), PacketClass::Request, Payload::None, false, 7);
/// while net.take_delivered(NodeId(15)).is_empty() {
///     net.tick();
///     assert!(net.now() < 1_000, "packet must arrive");
/// }
/// ```
#[derive(Debug)]
pub struct Network {
    pub(crate) topology: Topology,
    pub(crate) config: NocConfig,
    pub(crate) routers: Vec<Router>,
    pub(crate) store: PacketStore,
    /// Per-tile, per-VC injection queues.
    inject_q: Vec<Vec<VecDeque<PacketId>>>,
    /// Per-tile in-flight injection (one NI port, one packet at a time
    /// per VC).
    inject_progress: Vec<Vec<Option<InjectProgress>>>,
    /// Round-robin over VCs for the single NI injection port.
    inject_rr: Vec<usize>,
    /// Packets fully ejected at each tile, awaiting pickup.
    pub(crate) delivered: Vec<Vec<PacketId>>,
    pub(crate) stats: NetworkStats,
    pub(crate) now: u64,
    /// Per-shard compute arenas, taken out of `self` for the duration of
    /// each tick's compute + commit so the phases can borrow the network
    /// and the slots independently. Length equals the shard count.
    scratch: Vec<Mutex<ShardSlot>>,
    /// Worker count for the compute phase, resolved once at build time
    /// from [`NocConfig::compute_shards`] and the host.
    #[cfg(feature = "parallel")]
    shards: usize,
    /// Persistent compute workers (`shards - 1` parked threads), spawned
    /// once at construction. `None` when one shard suffices — the serial
    /// path must not pay any pool cost, not even an idle thread.
    #[cfg(feature = "parallel")]
    pool: Option<crate::pool::WorkerPool>,
    /// Cycle-stamped trace event collector. Fed only from the serial
    /// paths (NI injection, the commit pass), so its byte stream is
    /// independent of the compute-phase shard count.
    #[cfg(feature = "trace")]
    pub(crate) tracer: disco_trace::Tracer,
    /// Commit-side fault injection/recovery state, present only while a
    /// plan with a non-zero schedule is installed
    /// ([`Network::set_fault_plan`]).
    #[cfg(feature = "faults")]
    pub(crate) faults: Option<crate::faults::FaultCtx>,
}

/// Resolves [`NocConfig::compute_shards`] against the host and network
/// size. Auto mode (`0`) engages threads only when each worker gets a
/// meaningful slice of routers; scoped-thread spawn overhead dwarfs the
/// per-cycle compute of a small network.
#[cfg(feature = "parallel")]
fn effective_shards(requested: usize, routers: usize) -> usize {
    const MIN_ROUTERS_PER_SHARD: usize = 16;
    match requested {
        0 => {
            let cores = std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1);
            cores.min(routers / MIN_ROUTERS_PER_SHARD).max(1)
        }
        n => n.min(routers.max(1)),
    }
}

impl Network {
    /// Builds an idle network over `spec`'s topology.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid, if a non-wormhole flow
    /// control is paired with buffers too small to hold a whole packet
    /// (§3.3-A requires whole-packet residency for VCT/SAF), or if the
    /// topology's dateline discipline needs more VCs than configured
    /// ([`Topology::min_vcs`]).
    pub fn new(spec: impl TopologySpec, config: NocConfig) -> Self {
        config.validate();
        if config.flow_control != FlowControl::Wormhole {
            assert!(
                config.buffer_depth >= MAX_PACKET_FLITS,
                "VCT/SAF need buffer_depth >= {MAX_PACKET_FLITS} to hold a whole packet"
            );
        }
        let topology = spec.build();
        assert!(
            config.vcs >= topology.min_vcs(),
            "{} needs at least {} virtual channels for its dateline discipline, got {}",
            topology.name(),
            topology.min_vcs(),
            config.vcs
        );
        let routers = topology.routers();
        let tiles = topology.tiles();
        #[cfg(feature = "parallel")]
        let shards = effective_shards(config.compute_shards, routers);
        #[cfg(not(feature = "parallel"))]
        let shards = 1;
        let radix = topology.radix();
        let link_ports = topology.link_ports();
        Network {
            topology,
            config,
            routers: (0..routers)
                .map(|i| Router::new(NodeId(i), config, radix, link_ports))
                .collect(),
            store: PacketStore::new(),
            inject_q: vec![vec![VecDeque::new(); config.vcs]; tiles],
            inject_progress: vec![vec![None; config.vcs]; tiles],
            inject_rr: vec![0; tiles],
            delivered: vec![Vec::new(); tiles],
            stats: NetworkStats::new(),
            now: 0,
            scratch: (0..shards)
                .map(|_| Mutex::new(ShardSlot::default()))
                .collect(),
            #[cfg(feature = "parallel")]
            shards,
            #[cfg(feature = "parallel")]
            pool: if shards > 1 {
                Some(crate::pool::WorkerPool::new(shards - 1))
            } else {
                None
            },
            #[cfg(feature = "trace")]
            tracer: disco_trace::Tracer::default(),
            #[cfg(feature = "faults")]
            faults: None,
        }
    }

    /// The number of workers the compute phase fans out over. Always `1`
    /// in serial builds; under the `parallel` feature it is resolved
    /// from [`NocConfig::compute_shards`]. The DISCO layer reuses it for
    /// its own candidate scan.
    pub fn compute_shards(&self) -> usize {
        #[cfg(feature = "parallel")]
        {
            self.shards
        }
        #[cfg(not(feature = "parallel"))]
        {
            1
        }
    }

    /// Number of live pool worker threads. `0` whenever one shard
    /// suffices: the serial path never spins up a pool (pinned by
    /// `tests/determinism.rs`).
    pub fn pool_workers(&self) -> usize {
        #[cfg(feature = "parallel")]
        {
            self.pool.as_ref().map_or(0, |p| p.workers())
        }
        #[cfg(not(feature = "parallel"))]
        {
            0
        }
    }

    /// The contiguous router range shard `shard` owns. Spans routers
    /// `0..n` in shard order, which is what lets the commit pass
    /// walk shard slots sequentially and still visit nodes in order.
    pub fn shard_span(&self, shard: usize) -> std::ops::Range<usize> {
        let n = self.routers.len();
        let chunk = n.div_ceil(self.compute_shards().max(1));
        let start = (shard * chunk).min(n);
        start..(start + chunk).min(n)
    }

    /// Runs `task(shard)` for every shard index, on the persistent pool
    /// when one exists (shard 0 on the calling thread, the rest on
    /// parked workers) and inline otherwise. The DISCO layer reuses this
    /// for its candidate scan so both phases share one worker set.
    pub fn run_sharded(&self, task: &(dyn Fn(usize) + Sync)) {
        #[cfg(feature = "parallel")]
        if let Some(pool) = &self.pool {
            pool.run(task);
            return;
        }
        task(0);
    }

    /// Current cycle.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// The network's topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The configuration.
    pub fn config(&self) -> &NocConfig {
        &self.config
    }

    /// Accumulated event counters.
    pub fn stats(&self) -> &NetworkStats {
        &self.stats
    }

    /// Read access to the trace event collector.
    #[cfg(feature = "trace")]
    pub fn tracer(&self) -> &disco_trace::Tracer {
        &self.tracer
    }

    /// Mutable access to the trace collector: harnesses drain it once
    /// per cycle for lossless capture.
    #[cfg(feature = "trace")]
    pub fn tracer_mut(&mut self) -> &mut disco_trace::Tracer {
        &mut self.tracer
    }

    /// Records one event at the current cycle — the sink surface
    /// [`disco_trace::emit!`] uses from the layers above the NoC
    /// (codec engines, endpoint codecs).
    #[cfg(feature = "trace")]
    pub fn trace_record(&mut self, event: disco_trace::Event) {
        self.tracer.trace_record(event);
    }

    /// Re-bounds the trace ring buffer (drop-oldest beyond `capacity`).
    #[cfg(feature = "trace")]
    pub fn set_trace_capacity(&mut self, capacity: usize) {
        self.tracer.set_capacity(capacity);
    }

    /// Test-only mutable counters (e.g. staging a routing violation for
    /// the health-check diagnostics).
    #[cfg(test)]
    pub(crate) fn stats_mut(&mut self) -> &mut NetworkStats {
        &mut self.stats
    }

    /// The central packet store.
    pub fn store(&self) -> &PacketStore {
        &self.store
    }

    /// Mutable packet store (the DISCO layer swaps payloads here).
    pub fn store_mut(&mut self) -> &mut PacketStore {
        &mut self.store
    }

    /// Read access to a router (extension API).
    pub fn router(&self, node: NodeId) -> &Router {
        &self.routers[node.0]
    }

    /// Write access to a router (extension API: locking VCs).
    pub fn router_mut(&mut self, node: NodeId) -> &mut Router {
        &mut self.routers[node.0]
    }

    /// Enqueues a packet for injection at tile `src`'s NI. Returns its id.
    pub fn send(
        &mut self,
        src: NodeId,
        dst: NodeId,
        class: PacketClass,
        payload: Payload,
        compressible: bool,
        tag: u64,
    ) -> PacketId {
        let id = self
            .store
            .create(src, dst, class, payload, compressible, self.now, tag);
        // Balance injection across the class's VC group. `validate()`
        // guarantees at least one VC, so the group is never empty and the
        // fallback VC 0 is unreachable.
        let vc = class
            .vc_range(self.config.vcs)
            .min_by_key(|&v| self.inject_q[src.0][v].len())
            .unwrap_or(0);
        self.inject_q[src.0][vc].push_back(id);
        self.stats.packets_injected += 1;
        disco_trace::emit!(
            self.tracer,
            disco_trace::Event::Inject {
                packet: id.0,
                src: src.0 as u16,
                dst: dst.0 as u16,
                class: crate::stats::class_index(class) as u8,
                flits: self.store.get(id).size_flits() as u8,
            }
        );
        #[cfg(feature = "faults")]
        if let Some(ctx) = self.faults.as_mut() {
            ctx.on_send(id, &self.store);
        }
        id
    }

    /// Packets fully delivered at tile `node` since the last call,
    /// removed from the store.
    pub fn take_delivered(&mut self, node: NodeId) -> Vec<Packet> {
        let ids = std::mem::take(&mut self.delivered[node.0]);
        ids.into_iter().map(|id| self.store.remove(id)).collect()
    }

    /// True when no packet is queued, in flight, or awaiting pickup, and
    /// no fault recovery (retransmission, in-progress drop) is pending.
    pub fn is_idle(&self) -> bool {
        #[cfg(feature = "faults")]
        if let Some(ctx) = &self.faults {
            if !ctx.quiescent() {
                return false;
            }
        }
        self.store.is_empty()
            && self.routers.iter().all(|r| r.total_buffered() == 0)
            && self.inject_q.iter().flatten().all(|q| q.is_empty())
    }

    /// Checks run-time invariants across every router: per-router state
    /// legality ([`Router::check_invariants`]) and credit conservation —
    /// on each link, the upstream credit count plus the downstream buffer
    /// occupancy never exceeds the buffer depth (strict equality does not
    /// hold because the extension API may hold credits mid-reshape).
    ///
    /// Always compiled; [`Network::tick`] calls it every cycle when the
    /// `validate` feature is enabled.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn check_invariants(&self) -> Result<(), String> {
        for r in &self.routers {
            r.check_invariants()?;
        }
        for node in 0..self.routers.len() {
            for port in 0..self.topology.link_ports() {
                let out = PortId(port);
                let Some((next, next_in)) = self.topology.out_link(NodeId(node), out) else {
                    continue;
                };
                for vc in 0..self.config.vcs {
                    let credits = self.routers[node].credit_in(out, vc);
                    let occupancy = self.routers[next.0].vc(next_in.0, vc).occupancy();
                    if credits + occupancy > self.config.buffer_depth {
                        return Err(format!(
                            "credit conservation violated on {}-{out}->{next} vc {vc}: \
                             {credits} credits + {occupancy} buffered > depth {}",
                            NodeId(node),
                            self.config.buffer_depth
                        ));
                    }
                }
            }
        }
        Ok(())
    }

    /// Advances the network one cycle: injection, then the pure compute
    /// phase (RC/VA/SA for every router over the cycle-start snapshot),
    /// then the node-ordered commit pass (switch/link traversal, credit
    /// returns, ejection). Flits delivered downstream become ready
    /// only after the pipeline delay, so a flit advances at most one hop
    /// per cycle regardless of commit order.
    pub fn tick(&mut self) {
        self.now += 1;
        self.stats.cycles += 1;
        #[cfg(feature = "trace")]
        self.tracer.set_cycle(self.now);
        #[cfg(feature = "faults")]
        crate::faults::drain_retransmits(self);
        self.inject();
        // Detach the arenas from `self` so the compute phase can borrow
        // the network immutably and the slots mutably at the same time.
        let mut slots = std::mem::take(&mut self.scratch);
        self.compute_phase(&mut slots);
        crate::commit::commit_cycle(self, &mut slots);
        self.scratch = slots;
        #[cfg(feature = "validate")]
        if let Err(msg) = self.check_invariants() {
            panic!("validate: cycle {}: {msg}", self.now);
        }
    }

    /// Runs [`crate::phase::compute_router`] for every router, writing
    /// into the reusable shard slots. Routers are disjoint state and the
    /// function is pure, so the sharded path fills bit-identical
    /// outcomes in the same node order.
    fn compute_phase(&self, slots: &mut [Mutex<ShardSlot>]) {
        #[cfg(feature = "parallel")]
        if self.shards > 1 {
            self.compute_phase_sharded(slots);
            return;
        }
        let gate = self.fault_gate();
        let slot = match slots[0].get_mut() {
            Ok(slot) => slot,
            Err(poisoned) => poisoned.into_inner(),
        };
        slot.outcomes
            .resize_with(self.routers.len(), RouterOutcome::default);
        for (i, router) in self.routers.iter().enumerate() {
            crate::phase::compute_router(
                router,
                self.now,
                &self.store,
                &self.topology,
                gate,
                &mut slot.scratch,
                &mut slot.outcomes[i],
            );
        }
    }

    /// Fans the per-router compute over the persistent pool: shard `s`
    /// computes its contiguous span into slot `s`. Shards are pinned to
    /// workers, so a slot's arena stays warm in one worker's cache
    /// across cycles.
    #[cfg(feature = "parallel")]
    fn compute_phase_sharded(&self, slots: &mut [Mutex<ShardSlot>]) {
        let now = self.now;
        let gate = self.fault_gate();
        let slots: &[Mutex<ShardSlot>] = slots;
        self.run_sharded(&|shard| {
            let span = self.shard_span(shard);
            // Uncontended by construction: worker `shard` is the only
            // thread that ever touches slot `shard` during a run.
            let mut slot = match slots[shard].lock() {
                Ok(slot) => slot,
                Err(poisoned) => poisoned.into_inner(),
            };
            let slot = &mut *slot;
            slot.outcomes
                .resize_with(span.len(), RouterOutcome::default);
            for (k, i) in span.enumerate() {
                crate::phase::compute_router(
                    &self.routers[i],
                    now,
                    &self.store,
                    &self.topology,
                    gate,
                    &mut slot.scratch,
                    &mut slot.outcomes[k],
                );
            }
        });
    }

    /// NI injection: one flit per tile per cycle, round-robin over VCs.
    /// Each tile owns one local port on its router (tiles and routers
    /// coincide except on the concentrated mesh).
    fn inject(&mut self) {
        for tile in 0..self.inject_q.len() {
            let vcs = self.config.vcs;
            let router = self.topology.router_of(NodeId(tile)).0;
            let local = self.topology.local_port(NodeId(tile)).0;
            let start = self.inject_rr[tile];
            for k in 0..vcs {
                let vc = (start + k) % vcs;
                if self.inject_progress[tile][vc].is_none() {
                    if let Some(&id) = self.inject_q[tile][vc].front() {
                        let total = self.store.get(id).size_flits();
                        self.inject_q[tile][vc].pop_front();
                        self.inject_progress[tile][vc] = Some(InjectProgress {
                            packet: id,
                            sent: 0,
                            total,
                        });
                        disco_trace::emit!(
                            self.tracer,
                            disco_trace::Event::NiStart {
                                packet: id.0,
                                node: tile as u16,
                            }
                        );
                    }
                }
                let Some(mut prog) = self.inject_progress[tile][vc] else {
                    continue;
                };
                if self.routers[router].free_slots(local, vc) == 0 {
                    continue;
                }
                let flit = flit_at(prog.packet, prog.sent, prog.total, self.now + 1);
                self.routers[router].accept(local, vc, flit);
                self.stats.buffer_writes += 1;
                prog.sent += 1;
                if prog.sent < prog.total {
                    self.inject_progress[tile][vc] = Some(prog);
                } else {
                    self.inject_progress[tile][vc] = None;
                    disco_trace::emit!(
                        self.tracer,
                        disco_trace::Event::NiDone {
                            packet: prog.packet.0,
                            node: tile as u16,
                        }
                    );
                }
                self.inject_rr[tile] = (vc + 1) % vcs;
                break; // one flit per tile per cycle
            }
        }
    }

    // ------------------------------------------------------------------
    // Extension API for in-network de/compression (used by disco-core).
    // ------------------------------------------------------------------

    /// Replaces the resident flits of one packet in a VC with `new_len`
    /// flits, adjusting upstream credits for the freed (or consumed)
    /// slots. Growth fails (returns `false`) when the buffer or the
    /// upstream credit window cannot absorb it.
    ///
    /// `finalize` stamps proper head/tail kinds; mid-compression reshapes
    /// leave the packet tail-less so it cannot be mistaken for complete.
    pub fn reshape_resident(
        &mut self,
        node: NodeId,
        port: usize,
        vc: usize,
        packet: PacketId,
        new_len: usize,
        finalize: bool,
    ) -> bool {
        let seg_len = self.routers[node.0].vc(port, vc).resident_of(packet);
        if seg_len == 0 {
            return false;
        }
        let upstream = if port < self.topology.link_ports() {
            self.topology.in_source(node, PortId(port))
        } else {
            None
        };
        if new_len > seg_len {
            let growth = new_len - seg_len;
            if self.routers[node.0].free_slots(port, vc) < growth {
                return false;
            }
            if let Some((up, up_out)) = upstream {
                if !self.routers[up.0].try_take_credits(up_out, vc, growth) {
                    return false;
                }
            }
        }
        let delta =
            self.routers[node.0].reshape_packet(port, vc, packet, new_len, finalize, self.now);
        if delta < 0 {
            if let Some((up, up_out)) = upstream {
                for _ in 0..(-delta) {
                    self.routers[up.0].return_credit(up_out, vc);
                }
            }
        }
        true
    }

    /// Packets waiting in a tile's NI injection queue for `vc` (none of
    /// them has started injecting — the in-flight packet is popped when
    /// injection begins). These are idle whole packets the DISCO layer
    /// may compress in place.
    pub fn inject_backlog(&self, node: NodeId, vc: usize) -> &VecDeque<PacketId> {
        &self.inject_q[node.0][vc]
    }

    /// The downstream free-slot count on the route of the front packet of
    /// `(node, port, vc)` — `credit_in{RC(packet)}` of Eq. (1)/(2). Returns
    /// `None` when the packet has no computed route yet.
    pub fn downstream_credits(&self, node: NodeId, port: usize, vc: usize) -> Option<usize> {
        let r = &self.routers[node.0];
        let dir = r.vc(port, vc).routed_port()?;
        if self.topology.is_local(dir) {
            return Some(usize::MAX / 2);
        }
        // Pressure is the best case over the class group's downstream VCs
        // (the packet may win any of them).
        let class = r
            .vc(port, vc)
            .front_packet()
            .map(|p| self.store.get(p).class)?;
        class
            .vc_range(self.config.vcs)
            .map(|v| r.credit_in(dir, v))
            .max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::flits_for;
    use crate::topology::{Mesh, Ring, TopologyChoice, Torus, EAST, WEST};
    use disco_compress::CacheLine;

    fn net(cols: usize, rows: usize) -> Network {
        Network::new(Mesh::new(cols, rows), NocConfig::default())
    }

    fn run_until_delivered(net: &mut Network, node: NodeId, limit: u64) -> Vec<Packet> {
        loop {
            let got = net.take_delivered(node);
            if !got.is_empty() {
                return got;
            }
            net.tick();
            assert!(net.now() < limit, "delivery deadline exceeded");
        }
    }

    #[test]
    fn single_flit_packet_crosses_mesh() {
        let mut n = net(4, 4);
        n.send(
            NodeId(0),
            NodeId(15),
            PacketClass::Request,
            Payload::None,
            false,
            9,
        );
        let got = run_until_delivered(&mut n, NodeId(15), 200);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].tag, 9);
        assert!(n.is_idle());
        assert_eq!(n.stats().packets_delivered, 1);
    }

    #[test]
    fn zero_load_latency_scales_with_hops() {
        // One hop vs six hops: latency difference ≈ 5 * per-hop cost.
        let mut a = net(4, 4);
        a.send(
            NodeId(0),
            NodeId(1),
            PacketClass::Request,
            Payload::None,
            false,
            0,
        );
        run_until_delivered(&mut a, NodeId(1), 100);
        let lat1 = a.stats().avg_packet_latency();

        let mut b = net(4, 4);
        b.send(
            NodeId(0),
            NodeId(15),
            PacketClass::Request,
            Payload::None,
            false,
            0,
        );
        run_until_delivered(&mut b, NodeId(15), 100);
        let lat6 = b.stats().avg_packet_latency();
        let per_hop = (lat6 - lat1) / 5.0;
        assert!(
            (per_hop - (NocConfig::default().pipeline_stages as f64)).abs() <= 1.0,
            "per-hop cost {per_hop} should be ≈ pipeline depth"
        );
    }

    #[test]
    fn response_packet_carries_eight_flits() {
        let mut n = net(2, 2);
        let line = CacheLine::from_u64_words([42; 8]);
        n.send(
            NodeId(0),
            NodeId(3),
            PacketClass::Response,
            Payload::Raw(line),
            true,
            0,
        );
        let got = run_until_delivered(&mut n, NodeId(3), 200);
        assert_eq!(got[0].size_flits(), 8);
        assert_eq!(n.stats().link_flits, 8 * 2); // 2 hops
        match &got[0].payload {
            Payload::Raw(l) => assert_eq!(*l, line),
            other => panic!("expected raw payload, got {other:?}"),
        }
    }

    #[test]
    fn many_packets_all_arrive() {
        let mut n = net(4, 4);
        let mut expected = vec![0usize; 16];
        for i in 0..16 {
            #[allow(clippy::needless_range_loop)]
            for j in 0..16 {
                if i != j {
                    n.send(
                        NodeId(i),
                        NodeId(j),
                        PacketClass::Request,
                        Payload::None,
                        false,
                        (i * 16 + j) as u64,
                    );
                    expected[j] += 1;
                }
            }
        }
        let mut got = vec![0usize; 16];
        for _ in 0..5_000 {
            n.tick();
            #[allow(clippy::needless_range_loop)]
            for j in 0..16 {
                got[j] += n.take_delivered(NodeId(j)).len();
            }
            if n.is_idle() {
                break;
            }
        }
        assert_eq!(got, expected);
        assert!(n.is_idle());
    }

    /// All-to-all traffic drains on every shipped topology at a 16-tile
    /// budget, with invariants checked each cycle — the end-to-end
    /// smoke test of the per-topology routing + dateline discipline.
    #[test]
    fn every_topology_delivers_all_to_all() {
        for choice in TopologyChoice::ALL {
            let topo = choice.build(4, 4);
            let config = NocConfig {
                vcs: topo.min_vcs().max(2),
                ..NocConfig::default()
            };
            let tiles = topo.tiles();
            let mut n = Network::new(topo, config);
            let mut expected = vec![0usize; tiles];
            for i in 0..tiles {
                #[allow(clippy::needless_range_loop)]
                for j in 0..tiles {
                    if i != j {
                        n.send(
                            NodeId(i),
                            NodeId(j),
                            PacketClass::Request,
                            Payload::None,
                            false,
                            (i * tiles + j) as u64,
                        );
                        expected[j] += 1;
                    }
                }
            }
            let mut got = vec![0usize; tiles];
            for _ in 0..10_000 {
                n.tick();
                n.check_invariants()
                    .unwrap_or_else(|e| panic!("{choice}: {e}"));
                #[allow(clippy::needless_range_loop)]
                for j in 0..tiles {
                    got[j] += n.take_delivered(NodeId(j)).len();
                }
                if n.is_idle() {
                    break;
                }
            }
            assert_eq!(got, expected, "{choice} must deliver everything");
            assert!(n.is_idle(), "{choice} must drain");
        }
    }

    /// Heavy multi-flit wormhole traffic on the wrap topologies: the
    /// regime where an un-datelined design would actually deadlock.
    #[test]
    fn wrap_topologies_drain_heavy_responses() {
        let legs: [(&str, Network); 2] = [
            (
                "ring",
                Network::new(Ring::new(16), NocConfig::low_buffer_ring()),
            ),
            (
                "torus",
                Network::new(
                    Torus::new(4, 4),
                    NocConfig {
                        vcs: 4,
                        ..NocConfig::default()
                    },
                ),
            ),
        ];
        for (name, mut n) in legs {
            let line = CacheLine::from_u64_words([7, 8, 9, 10, 11, 12, 13, 14]);
            for i in 0..16usize {
                for k in 0..4u64 {
                    // Wrap-heavy pattern: every destination is across
                    // the dateline from most sources.
                    let dst = NodeId((i + 11) % 16);
                    n.send(
                        NodeId(i),
                        dst,
                        PacketClass::Response,
                        Payload::Raw(line),
                        true,
                        k,
                    );
                }
            }
            let mut delivered = 0;
            for _ in 0..40_000 {
                n.tick();
                for j in 0..16 {
                    delivered += n.take_delivered(NodeId(j)).len();
                }
                if n.is_idle() {
                    break;
                }
            }
            assert_eq!(delivered, 64, "{name} must deliver everything");
            assert!(n.is_idle(), "{name} must drain — deadlock otherwise");
        }
    }

    #[test]
    #[should_panic(expected = "dateline")]
    fn ring_with_too_few_vcs_rejected() {
        let _ = Network::new(Ring::new(8), NocConfig::default()); // vcs 2 < 4
    }

    #[test]
    fn cmesh_tiles_map_to_shared_routers() {
        use crate::topology::ConcentratedMesh;
        let mut n = Network::new(ConcentratedMesh::new(2, 2, 4), NocConfig::default());
        // Tiles 0 and 1 share router 0; cross-router and same-router
        // deliveries both work.
        n.send(
            NodeId(0),
            NodeId(1),
            PacketClass::Request,
            Payload::None,
            false,
            1,
        );
        n.send(
            NodeId(2),
            NodeId(15),
            PacketClass::Request,
            Payload::None,
            false,
            2,
        );
        assert_eq!(run_until_delivered(&mut n, NodeId(1), 200).len(), 1);
        assert_eq!(run_until_delivered(&mut n, NodeId(15), 200).len(), 1);
        assert!(n.is_idle());
    }

    /// Sharding only changes scheduling of the pure compute phase, so
    /// every router's full state and every counter must match the
    /// single-shard run bit for bit, cycle by cycle.
    #[cfg(feature = "parallel")]
    #[test]
    fn sharded_compute_matches_serial() {
        let run = |shards: usize| {
            let config = NocConfig {
                compute_shards: shards,
                ..NocConfig::default()
            };
            let mut n = Network::new(Mesh::new(4, 4), config);
            let line = CacheLine::from_u64_words([3, 5, 7, 9, 11, 13, 15, 17]);
            for i in 0..16usize {
                n.send(
                    NodeId(i),
                    NodeId((i + 5) % 16),
                    PacketClass::Response,
                    Payload::Raw(line),
                    true,
                    i as u64,
                );
                n.send(
                    NodeId(i),
                    NodeId((i * 3 + 1) % 16),
                    PacketClass::Request,
                    Payload::None,
                    false,
                    i as u64,
                );
            }
            for _ in 0..400 {
                n.tick();
            }
            // Routers embed a copy of the config; mask the one field that
            // legitimately differs between runs so everything else must
            // match bit for bit.
            let routers = format!("{:?}", n.routers)
                .replace(&format!("compute_shards: {shards}"), "compute_shards: _");
            (format!("{:?}", n.stats()), routers)
        };
        let serial = run(1);
        assert_eq!(serial, run(4), "4 shards must be bit-exact");
        assert_eq!(serial, run(16), "one router per shard must be bit-exact");
    }

    #[test]
    fn invariants_hold_under_load() {
        let mut n = net(4, 4);
        let line = CacheLine::from_u64_words([1, 2, 3, 4, 5, 6, 7, 8]);
        for i in 0..16usize {
            n.send(
                NodeId(i),
                NodeId((i + 7) % 16),
                PacketClass::Response,
                Payload::Raw(line),
                true,
                i as u64,
            );
            n.send(
                NodeId(i),
                NodeId((i + 3) % 16),
                PacketClass::Request,
                Payload::None,
                false,
                0,
            );
        }
        for _ in 0..2_000 {
            n.tick();
            n.check_invariants().expect("invariants hold every cycle");
            for j in 0..16 {
                let _ = n.take_delivered(NodeId(j));
            }
            if n.is_idle() {
                break;
            }
        }
        assert!(n.is_idle(), "network must drain");
    }

    #[test]
    fn heavy_response_traffic_drains() {
        let mut n = net(4, 4);
        let line = CacheLine::from_u64_words([7, 8, 9, 10, 11, 12, 13, 14]);
        for i in 0..16usize {
            for k in 0..4u64 {
                let dst = NodeId((i + 5) % 16);
                n.send(
                    NodeId(i),
                    dst,
                    PacketClass::Response,
                    Payload::Raw(line),
                    true,
                    k,
                );
            }
        }
        let mut delivered = 0;
        for _ in 0..20_000 {
            n.tick();
            for j in 0..16 {
                delivered += n.take_delivered(NodeId(j)).len();
            }
            if n.is_idle() {
                break;
            }
        }
        assert_eq!(delivered, 64);
        assert!(n.is_idle(), "network must drain");
        assert!(n.stats().sa_losses > 0, "contention must appear under load");
    }

    #[test]
    fn vct_requires_deep_buffers() {
        let config = NocConfig {
            flow_control: FlowControl::VirtualCutThrough,
            buffer_depth: 9,
            ..NocConfig::default()
        };
        let mut n = Network::new(Mesh::new(3, 3), config);
        let line = CacheLine::zeroed();
        n.send(
            NodeId(0),
            NodeId(8),
            PacketClass::Response,
            Payload::Raw(line),
            true,
            0,
        );
        let got = run_until_delivered(&mut n, NodeId(8), 500);
        assert_eq!(got.len(), 1);
    }

    #[test]
    #[should_panic(expected = "whole packet")]
    fn vct_with_shallow_buffers_rejected() {
        let config = NocConfig {
            flow_control: FlowControl::VirtualCutThrough,
            buffer_depth: 4, // < 8-flit whole packets
            ..NocConfig::default()
        };
        let _ = Network::new(Mesh::new(2, 2), config);
    }

    #[test]
    fn saf_delivers_whole_packets() {
        let config = NocConfig {
            flow_control: FlowControl::StoreAndForward,
            buffer_depth: 12,
            ..NocConfig::default()
        };
        let mut n = Network::new(Mesh::new(3, 3), config);
        let line = CacheLine::from_u64_words([1, 2, 3, 4, 5, 6, 7, 8]);
        n.send(
            NodeId(0),
            NodeId(8),
            PacketClass::Response,
            Payload::Raw(line),
            true,
            0,
        );
        let got = run_until_delivered(&mut n, NodeId(8), 1000);
        assert_eq!(got.len(), 1);
        match &got[0].payload {
            Payload::Raw(l) => assert_eq!(*l, line),
            other => panic!("expected raw payload, got {other:?}"),
        }
    }

    #[test]
    fn compressed_payload_uses_fewer_flits() {
        use disco_compress::{scheme::Compressor, Codec};
        let codec = Codec::delta();
        let line = CacheLine::from_u64_words([100, 101, 102, 103, 104, 105, 106, 107]);
        let enc = codec.compress(&line);
        let mut n = net(2, 2);
        n.send(
            NodeId(0),
            NodeId(3),
            PacketClass::Response,
            Payload::Compressed(enc.clone()),
            true,
            0,
        );
        let got = run_until_delivered(&mut n, NodeId(3), 200);
        assert_eq!(got[0].size_flits(), enc.size_bytes().div_ceil(8));
        assert!(got[0].size_flits() < 8);
    }

    #[test]
    fn reshape_resident_returns_credits_upstream() {
        // Manually stage a 8-flit response resident in a router's West input
        // and shrink it; the western neighbour must get its credits back.
        let mut n = net(2, 1);
        let line = CacheLine::zeroed();
        let id = n.store_mut().create(
            NodeId(0),
            NodeId(1),
            PacketClass::Response,
            Payload::Raw(line),
            true,
            0,
            0,
        );
        // Flits sit in node 1's West input port (arrived from node 0).
        let west = WEST.0;
        for f in flits_for(id, 8, 0) {
            n.router_mut(NodeId(1)).accept(west, 1, f);
        }
        // Simulate node 0 having spent 8 credits sending them.
        for _ in 0..8 {
            assert!(n.router_mut(NodeId(0)).try_take_credits(EAST, 1, 1));
        }
        assert_eq!(n.router(NodeId(0)).credit_in(EAST, 1), 0);
        assert!(n.reshape_resident(NodeId(1), west, 1, id, 2, true));
        assert_eq!(n.router(NodeId(0)).credit_in(EAST, 1), 6);
        assert_eq!(n.router(NodeId(1)).vc(west, 1).occupancy(), 2);
    }

    #[test]
    fn reshape_growth_requires_credits() {
        let mut n = net(2, 1);
        let id = n.store_mut().create(
            NodeId(0),
            NodeId(1),
            PacketClass::Response,
            Payload::Raw(CacheLine::zeroed()),
            true,
            0,
            0,
        );
        let west = WEST.0;
        for f in flits_for(id, 2, 0) {
            n.router_mut(NodeId(1)).accept(west, 1, f);
        }
        // Upstream thinks 6 slots are free (8 - 2 in transit history is not
        // modelled here; fresh router has full credits). Take all credits.
        assert!(n.router_mut(NodeId(0)).try_take_credits(EAST, 1, 8));
        assert!(
            !n.reshape_resident(NodeId(1), west, 1, id, 8, true),
            "growth without upstream credit window must fail"
        );
        // Return credits; now growth succeeds.
        for _ in 0..8 {
            n.router_mut(NodeId(0)).return_credit(EAST, 1);
        }
        assert!(n.reshape_resident(NodeId(1), west, 1, id, 8, true));
        assert_eq!(n.router(NodeId(0)).credit_in(EAST, 1), 2);
    }
}

// ---------------------------------------------------------------------------
// Checkpointing (see crates/snapshot/manifest.txt)
// ---------------------------------------------------------------------------

disco_snapshot::snap_fields!(InjectProgress {
    packet,
    sent,
    total,
});

impl Network {
    /// Writes the network's complete mutable state: every router's VC
    /// arenas and credits, the packet store, the NI injection queues,
    /// delivery queues, counters, and (when the features are on) the
    /// trace ring and the fault-recovery ledger. The topology, config,
    /// and the parallel compute arenas (`scratch`, `shards`, `pool`) are
    /// rebuilt from config on restore.
    pub fn snap_state(&self, w: &mut disco_snapshot::Writer) {
        w.put(&(self.routers.len() as u64));
        for router in &self.routers {
            router.snap_state(w);
        }
        self.store.snap_state(w);
        w.put(&self.inject_q);
        w.put(&self.inject_progress);
        w.put(&self.inject_rr);
        w.put(&self.delivered);
        w.put(&self.stats);
        w.put(&self.now);
        #[cfg(feature = "trace")]
        w.put(&self.tracer);
        #[cfg(feature = "faults")]
        {
            w.put(&self.faults.is_some());
            if let Some(ctx) = &self.faults {
                ctx.snap_state(w);
            }
        }
    }

    /// Overlays state written by [`Network::snap_state`] onto a network
    /// freshly built over the same topology and config (including an
    /// armed fault plan when the snapshot carries fault state).
    pub fn restore_state(
        &mut self,
        r: &mut disco_snapshot::Reader<'_>,
    ) -> Result<(), disco_snapshot::SnapError> {
        let n: u64 = r.take()?;
        if n as usize != self.routers.len() {
            return Err(disco_snapshot::malformed(format!(
                "{n} routers in snapshot, {} in rebuilt network (topology mismatch)",
                self.routers.len()
            )));
        }
        for router in &mut self.routers {
            router.restore_state(r)?;
        }
        self.store.restore_state(r)?;
        let inject_q: Vec<Vec<VecDeque<PacketId>>> = r.take()?;
        if inject_q.len() != self.inject_q.len() {
            return Err(disco_snapshot::malformed(format!(
                "{} injection queues in snapshot, {} rebuilt",
                inject_q.len(),
                self.inject_q.len()
            )));
        }
        self.inject_q = inject_q;
        self.inject_progress = r.take()?;
        self.inject_rr = r.take()?;
        self.delivered = r.take()?;
        self.stats = r.take()?;
        self.now = r.take()?;
        #[cfg(feature = "trace")]
        {
            self.tracer = r.take()?;
        }
        #[cfg(feature = "faults")]
        {
            let has_faults: bool = r.take()?;
            match (&mut self.faults, has_faults) {
                (Some(ctx), true) => ctx.restore_state(r)?,
                (None, false) => {}
                (have, want) => {
                    return Err(disco_snapshot::malformed(format!(
                        "snapshot fault state present={want}, rebuilt network armed={}",
                        have.is_some()
                    )))
                }
            }
        }
        Ok(())
    }
}
