//! Mesh topology: node identifiers, coordinates, and port directions.

use std::fmt;

/// Identifies a tile/router in the mesh, numbered row-major from the
/// north-west corner.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A router port direction. `Local` is the NI injection/ejection port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Toward row − 1.
    North,
    /// Toward row + 1.
    South,
    /// Toward column + 1.
    East,
    /// Toward column − 1.
    West,
    /// The tile's network interface.
    Local,
}

impl Direction {
    /// All five port directions.
    pub const ALL: [Direction; 5] = [
        Direction::North,
        Direction::South,
        Direction::East,
        Direction::West,
        Direction::Local,
    ];

    /// Port index (0..5).
    pub fn index(self) -> usize {
        match self {
            Direction::North => 0,
            Direction::South => 1,
            Direction::East => 2,
            Direction::West => 3,
            Direction::Local => 4,
        }
    }

    /// The direction a flit sent out this way arrives *from* at the
    /// neighbouring router.
    ///
    /// # Panics
    ///
    /// Panics for [`Direction::Local`], which has no opposite.
    pub fn opposite(self) -> Direction {
        match self {
            Direction::North => Direction::South,
            Direction::South => Direction::North,
            Direction::East => Direction::West,
            Direction::West => Direction::East,
            Direction::Local => panic!("local port has no opposite"),
        }
    }
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Direction::North => "N",
            Direction::South => "S",
            Direction::East => "E",
            Direction::West => "W",
            Direction::Local => "L",
        };
        f.write_str(s)
    }
}

/// A `cols × rows` 2-D mesh.
///
/// ```
/// use disco_noc::topology::{Direction, Mesh, NodeId};
///
/// let mesh = Mesh::new(4, 4);
/// assert_eq!(mesh.nodes(), 16);
/// assert_eq!(mesh.coords(NodeId(5)), (1, 1));
/// assert_eq!(mesh.neighbor(NodeId(5), Direction::East), Some(NodeId(6)));
/// assert_eq!(mesh.neighbor(NodeId(0), Direction::North), None);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mesh {
    cols: usize,
    rows: usize,
}

impl Mesh {
    /// Creates a mesh.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(cols: usize, rows: usize) -> Self {
        assert!(cols > 0 && rows > 0, "mesh dimensions must be positive");
        Mesh { cols, rows }
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Total node count.
    pub fn nodes(&self) -> usize {
        self.cols * self.rows
    }

    /// `(col, row)` of a node.
    ///
    /// # Panics
    ///
    /// Panics if the node is out of range.
    pub fn coords(&self, node: NodeId) -> (usize, usize) {
        assert!(node.0 < self.nodes(), "node {node} outside mesh");
        (node.0 % self.cols, node.0 / self.cols)
    }

    /// Node at `(col, row)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of range.
    pub fn node_at(&self, col: usize, row: usize) -> NodeId {
        assert!(
            col < self.cols && row < self.rows,
            "coordinates outside mesh"
        );
        NodeId(row * self.cols + col)
    }

    /// The neighbour in a direction, or `None` at the mesh edge or for
    /// [`Direction::Local`].
    pub fn neighbor(&self, node: NodeId, dir: Direction) -> Option<NodeId> {
        let (c, r) = self.coords(node);
        let (nc, nr) = match dir {
            Direction::North => (c, r.checked_sub(1)?),
            Direction::South => (c, r + 1),
            Direction::East => (c + 1, r),
            Direction::West => (c.checked_sub(1)?, r),
            Direction::Local => return None,
        };
        (nc < self.cols && nr < self.rows).then(|| self.node_at(nc, nr))
    }

    /// Manhattan hop distance between two nodes.
    pub fn hops(&self, a: NodeId, b: NodeId) -> usize {
        let (ac, ar) = self.coords(a);
        let (bc, br) = self.coords(b);
        ac.abs_diff(bc) + ar.abs_diff(br)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coords_roundtrip() {
        let mesh = Mesh::new(4, 3);
        for n in 0..mesh.nodes() {
            let (c, r) = mesh.coords(NodeId(n));
            assert_eq!(mesh.node_at(c, r), NodeId(n));
        }
    }

    #[test]
    fn neighbors_at_edges() {
        let mesh = Mesh::new(3, 3);
        assert_eq!(mesh.neighbor(NodeId(0), Direction::West), None);
        assert_eq!(mesh.neighbor(NodeId(0), Direction::North), None);
        assert_eq!(mesh.neighbor(NodeId(8), Direction::East), None);
        assert_eq!(mesh.neighbor(NodeId(8), Direction::South), None);
        assert_eq!(mesh.neighbor(NodeId(4), Direction::North), Some(NodeId(1)));
        assert_eq!(mesh.neighbor(NodeId(4), Direction::Local), None);
    }

    #[test]
    fn neighbor_symmetry() {
        let mesh = Mesh::new(4, 4);
        for n in 0..mesh.nodes() {
            for dir in [
                Direction::North,
                Direction::South,
                Direction::East,
                Direction::West,
            ] {
                if let Some(m) = mesh.neighbor(NodeId(n), dir) {
                    assert_eq!(mesh.neighbor(m, dir.opposite()), Some(NodeId(n)));
                }
            }
        }
    }

    #[test]
    fn hops_is_manhattan() {
        let mesh = Mesh::new(4, 4);
        assert_eq!(mesh.hops(NodeId(0), NodeId(15)), 6);
        assert_eq!(mesh.hops(NodeId(5), NodeId(5)), 0);
        assert_eq!(mesh.hops(NodeId(0), NodeId(3)), 3);
    }

    #[test]
    #[should_panic(expected = "dimensions must be positive")]
    fn zero_mesh_rejected() {
        let _ = Mesh::new(0, 4);
    }

    #[test]
    fn direction_indices_are_dense() {
        let mut seen = [false; 5];
        for d in Direction::ALL {
            seen[d.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
