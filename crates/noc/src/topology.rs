//! Graph-described topologies: node identifiers, per-router port
//! tables, and the builders for every shipped network shape.
//!
//! Topology is **data, not code**: a [`Topology`] is a pair of link
//! tables — `out_links[(router, port)] → (downstream router, its input
//! port)` and `in_sources[(router, port)] → (upstream router, its
//! output port)` — plus a little per-kind geometry the routing
//! functions use. Every router of a topology has the same `radix`;
//! ports `0..link_ports` face other routers (a missing link is `None`,
//! e.g. at a mesh edge), ports `link_ports..radix` are the local NI
//! injection/ejection ports of the tiles concentrated on that router.
//!
//! The shipped shapes:
//!
//! | kind | radix | links | notes |
//! |---|---|---|---|
//! | [`Mesh`] | 5 | N0 S1 E2 W3 | the paper's k×k baseline |
//! | [`Ring`] | 3 | CW0 CCW1 | low-buffer ring router (arxiv 2007.02242) |
//! | [`HierarchicalRing`] | 3 | LCW0 GCW1 | unidirectional local rings + a global ring over hubs |
//! | [`Torus`] | 5 | N0 S1 E2 W3 | wraparound mesh; dateline VCs for deadlock freedom |
//! | [`ConcentratedMesh`] | 4+c | N0 S1 E2 W3 | c tiles share each router |
//! | [`ExpressMesh`] | 7 | N0 S1 E2 W3 XE4 XW5 | mesh + span-`R` express ("Ruche") row links |
//!
//! Port reversal is **total**: [`Topology::opposite`] returns `Option`
//! and never panics — a local port or a dead link is simply `None`.
//! Unidirectional links (the hierarchical ring) are why the two tables
//! are separate; for bidirectional shapes they mirror each other.

use std::fmt;

/// Identifies a tile (core + NI) in the network, and — for every
/// topology except the concentrated mesh, where `concentration` tiles
/// share a router — equivalently a router. Router-indexed APIs say so
/// explicitly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A router port index in `0..radix`. Dense per topology: ports
/// `0..link_ports` are inter-router links, the rest are local NI ports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PortId(pub usize);

impl fmt::Display for PortId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Canonical mesh/torus/cmesh port: toward row − 1.
pub const NORTH: PortId = PortId(0);
/// Canonical mesh/torus/cmesh port: toward row + 1.
pub const SOUTH: PortId = PortId(1);
/// Canonical mesh/torus/cmesh port: toward column + 1.
pub const EAST: PortId = PortId(2);
/// Canonical mesh/torus/cmesh port: toward column − 1.
pub const WEST: PortId = PortId(3);
/// Canonical ring/hring port: clockwise around the (local) ring.
pub const CLOCKWISE: PortId = PortId(0);
/// Canonical ring port: counter-clockwise.
pub const COUNTER_CLOCKWISE: PortId = PortId(1);
/// Canonical hring port: clockwise around the global hub ring.
pub const GLOBAL_CLOCKWISE: PortId = PortId(1);
/// Express-mesh long-range port: toward column + span.
pub const EXPRESS_EAST: PortId = PortId(4);
/// Express-mesh long-range port: toward column − span.
pub const EXPRESS_WEST: PortId = PortId(5);

/// Which family a [`Topology`] belongs to; routing and deadlock
/// avoidance dispatch on this.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TopologyKind {
    /// 2-D mesh (the paper's baseline).
    Mesh,
    /// Single bidirectional ring.
    Ring,
    /// Unidirectional local rings joined by a unidirectional global
    /// ring over their hub routers.
    HierarchicalRing,
    /// 2-D torus (mesh with wraparound links).
    Torus,
    /// 2-D mesh with `concentration` tiles per router.
    ConcentratedMesh,
    /// 2-D mesh with additional span-`R` express ("Ruche") links along
    /// each row.
    ExpressMesh,
}

/// A built network graph: uniform-radix routers, two link tables, and
/// the per-kind geometry routing needs. Construct one through a
/// [`TopologySpec`] builder such as [`Mesh::new`] or [`Ring::new`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topology {
    kind: TopologyKind,
    routers: usize,
    tiles: usize,
    radix: usize,
    link_ports: usize,
    concentration: usize,
    /// Router-grid columns (mesh/torus/cmesh), ring length (ring), or
    /// local-ring size (hring).
    cols: usize,
    /// Router-grid rows (mesh/torus/cmesh), 1 (ring), or ring count
    /// (hring).
    rows: usize,
    /// `[(router * radix) + port] → (downstream router, its input
    /// port)` for the link leaving `router` through `port`.
    out_links: Vec<Option<(NodeId, PortId)>>,
    /// `[(router * radix) + port] → (upstream router, its output
    /// port)` for the link feeding `router`'s input buffer on `port`.
    in_sources: Vec<Option<(NodeId, PortId)>>,
    /// Column span of the express-row links (0 for every kind without
    /// an express overlay).
    express_span: usize,
}

impl Topology {
    /// The topology family.
    pub fn kind(&self) -> TopologyKind {
        self.kind
    }

    /// Stable lower-case name (CLI/bench identifier).
    pub fn name(&self) -> &'static str {
        match self.kind {
            TopologyKind::Mesh => "mesh",
            TopologyKind::Ring => "ring",
            TopologyKind::HierarchicalRing => "hring",
            TopologyKind::Torus => "torus",
            TopologyKind::ConcentratedMesh => "cmesh",
            TopologyKind::ExpressMesh => "xmesh",
        }
    }

    /// Column span of the express-row links; 0 when the topology has no
    /// express overlay.
    pub fn express_span(&self) -> usize {
        self.express_span
    }

    /// Number of live express links (out-links on the express ports);
    /// the unit the express-channel area model charges per.
    pub fn express_link_count(&self) -> usize {
        if self.express_span == 0 {
            return 0;
        }
        (0..self.routers)
            .flat_map(|n| {
                [EXPRESS_EAST, EXPRESS_WEST]
                    .into_iter()
                    .filter(move |&p| self.out_links[n * self.radix + p.0].is_some())
            })
            .count()
    }

    /// Number of routers.
    pub fn routers(&self) -> usize {
        self.routers
    }

    /// Number of tiles (injection/ejection endpoints). Equals
    /// [`Topology::routers`] × concentration.
    pub fn tiles(&self) -> usize {
        self.tiles
    }

    /// Kept name from the mesh-only era: the tile count, which every
    /// traffic pattern and protocol layer addresses.
    pub fn nodes(&self) -> usize {
        self.tiles
    }

    /// Ports per router, local ports included.
    pub fn radix(&self) -> usize {
        self.radix
    }

    /// Ports `0..link_ports` face other routers.
    pub fn link_ports(&self) -> usize {
        self.link_ports
    }

    /// Tiles per router (1 for everything but the concentrated mesh).
    pub fn concentration(&self) -> usize {
        self.concentration
    }

    /// Router-grid columns; ring length for ring/hring kinds.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Router-grid rows; ring count for the hierarchical ring.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// True for a local (NI) port.
    pub fn is_local(&self, port: PortId) -> bool {
        port.0 >= self.link_ports
    }

    /// The router a tile's NI connects to.
    pub fn router_of(&self, tile: NodeId) -> NodeId {
        debug_assert!(tile.0 < self.tiles, "tile {tile} outside topology");
        NodeId(tile.0 / self.concentration)
    }

    /// The local port of `tile` at [`Topology::router_of`]`(tile)`.
    pub fn local_port(&self, tile: NodeId) -> PortId {
        debug_assert!(tile.0 < self.tiles, "tile {tile} outside topology");
        PortId(self.link_ports + tile.0 % self.concentration)
    }

    /// The tile ejected by `router`'s local `port`, or `None` for a
    /// link port.
    pub fn tile_at(&self, router: NodeId, port: PortId) -> Option<NodeId> {
        if !self.is_local(port) || port.0 >= self.radix {
            return None;
        }
        Some(NodeId(
            router.0 * self.concentration + (port.0 - self.link_ports),
        ))
    }

    /// The link leaving `router` through `port`: the downstream router
    /// and the *input* port the flit arrives on there. `None` for local
    /// ports and dead/absent links — total, never panics.
    pub fn out_link(&self, router: NodeId, port: PortId) -> Option<(NodeId, PortId)> {
        self.out_links[router.0 * self.radix + port.0]
    }

    /// The link feeding `router`'s input buffer on `port`: the upstream
    /// router and the *output* port it sends through. `None` for local
    /// ports and dead/absent links.
    pub fn in_source(&self, router: NodeId, port: PortId) -> Option<(NodeId, PortId)> {
        self.in_sources[router.0 * self.radix + port.0]
    }

    /// The far-end input port a flit sent from `router` through `port`
    /// arrives on — the total, panic-free replacement for the old
    /// `Direction::opposite`. `None` when nothing is attached.
    pub fn opposite(&self, router: NodeId, port: PortId) -> Option<PortId> {
        self.out_link(router, port).map(|(_, p)| p)
    }

    /// `(col, row)` of a router on the grid kinds; `(index, 0)` on a
    /// ring; `(position, ring)` on the hierarchical ring.
    pub fn coords(&self, router: NodeId) -> (usize, usize) {
        debug_assert!(router.0 < self.routers, "router {router} outside topology");
        (router.0 % self.cols, router.0 / self.cols)
    }

    /// Router at `(col, row)` (grid coordinates as in
    /// [`Topology::coords`]).
    pub fn node_at(&self, col: usize, row: usize) -> NodeId {
        debug_assert!(
            col < self.cols && row < self.rows,
            "coordinates outside topology"
        );
        NodeId(row * self.cols + col)
    }

    /// Hop count of the deterministic route between two *tiles* — the
    /// `RC_Hop` term of Eq. 2 and the per-packet `hops` statistic.
    /// Minimal for every kind except the hierarchical ring, whose
    /// unidirectional route is counted as actually taken.
    pub fn hops(&self, a: NodeId, b: NodeId) -> usize {
        let ra = self.router_of(a);
        let rb = self.router_of(b);
        match self.kind {
            TopologyKind::Mesh | TopologyKind::ConcentratedMesh => {
                let (ac, ar) = self.coords(ra);
                let (bc, br) = self.coords(rb);
                ac.abs_diff(bc) + ar.abs_diff(br)
            }
            TopologyKind::ExpressMesh => {
                // Greedy express-first X walk: an express hop is always
                // available while the remaining column distance ≥ span
                // (the far end stays on the grid), so the X leg costs
                // dx/span express hops plus dx%span single hops.
                let (ac, ar) = self.coords(ra);
                let (bc, br) = self.coords(rb);
                let dx = ac.abs_diff(bc);
                dx / self.express_span + dx % self.express_span + ar.abs_diff(br)
            }
            TopologyKind::Ring => {
                let n = self.routers;
                let cw = (rb.0 + n - ra.0) % n;
                cw.min(n - cw)
            }
            TopologyKind::Torus => {
                let (ac, ar) = self.coords(ra);
                let (bc, br) = self.coords(rb);
                let ce = (bc + self.cols - ac) % self.cols;
                let rs = (br + self.rows - ar) % self.rows;
                ce.min(self.cols - ce) + rs.min(self.rows - rs)
            }
            TopologyKind::HierarchicalRing => {
                let l = self.cols;
                let (ag, ap) = (ra.0 / l, ra.0 % l);
                let (bg, bp) = (rb.0 / l, rb.0 % l);
                if ag == bg {
                    (bp + l - ap) % l
                } else {
                    // CW to the hub, CW around the global ring, CW to
                    // the destination position.
                    (l - ap) % l + (bg + self.rows - ag) % self.rows + bp
                }
            }
        }
    }

    /// The fewest virtual channels this topology is deadlock-free
    /// with: the ring kinds and the torus need each message-class VC
    /// group split into a low/high dateline pair, so 4; the mesh
    /// family needs only the two-class split, so 1.
    pub fn min_vcs(&self) -> usize {
        match self.kind {
            TopologyKind::Ring | TopologyKind::HierarchicalRing | TopologyKind::Torus => 4,
            TopologyKind::Mesh | TopologyKind::ConcentratedMesh | TopologyKind::ExpressMesh => 1,
        }
    }

    /// Builds a topology from raw dimensions and a closure emitting the
    /// outgoing link of each `(router, port)`, then derives and
    /// cross-checks the reverse table (every link's endpoints must be in
    /// range, no two links may feed one input port). This is how every
    /// shipped shape is built, and it is public so downstream code can
    /// describe arbitrary graphs — e.g. express/long-range link overlays
    /// — without touching this crate.
    #[allow(clippy::too_many_arguments)]
    pub fn from_links(
        kind: TopologyKind,
        routers: usize,
        radix: usize,
        link_ports: usize,
        concentration: usize,
        cols: usize,
        rows: usize,
        out: impl Fn(usize, usize) -> Option<(usize, usize)>,
    ) -> Self {
        assert!(routers > 0, "topology must have at least one router");
        let mut out_links = vec![None; routers * radix];
        let mut in_sources = vec![None; routers * radix];
        for n in 0..routers {
            for p in 0..link_ports {
                if let Some((m, q)) = out(n, p) {
                    assert!(
                        m < routers && q < link_ports && m != n,
                        "link ({n},{p}) -> ({m},{q}) leaves the router/port range"
                    );
                    out_links[n * radix + p] = Some((NodeId(m), PortId(q)));
                    assert!(
                        in_sources[m * radix + q].is_none(),
                        "two links feed router {m} port {q}"
                    );
                    in_sources[m * radix + q] = Some((NodeId(n), PortId(p)));
                }
            }
        }
        Topology {
            kind,
            routers,
            tiles: routers * concentration,
            radix,
            link_ports,
            concentration,
            cols,
            rows,
            out_links,
            in_sources,
            express_span: 0,
        }
    }

    /// Records the column span of an express-link overlay (builder
    /// chain after [`Topology::from_links`], which always starts at 0).
    pub fn with_express_span(mut self, span: usize) -> Self {
        self.express_span = span;
        self
    }
}

/// Anything that can produce a [`Topology`]: the shape builders below,
/// and `Topology` itself (by clone), so `Network::new` accepts either.
pub trait TopologySpec {
    /// Builds the graph.
    fn build(&self) -> Topology;
}

impl TopologySpec for Topology {
    fn build(&self) -> Topology {
        self.clone()
    }
}

/// A `cols × rows` 2-D mesh — the paper's baseline. Ports are
/// N 0, S 1, E 2, W 3, Local 4.
///
/// ```
/// use disco_noc::topology::{Mesh, NodeId, TopologySpec, EAST, NORTH, WEST};
///
/// let mesh = Mesh::new(4, 4).build();
/// assert_eq!(mesh.tiles(), 16);
/// assert_eq!(mesh.coords(NodeId(5)), (1, 1));
/// assert_eq!(mesh.out_link(NodeId(5), EAST), Some((NodeId(6), WEST)));
/// assert_eq!(mesh.out_link(NodeId(0), NORTH), None);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mesh {
    cols: usize,
    rows: usize,
}

impl Mesh {
    /// Creates a mesh spec.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(cols: usize, rows: usize) -> Self {
        assert!(cols > 0 && rows > 0, "mesh dimensions must be positive");
        Mesh { cols, rows }
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Total tile count.
    pub fn nodes(&self) -> usize {
        self.cols * self.rows
    }
}

/// The four grid directions as `(port, dcol, drow, far port)`; shared
/// by the mesh/torus/cmesh builders.
const GRID_PORTS: [(usize, isize, isize, usize); 4] = [
    (0, 0, -1, 1), // North arrives on the neighbour's South port
    (1, 0, 1, 0),  // South → North
    (2, 1, 0, 3),  // East → West
    (3, -1, 0, 2), // West → East
];

/// Grid-link closure for a non-wrapping `cols × rows` router grid.
fn grid_link(cols: usize, rows: usize) -> impl Fn(usize, usize) -> Option<(usize, usize)> {
    move |n, p| {
        let (c, r) = (n % cols, n / cols);
        let (_, dc, dr, far) = GRID_PORTS[p];
        let nc = c.checked_add_signed(dc)?;
        let nr = r.checked_add_signed(dr)?;
        (nc < cols && nr < rows).then_some((nr * cols + nc, far))
    }
}

impl TopologySpec for Mesh {
    fn build(&self) -> Topology {
        Topology::from_links(
            TopologyKind::Mesh,
            self.cols * self.rows,
            5,
            4,
            1,
            self.cols,
            self.rows,
            grid_link(self.cols, self.rows),
        )
    }
}

/// A single bidirectional ring of `nodes` routers. Ports are
/// CW 0 (toward `i+1`), CCW 1 (toward `i-1`), Local 2 — the 3-port
/// low-cost ring router of arxiv 2007.02242, whose suggested low-buffer
/// parameters are [`crate::NocConfig::low_buffer_ring`]. Deadlock
/// freedom comes from dateline VC splitting (see
/// `routing::output_vc_range`), so it needs `vcs ≥ 4`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ring {
    nodes: usize,
}

impl Ring {
    /// Creates a ring spec.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero.
    pub fn new(nodes: usize) -> Self {
        assert!(nodes > 0, "ring must have at least one node");
        Ring { nodes }
    }
}

impl TopologySpec for Ring {
    fn build(&self) -> Topology {
        let n = self.nodes;
        Topology::from_links(TopologyKind::Ring, n, 3, 2, 1, n, 1, move |i, p| {
            if n < 2 {
                return None;
            }
            match p {
                0 => Some(((i + 1) % n, 1)),
                1 => Some(((i + n - 1) % n, 0)),
                _ => None,
            }
        })
    }
}

/// `rings` unidirectional local rings of `ring_size` routers each,
/// joined by a unidirectional global ring over their hub routers
/// (position 0 of each local ring). Ports are local-CW 0, global-CW 1
/// (dead off-hub), Local 2.
///
/// Keeping both levels unidirectional keeps the router at ring radix
/// (2007.02242's cost argument) and makes the deadlock proof a strict
/// low < high dateline order: the hop to the hub always runs on low
/// VCs, the post-hub hops on high, and the global ring sits between.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HierarchicalRing {
    rings: usize,
    ring_size: usize,
}

impl HierarchicalRing {
    /// Creates a hierarchical-ring spec.
    ///
    /// # Panics
    ///
    /// Panics if either count is zero.
    pub fn new(rings: usize, ring_size: usize) -> Self {
        assert!(
            rings > 0 && ring_size > 0,
            "hierarchical ring needs positive ring count and size"
        );
        HierarchicalRing { rings, ring_size }
    }
}

impl TopologySpec for HierarchicalRing {
    fn build(&self) -> Topology {
        let (r, l) = (self.rings, self.ring_size);
        Topology::from_links(
            TopologyKind::HierarchicalRing,
            r * l,
            3,
            2,
            1,
            l,
            r,
            move |n, p| {
                let (ring, pos) = (n / l, n % l);
                match p {
                    0 if l >= 2 => Some((ring * l + (pos + 1) % l, 0)),
                    1 if pos == 0 && r >= 2 => Some((((ring + 1) % r) * l, 1)),
                    _ => None,
                }
            },
        )
    }
}

/// A `cols × rows` 2-D torus: the mesh port layout plus wraparound
/// links. A dimension of size 1 leaves its ports dead rather than
/// self-linked. Wrap links make each dimension a ring, so deadlock
/// freedom needs the dateline VC split (`vcs ≥ 4`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Torus {
    cols: usize,
    rows: usize,
}

impl Torus {
    /// Creates a torus spec.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(cols: usize, rows: usize) -> Self {
        assert!(cols > 0 && rows > 0, "torus dimensions must be positive");
        Torus { cols, rows }
    }
}

impl TopologySpec for Torus {
    fn build(&self) -> Topology {
        let (cols, rows) = (self.cols, self.rows);
        Topology::from_links(
            TopologyKind::Torus,
            cols * rows,
            5,
            4,
            1,
            cols,
            rows,
            move |n, p| {
                let (c, r) = (n % cols, n / cols);
                let (_, dc, dr, far) = GRID_PORTS[p];
                // A size-1 dimension would self-link; leave it dead.
                if (dc != 0 && cols < 2) || (dr != 0 && rows < 2) {
                    return None;
                }
                let nc = (c + cols).wrapping_add_signed(dc) % cols;
                let nr = (r + rows).wrapping_add_signed(dr) % rows;
                Some((nr * cols + nc, far))
            },
        )
    }
}

/// A `cols × rows` router grid with `concentration` tiles per router
/// (the "hundreds of cores" configurations of arxiv 1607.07766 reach
/// scale this way). Ports are the mesh N/S/E/W plus `concentration`
/// local ports; tile `t` hangs off router `t / concentration` at local
/// port `4 + t % concentration`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConcentratedMesh {
    cols: usize,
    rows: usize,
    concentration: usize,
}

impl ConcentratedMesh {
    /// Creates a concentrated-mesh spec.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is zero.
    pub fn new(cols: usize, rows: usize, concentration: usize) -> Self {
        assert!(
            cols > 0 && rows > 0 && concentration > 0,
            "concentrated mesh needs positive dimensions and concentration"
        );
        ConcentratedMesh {
            cols,
            rows,
            concentration,
        }
    }
}

impl TopologySpec for ConcentratedMesh {
    fn build(&self) -> Topology {
        Topology::from_links(
            TopologyKind::ConcentratedMesh,
            self.cols * self.rows,
            4 + self.concentration,
            4,
            self.concentration,
            self.cols,
            self.rows,
            grid_link(self.cols, self.rows),
        )
    }
}

/// A `cols × rows` 2-D mesh with one extra pair of long-range "express"
/// (or "Ruche") channels along each row, skipping `span` columns per
/// hop: router `(c, r)` links east to `(c + span, r)` on
/// [`EXPRESS_EAST`] whenever `c + span < cols`, and the mirror west
/// link on [`EXPRESS_WEST`]. Ports are the mesh N/S/E/W plus XE 4,
/// XW 5, Local 6.
///
/// Routing is X-then-Y with express hops taken greedily while the
/// remaining column distance is at least `span` — per-dimension
/// monotone progress, so the channel-dependency graph stays acyclic
/// with a single VC (mesh family, `min_vcs() == 1`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExpressMesh {
    cols: usize,
    rows: usize,
    span: usize,
}

impl ExpressMesh {
    /// Creates an express-mesh spec.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero or `span < 2` (a span-1
    /// express link would duplicate the mesh link and double-feed the
    /// neighbour's input port).
    pub fn new(cols: usize, rows: usize, span: usize) -> Self {
        assert!(
            cols > 0 && rows > 0,
            "express mesh dimensions must be positive"
        );
        assert!(span >= 2, "express span must be at least 2");
        ExpressMesh { cols, rows, span }
    }
}

impl TopologySpec for ExpressMesh {
    fn build(&self) -> Topology {
        let (cols, rows, span) = (self.cols, self.rows, self.span);
        let grid = grid_link(cols, rows);
        Topology::from_links(
            TopologyKind::ExpressMesh,
            cols * rows,
            7,
            6,
            1,
            cols,
            rows,
            move |n, p| {
                let (c, r) = (n % cols, n / cols);
                match PortId(p) {
                    EXPRESS_EAST => {
                        (c + span < cols).then(|| (r * cols + c + span, EXPRESS_WEST.0))
                    }
                    EXPRESS_WEST => (c >= span).then(|| (r * cols + c - span, EXPRESS_EAST.0)),
                    _ => grid(n, p),
                }
            },
        )
        .with_express_span(span)
    }
}

/// CLI-facing topology selector: maps a `(cols, rows)` tile budget onto
/// each shape so sweeps can vary topology while holding the tile count
/// (and thus offered load) fixed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TopologyChoice {
    /// `cols × rows` mesh.
    #[default]
    Mesh,
    /// A ring of `cols × rows` tiles.
    Ring,
    /// `rows` local rings of `cols` tiles.
    HRing,
    /// `cols × rows` torus.
    Torus,
    /// Concentration-4 mesh over the same tile count
    /// (`⌈cols/2⌉ × ⌈rows/2⌉` routers).
    CMesh,
    /// `cols × rows` mesh with span-2 express row links.
    XMesh,
}

impl TopologyChoice {
    /// Every shipped choice, in CLI order.
    pub const ALL: [TopologyChoice; 6] = [
        TopologyChoice::Mesh,
        TopologyChoice::Ring,
        TopologyChoice::HRing,
        TopologyChoice::Torus,
        TopologyChoice::CMesh,
        TopologyChoice::XMesh,
    ];

    /// Stable lower-case name.
    pub fn name(self) -> &'static str {
        match self {
            TopologyChoice::Mesh => "mesh",
            TopologyChoice::Ring => "ring",
            TopologyChoice::HRing => "hring",
            TopologyChoice::Torus => "torus",
            TopologyChoice::CMesh => "cmesh",
            TopologyChoice::XMesh => "xmesh",
        }
    }

    /// Parses a CLI name (`mesh|ring|hring|torus|cmesh|xmesh`).
    pub fn parse(s: &str) -> Option<TopologyChoice> {
        Self::ALL.into_iter().find(|c| c.name() == s)
    }

    /// Builds the topology for a `cols × rows` tile budget.
    pub fn build(self, cols: usize, rows: usize) -> Topology {
        match self {
            TopologyChoice::Mesh => Mesh::new(cols, rows).build(),
            TopologyChoice::Ring => Ring::new(cols * rows).build(),
            TopologyChoice::HRing => HierarchicalRing::new(rows, cols).build(),
            TopologyChoice::Torus => Torus::new(cols, rows).build(),
            TopologyChoice::CMesh => {
                ConcentratedMesh::new(cols.div_ceil(2), rows.div_ceil(2), 4).build()
            }
            TopologyChoice::XMesh => ExpressMesh::new(cols, rows, 2).build(),
        }
    }
}

impl fmt::Display for TopologyChoice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

// ---------------------------------------------------------------------------
// Checkpointing (see crates/snapshot/manifest.txt)
// ---------------------------------------------------------------------------

impl disco_snapshot::Snap for NodeId {
    fn snap(&self, w: &mut disco_snapshot::Writer) {
        w.put(&self.0);
    }
    fn restore(r: &mut disco_snapshot::Reader<'_>) -> Result<Self, disco_snapshot::SnapError> {
        Ok(NodeId(r.take()?))
    }
}

impl disco_snapshot::Snap for TopologyChoice {
    fn snap(&self, w: &mut disco_snapshot::Writer) {
        w.put(&match self {
            TopologyChoice::Mesh => 0u8,
            TopologyChoice::Ring => 1,
            TopologyChoice::HRing => 2,
            TopologyChoice::Torus => 3,
            TopologyChoice::CMesh => 4,
            TopologyChoice::XMesh => 5,
        });
    }
    fn restore(r: &mut disco_snapshot::Reader<'_>) -> Result<Self, disco_snapshot::SnapError> {
        Ok(match r.take::<u8>()? {
            0 => TopologyChoice::Mesh,
            1 => TopologyChoice::Ring,
            2 => TopologyChoice::HRing,
            3 => TopologyChoice::Torus,
            4 => TopologyChoice::CMesh,
            5 => TopologyChoice::XMesh,
            tag => {
                return Err(disco_snapshot::malformed(format!(
                    "TopologyChoice tag {tag}"
                )))
            }
        })
    }
}

impl disco_snapshot::Snap for PortId {
    fn snap(&self, w: &mut disco_snapshot::Writer) {
        w.put(&self.0);
    }
    fn restore(r: &mut disco_snapshot::Reader<'_>) -> Result<Self, disco_snapshot::SnapError> {
        Ok(PortId(r.take()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every `out_links` entry must be mirrored by `in_sources` at the
    /// far end, and vice versa — the bijection `Topology::from_links`
    /// promises.
    fn assert_tables_mirror(topo: &Topology) {
        for n in 0..topo.routers() {
            for p in 0..topo.radix() {
                let (n, p) = (NodeId(n), PortId(p));
                if let Some((m, q)) = topo.out_link(n, p) {
                    assert_eq!(
                        topo.in_source(m, q),
                        Some((n, p)),
                        "{n} {p} out/in mismatch"
                    );
                }
                if let Some((m, q)) = topo.in_source(n, p) {
                    assert_eq!(topo.out_link(m, q), Some((n, p)), "{n} {p} in/out mismatch");
                }
            }
        }
    }

    #[test]
    fn mesh_ports_are_pinned() {
        // The golden-stats byte-identity contract: mesh port numbering
        // must stay N 0, S 1, E 2, W 3, Local 4 forever.
        let mesh = Mesh::new(4, 4).build();
        assert_eq!(mesh.radix(), 5);
        assert_eq!(mesh.link_ports(), 4);
        assert_eq!(mesh.out_link(NodeId(5), NORTH), Some((NodeId(1), SOUTH)));
        assert_eq!(mesh.out_link(NodeId(5), SOUTH), Some((NodeId(9), NORTH)));
        assert_eq!(mesh.out_link(NodeId(5), EAST), Some((NodeId(6), WEST)));
        assert_eq!(mesh.out_link(NodeId(5), WEST), Some((NodeId(4), EAST)));
        assert_eq!(mesh.local_port(NodeId(5)), PortId(4));
        assert!(mesh.is_local(PortId(4)));
    }

    #[test]
    fn mesh_edges_are_dead_and_coords_roundtrip() {
        let mesh = Mesh::new(4, 3).build();
        assert_eq!(mesh.out_link(NodeId(0), NORTH), None);
        assert_eq!(mesh.out_link(NodeId(0), WEST), None);
        assert_eq!(mesh.out_link(NodeId(11), SOUTH), None);
        assert_eq!(mesh.out_link(NodeId(11), EAST), None);
        for n in 0..mesh.routers() {
            let (c, r) = mesh.coords(NodeId(n));
            assert_eq!(mesh.node_at(c, r), NodeId(n));
        }
        assert_tables_mirror(&mesh);
    }

    #[test]
    fn opposite_is_total() {
        // The old Direction::opposite panicked on Local; the table
        // lookup must be None for local ports, dead links, and live
        // links alike — never a panic.
        let mesh = Mesh::new(3, 3).build();
        assert_eq!(mesh.opposite(NodeId(4), PortId(4)), None);
        assert_eq!(mesh.opposite(NodeId(0), NORTH), None);
        assert_eq!(mesh.opposite(NodeId(4), EAST), Some(WEST));
        let hring = HierarchicalRing::new(2, 4).build();
        for n in 0..hring.routers() {
            for p in 0..hring.radix() {
                let _ = hring.opposite(NodeId(n), PortId(p));
            }
        }
    }

    #[test]
    fn mesh_hops_is_manhattan() {
        let mesh = Mesh::new(4, 4).build();
        assert_eq!(mesh.hops(NodeId(0), NodeId(15)), 6);
        assert_eq!(mesh.hops(NodeId(5), NodeId(5)), 0);
        assert_eq!(mesh.hops(NodeId(0), NodeId(3)), 3);
    }

    #[test]
    fn ring_links_and_hops() {
        let ring = Ring::new(8).build();
        assert_eq!(ring.radix(), 3);
        assert_eq!(
            ring.out_link(NodeId(0), CLOCKWISE),
            Some((NodeId(1), PortId(1)))
        );
        assert_eq!(
            ring.out_link(NodeId(0), COUNTER_CLOCKWISE),
            Some((NodeId(7), PortId(0)))
        );
        assert_eq!(ring.hops(NodeId(0), NodeId(3)), 3);
        assert_eq!(ring.hops(NodeId(0), NodeId(6)), 2);
        assert_eq!(ring.hops(NodeId(0), NodeId(4)), 4);
        assert_eq!(ring.min_vcs(), 4);
        assert_tables_mirror(&ring);
    }

    #[test]
    fn torus_wraps_and_degenerate_dims_are_dead() {
        let torus = Torus::new(4, 4).build();
        assert_eq!(torus.out_link(NodeId(0), NORTH), Some((NodeId(12), SOUTH)));
        assert_eq!(torus.out_link(NodeId(0), WEST), Some((NodeId(3), EAST)));
        assert_eq!(torus.hops(NodeId(0), NodeId(15)), 2);
        assert_tables_mirror(&torus);
        let line = Torus::new(1, 4).build();
        assert_eq!(line.out_link(NodeId(0), EAST), None);
        assert_eq!(line.out_link(NodeId(0), WEST), None);
        assert_eq!(line.out_link(NodeId(0), SOUTH), Some((NodeId(1), NORTH)));
        assert_tables_mirror(&line);
    }

    #[test]
    fn hring_is_unidirectional_with_hub_global_ring() {
        let hring = HierarchicalRing::new(3, 4).build();
        assert_eq!(hring.routers(), 12);
        // Local rings run CW only: an out on port 0 arrives on port 0.
        assert_eq!(
            hring.out_link(NodeId(1), CLOCKWISE),
            Some((NodeId(2), PortId(0)))
        );
        assert_eq!(
            hring.out_link(NodeId(3), CLOCKWISE),
            Some((NodeId(0), PortId(0)))
        );
        // Only hubs (position 0) join the global ring.
        assert_eq!(
            hring.out_link(NodeId(0), GLOBAL_CLOCKWISE),
            Some((NodeId(4), PortId(1)))
        );
        assert_eq!(
            hring.out_link(NodeId(8), GLOBAL_CLOCKWISE),
            Some((NodeId(0), PortId(1)))
        );
        assert_eq!(hring.out_link(NodeId(1), GLOBAL_CLOCKWISE), None);
        // Unidirectional: the CCW-side input exists, the output is the
        // only way around.
        assert_eq!(
            hring.in_source(NodeId(2), PortId(0)),
            Some((NodeId(1), PortId(0)))
        );
        assert_tables_mirror(&hring);
        // Route length: 1 → hub 0 takes 3 CW hops, one global hop, then
        // 2 CW hops to position 2 of ring 1.
        assert_eq!(hring.hops(NodeId(1), NodeId(6)), 6);
        assert_eq!(hring.hops(NodeId(1), NodeId(3)), 2);
    }

    #[test]
    fn cmesh_concentrates_tiles() {
        let cmesh = ConcentratedMesh::new(2, 2, 4).build();
        assert_eq!(cmesh.routers(), 4);
        assert_eq!(cmesh.tiles(), 16);
        assert_eq!(cmesh.radix(), 8);
        assert_eq!(cmesh.link_ports(), 4);
        assert_eq!(cmesh.router_of(NodeId(5)), NodeId(1));
        assert_eq!(cmesh.local_port(NodeId(5)), PortId(5));
        assert_eq!(cmesh.tile_at(NodeId(1), PortId(5)), Some(NodeId(5)));
        assert_eq!(cmesh.tile_at(NodeId(1), EAST), None);
        // Tiles on the same router are zero hops apart.
        assert_eq!(cmesh.hops(NodeId(0), NodeId(3)), 0);
        assert_eq!(cmesh.hops(NodeId(0), NodeId(15)), 2);
        assert_tables_mirror(&cmesh);
    }

    #[test]
    fn xmesh_express_links_are_pinned() {
        // Express port numbering (XE 4, XW 5, Local 6) joins the mesh
        // N0 S1 E2 W3 contract and must never change.
        let xmesh = ExpressMesh::new(4, 4, 2).build();
        assert_eq!(xmesh.radix(), 7);
        assert_eq!(xmesh.link_ports(), 6);
        assert_eq!(xmesh.express_span(), 2);
        assert_eq!(xmesh.local_port(NodeId(5)), PortId(6));
        // The mesh sub-grid is untouched.
        assert_eq!(xmesh.out_link(NodeId(5), EAST), Some((NodeId(6), WEST)));
        assert_eq!(xmesh.out_link(NodeId(5), NORTH), Some((NodeId(1), SOUTH)));
        // Express links skip span columns within the row.
        assert_eq!(
            xmesh.out_link(NodeId(4), EXPRESS_EAST),
            Some((NodeId(6), EXPRESS_WEST))
        );
        assert_eq!(
            xmesh.out_link(NodeId(6), EXPRESS_WEST),
            Some((NodeId(4), EXPRESS_EAST))
        );
        // Dead where the far end would leave the grid.
        assert_eq!(xmesh.out_link(NodeId(3), EXPRESS_EAST), None);
        assert_eq!(xmesh.out_link(NodeId(1), EXPRESS_WEST), None);
        // 2 live express links per direction per 4-wide row, 4 rows.
        assert_eq!(xmesh.express_link_count(), 16);
        assert_eq!(xmesh.min_vcs(), 1);
        assert_tables_mirror(&xmesh);
    }

    #[test]
    fn xmesh_hops_count_express_savings() {
        let xmesh = ExpressMesh::new(8, 2, 3).build();
        // dx 7 = 2 express (span 3) + 1 single; dy 1.
        assert_eq!(xmesh.hops(NodeId(0), NodeId(15)), 4);
        // dx 2 < span: plain Manhattan.
        assert_eq!(xmesh.hops(NodeId(0), NodeId(2)), 2);
        assert_eq!(xmesh.hops(NodeId(3), NodeId(3)), 0);
        // dx 3 exactly one express hop.
        assert_eq!(xmesh.hops(NodeId(3), NodeId(0)), 1);
    }

    #[test]
    #[should_panic(expected = "express span must be at least 2")]
    fn xmesh_span_one_rejected() {
        let _ = ExpressMesh::new(4, 4, 1);
    }

    #[test]
    fn choice_builds_every_kind_at_fixed_tile_budget() {
        for choice in TopologyChoice::ALL {
            let topo = choice.build(4, 4);
            assert_eq!(topo.tiles(), 16, "{choice} must keep the tile budget");
            assert_eq!(topo.name(), choice.name());
            assert_eq!(TopologyChoice::parse(choice.name()), Some(choice));
        }
        assert_eq!(TopologyChoice::parse("hypercube"), None);
    }

    #[test]
    #[should_panic(expected = "dimensions must be positive")]
    fn zero_mesh_rejected() {
        let _ = Mesh::new(0, 4);
    }

    #[test]
    fn single_node_shapes_have_only_dead_links() {
        for topo in [
            Mesh::new(1, 1).build(),
            Ring::new(1).build(),
            Torus::new(1, 1).build(),
            HierarchicalRing::new(1, 1).build(),
            ExpressMesh::new(1, 1, 2).build(),
        ] {
            for p in 0..topo.link_ports() {
                assert_eq!(topo.out_link(NodeId(0), PortId(p)), None);
            }
        }
    }
}
