//! Liveness diagnostics: detect stuck packets and report exactly where
//! and why they are stuck.
//!
//! Deadlock in a flit-level simulator is silent — the cycle loop keeps
//! spinning while nothing moves. [`Network::health_check`] walks every
//! virtual channel and classifies the oldest non-moving occupants, which
//! turns a mysterious timeout into an actionable report (locked VC,
//! credit starvation, missing tail, unrouted head).

use crate::network::Network;
use crate::packet::PacketId;
use crate::topology::NodeId;
use std::fmt;

/// Why a buffered packet is not making progress right now.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StallReason {
    /// The VC carries the DISCO shadow lock.
    Locked,
    /// The downstream VC on its route has no credits.
    NoCredit,
    /// The packet is queued behind another packet in the same VC.
    BehindOther,
    /// The packet's head has left but no tail flit exists anywhere in
    /// the buffer — if this persists, the VC can never be released
    /// (the orphaned-tail bug class).
    MissingTail,
    /// The head flit is present but the route has not been computed yet
    /// (normal for one cycle; suspicious if it persists).
    Unrouted,
    /// None of the above: the packet should be schedulable.
    Schedulable,
}

impl fmt::Display for StallReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            StallReason::Locked => "VC locked",
            StallReason::NoCredit => "no downstream credit",
            StallReason::BehindOther => "queued behind another packet",
            StallReason::MissingTail => "head departed, no tail buffered",
            StallReason::Unrouted => "head not yet routed",
            StallReason::Schedulable => "schedulable",
        };
        f.write_str(s)
    }
}

/// One stuck-packet observation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StallInfo {
    /// Router holding the flits.
    pub node: NodeId,
    /// Input port index.
    pub port: usize,
    /// Virtual channel index.
    pub vc: usize,
    /// The packet observed.
    pub packet: PacketId,
    /// Buffered flits of that packet.
    pub resident_flits: usize,
    /// The classification.
    pub reason: StallReason,
}

impl Network {
    /// Scans every input VC and reports the state of each buffered
    /// packet. Call this when a drain loop exceeds its deadline: entries
    /// whose reason is *not* [`StallReason::Schedulable`] or
    /// [`StallReason::BehindOther`] across repeated checks indicate a
    /// flow-control bug.
    pub fn health_check(&self) -> Vec<StallInfo> {
        let mut out = Vec::new();
        for node in 0..self.topology().routers() {
            let router = self.router(NodeId(node));
            for port in 0..router.ports() {
                for vc in 0..self.config().vcs {
                    let vc_ref = router.vc(port, vc);
                    for (idx, packet) in vc_ref.resident_packets().into_iter().enumerate() {
                        let resident = vc_ref.resident_of(packet);
                        let reason = if idx > 0 {
                            StallReason::BehindOther
                        } else if vc_ref.is_locked() {
                            StallReason::Locked
                        } else if vc_ref.front_is_head() {
                            match vc_ref.routed_port() {
                                None => StallReason::Unrouted,
                                Some(p) if router.is_local_port(p) => StallReason::Schedulable,
                                Some(p) => {
                                    if router.credit_in(p, vc) == 0 {
                                        StallReason::NoCredit
                                    } else {
                                        StallReason::Schedulable
                                    }
                                }
                            }
                        } else if !vc_ref.has_tail_of(packet) {
                            StallReason::MissingTail
                        } else {
                            StallReason::Schedulable
                        };
                        out.push(StallInfo {
                            node: NodeId(node),
                            port,
                            vc,
                            packet,
                            resident_flits: resident,
                            reason,
                        });
                    }
                }
            }
        }
        out
    }

    /// True if any buffered packet is in a state that cannot resolve by
    /// itself (locked or tail-less), or if a flit was ever dropped at a
    /// dead port ([`crate::NetworkStats::routing_violations`] — flit
    /// conservation is broken, so counts can never reconcile again: a
    /// flow-control bug, not congestion). A healthy congested network
    /// returns `false` — credit and queueing stalls clear on their own.
    pub fn has_suspicious_stall(&self) -> bool {
        if self.stats().routing_violations > 0 {
            return true;
        }
        self.health_check()
            .iter()
            .any(|s| matches!(s.reason, StallReason::Locked | StallReason::MissingTail))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NocConfig;
    use crate::packet::{flits_for, PacketClass, Payload};
    use crate::topology::{Mesh, EAST};
    use disco_compress::CacheLine;

    #[test]
    fn empty_network_is_healthy() {
        let net = Network::new(Mesh::new(3, 3), NocConfig::default());
        assert!(net.health_check().is_empty());
        assert!(!net.has_suspicious_stall());
    }

    #[test]
    fn credit_starvation_is_reported_but_not_suspicious() {
        let mut net = Network::new(Mesh::new(2, 1), NocConfig::default());
        net.send(
            NodeId(0),
            NodeId(1),
            PacketClass::Response,
            Payload::Raw(CacheLine::zeroed()),
            true,
            0,
        );
        assert!(net.router_mut(NodeId(0)).try_take_credits(EAST, 1, 8));
        for _ in 0..20 {
            net.tick();
        }
        let report = net.health_check();
        assert!(
            report.iter().any(|s| s.reason == StallReason::NoCredit),
            "{report:?}"
        );
        assert!(!net.has_suspicious_stall());
    }

    #[test]
    fn locked_vc_is_suspicious() {
        let mut net = Network::new(Mesh::new(2, 1), NocConfig::default());
        let id = net.store_mut().create(
            NodeId(0),
            NodeId(1),
            PacketClass::Response,
            Payload::Raw(CacheLine::zeroed()),
            true,
            0,
            0,
        );
        let local = net.topology().local_port(NodeId(0)).0;
        for f in flits_for(id, 3, 0) {
            net.router_mut(NodeId(0)).accept(local, 1, f);
        }
        net.router_mut(NodeId(0)).set_locked(local, 1, true);
        assert!(net.has_suspicious_stall());
        let report = net.health_check();
        assert_eq!(report.len(), 1);
        assert_eq!(report[0].reason, StallReason::Locked);
        assert_eq!(report[0].resident_flits, 3);
    }

    #[test]
    fn routing_violation_is_suspicious() {
        let mut net = Network::new(Mesh::new(2, 2), NocConfig::default());
        assert!(!net.has_suspicious_stall());
        // A dropped off-mesh flit breaks flit conservation even though no
        // packet is visibly stuck yet.
        net.stats_mut().routing_violations = 1;
        assert!(net.has_suspicious_stall());
    }

    #[test]
    fn missing_tail_is_suspicious() {
        let mut net = Network::new(Mesh::new(2, 1), NocConfig::default());
        let id = net.store_mut().create(
            NodeId(0),
            NodeId(1),
            PacketClass::Response,
            Payload::Raw(CacheLine::zeroed()),
            true,
            0,
            0,
        );
        // Body flits only: as if the head departed and the tail vanished.
        let local = net.topology().local_port(NodeId(0)).0;
        let flits = flits_for(id, 8, 0);
        for f in &flits[1..4] {
            net.router_mut(NodeId(0)).accept(local, 1, *f);
        }
        assert!(net.has_suspicious_stall());
        assert!(net
            .health_check()
            .iter()
            .any(|s| s.reason == StallReason::MissingTail));
    }

    #[test]
    fn queued_follower_reported_as_behind() {
        let mut net = Network::new(Mesh::new(2, 1), NocConfig::default());
        let mk = |net: &mut Network, tag| {
            net.store_mut().create(
                NodeId(0),
                NodeId(1),
                PacketClass::Response,
                Payload::Raw(CacheLine::zeroed()),
                true,
                0,
                tag,
            )
        };
        let a = mk(&mut net, 0);
        let b = mk(&mut net, 1);
        let local = net.topology().local_port(NodeId(0)).0;
        for f in flits_for(a, 3, 0) {
            net.router_mut(NodeId(0)).accept(local, 1, f);
        }
        for f in flits_for(b, 2, 0) {
            net.router_mut(NodeId(0)).accept(local, 1, f);
        }
        let report = net.health_check();
        assert_eq!(report.len(), 2);
        assert_eq!(report[1].reason, StallReason::BehindOther);
        assert_eq!(report[1].packet, b);
    }
}
