//! NoC configuration (Table 2 defaults).

/// Flow-control policies (§3.3-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FlowControl {
    /// Flit-granular wormhole with credit-based backpressure (Table 2
    /// default). Packets may be split across routers; in-network
    /// compression must use the separate-flit mode.
    #[default]
    Wormhole,
    /// Virtual cut-through: a packet advances only when the downstream
    /// virtual channel can hold it entirely, so whole packets stay
    /// together.
    VirtualCutThrough,
    /// Store-and-forward: additionally, a head flit leaves only after the
    /// whole packet has been buffered locally.
    StoreAndForward,
}

/// Packet-scheduling policy knobs (§3.3-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedulingPolicy {
    /// Rule 1: read requests and responses win switch allocation over
    /// coherence traffic.
    pub prioritize_critical: bool,
    /// Rule 2 (DISCO): compressible-but-still-uncompressed packets get the
    /// lowest priority, raising their chance of idling next to a
    /// compressor.
    pub demote_uncompressed: bool,
}

impl Default for SchedulingPolicy {
    fn default() -> Self {
        SchedulingPolicy {
            prioritize_critical: true,
            demote_uncompressed: false,
        }
    }
}

use crate::routing::RoutingAlgorithm;

/// Router and network parameters. Defaults follow Table 2: 3 pipeline
/// stages, wormhole flow control, 8-flit buffers, 2 virtual channels,
/// XY routing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NocConfig {
    /// Virtual channels per input port.
    pub vcs: usize,
    /// Buffer depth per virtual channel, in flits.
    pub buffer_depth: usize,
    /// Router pipeline depth in cycles (a hop costs `pipeline_stages` + 1
    /// link cycle).
    pub pipeline_stages: u64,
    /// Flow control policy.
    pub flow_control: FlowControl,
    /// Routing algorithm.
    pub routing: RoutingAlgorithm,
    /// Switch-allocation priority rules.
    pub scheduling: SchedulingPolicy,
    /// Worker shards for the parallel compute phase (`parallel` feature):
    /// `0` picks a shard count from the host's core count and the mesh
    /// size, `1` forces the serial path, larger values force that many
    /// shards (clamped to the router count). Ignored without the
    /// feature. Results are byte-identical for every value — sharding
    /// only changes wall-clock, never simulated behaviour.
    pub compute_shards: usize,
}

impl Default for NocConfig {
    fn default() -> Self {
        NocConfig {
            vcs: 2,
            buffer_depth: 8,
            pipeline_stages: 3,
            flow_control: FlowControl::Wormhole,
            routing: RoutingAlgorithm::default(),
            scheduling: SchedulingPolicy::default(),
            compute_shards: 0,
        }
    }
}

impl NocConfig {
    /// The cheap low-buffer ring router of "A Ring Router
    /// Microarchitecture for NoCs" (arxiv 2007.02242): a single-stage
    /// pipeline with 4-flit buffers, wormhole flow control, and the 4
    /// VCs the ring's dateline discipline needs. Pair with
    /// [`crate::topology::Ring`] or
    /// [`crate::topology::HierarchicalRing`].
    pub fn low_buffer_ring() -> Self {
        NocConfig {
            vcs: 4,
            buffer_depth: 4,
            pipeline_stages: 1,
            ..NocConfig::default()
        }
    }

    /// Validates parameter sanity.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn validate(&self) {
        assert!(self.vcs >= 1, "at least one virtual channel required");
        assert!(
            self.buffer_depth >= 1,
            "buffers must hold at least one flit"
        );
        assert!(
            self.pipeline_stages >= 1,
            "pipeline must be at least one stage"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table2() {
        let c = NocConfig::default();
        assert_eq!(c.vcs, 2);
        assert_eq!(c.buffer_depth, 8);
        assert_eq!(c.pipeline_stages, 3);
        assert_eq!(c.flow_control, FlowControl::Wormhole);
        assert_eq!(c.routing, RoutingAlgorithm::Xy);
        assert!(c.scheduling.prioritize_critical);
        assert!(!c.scheduling.demote_uncompressed);
        c.validate();
    }

    #[test]
    #[should_panic(expected = "virtual channel")]
    fn zero_vcs_rejected() {
        NocConfig {
            vcs: 0,
            ..NocConfig::default()
        }
        .validate();
    }
}

// ---------------------------------------------------------------------------
// Checkpointing (see crates/snapshot/manifest.txt)
// ---------------------------------------------------------------------------

impl disco_snapshot::Snap for FlowControl {
    fn snap(&self, w: &mut disco_snapshot::Writer) {
        w.put(&match self {
            FlowControl::Wormhole => 0u8,
            FlowControl::VirtualCutThrough => 1,
            FlowControl::StoreAndForward => 2,
        });
    }
    fn restore(r: &mut disco_snapshot::Reader<'_>) -> Result<Self, disco_snapshot::SnapError> {
        Ok(match r.take::<u8>()? {
            0 => FlowControl::Wormhole,
            1 => FlowControl::VirtualCutThrough,
            2 => FlowControl::StoreAndForward,
            tag => return Err(disco_snapshot::malformed(format!("FlowControl tag {tag}"))),
        })
    }
}

disco_snapshot::snap_fields!(SchedulingPolicy {
    prioritize_critical,
    demote_uncompressed,
});

disco_snapshot::snap_fields!(NocConfig {
    vcs,
    buffer_depth,
    pipeline_stages,
    flow_control,
    routing,
    scheduling,
    compute_shards,
});
