//! Fault injection, detection, and recovery wiring inside the NoC.
//!
//! The machinery splits along the cycle kernel's compute/commit line:
//!
//! - [`FaultGate`] is the *compute-side* view — a read-only handle on
//!   the active [`disco_faults::FaultPlan`] that the pure per-router
//!   phase consults for fault-aware routing (dead-link escapes) and
//!   port-stall windows. It mutates nothing, so the compute phase stays
//!   shardable and byte-identical at any worker count.
//! - [`FaultCtx`] is the *commit-side* state — pristine-payload records
//!   for end-to-end checksums, the black-hole set of packets being
//!   dropped, and the deterministic retransmission queue. It is touched
//!   only from the node-ordered serial passes (NI send, the commit
//!   pass, the tick-start retransmit drain), exactly like the tracer.
//!
//! Detection and recovery model (ISSUE 5): every packet's logical
//! payload is checksummed at NI injection ([`FaultCtx::on_send`]) and
//! verified at ejection. A mismatch (or a black-holed packet's tail)
//! eats the packet and schedules an NI retransmission of the pristine
//! payload after a deterministic timeout with exponential backoff, up
//! to [`disco_faults::FaultPlan::max_retries`] attempts; exhaustion
//! counts the transfer's faults as unrecoverable. Corrupted compressor
//! outputs are caught earlier by decompress-and-verify at the engine
//! ([`Network::fault_codec_output`]) and recovered by falling back to
//! uncompressed delivery. A fault can also be *masked* in flight — a
//! bit flip erased when an in-network codec commit overwrites the
//! payload it had already consumed — in which case the clean ejection
//! check settles it as detected-and-recovered with no retransmission,
//! keeping the ledger exact (injected == detected == recovered +
//! unrecoverable).
//!
//! Determinism: the plan's schedule is a pure function of
//! `(seed, kind, cycle, site)`, all counters are updated in node-ordered
//! serial code, and the retransmit queue is keyed by due cycle — so
//! `FaultStats` and the trace byte stream are identical at any
//! `compute_shards` count.

use crate::network::Network;
use crate::topology::{NodeId, PortId, Topology};

#[cfg(feature = "faults")]
use crate::packet::{Packet, PacketClass, PacketId, Payload};
#[cfg(feature = "faults")]
use crate::phase::Departure;
#[cfg(feature = "faults")]
use disco_compress::scheme::Compressor;
#[cfg(feature = "faults")]
use disco_faults::{site, FaultKind, FaultPlan, FaultStats};
#[cfg(feature = "faults")]
use std::collections::{BTreeMap, HashMap};

/// Read-only fault view for the pure compute phase. Always compiled so
/// [`crate::phase::compute_router`] has a stable signature; with the
/// `faults` feature off (or no active plan) every method is the identity
/// and the kernel is byte-identical to an unfaulted build.
#[derive(Debug, Clone, Copy)]
pub(crate) struct FaultGate<'a> {
    #[cfg(feature = "faults")]
    pub(crate) plan: Option<&'a FaultPlan>,
    #[cfg(not(feature = "faults"))]
    _inert: std::marker::PhantomData<&'a ()>,
}

impl<'a> FaultGate<'a> {
    /// An inert gate (no plan).
    pub(crate) fn inert() -> Self {
        FaultGate {
            #[cfg(feature = "faults")]
            plan: None,
            #[cfg(not(feature = "faults"))]
            _inert: std::marker::PhantomData,
        }
    }

    /// Applies fault-aware escape routing on top of the primary route
    /// decision: packets steer around configured dead links where a
    /// deadlock-free detour exists for the topology (see
    /// [`crate::routing::escape_route`]).
    pub(crate) fn adjust_route(
        &self,
        topo: &Topology,
        here: NodeId,
        dst: NodeId,
        primary: PortId,
    ) -> PortId {
        #[cfg(feature = "faults")]
        if let Some(plan) = self.plan {
            if !plan.dead_links.is_empty() {
                return crate::routing::escape_route(topo, here, dst, primary, |n, p| {
                    plan.link_is_dead(n.0, p.0)
                });
            }
        }
        let _ = (topo, here, dst);
        primary
    }

    /// True when the output port `out` of router `node` refuses to drive
    /// flits this cycle: an injected port-stall window or a flaky-link
    /// outage window.
    #[cfg(feature = "faults")]
    pub(crate) fn output_blocked(&self, now: u64, node: usize, out: usize) -> bool {
        let Some(plan) = self.plan else {
            return false;
        };
        plan.window_fires(FaultKind::PortStall, now, site::port(node, out))
            || plan.window_fires(FaultKind::LinkFlaky, now, site::link(node, out))
    }
}

/// Pristine-payload record kept from NI injection to final resolution.
#[cfg(feature = "faults")]
#[derive(Debug, Clone)]
struct PristineRecord {
    /// The payload exactly as handed to [`Network::send`].
    payload: Payload,
    /// Checksum of the payload's logical bytes at injection time.
    checksum: u64,
    /// Integrity faults injected into this transfer so far, carried
    /// across retransmissions.
    fault_events: u32,
    /// Injected-but-not-yet-detected faults on the current attempt.
    pending: u32,
    /// Retransmissions already spent on this transfer.
    resends: u32,
}

/// One scheduled NI retransmission, queued until its due cycle.
#[cfg(feature = "faults")]
#[derive(Debug, Clone)]
struct Retransmit {
    src: NodeId,
    dst: NodeId,
    class: PacketClass,
    payload: Payload,
    compressible: bool,
    critical: bool,
    tag: u64,
    fault_events: u32,
    resends: u32,
}

/// Commit-side fault state: the active plan, the verification codec,
/// accounting, and the recovery queues. Lives in [`Network`] only while
/// a plan with a non-zero schedule is installed.
#[cfg(feature = "faults")]
#[derive(Debug)]
pub(crate) struct FaultCtx {
    pub(crate) plan: FaultPlan,
    /// Codec used for decompress-and-verify and for computing logical
    /// bytes of compressed payloads (a clone of the system codec).
    codec: disco_compress::Codec,
    pub(crate) stats: FaultStats,
    /// Per in-flight packet: pristine payload + checksum + attempt state.
    pristine: HashMap<u64, PristineRecord>,
    /// Packets being black-holed, keyed to the router whose output eats
    /// them. Flits transit normally up to that router (so every switch
    /// allocation along the way releases when the tail passes) and
    /// vanish on its faulted output; the tail completes the drop.
    dropping: HashMap<u64, usize>,
    /// Retransmissions by due cycle, drained at tick start in cycle
    /// order (FIFO within a cycle) — fully deterministic.
    retx: BTreeMap<u64, Vec<Retransmit>>,
}

/// The logical (decompressed) bytes a payload represents: what the
/// end-to-end checksum covers, invariant under lossless in-network
/// de/compression. An encoding the codec cannot decode hashes its raw
/// encoded bytes instead (consistently on both ends).
#[cfg(feature = "faults")]
fn logical_bytes(codec: &disco_compress::Codec, payload: &Payload) -> Vec<u8> {
    match payload {
        Payload::None => Vec::new(),
        Payload::Raw(line) => line.as_bytes().to_vec(),
        Payload::Compressed(c) => match codec.decompress(c) {
            Ok(line) => line.as_bytes().to_vec(),
            Err(_) => c.data().to_vec(),
        },
    }
}

#[cfg(feature = "faults")]
impl FaultCtx {
    pub(crate) fn new(plan: FaultPlan, codec: disco_compress::Codec) -> Self {
        FaultCtx {
            plan,
            codec,
            stats: FaultStats::default(),
            pristine: HashMap::new(),
            dropping: HashMap::new(),
            retx: BTreeMap::new(),
        }
    }

    /// True when no recovery work is outstanding (for
    /// [`Network::is_idle`]).
    pub(crate) fn quiescent(&self) -> bool {
        self.retx.is_empty() && self.dropping.is_empty()
    }

    /// Records the pristine payload + checksum of a freshly sent packet.
    pub(crate) fn on_send(&mut self, id: PacketId, store: &crate::packet::PacketStore) {
        let pkt = store.get(id);
        let bytes = logical_bytes(&self.codec, &pkt.payload);
        self.pristine.insert(
            id.0,
            PristineRecord {
                payload: pkt.payload.clone(),
                checksum: disco_faults::checksum(&bytes),
                fault_events: 0,
                pending: 0,
                resends: 0,
            },
        );
    }

    /// Handles a non-Local departure: black-hole continuation, new link
    /// drops (head flits), and payload bit flips (tail flits of raw
    /// payloads). Returns true when the flit was eaten.
    fn handle_link_departure(&mut self, net: &mut Network, node: usize, dep: &Departure) -> bool {
        let id = dep.flit.packet;
        let now = net.now;
        if let Some(&drop_node) = self.dropping.get(&id.0) {
            if drop_node != node {
                // Flits upstream of the drop point transit normally so
                // the switch allocations they hold release on the tail.
                return false;
            }
            // Give back the downstream credit the local commit just took.
            net.routers[node].return_credit(dep.out, dep.out_vc);
            if dep.flit.kind.is_tail() {
                self.dropping.remove(&id.0);
                self.finish_drop(net, node, id);
            }
            return true;
        }
        if !self.pristine.contains_key(&id.0) {
            // Packets staged outside `Network::send` (extension-API
            // tests) carry no pristine record; leave them alone so the
            // ledger stays exact.
            return false;
        }
        let link = site::link(node, dep.out.0);
        if dep.flit.kind.is_head()
            && (self.plan.link_is_dead(node, dep.out.0)
                || self.plan.fires(FaultKind::LinkDrop, now, link))
        {
            self.stats.injected += 1;
            self.stats.link_drops += 1;
            if let Some(rec) = self.pristine.get_mut(&id.0) {
                rec.fault_events += 1;
                rec.pending += 1;
            }
            disco_trace::emit!(
                net.tracer,
                disco_trace::Event::FaultInject {
                    kind: FaultKind::LinkDrop.code(),
                    packet: id.0,
                    node: node as u16,
                }
            );
            net.routers[node].return_credit(dep.out, dep.out_vc);
            if dep.flit.kind.is_tail() {
                self.finish_drop(net, node, id);
            } else {
                self.dropping.insert(id.0, node);
            }
            return true;
        }
        if dep.flit.kind.is_tail() && self.plan.fires(FaultKind::PayloadBitFlip, now, link) {
            // Soft error on a data flit in flight. Only raw payloads are
            // flipped: a flipped compressed encoding would fail decode
            // inside the network rather than reach the ejection check.
            let pkt = net.store.get_mut(id);
            if let Payload::Raw(line) = &mut pkt.payload {
                let draw = self
                    .plan
                    .draw(FaultKind::PayloadBitFlip, now, link ^ 0x5a5a);
                let bit = (draw % (8 * disco_compress::LINE_BYTES as u64)) as usize;
                line.as_bytes_mut()[bit / 8] ^= 1 << (bit % 8);
                self.stats.injected += 1;
                self.stats.payload_bit_flips += 1;
                if let Some(rec) = self.pristine.get_mut(&id.0) {
                    rec.fault_events += 1;
                    rec.pending += 1;
                }
                disco_trace::emit!(
                    net.tracer,
                    disco_trace::Event::FaultInject {
                        kind: FaultKind::PayloadBitFlip.code(),
                        packet: id.0,
                        node: node as u16,
                    }
                );
            }
        }
        false
    }

    /// Verifies a packet's end-to-end checksum at ejection (tail through
    /// the Local port). A clean transfer settles its ledger (recovered
    /// += its fault count, and any faults masked in flight count as
    /// detected here); a corrupted one is eaten and retransmitted.
    /// Returns true when the packet was eaten.
    fn handle_ejection(&mut self, net: &mut Network, node: usize, dep: &Departure) -> bool {
        // `node` feeds the trace events only.
        let _ = node;
        if !dep.flit.kind.is_tail() {
            return false;
        }
        let id = dep.flit.packet;
        let Some(rec) = self.pristine.get(&id.0) else {
            return false;
        };
        let delivered = logical_bytes(&self.codec, &net.store.get(id).payload);
        if disco_faults::checksum(&delivered) == rec.checksum {
            // Checksum passes. Cross-check against the pristine oracle:
            // a mismatch here is a silent corruption the checksum failed
            // to catch, which the run-end health rule turns fatal (the
            // ledger is left short on purpose — injected != detected is
            // the truthful record of an escaped fault).
            if delivered != logical_bytes(&self.codec, &rec.payload) {
                self.stats.undetected += 1;
            } else {
                // A fault can be *masked* in flight: a bit flip on a raw
                // line that a downstream compressor had already consumed
                // is erased when the codec commit overwrites the payload
                // with the encoding of the pre-flip snapshot. Such
                // still-pending faults settle here — the end-to-end check
                // verified them harmless, so they count as detected and
                // recovered without a retransmission.
                self.stats.detected += u64::from(rec.pending);
                if rec.fault_events > 0 {
                    self.stats.recovered += u64::from(rec.fault_events);
                }
            }
            self.pristine.remove(&id.0);
            return false;
        }
        let rec = match self.pristine.remove(&id.0) {
            Some(r) => r,
            None => return false,
        };
        self.stats.detected += u64::from(rec.pending);
        disco_trace::emit!(
            net.tracer,
            disco_trace::Event::FaultDetect {
                kind: FaultKind::PayloadBitFlip.code(),
                packet: id.0,
                node: node as u16,
            }
        );
        // Eat the delivery: the packet leaves the store now and its
        // pristine payload is queued for retransmission. (The compute
        // phase already counted it in packets_delivered; see the stats
        // note in ARCHITECTURE.md — ejection-eaten packets count as
        // delivered flit traffic, recovery re-counts the retransmit as
        // a fresh injection.)
        let pkt = net.store.remove(id);
        self.resolve_failure(net.now, &pkt, rec);
        true
    }

    /// A black-holed packet's tail was consumed: the loss is *detected*
    /// (modelling the NI loss timeout, collapsed to the deterministic
    /// drop-completion point) and handed to recovery.
    fn finish_drop(&mut self, net: &mut Network, node: usize, id: PacketId) {
        // `node` feeds the trace events only.
        let _ = node;
        let rec = match self.pristine.remove(&id.0) {
            Some(r) => r,
            // Drops are only injected on packets with records.
            None => return,
        };
        self.stats.detected += u64::from(rec.pending);
        disco_trace::emit!(
            net.tracer,
            disco_trace::Event::FaultDetect {
                kind: FaultKind::LinkDrop.code(),
                packet: id.0,
                node: node as u16,
            }
        );
        let pkt = net.store.remove(id);
        self.resolve_failure(net.now, &pkt, rec);
    }

    /// Decides the fate of a failed transfer: schedule a retransmission
    /// with exponential backoff, or — past the retry bound — write its
    /// faults off as unrecoverable.
    fn resolve_failure(&mut self, now: u64, pkt: &Packet, rec: PristineRecord) {
        if rec.resends >= self.plan.max_retries {
            self.stats.unrecoverable += u64::from(rec.fault_events);
            return;
        }
        self.stats.retries += 1;
        // Exponential backoff, shift-capped so the delay cannot wrap.
        let backoff = self.plan.retry_timeout.max(1) << rec.resends.min(10);
        self.retx
            .entry(now + backoff)
            .or_default()
            .push(Retransmit {
                src: pkt.src,
                dst: pkt.dst,
                class: pkt.class,
                payload: rec.payload.clone(),
                compressible: pkt.compressible,
                critical: pkt.critical,
                tag: pkt.tag,
                fault_events: rec.fault_events,
                resends: rec.resends + 1,
            });
    }
}

/// Commit-pass hook: intercepts one departure for fault processing.
/// Returns true when the flit was eaten and the normal Local/link
/// handling must be skipped (the upstream credit return has already
/// happened either way).
#[cfg(feature = "faults")]
pub(crate) fn intercept_departure(net: &mut Network, node: usize, dep: &Departure) -> bool {
    let Some(mut ctx) = net.faults.take() else {
        return false;
    };
    let eaten = if net.topology.is_local(dep.out) {
        ctx.handle_ejection(net, node, dep)
    } else {
        ctx.handle_link_departure(net, node, dep)
    };
    net.faults = Some(ctx);
    eaten
}

/// Tick-start hook: re-sends every retransmission whose backoff expired,
/// carrying the transfer's fault ledger onto the replacement packet.
#[cfg(feature = "faults")]
pub(crate) fn drain_retransmits(net: &mut Network) {
    let now = net.now;
    let mut due: Vec<Retransmit> = Vec::new();
    {
        let Some(ctx) = net.faults.as_mut() else {
            return;
        };
        while let Some(entry) = ctx.retx.first_entry() {
            if *entry.key() > now {
                break;
            }
            due.append(&mut entry.remove());
        }
    }
    for r in due {
        let id = net.send(
            r.src,
            r.dst,
            r.class,
            r.payload.clone(),
            r.compressible,
            r.tag,
        );
        net.store.get_mut(id).critical = r.critical;
        if let Some(ctx) = net.faults.as_mut() {
            if let Some(rec) = ctx.pristine.get_mut(&id.0) {
                rec.fault_events = r.fault_events;
                rec.resends = r.resends;
            }
        }
        disco_trace::emit!(
            net.tracer,
            disco_trace::Event::Retransmit {
                packet: id.0,
                attempt: r.resends,
            }
        );
    }
}

impl Network {
    /// The read-only fault view the compute phase consults. Inert when
    /// no plan is active (and in `faults`-off builds).
    pub(crate) fn fault_gate(&self) -> FaultGate<'_> {
        #[allow(unused_mut)]
        let mut gate = FaultGate::inert();
        #[cfg(feature = "faults")]
        {
            gate.plan = self.faults.as_ref().map(|ctx| &ctx.plan);
        }
        gate
    }
}

#[cfg(feature = "faults")]
impl Network {
    /// Installs a fault plan (and the codec its integrity checks verify
    /// against). A plan with an all-zero schedule is discarded outright,
    /// which keeps rate-0 runs byte-identical to a `faults`-off build.
    pub fn set_fault_plan(&mut self, plan: FaultPlan, codec: disco_compress::Codec) {
        self.faults = if plan.is_active() {
            Some(FaultCtx::new(plan, codec))
        } else {
            None
        };
    }

    /// The fault accounting block, if a plan is active.
    pub fn fault_stats(&self) -> Option<&FaultStats> {
        self.faults.as_ref().map(|ctx| &ctx.stats)
    }

    /// Engine-side hook: possibly corrupts a compressor's output, then
    /// decompress-and-verifies it. Returns the encoding to commit, or
    /// `None` when verification failed and the engine must fall back to
    /// uncompressed delivery (counted as a recovered fault).
    pub fn fault_codec_output(
        &mut self,
        node: NodeId,
        packet: PacketId,
        enc: disco_compress::CompressedLine,
    ) -> Option<disco_compress::CompressedLine> {
        // `packet` feeds the trace events only.
        let _ = packet;
        let now = self.now;
        let Some(ctx) = self.faults.as_mut() else {
            return Some(enc);
        };
        let s = site::codec(node.0);
        if !ctx.plan.fires(FaultKind::CodecCorruption, now, s) || enc.data().is_empty() {
            return Some(enc);
        }
        let draw = ctx.plan.draw(FaultKind::CodecCorruption, now, s ^ 0xc0dec);
        let mut data = enc.data().to_vec();
        let idx = (draw as usize) % data.len();
        data[idx] ^= 1 << ((draw >> 32) % 8);
        let corrupted = disco_compress::CompressedLine::new(enc.scheme(), data, enc.size_bits());
        let intact = match (ctx.codec.decompress(&corrupted), ctx.codec.decompress(&enc)) {
            (Ok(a), Ok(b)) => a == b,
            _ => false,
        };
        if intact {
            // The flipped bit landed in encoding slack: the output is
            // semantically identical, so nothing was corrupted.
            return Some(enc);
        }
        ctx.stats.injected += 1;
        ctx.stats.codec_corruptions += 1;
        ctx.stats.detected += 1;
        ctx.stats.recovered += 1;
        ctx.stats.fallback_deliveries += 1;
        disco_trace::emit!(
            self.tracer,
            disco_trace::Event::FaultInject {
                kind: FaultKind::CodecCorruption.code(),
                packet: packet.0,
                node: node.0 as u16,
            }
        );
        disco_trace::emit!(
            self.tracer,
            disco_trace::Event::FaultDetect {
                kind: FaultKind::CodecCorruption.code(),
                packet: packet.0,
                node: node.0 as u16,
            }
        );
        disco_trace::emit!(
            self.tracer,
            disco_trace::Event::FaultFallback {
                packet: packet.0,
                node: node.0 as u16,
            }
        );
        None
    }
}

#[cfg(test)]
#[cfg(feature = "faults")]
mod tests {
    use super::*;
    use crate::config::NocConfig;
    use crate::network::Network;
    use crate::packet::{PacketClass, Payload};
    use crate::topology::{Mesh, Ring, EAST, WEST};
    use disco_compress::{CacheLine, Codec};

    fn faulty_net(plan: FaultPlan) -> Network {
        let mut net = Network::new(Mesh::new(4, 4), NocConfig::default());
        net.set_fault_plan(plan, Codec::delta());
        net
    }

    fn drain(net: &mut Network, limit: u64) -> Vec<crate::packet::Packet> {
        let mut got = Vec::new();
        while !net.is_idle() {
            net.tick();
            for node in 0..net.topology().tiles() {
                got.extend(net.take_delivered(NodeId(node)));
            }
            assert!(net.now() < limit, "network failed to drain");
        }
        got
    }

    #[test]
    fn inactive_plan_is_discarded() {
        let net = faulty_net(FaultPlan::new(1));
        assert!(net.fault_stats().is_none());
    }

    #[test]
    fn drops_are_detected_and_retransmitted() {
        let mut plan = FaultPlan::new(7);
        plan.link_drop_rate = 0.05;
        let mut net = faulty_net(plan);
        let line = CacheLine::from_u64_words([11, 12, 13, 14, 15, 16, 17, 18]);
        for i in 0..16usize {
            net.send(
                NodeId(i),
                NodeId((i + 7) % 16),
                PacketClass::Response,
                Payload::Raw(line),
                true,
                i as u64,
            );
        }
        let got = drain(&mut net, 200_000);
        let stats = *net.fault_stats().expect("plan active");
        assert!(stats.link_drops > 0, "5% drop rate must strike: {stats:?}");
        assert!(stats.reconciles(), "{stats:?}");
        assert_eq!(stats.undetected, 0);
        // Dropped attempts are eaten, never delivered: each transfer
        // arrives exactly once.
        assert_eq!(got.len(), 16, "{stats:?}");
        // Every original payload arrives intact exactly once per tag.
        let mut tags: Vec<u64> = got.iter().map(|p| p.tag).collect();
        tags.sort_unstable();
        tags.dedup();
        assert_eq!(tags.len(), 16, "all 16 transfers complete");
        for p in &got {
            match &p.payload {
                Payload::Raw(l) => assert_eq!(*l, line),
                other => panic!("expected raw payload, got {other:?}"),
            }
        }
    }

    #[test]
    fn bit_flips_are_caught_at_ejection() {
        let mut plan = FaultPlan::new(3);
        plan.payload_bit_flip_rate = 0.2;
        let mut net = faulty_net(plan);
        let line = CacheLine::from_u64_words([21, 22, 23, 24, 25, 26, 27, 28]);
        for i in 0..16usize {
            net.send(
                NodeId(i),
                NodeId((i + 5) % 16),
                PacketClass::Response,
                Payload::Raw(line),
                true,
                i as u64,
            );
        }
        let got = drain(&mut net, 200_000);
        let stats = *net.fault_stats().expect("plan active");
        assert!(stats.payload_bit_flips > 0, "flips must strike: {stats:?}");
        assert!(stats.reconciles(), "{stats:?}");
        assert_eq!(stats.undetected, 0);
        for p in &got {
            match &p.payload {
                Payload::Raw(l) => assert_eq!(*l, line, "no corrupted delivery"),
                other => panic!("expected raw payload, got {other:?}"),
            }
        }
    }

    #[test]
    fn dead_link_reroutes_and_delivers() {
        let mut plan = FaultPlan::new(1);
        // Node 5 -East-> 6 is dead; XY routes 4->7 straight over it.
        plan.dead_links.push((5, EAST.0));
        let mut net = faulty_net(plan);
        net.send(
            NodeId(4),
            NodeId(7),
            PacketClass::Request,
            Payload::None,
            false,
            42,
        );
        let got = drain(&mut net, 5_000);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].tag, 42);
        let stats = *net.fault_stats().expect("plan active");
        assert_eq!(stats.link_drops, 0, "escape must avoid the dead link");
        assert!(stats.reconciles());
    }

    #[test]
    fn ring_dead_link_reverses_and_delivers() {
        use crate::topology::CLOCKWISE;
        let mut plan = FaultPlan::new(2);
        // The clockwise link out of node 2 is dead; 0->4 ties toward
        // clockwise and must escape the long way round instead.
        plan.dead_links.push((2, CLOCKWISE.0));
        let mut net = Network::new(Ring::new(8), NocConfig::low_buffer_ring());
        net.set_fault_plan(plan, Codec::delta());
        net.send(
            NodeId(0),
            NodeId(4),
            PacketClass::Request,
            Payload::None,
            false,
            7,
        );
        let got = drain(&mut net, 5_000);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].tag, 7);
        let stats = *net.fault_stats().expect("plan active");
        assert_eq!(stats.link_drops, 0, "escape must avoid the dead link");
        assert!(stats.reconciles());
    }

    #[test]
    fn torus_dead_link_black_holes_and_retransmission_gives_up() {
        use crate::topology::Torus;
        let mut plan = FaultPlan::new(6);
        // The torus has no escape routing (it would break the dateline
        // proof): a dead link on the only minimal route black-holes the
        // packet and the NI retry bound eventually writes it off.
        plan.dead_links.push((0, EAST.0));
        plan.max_retries = 2;
        plan.retry_timeout = 8;
        let mut net = Network::new(
            Torus::new(4, 4),
            NocConfig {
                vcs: 4,
                ..NocConfig::default()
            },
        );
        net.set_fault_plan(plan, Codec::delta());
        net.send(
            NodeId(0),
            NodeId(1),
            PacketClass::Request,
            Payload::None,
            false,
            1,
        );
        for _ in 0..2_000 {
            net.tick();
            let _ = net.take_delivered(NodeId(1));
        }
        let stats = *net.fault_stats().expect("plan active");
        assert!(net.is_idle(), "transfer must be abandoned, not stuck");
        assert_eq!(stats.retries, 2);
        assert!(stats.unrecoverable > 0, "{stats:?}");
        assert!(stats.reconciles(), "{stats:?}");
    }

    #[test]
    fn port_stalls_count_cycles_and_still_deliver() {
        let mut plan = FaultPlan::new(9);
        plan.port_stall_rate = 0.2;
        let mut net = faulty_net(plan);
        let line = CacheLine::from_u64_words([1, 2, 3, 4, 5, 6, 7, 8]);
        for i in 0..16usize {
            net.send(
                NodeId(i),
                NodeId((i + 3) % 16),
                PacketClass::Response,
                Payload::Raw(line),
                true,
                i as u64,
            );
        }
        let got = drain(&mut net, 200_000);
        assert_eq!(got.len(), 16);
        let stats = *net.fault_stats().expect("plan active");
        assert!(stats.port_stall_cycles > 0, "{stats:?}");
        // Stalls are timing-only: the integrity ledger stays empty.
        assert_eq!(stats.injected, 0);
        assert!(stats.reconciles());
    }

    #[test]
    fn flaky_links_stall_but_deliver() {
        let mut plan = FaultPlan::new(13);
        plan.link_flaky_rate = 0.2;
        let mut net = faulty_net(plan);
        let line = CacheLine::from_u64_words([31, 32, 33, 34, 35, 36, 37, 38]);
        for i in 0..16usize {
            net.send(
                NodeId(i),
                NodeId((i + 9) % 16),
                PacketClass::Response,
                Payload::Raw(line),
                true,
                i as u64,
            );
        }
        let got = drain(&mut net, 200_000);
        assert_eq!(got.len(), 16);
        let stats = *net.fault_stats().expect("plan active");
        assert!(stats.port_stall_cycles > 0, "{stats:?}");
        // Flaky outage windows delay flits; they never corrupt them.
        assert_eq!(stats.injected, 0);
        assert!(stats.reconciles());
    }

    #[test]
    fn retry_bound_marks_unrecoverable() {
        let mut plan = FaultPlan::new(5);
        // A dead link with no escape: destinations due West black-hole.
        plan.dead_links.push((1, WEST.0));
        plan.max_retries = 2;
        plan.retry_timeout = 8;
        let mut net = faulty_net(plan);
        net.send(
            NodeId(1),
            NodeId(0),
            PacketClass::Request,
            Payload::None,
            false,
            1,
        );
        for _ in 0..2_000 {
            net.tick();
            let _ = net.take_delivered(NodeId(0));
        }
        let stats = *net.fault_stats().expect("plan active");
        assert!(net.is_idle(), "transfer must be abandoned, not stuck");
        assert_eq!(stats.retries, 2);
        assert!(stats.unrecoverable > 0, "{stats:?}");
        assert!(stats.reconciles(), "{stats:?}");
    }

    #[test]
    fn fault_runs_are_shard_invariant() {
        let run = |shards: usize| {
            let config = NocConfig {
                compute_shards: shards,
                ..NocConfig::default()
            };
            let mut net = Network::new(Mesh::new(4, 4), config);
            net.set_fault_plan(FaultPlan::uniform(2016, 2e-3), Codec::delta());
            let line = CacheLine::from_u64_words([3, 5, 7, 9, 11, 13, 15, 17]);
            for i in 0..16usize {
                net.send(
                    NodeId(i),
                    NodeId((i + 5) % 16),
                    PacketClass::Response,
                    Payload::Raw(line),
                    true,
                    i as u64,
                );
            }
            for _ in 0..1_500 {
                net.tick();
                for node in 0..16 {
                    let _ = net.take_delivered(NodeId(node));
                }
            }
            (
                format!("{:?}", net.fault_stats()),
                format!("{:?}", net.stats()),
            )
        };
        let serial = run(1);
        assert_eq!(
            serial,
            run(4),
            "4 shards must match serially injected faults"
        );
        assert_eq!(
            serial,
            run(16),
            "16 shards must match serially injected faults"
        );
    }

    #[test]
    fn codec_corruption_falls_back_to_uncompressed() {
        let mut plan = FaultPlan::new(4);
        plan.codec_corruption_rate = 1.0;
        let mut net = faulty_net(plan);
        let codec = Codec::delta();
        let line = CacheLine::from_u64_words([100, 101, 102, 103, 104, 105, 106, 107]);
        let enc = codec.compress(&line);
        let id = net.send(
            NodeId(0),
            NodeId(3),
            PacketClass::Response,
            Payload::Raw(line),
            true,
            0,
        );
        assert!(
            net.fault_codec_output(NodeId(0), id, enc).is_none(),
            "rate-1 corruption must force the fallback"
        );
        let stats = *net.fault_stats().expect("plan active");
        assert_eq!(stats.codec_corruptions, 1);
        assert_eq!(stats.fallback_deliveries, 1);
        assert!(stats.reconciles(), "{stats:?}");
    }
}

// ---------------------------------------------------------------------------
// Checkpointing (see crates/snapshot/manifest.txt)
// ---------------------------------------------------------------------------

#[cfg(feature = "faults")]
disco_snapshot::snap_fields!(PristineRecord {
    payload,
    checksum,
    fault_events,
    pending,
    resends,
});

#[cfg(feature = "faults")]
disco_snapshot::snap_fields!(Retransmit {
    src,
    dst,
    class,
    payload,
    compressible,
    critical,
    tag,
    fault_events,
    resends,
});

#[cfg(feature = "faults")]
impl FaultCtx {
    /// Writes the recovery-side mutable state. The plan and the
    /// verification codec are rebuilt from the builder config on
    /// restore.
    pub(crate) fn snap_state(&self, w: &mut disco_snapshot::Writer) {
        w.put(&self.stats);
        w.snap_map(&self.pristine);
        w.snap_map(&self.dropping);
        w.put(&self.retx);
    }

    /// Overlays state written by [`FaultCtx::snap_state`].
    pub(crate) fn restore_state(
        &mut self,
        r: &mut disco_snapshot::Reader<'_>,
    ) -> Result<(), disco_snapshot::SnapError> {
        self.stats = r.take()?;
        self.pristine = r.restore_map()?;
        self.dropping = r.restore_map()?;
        self.retx = r.take()?;
        Ok(())
    }
}
