//! Packets, flits, payloads, and the central packet store.

use crate::topology::NodeId;
use disco_compress::{CacheLine, CompressedLine};
use std::collections::HashMap;
use std::fmt;

/// Bytes carried per flit (64-bit links, paper §4.3).
pub const FLIT_BYTES: usize = 8;

/// Unique packet identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PacketId(pub u64);

impl fmt::Display for PacketId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Packet classes of a cache-coherent CMP (§3.3-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PacketClass {
    /// Operation commands to a bank, directory, or memory controller
    /// (single flit).
    Request,
    /// Data-carrying packets: read responses, writebacks, fills. The only
    /// class worth compressing (§3.3-C).
    Response,
    /// Invalidations, acknowledgements, and other protocol signals
    /// (single flit).
    Coherence,
}

impl PacketClass {
    /// The virtual channel a class travels on in the minimal two-VC
    /// configuration. Responses get their own virtual network (VC 1) to
    /// avoid protocol deadlock; requests and coherence share VC 0. With
    /// more VCs, [`PacketClass::vc_range`] spreads each class over a
    /// group.
    pub fn vc(self) -> usize {
        match self {
            PacketClass::Response => 1,
            _ => 0,
        }
    }

    /// The group of virtual channels this class may use when `vcs` are
    /// available: the control classes (request/coherence) take the lower
    /// half, data responses the upper half — each class group is its own
    /// virtual network, preserving protocol-deadlock freedom while extra
    /// VCs cut head-of-line blocking.
    pub fn vc_range(self, vcs: usize) -> std::ops::Range<usize> {
        if vcs <= 1 {
            return 0..1;
        }
        let split = vcs / 2;
        match self {
            PacketClass::Response => split..vcs,
            _ => 0..split,
        }
    }
}

/// What a packet carries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Payload {
    /// Control-only packet (request/coherence).
    None,
    /// An uncompressed cache line (8 body flits).
    Raw(CacheLine),
    /// A compressed cache line (`ceil(bytes / 8)` body flits).
    Compressed(CompressedLine),
}

impl Payload {
    /// Flits needed to carry this payload. The head flit carries the
    /// first payload chunk (routing travels in side-band fields), so an
    /// uncompressed 64 B line is exactly 8 flits — the "1BF + 7ΔF" view of
    /// §4.1 — and a whole response packet fits the 8-flit buffers of
    /// Table 2, as §3.3-A requires for VCT/SAF.
    pub fn flits(&self) -> usize {
        match self {
            Payload::None => 0,
            Payload::Raw(_) => disco_compress::LINE_BYTES / FLIT_BYTES,
            Payload::Compressed(c) => c.size_bytes().div_ceil(FLIT_BYTES).max(1),
        }
    }

    /// True for [`Payload::Compressed`].
    pub fn is_compressed(&self) -> bool {
        matches!(self, Payload::Compressed(_))
    }
}

/// A packet in flight.
#[derive(Debug, Clone)]
pub struct Packet {
    /// Unique id.
    pub id: PacketId,
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Protocol class.
    pub class: PacketClass,
    /// Data payload.
    pub payload: Payload,
    /// True if this packet may be de/compressed in flight (response
    /// packets; §3.3-C ignores request/coherence packets).
    pub compressible: bool,
    /// True for packets on the demand critical path (read responses,
    /// memory fills). Rule 1 of §3.3-B protects them from the rule-2
    /// demotion of compressible-but-uncompressed packets.
    pub critical: bool,
    /// Cycle the packet entered the NI injection queue.
    pub injected_at: u64,
    /// Opaque tag the protocol layer uses to match responses to requests.
    pub tag: u64,
}

impl Packet {
    /// Total flit count: control packets are a single flit; data packets
    /// are sized by their payload (head flit included).
    pub fn size_flits(&self) -> usize {
        self.payload.flits().max(1)
    }
}

/// Flit position within its packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlitKind {
    /// First flit: carries routing information.
    Head,
    /// Middle flit.
    Body,
    /// Last flit: releases the virtual channel downstream.
    Tail,
    /// Single-flit packet (head and tail at once).
    HeadTail,
}

impl FlitKind {
    /// True for `Head` and `HeadTail`.
    pub fn is_head(self) -> bool {
        matches!(self, FlitKind::Head | FlitKind::HeadTail)
    }

    /// True for `Tail` and `HeadTail`.
    pub fn is_tail(self) -> bool {
        matches!(self, FlitKind::Tail | FlitKind::HeadTail)
    }
}

/// A flit buffered in a virtual channel.
#[derive(Debug, Clone, Copy)]
pub struct Flit {
    /// Owning packet.
    pub packet: PacketId,
    /// Position within the packet.
    pub kind: FlitKind,
    /// Cycle at which the router pipeline has finished processing the
    /// arrival (models the 3-stage pipeline plus link traversal).
    pub ready_at: u64,
}

/// Builds flit `index` of a packet of `size` flits — the allocation-free
/// single-flit form the NI injection hot path uses.
pub fn flit_at(id: PacketId, index: usize, size: usize, ready_at: u64) -> Flit {
    debug_assert!(
        index < size,
        "flit index {index} out of a {size}-flit packet"
    );
    Flit {
        packet: id,
        kind: match (index, size) {
            (0, 1) => FlitKind::HeadTail,
            (0, _) => FlitKind::Head,
            (i, s) if i == s - 1 => FlitKind::Tail,
            _ => FlitKind::Body,
        },
        ready_at,
    }
}

/// Builds the flit sequence for a packet of `size` flits.
pub fn flits_for(id: PacketId, size: usize, ready_at: u64) -> Vec<Flit> {
    assert!(size >= 1, "packets have at least a head flit");
    (0..size).map(|i| flit_at(id, i, size, ready_at)).collect()
}

/// Multiplicative hasher for the store's `u64` packet-id keys. Ids are
/// dense and monotonic, so a single Fibonacci-hash multiply spreads them
/// across buckets as well as SipHash does — without SipHash's per-lookup
/// cost, which profiled as a top entry in the cycle kernel (`store.get`
/// runs for every RC/VA/SA stage of every active VC, every cycle).
/// HashDoS resistance is irrelevant here: keys are simulator-assigned,
/// never adversarial.
#[derive(Debug, Clone, Copy, Default)]
pub struct IdHashBuilder;

/// Hasher state for [`IdHashBuilder`].
#[derive(Debug, Clone, Copy, Default)]
pub struct IdHasher(u64);

impl std::hash::BuildHasher for IdHashBuilder {
    type Hasher = IdHasher;

    fn build_hasher(&self) -> IdHasher {
        IdHasher(0)
    }
}

impl std::hash::Hasher for IdHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // Generic fallback (unused by the u64 key path): FNV-1a.
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
    }

    fn write_u64(&mut self, n: u64) {
        // 2^64 / φ — the classic Fibonacci multiplier mixes low-entropy
        // sequential ids into the high bits HashMap's bucket index uses.
        self.0 = n.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    }
}

/// Central owner of all in-flight packets. Flits reference packets by id;
/// payload mutation (in-network compression) goes through here.
#[derive(Debug, Default)]
pub struct PacketStore {
    next: u64,
    packets: HashMap<u64, Packet, IdHashBuilder>,
}

impl PacketStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a new packet, assigning its id.
    #[allow(clippy::too_many_arguments)]
    pub fn create(
        &mut self,
        src: NodeId,
        dst: NodeId,
        class: PacketClass,
        payload: Payload,
        compressible: bool,
        injected_at: u64,
        tag: u64,
    ) -> PacketId {
        let id = PacketId(self.next);
        self.next += 1;
        self.packets.insert(
            id.0,
            Packet {
                id,
                src,
                dst,
                class,
                payload,
                compressible,
                critical: false,
                injected_at,
                tag,
            },
        );
        id
    }

    /// Looks up a packet.
    ///
    /// # Panics
    ///
    /// Panics if the packet does not exist (a simulator invariant
    /// violation, not a user error).
    pub fn get(&self, id: PacketId) -> &Packet {
        match self.packets.get(&id.0) {
            Some(p) => p,
            None => panic!("{id} is not in the store"),
        }
    }

    /// Looks up a packet that may already have left the store.
    pub fn try_get(&self, id: PacketId) -> Option<&Packet> {
        self.packets.get(&id.0)
    }

    /// Mutable lookup.
    ///
    /// # Panics
    ///
    /// Panics if the packet does not exist.
    pub fn get_mut(&mut self, id: PacketId) -> &mut Packet {
        match self.packets.get_mut(&id.0) {
            Some(p) => p,
            None => panic!("{id} is not in the store"),
        }
    }

    /// Removes a delivered packet and returns it.
    ///
    /// # Panics
    ///
    /// Panics if the packet does not exist.
    pub fn remove(&mut self, id: PacketId) -> Packet {
        match self.packets.remove(&id.0) {
            Some(p) => p,
            None => panic!("{id} is not in the store"),
        }
    }

    /// Number of packets currently tracked.
    pub fn len(&self) -> usize {
        self.packets.len()
    }

    /// True if no packets are in flight.
    pub fn is_empty(&self) -> bool {
        self.packets.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_flit_counts() {
        assert_eq!(Payload::None.flits(), 0);
        assert_eq!(Payload::Raw(CacheLine::zeroed()).flits(), 8);
        let codec = disco_compress::Codec::delta();
        use disco_compress::scheme::Compressor;
        let c = codec.compress(&CacheLine::zeroed());
        assert_eq!(Payload::Compressed(c).flits(), 1);
    }

    #[test]
    fn flit_kinds_for_sizes() {
        let id = PacketId(1);
        let single = flits_for(id, 1, 0);
        assert_eq!(single.len(), 1);
        assert!(single[0].kind.is_head() && single[0].kind.is_tail());

        let nine = flits_for(id, 9, 0);
        assert_eq!(nine.len(), 9);
        assert_eq!(nine[0].kind, FlitKind::Head);
        assert_eq!(nine[8].kind, FlitKind::Tail);
        assert!(nine[1..8].iter().all(|f| f.kind == FlitKind::Body));
    }

    #[test]
    fn store_lifecycle() {
        let mut store = PacketStore::new();
        let id = store.create(
            NodeId(0),
            NodeId(5),
            PacketClass::Request,
            Payload::None,
            false,
            17,
            42,
        );
        assert_eq!(store.get(id).dst, NodeId(5));
        assert_eq!(store.get(id).size_flits(), 1);
        assert_eq!(store.len(), 1);
        let p = store.remove(id);
        assert_eq!(p.tag, 42);
        assert!(store.is_empty());
    }

    #[test]
    fn response_class_uses_vc1() {
        assert_eq!(PacketClass::Response.vc(), 1);
        assert_eq!(PacketClass::Request.vc(), 0);
        assert_eq!(PacketClass::Coherence.vc(), 0);
    }
}

// ---------------------------------------------------------------------------
// Checkpointing (see crates/snapshot/manifest.txt)
// ---------------------------------------------------------------------------

impl disco_snapshot::Snap for PacketId {
    fn snap(&self, w: &mut disco_snapshot::Writer) {
        w.put(&self.0);
    }
    fn restore(r: &mut disco_snapshot::Reader<'_>) -> Result<Self, disco_snapshot::SnapError> {
        Ok(PacketId(r.take()?))
    }
}

impl disco_snapshot::Snap for PacketClass {
    fn snap(&self, w: &mut disco_snapshot::Writer) {
        w.put(&match self {
            PacketClass::Request => 0u8,
            PacketClass::Response => 1,
            PacketClass::Coherence => 2,
        });
    }
    fn restore(r: &mut disco_snapshot::Reader<'_>) -> Result<Self, disco_snapshot::SnapError> {
        Ok(match r.take::<u8>()? {
            0 => PacketClass::Request,
            1 => PacketClass::Response,
            2 => PacketClass::Coherence,
            tag => return Err(disco_snapshot::malformed(format!("PacketClass tag {tag}"))),
        })
    }
}

impl disco_snapshot::Snap for FlitKind {
    fn snap(&self, w: &mut disco_snapshot::Writer) {
        w.put(&match self {
            FlitKind::Head => 0u8,
            FlitKind::Body => 1,
            FlitKind::Tail => 2,
            FlitKind::HeadTail => 3,
        });
    }
    fn restore(r: &mut disco_snapshot::Reader<'_>) -> Result<Self, disco_snapshot::SnapError> {
        Ok(match r.take::<u8>()? {
            0 => FlitKind::Head,
            1 => FlitKind::Body,
            2 => FlitKind::Tail,
            3 => FlitKind::HeadTail,
            tag => return Err(disco_snapshot::malformed(format!("FlitKind tag {tag}"))),
        })
    }
}

disco_snapshot::snap_fields!(Flit {
    packet,
    kind,
    ready_at,
});

impl disco_snapshot::Snap for Payload {
    fn snap(&self, w: &mut disco_snapshot::Writer) {
        match self {
            Payload::None => w.put(&0u8),
            Payload::Raw(line) => {
                w.put(&1u8);
                w.put(line);
            }
            Payload::Compressed(c) => {
                w.put(&2u8);
                w.put(c);
            }
        }
    }
    fn restore(r: &mut disco_snapshot::Reader<'_>) -> Result<Self, disco_snapshot::SnapError> {
        Ok(match r.take::<u8>()? {
            0 => Payload::None,
            1 => Payload::Raw(r.take()?),
            2 => Payload::Compressed(r.take()?),
            tag => return Err(disco_snapshot::malformed(format!("Payload tag {tag}"))),
        })
    }
}

disco_snapshot::snap_fields!(Packet {
    id,
    src,
    dst,
    class,
    payload,
    compressible,
    critical,
    injected_at,
    tag,
});

impl PacketStore {
    /// Writes the id counter and every live packet in sorted-id order.
    pub fn snap_state(&self, w: &mut disco_snapshot::Writer) {
        w.put(&self.next);
        w.snap_map(&self.packets);
    }

    /// Overlays state written by [`PacketStore::snap_state`].
    pub fn restore_state(
        &mut self,
        r: &mut disco_snapshot::Reader<'_>,
    ) -> Result<(), disco_snapshot::SnapError> {
        self.next = r.take()?;
        self.packets = r.restore_map()?;
        Ok(())
    }
}
