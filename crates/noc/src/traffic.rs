//! Synthetic traffic patterns and an open-loop injection driver, for
//! classic NoC load–latency studies independent of the cache hierarchy.

use crate::network::Network;
use crate::packet::{PacketClass, Payload};
use crate::topology::{NodeId, Topology, TopologyKind};
use disco_compress::CacheLine;

/// Classic synthetic destination patterns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrafficPattern {
    /// Uniformly random destination (excluding the source).
    UniformRandom,
    /// Every node sends to one fixed node.
    Hotspot(NodeId),
    /// `(x, y) → (y, x)` — stresses the grid diagonal on square grid
    /// topologies; index mirror elsewhere.
    Transpose,
    /// Destination = bit-complement of the source index.
    BitComplement,
    /// Destination = the next node in index order (neighbor-ish,
    /// light load).
    RingNext,
}

impl TrafficPattern {
    /// Destination for a packet from tile `src`; `draw` supplies
    /// randomness for the random pattern. Returns `None` when the
    /// pattern maps the source onto itself (no packet is sent).
    pub fn dest(self, topo: &Topology, src: NodeId, draw: u64) -> Option<NodeId> {
        let n = topo.tiles();
        let dst = match self {
            TrafficPattern::UniformRandom => {
                let pick = (draw as usize) % (n - 1);
                let dst = if pick >= src.0 { pick + 1 } else { pick };
                NodeId(dst)
            }
            TrafficPattern::Hotspot(h) => h,
            TrafficPattern::Transpose => {
                // Coordinate transpose only where tiles form the grid
                // themselves (mesh/torus); on rings and the concentrated
                // mesh, mirror through the tile index instead.
                let grid_tiles = matches!(
                    topo.kind(),
                    TopologyKind::Mesh | TopologyKind::Torus | TopologyKind::ExpressMesh
                );
                let (c, r) = topo.coords(src);
                if grid_tiles && c < topo.rows() && r < topo.cols() {
                    topo.node_at(r, c)
                } else {
                    NodeId(n - 1 - src.0)
                }
            }
            TrafficPattern::BitComplement => {
                let bits = usize::BITS - (n - 1).leading_zeros();
                let mask = (1usize << bits) - 1;
                NodeId((!src.0 & mask) % n)
            }
            TrafficPattern::RingNext => NodeId((src.0 + 1) % n),
        };
        (dst != src).then_some(dst)
    }
}

/// Open-loop injector: every cycle, each node injects a packet with
/// probability `injection_rate / packet_flits` (so `injection_rate` is
/// the offered load in flits/node/cycle).
#[derive(Debug, Clone)]
pub struct TrafficDriver {
    pattern: TrafficPattern,
    injection_rate: f64,
    data_packets: bool,
    rng: u64,
    sent: u64,
}

impl TrafficDriver {
    /// Builds a driver.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 < injection_rate <= 8.0`.
    pub fn new(
        pattern: TrafficPattern,
        injection_rate: f64,
        data_packets: bool,
        seed: u64,
    ) -> Self {
        assert!(
            injection_rate > 0.0 && injection_rate <= 8.0,
            "offered load must be in (0, 8] flits/node/cycle"
        );
        TrafficDriver {
            pattern,
            injection_rate,
            data_packets,
            rng: seed | 1,
            sent: 0,
        }
    }

    fn next_u64(&mut self) -> u64 {
        self.rng ^= self.rng << 13;
        self.rng ^= self.rng >> 7;
        self.rng ^= self.rng << 17;
        self.rng
    }

    /// Packets injected so far.
    pub fn sent(&self) -> u64 {
        self.sent
    }

    /// Injects this cycle's traffic (call once per [`Network::tick`]).
    pub fn inject(&mut self, net: &mut Network) {
        let packet_flits = if self.data_packets { 8.0 } else { 1.0 };
        let p = (self.injection_rate / packet_flits).min(1.0);
        let tiles = net.topology().tiles();
        for src in 0..tiles {
            let draw = self.next_u64();
            let toss = (draw >> 11) as f64 / (1u64 << 53) as f64;
            if toss >= p {
                continue;
            }
            let pick = self.next_u64();
            let Some(dst) = self.pattern.dest(net.topology(), NodeId(src), pick) else {
                continue;
            };
            let (class, payload) = if self.data_packets {
                (
                    PacketClass::Response,
                    Payload::Raw(CacheLine::from_u64_words([draw; 8])),
                )
            } else {
                (PacketClass::Request, Payload::None)
            };
            net.send(
                NodeId(src),
                dst,
                class,
                payload,
                self.data_packets,
                self.sent,
            );
            self.sent += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NocConfig;
    use crate::topology::{Mesh, Ring, TopologySpec};

    #[test]
    fn patterns_stay_in_bounds_and_avoid_self() {
        for topo in [Mesh::new(4, 4).build(), Ring::new(16).build()] {
            for pattern in [
                TrafficPattern::UniformRandom,
                TrafficPattern::Hotspot(NodeId(5)),
                TrafficPattern::Transpose,
                TrafficPattern::BitComplement,
                TrafficPattern::RingNext,
            ] {
                for src in 0..16 {
                    for draw in [0u64, 7, 123_456] {
                        if let Some(dst) = pattern.dest(&topo, NodeId(src), draw) {
                            assert!(dst.0 < 16, "{pattern:?}");
                            assert_ne!(dst, NodeId(src), "{pattern:?}");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn transpose_is_an_involution_on_square_meshes() {
        let mesh = Mesh::new(4, 4).build();
        for src in 0..16 {
            if let Some(dst) = TrafficPattern::Transpose.dest(&mesh, NodeId(src), 0) {
                let back = TrafficPattern::Transpose
                    .dest(&mesh, dst, 0)
                    .expect("off-diagonal");
                assert_eq!(back, NodeId(src));
            }
        }
    }

    #[test]
    fn hotspot_always_targets_the_spot() {
        let mesh = Mesh::new(3, 3).build();
        for src in 0..9 {
            match TrafficPattern::Hotspot(NodeId(4)).dest(&mesh, NodeId(src), 1) {
                Some(dst) => assert_eq!(dst, NodeId(4)),
                None => assert_eq!(src, 4),
            }
        }
    }

    #[test]
    fn driver_injects_near_offered_load() {
        let mut net = Network::new(Mesh::new(4, 4), NocConfig::default());
        let mut driver = TrafficDriver::new(TrafficPattern::UniformRandom, 0.1, false, 42);
        let cycles = 4_000;
        for _ in 0..cycles {
            driver.inject(&mut net);
            net.tick();
            for n in 0..16 {
                let _ = net.take_delivered(NodeId(n));
            }
        }
        let offered = 0.1 * 16.0 * cycles as f64; // single-flit packets
        let sent = driver.sent() as f64;
        assert!(
            (sent - offered).abs() < offered * 0.1,
            "sent {sent} vs offered {offered}"
        );
    }

    #[test]
    #[should_panic(expected = "offered load")]
    fn zero_rate_rejected() {
        let _ = TrafficDriver::new(TrafficPattern::RingNext, 0.0, false, 1);
    }
}
