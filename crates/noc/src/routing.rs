//! Routing: deterministic XY/YX dimension order, O1TURN, and west-first
//! adaptive routing on the mesh family, plus the deterministic
//! per-topology routes (shortest-direction ring, dimension-order wrap
//! torus, two-level hierarchical ring) and the dateline virtual-channel
//! discipline that keeps the wrapped shapes deadlock-free.
//!
//! The paper's baseline uses XY (Table 2) and §3.3 discusses how routing
//! strategies interact with non-blocking selective de/compression; the
//! additional algorithms support that study. Routes take a *router*
//! `here` and a *tile* `dst` (distinct only on the concentrated mesh)
//! and return the output [`PortId`]; at the destination router the
//! tile's own local port is returned.
//!
//! On the ring, torus, and hierarchical ring the [`RoutingAlgorithm`]
//! knob is ignored: each has a single deterministic route, because the
//! dateline deadlock proof below is per-direction and adaptive or
//! salt-split routing would mix dimension orders the proof does not
//! cover. The express mesh likewise keeps its single greedy
//! express-first XY route: express hops only ever *shrink* the
//! remaining column distance by `span`, so once the route falls back to
//! single hops it never turns back onto an express channel, and the
//! dependency graph stays acyclic without extra VCs.

use crate::topology::{
    NodeId, PortId, Topology, TopologyKind, CLOCKWISE, COUNTER_CLOCKWISE, EAST, EXPRESS_EAST,
    EXPRESS_WEST, GLOBAL_CLOCKWISE, NORTH, SOUTH, WEST,
};
use std::ops::Range;

/// A routing algorithm for the mesh family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RoutingAlgorithm {
    /// Dimension-order: X first, then Y (Table 2 default). Deadlock-free
    /// per virtual network.
    #[default]
    Xy,
    /// Dimension-order: Y first, then X.
    Yx,
    /// O1TURN: each packet picks XY or YX (by packet id parity), which
    /// balances load across the two dimension orders. Needs the two
    /// virtual networks our class split already provides.
    O1Turn,
    /// West-first turn model: all westward hops first, then adaptive
    /// among the remaining minimal directions (most downstream credits
    /// wins). Deadlock-free for wormhole switching.
    WestFirst,
}

/// Grid XY hop from router `here` toward router `dest` (callers
/// guarantee `here != dest`).
fn grid_xy(topo: &Topology, here: NodeId, dest: NodeId) -> PortId {
    let (hc, hr) = topo.coords(here);
    let (dc, dr) = topo.coords(dest);
    if hc < dc {
        EAST
    } else if hc > dc {
        WEST
    } else if hr < dr {
        SOUTH
    } else {
        NORTH
    }
}

/// Grid YX hop (rows first).
fn grid_yx(topo: &Topology, here: NodeId, dest: NodeId) -> PortId {
    let (hc, hr) = topo.coords(here);
    let (dc, dr) = topo.coords(dest);
    if hr < dr {
        SOUTH
    } else if hr > dr {
        NORTH
    } else if hc < dc {
        EAST
    } else {
        WEST
    }
}

/// Shortest-direction ring hop; ties go clockwise.
fn ring_route(topo: &Topology, here: NodeId, dest: NodeId) -> PortId {
    let n = topo.routers();
    let cw = (dest.0 + n - here.0) % n;
    if cw <= n - cw {
        CLOCKWISE
    } else {
        COUNTER_CLOCKWISE
    }
}

/// Dimension-order torus hop: columns first, per-dimension shortest
/// wrap direction, ties eastward/southward.
fn torus_route(topo: &Topology, here: NodeId, dest: NodeId) -> PortId {
    let (hc, hr) = topo.coords(here);
    let (dc, dr) = topo.coords(dest);
    let (cols, rows) = (topo.cols(), topo.rows());
    if hc != dc {
        let east = (dc + cols - hc) % cols;
        if east <= cols - east {
            EAST
        } else {
            WEST
        }
    } else {
        let south = (dr + rows - hr) % rows;
        if south <= rows - south {
            SOUTH
        } else {
            NORTH
        }
    }
}

/// Express-mesh hop: X first with express links taken greedily while
/// the remaining column distance is at least the span (the far end is
/// then guaranteed on-grid), single E/W hops for the remainder, then Y.
fn xmesh_route(topo: &Topology, here: NodeId, dest: NodeId) -> PortId {
    let (hc, hr) = topo.coords(here);
    let (dc, dr) = topo.coords(dest);
    let span = topo.express_span();
    if hc < dc {
        if dc - hc >= span {
            EXPRESS_EAST
        } else {
            EAST
        }
    } else if hc > dc {
        if hc - dc >= span {
            EXPRESS_WEST
        } else {
            WEST
        }
    } else if hr < dr {
        SOUTH
    } else {
        NORTH
    }
}

/// Hierarchical-ring hop: clockwise around the local ring to the
/// destination (same ring) or to the hub, then clockwise around the
/// global ring, then clockwise to the destination position.
fn hring_route(topo: &Topology, here: NodeId, dest: NodeId) -> PortId {
    let l = topo.cols();
    let (hg, hp) = (here.0 / l, here.0 % l);
    let dg = dest.0 / l;
    if hg == dg || hp != 0 {
        CLOCKWISE
    } else {
        GLOBAL_CLOCKWISE
    }
}

/// The deterministic XY-family hop from router `here` toward tile
/// `dst`; the single route of the non-grid kinds. The DISCO engine uses
/// this to predict a packet's next hop.
///
/// ```
/// use disco_noc::routing::xy_route;
/// use disco_noc::topology::{Mesh, NodeId, TopologySpec, EAST, SOUTH};
///
/// let mesh = Mesh::new(4, 4).build();
/// assert_eq!(xy_route(&mesh, NodeId(0), NodeId(3)), EAST);
/// assert_eq!(xy_route(&mesh, NodeId(3), NodeId(15)), SOUTH);
/// assert_eq!(xy_route(&mesh, NodeId(9), NodeId(9)), mesh.local_port(NodeId(9)));
/// ```
pub fn xy_route(topo: &Topology, here: NodeId, dst: NodeId) -> PortId {
    route(RoutingAlgorithm::Xy, topo, here, dst, 0, |_| 0)
}

/// The YX dimension-order hop (grid kinds; elsewhere the deterministic
/// route).
pub fn yx_route(topo: &Topology, here: NodeId, dst: NodeId) -> PortId {
    route(RoutingAlgorithm::Yx, topo, here, dst, 0, |_| 0)
}

/// Routes one hop under `algorithm`. `packet_salt` differentiates
/// packets for O1TURN; `credits` reports downstream free slots for the
/// adaptive choice (higher = preferred). Non-grid topologies ignore
/// both and take their single deterministic route.
pub fn route(
    algorithm: RoutingAlgorithm,
    topo: &Topology,
    here: NodeId,
    dst: NodeId,
    packet_salt: u64,
    credits: impl Fn(PortId) -> usize,
) -> PortId {
    let dest = topo.router_of(dst);
    if here == dest {
        return topo.local_port(dst);
    }
    match topo.kind() {
        TopologyKind::Mesh | TopologyKind::ConcentratedMesh => match algorithm {
            RoutingAlgorithm::Xy => grid_xy(topo, here, dest),
            RoutingAlgorithm::Yx => grid_yx(topo, here, dest),
            RoutingAlgorithm::O1Turn => {
                if packet_salt.is_multiple_of(2) {
                    grid_xy(topo, here, dest)
                } else {
                    grid_yx(topo, here, dest)
                }
            }
            RoutingAlgorithm::WestFirst => west_first_route(topo, here, dst, credits),
        },
        TopologyKind::Ring => ring_route(topo, here, dest),
        TopologyKind::Torus => torus_route(topo, here, dest),
        TopologyKind::HierarchicalRing => hring_route(topo, here, dest),
        TopologyKind::ExpressMesh => xmesh_route(topo, here, dest),
    }
}

/// West-first turn model on the grid kinds: if the destination lies to
/// the west, go west (deterministic); otherwise adaptively pick among
/// the minimal directions (East/North/South) the one with the most
/// credits.
pub fn west_first_route(
    topo: &Topology,
    here: NodeId,
    dst: NodeId,
    credits: impl Fn(PortId) -> usize,
) -> PortId {
    let dest = topo.router_of(dst);
    if here == dest {
        return topo.local_port(dst);
    }
    let (hc, hr) = topo.coords(here);
    let (dc, dr) = topo.coords(dest);
    if dc < hc {
        return WEST;
    }
    let vertical = if dr > hr {
        Some(SOUTH)
    } else if dr < hr {
        Some(NORTH)
    } else {
        None
    };
    match (dc > hc, vertical) {
        // Both dimensions remain: adaptively prefer the better-credited
        // hop (ties go vertical, matching the historical arbitration).
        (true, Some(v)) if credits(v) >= credits(EAST) => v,
        (true, _) => EAST,
        (false, Some(v)) => v,
        (false, None) => topo.local_port(dst),
    }
}

/// Every output port `algorithm` may select from router `here` toward
/// tile `dst`, over all packet salts and credit states.
///
/// This is the routing *relation* rather than one sampled decision, and
/// it is what static deadlock analysis needs: the channel dependency
/// graph must contain an edge for every port the router could legally
/// pick at run time (O1TURN contributes both dimension orders,
/// west-first every minimal adaptive candidate; the non-grid kinds are
/// single-valued).
///
/// ```
/// use disco_noc::routing::{route_choices, RoutingAlgorithm};
/// use disco_noc::topology::{Mesh, NodeId, TopologySpec, EAST, SOUTH};
///
/// let mesh = Mesh::new(4, 4).build();
/// let xy = route_choices(RoutingAlgorithm::Xy, &mesh, NodeId(0), NodeId(15));
/// assert_eq!(xy, vec![EAST]);
/// let o1 = route_choices(RoutingAlgorithm::O1Turn, &mesh, NodeId(0), NodeId(15));
/// assert_eq!(o1, vec![EAST, SOUTH]);
/// ```
pub fn route_choices(
    algorithm: RoutingAlgorithm,
    topo: &Topology,
    here: NodeId,
    dst: NodeId,
) -> Vec<PortId> {
    let dest = topo.router_of(dst);
    if here == dest {
        return vec![topo.local_port(dst)];
    }
    match topo.kind() {
        TopologyKind::Mesh | TopologyKind::ConcentratedMesh => match algorithm {
            RoutingAlgorithm::Xy => vec![grid_xy(topo, here, dest)],
            RoutingAlgorithm::Yx => vec![grid_yx(topo, here, dest)],
            RoutingAlgorithm::O1Turn => {
                let a = grid_xy(topo, here, dest);
                let b = grid_yx(topo, here, dest);
                if a == b {
                    vec![a]
                } else {
                    vec![a, b]
                }
            }
            RoutingAlgorithm::WestFirst => {
                let (hc, hr) = topo.coords(here);
                let (dc, dr) = topo.coords(dest);
                if dc < hc {
                    return vec![WEST];
                }
                let mut candidates = Vec::with_capacity(2);
                if dc > hc {
                    candidates.push(EAST);
                }
                if dr > hr {
                    candidates.push(SOUTH);
                } else if dr < hr {
                    candidates.push(NORTH);
                }
                candidates
            }
        },
        TopologyKind::Ring => vec![ring_route(topo, here, dest)],
        TopologyKind::Torus => vec![torus_route(topo, here, dest)],
        TopologyKind::HierarchicalRing => vec![hring_route(topo, here, dest)],
        TopologyKind::ExpressMesh => vec![xmesh_route(topo, here, dest)],
    }
}

/// Remaining hop count from `here` to `dst` (both tiles) — the `RC_Hop`
/// term of the decompression confidence equation (Eq. 2). This is the
/// deterministic route length: minimal everywhere except the
/// unidirectional hierarchical ring.
pub fn remaining_hops(topo: &Topology, here: NodeId, dst: NodeId) -> usize {
    topo.hops(here, dst)
}

/// The output-VC subset a packet routed from `here` through `out`
/// toward `dst` may allocate, within its class group — the **dateline**
/// discipline that makes the wrapped topologies deadlock-free.
///
/// Each class VC group of a ring direction is split into a low half and
/// a high half with the dateline at router 0 (per dimension on the
/// torus; per ring level on the hierarchical ring). A hop that still
/// has the dateline ahead of it runs on the low half; a hop past it (or
/// on a path that never wraps) runs high. Within one direction the low
/// edge set `{i→i+1 : i > dest}` cannot contain the wrap edge (`0 >
/// dest` is impossible) and the high set `{i→i+1 : i < dest}` cannot
/// either, so both halves are acyclic, and a packet only ever moves
/// low→high (crossing router 0 flips `here > dest` to `here < dest`),
/// giving a total order. The hierarchical ring orders local-low <
/// global-low < global-high < local-high the same way: the run to the
/// hub targets position 0, which is never clockwise-ahead of a non-hub
/// (`target < here`), so it is all-low; post-hub hops target `dest >
/// 0 = here at the hub` onward, all-high. The mesh family needs no
/// dateline and keeps the full group — byte-identical to the
/// pre-topology-substrate behaviour.
///
/// `disco-verify`'s channel-dependency pass machine-checks all of this;
/// the prose is the intuition, the CDG walk is the proof.
pub fn output_vc_range(
    topo: &Topology,
    here: NodeId,
    out: PortId,
    dst: NodeId,
    group: Range<usize>,
) -> Range<usize> {
    if topo.is_local(out) || group.len() < 2 {
        return group;
    }
    let mid = group.start + group.len() / 2;
    let (low, high) = (group.start..mid, mid..group.end);
    let dest = topo.router_of(dst);
    match topo.kind() {
        TopologyKind::Mesh | TopologyKind::ConcentratedMesh | TopologyKind::ExpressMesh => group,
        TopologyKind::Ring => {
            // CW traffic is pre-dateline while `here > dest` (the wrap
            // edge n-1→0 is still ahead); CCW mirrors it.
            let pre_dateline = match out {
                CLOCKWISE => here.0 > dest.0,
                _ => here.0 < dest.0,
            };
            if pre_dateline {
                low
            } else {
                high
            }
        }
        TopologyKind::Torus => {
            let (hc, hr) = topo.coords(here);
            let (dc, dr) = topo.coords(dest);
            let pre_dateline = match out {
                EAST => hc > dc,
                WEST => hc < dc,
                SOUTH => hr > dr,
                _ => hr < dr,
            };
            if pre_dateline {
                low
            } else {
                high
            }
        }
        TopologyKind::HierarchicalRing => {
            let l = topo.cols();
            let (hg, hp) = (here.0 / l, here.0 % l);
            let (dg, dp) = (dest.0 / l, dest.0 % l);
            let pre_dateline = if out == GLOBAL_CLOCKWISE {
                dg < hg
            } else {
                // Local-ring target: the destination position when
                // already on its ring, else the hub (position 0).
                let target = if hg == dg { dp } else { 0 };
                target < hp
            };
            if pre_dateline {
                low
            } else {
                high
            }
        }
    }
}

/// True when the `port`-direction ring walk from `from` to `to` crosses
/// a dead or missing link.
fn ring_path_dead(
    topo: &Topology,
    from: NodeId,
    to: NodeId,
    port: PortId,
    dead: &impl Fn(NodeId, PortId) -> bool,
) -> bool {
    let mut node = from;
    for _ in 0..topo.routers() {
        if node == to {
            return false;
        }
        if dead(node, port) {
            return true;
        }
        match topo.out_link(node, port) {
            Some((next, _)) => node = next,
            None => return true,
        }
    }
    true
}

/// Fault-aware escape routing: detours around a dead link on the
/// primary route where a provably safe detour exists.
///
/// The escape relation is deliberately conservative so that the union
/// of the primary routes and every escape stays acyclic (the
/// `disco-verify` channel-dependency pass proves this for the shipped
/// combinations):
///
/// - **Mesh / concentrated mesh** — only *eastward* primary hops are
///   escaped, via a vertical detour, which never introduces a turn into
///   West and keeps the west-first turn discipline intact. A dead West
///   or vertical link has no west-first-legal detour, so the packet
///   proceeds onto the dead link and is black-holed there — detection
///   and NI retransmission recover it, and retry exhaustion bounds the
///   loss. The detour prefers the minimal vertical direction; when the
///   destination is in the same row — or that hop is itself dead or
///   off-mesh — it sidesteps one row (South, then North) and lets
///   dimension-order routing resume east from there.
/// - **Ring** — the whole remaining path in the primary direction is
///   checked against the dead-link set; if blocked, and the opposite
///   direction is clear, the packet reverses *once, globally*: because
///   a clockwise path from any later position only grows the blocked
///   clockwise path, every subsequent hop makes the same
///   direction choice, so no packet ever alternates directions and the
///   per-direction dateline proofs stand untouched. (Escaping on the
///   immediate-link test the mesh uses would ping-pong between the two
///   directions — a genuine two-channel cycle.)
/// - **Torus / hierarchical ring / express mesh** — no escape: a
///   reversal would break the dateline order (the hierarchical ring has
///   no reverse links at all), and an express detour could reintroduce
///   the express channel after single hops, breaking the monotone-span
///   argument — so dead links black-hole and NI retransmission owns
///   recovery, exactly like the mesh's dead-West case.
///
/// Escapes are a pure function of `(here, dst)` and the dead set, so
/// per-destination channel walks see a deterministic relation.
pub fn escape_route(
    topo: &Topology,
    here: NodeId,
    dst: NodeId,
    primary: PortId,
    dead: impl Fn(NodeId, PortId) -> bool,
) -> PortId {
    if topo.is_local(primary) {
        return primary;
    }
    match topo.kind() {
        TopologyKind::Mesh | TopologyKind::ConcentratedMesh => {
            if !dead(here, primary) || primary != EAST {
                return primary;
            }
            let (_, hr) = topo.coords(here);
            let (_, dr) = topo.coords(topo.router_of(dst));
            let minimal_vertical = if dr > hr {
                Some(SOUTH)
            } else if dr < hr {
                Some(NORTH)
            } else {
                None
            };
            if let Some(v) = minimal_vertical {
                if topo.out_link(here, v).is_some() && !dead(here, v) {
                    return v;
                }
            }
            for v in [SOUTH, NORTH] {
                if Some(v) == minimal_vertical {
                    continue;
                }
                if topo.out_link(here, v).is_some() && !dead(here, v) {
                    return v;
                }
            }
            primary
        }
        TopologyKind::Ring => {
            let dest = topo.router_of(dst);
            let other = PortId(1 - primary.0);
            if ring_path_dead(topo, here, dest, primary, &dead)
                && !ring_path_dead(topo, here, dest, other, &dead)
            {
                other
            } else {
                primary
            }
        }
        TopologyKind::Torus | TopologyKind::HierarchicalRing | TopologyKind::ExpressMesh => primary,
    }
}

impl disco_snapshot::Snap for RoutingAlgorithm {
    fn snap(&self, w: &mut disco_snapshot::Writer) {
        w.put(&match self {
            RoutingAlgorithm::Xy => 0u8,
            RoutingAlgorithm::Yx => 1,
            RoutingAlgorithm::O1Turn => 2,
            RoutingAlgorithm::WestFirst => 3,
        });
    }
    fn restore(r: &mut disco_snapshot::Reader<'_>) -> Result<Self, disco_snapshot::SnapError> {
        Ok(match r.take::<u8>()? {
            0 => RoutingAlgorithm::Xy,
            1 => RoutingAlgorithm::Yx,
            2 => RoutingAlgorithm::O1Turn,
            3 => RoutingAlgorithm::WestFirst,
            tag => {
                return Err(disco_snapshot::malformed(format!(
                    "RoutingAlgorithm tag {tag}"
                )))
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{
        ExpressMesh, HierarchicalRing, Mesh, Ring, TopologyChoice, TopologySpec, Torus,
    };

    /// Walks the deterministic route (salt 0, flat credits) from tile
    /// `src` to tile `dst`, returning the hop count; panics on a loop.
    fn walk(topo: &Topology, alg: RoutingAlgorithm, src: NodeId, dst: NodeId, salt: u64) -> usize {
        let mut here = topo.router_of(src);
        let mut steps = 0;
        loop {
            let port = route(alg, topo, here, dst, salt, |_| 4);
            if topo.is_local(port) {
                assert_eq!(port, topo.local_port(dst), "ejected at the wrong tile port");
                return steps;
            }
            here = topo
                .out_link(here, port)
                .expect("route follows live links")
                .0;
            steps += 1;
            assert!(steps <= 4 * topo.routers(), "routing loop {src}->{dst}");
        }
    }

    #[test]
    fn x_before_y() {
        let mesh = Mesh::new(4, 4).build();
        // From 0 (0,0) to 15 (3,3): go East until column matches.
        let mut here = NodeId(0);
        let dst = NodeId(15);
        let mut path = Vec::new();
        loop {
            let port = xy_route(&mesh, here, dst);
            if mesh.is_local(port) {
                break;
            }
            path.push(port);
            here = mesh.out_link(here, port).expect("route stays in mesh").0;
        }
        assert_eq!(path, vec![EAST, EAST, EAST, SOUTH, SOUTH, SOUTH]);
    }

    #[test]
    fn route_length_equals_manhattan() {
        let mesh = Mesh::new(5, 3).build();
        for a in 0..mesh.tiles() {
            for b in 0..mesh.tiles() {
                let steps = walk(&mesh, RoutingAlgorithm::Xy, NodeId(a), NodeId(b), 0);
                assert_eq!(steps, mesh.hops(NodeId(a), NodeId(b)));
            }
        }
    }

    #[test]
    fn remaining_hops_matches_topology() {
        let mesh = Mesh::new(4, 4).build();
        assert_eq!(remaining_hops(&mesh, NodeId(0), NodeId(15)), 6);
        let ring = Ring::new(8).build();
        assert_eq!(remaining_hops(&ring, NodeId(0), NodeId(6)), 2);
    }

    #[test]
    fn yx_routes_y_first() {
        let mesh = Mesh::new(4, 4).build();
        assert_eq!(yx_route(&mesh, NodeId(0), NodeId(15)), SOUTH);
        assert_eq!(yx_route(&mesh, NodeId(12), NodeId(15)), EAST);
        assert!(mesh.is_local(yx_route(&mesh, NodeId(5), NodeId(5))));
    }

    #[test]
    fn all_algorithms_are_minimal_on_the_mesh() {
        let mesh = Mesh::new(4, 4).build();
        for alg in [
            RoutingAlgorithm::Xy,
            RoutingAlgorithm::Yx,
            RoutingAlgorithm::O1Turn,
            RoutingAlgorithm::WestFirst,
        ] {
            for a in 0..16 {
                for b in 0..16 {
                    for salt in [0u64, 1] {
                        let steps = walk(&mesh, alg, NodeId(a), NodeId(b), salt);
                        assert_eq!(steps, mesh.hops(NodeId(a), NodeId(b)), "{alg:?} {a}->{b}");
                    }
                }
            }
        }
    }

    #[test]
    fn every_topology_delivers_every_pair_at_route_length() {
        for choice in TopologyChoice::ALL {
            let topo = choice.build(4, 4);
            for a in 0..topo.tiles() {
                for b in 0..topo.tiles() {
                    for salt in [0u64, 1] {
                        let steps = walk(&topo, RoutingAlgorithm::Xy, NodeId(a), NodeId(b), salt);
                        assert_eq!(
                            steps,
                            topo.hops(NodeId(a), NodeId(b)),
                            "{choice} {a}->{b} route length"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn ring_goes_the_short_way_with_clockwise_ties() {
        let ring = Ring::new(8).build();
        assert_eq!(
            route(RoutingAlgorithm::Xy, &ring, NodeId(0), NodeId(3), 0, |_| 0),
            CLOCKWISE
        );
        assert_eq!(
            route(RoutingAlgorithm::Xy, &ring, NodeId(0), NodeId(6), 0, |_| 0),
            COUNTER_CLOCKWISE
        );
        // Exactly opposite: tie resolves clockwise.
        assert_eq!(
            route(RoutingAlgorithm::Xy, &ring, NodeId(0), NodeId(4), 0, |_| 0),
            CLOCKWISE
        );
    }

    #[test]
    fn torus_wraps_where_shorter() {
        let torus = Torus::new(4, 4).build();
        // 0 → 3 is one westward wrap hop, not three eastward.
        assert_eq!(
            route(RoutingAlgorithm::Xy, &torus, NodeId(0), NodeId(3), 0, |_| 0),
            WEST
        );
        // 0 → 12 wraps north.
        assert_eq!(
            route(
                RoutingAlgorithm::Xy,
                &torus,
                NodeId(0),
                NodeId(12),
                0,
                |_| 0
            ),
            NORTH
        );
        // Columns resolve before rows.
        assert_eq!(
            route(
                RoutingAlgorithm::Xy,
                &torus,
                NodeId(0),
                NodeId(13),
                0,
                |_| 0
            ),
            EAST
        );
    }

    #[test]
    fn hring_routes_via_hubs() {
        let hring = HierarchicalRing::new(3, 4).build();
        // Same ring: clockwise.
        assert_eq!(
            route(RoutingAlgorithm::Xy, &hring, NodeId(1), NodeId(3), 0, |_| 0),
            CLOCKWISE
        );
        // Cross ring off-hub: clockwise toward the hub.
        assert_eq!(
            route(RoutingAlgorithm::Xy, &hring, NodeId(1), NodeId(6), 0, |_| 0),
            CLOCKWISE
        );
        // Cross ring at the hub: take the global ring.
        assert_eq!(
            route(RoutingAlgorithm::Xy, &hring, NodeId(0), NodeId(6), 0, |_| 0),
            GLOBAL_CLOCKWISE
        );
    }

    #[test]
    fn xmesh_takes_express_hops_greedily() {
        let xmesh = ExpressMesh::new(8, 2, 3).build();
        // From (0,0) to (7,1): express while dx ≥ 3, then single east,
        // then the Y leg.
        let mut here = NodeId(0);
        let dst = NodeId(15);
        let mut path = Vec::new();
        loop {
            let port = route(RoutingAlgorithm::Xy, &xmesh, here, dst, 0, |_| 4);
            if xmesh.is_local(port) {
                break;
            }
            path.push(port);
            here = xmesh.out_link(here, port).expect("in xmesh").0;
        }
        assert_eq!(path, vec![EXPRESS_EAST, EXPRESS_EAST, EAST, SOUTH]);
        // Westbound mirrors.
        assert_eq!(
            route(RoutingAlgorithm::Xy, &xmesh, NodeId(7), NodeId(0), 0, |_| 4),
            EXPRESS_WEST
        );
        assert_eq!(
            route(RoutingAlgorithm::Xy, &xmesh, NodeId(2), NodeId(0), 0, |_| 4),
            WEST
        );
    }

    #[test]
    fn non_grid_choices_are_single_valued() {
        for choice in [
            TopologyChoice::Ring,
            TopologyChoice::HRing,
            TopologyChoice::Torus,
            TopologyChoice::XMesh,
        ] {
            let topo = choice.build(4, 4);
            for alg in [RoutingAlgorithm::O1Turn, RoutingAlgorithm::WestFirst] {
                for a in 0..topo.tiles() {
                    for b in 0..topo.tiles() {
                        let choices = route_choices(alg, &topo, NodeId(a), NodeId(b));
                        assert_eq!(choices.len(), 1, "{choice} must stay deterministic");
                    }
                }
            }
        }
    }

    #[test]
    fn west_first_never_turns_to_west() {
        // Once moving non-west, a west-first route must not need west
        // again: destinations west of the source start with West hops.
        let mesh = Mesh::new(4, 4).build();
        for a in 0..16 {
            for b in 0..16 {
                let mut here = NodeId(a);
                let dst = NodeId(b);
                let mut seen_non_west = false;
                loop {
                    let port = west_first_route(&mesh, here, dst, |_| 1);
                    if mesh.is_local(port) {
                        break;
                    }
                    if port == WEST {
                        assert!(!seen_non_west, "illegal turn back west {a}->{b}");
                    } else {
                        seen_non_west = true;
                    }
                    here = mesh.out_link(here, port).expect("in mesh").0;
                }
            }
        }
    }

    #[test]
    fn west_first_adapts_to_credits() {
        let mesh = Mesh::new(4, 4).build();
        // From 0 to 15: East and South both minimal; pick the one with
        // more credits.
        let east_full =
            west_first_route(
                &mesh,
                NodeId(0),
                NodeId(15),
                |p| if p == EAST { 8 } else { 1 },
            );
        assert_eq!(east_full, EAST);
        let south_full =
            west_first_route(
                &mesh,
                NodeId(0),
                NodeId(15),
                |p| if p == SOUTH { 8 } else { 1 },
            );
        assert_eq!(south_full, SOUTH);
    }

    #[test]
    fn escape_detours_dead_east_links() {
        let mesh = Mesh::new(4, 4).build();
        let dead = |n: NodeId, p: PortId| n == NodeId(5) && p == EAST;
        // 5 -> 7 (same row): East is dead, sidestep South and resume.
        assert_eq!(escape_route(&mesh, NodeId(5), NodeId(7), EAST, dead), SOUTH);
        // 5 -> 3 (row above): the minimal vertical wins.
        assert_eq!(escape_route(&mesh, NodeId(5), NodeId(3), EAST, dead), NORTH);
        // Alive links pass through untouched.
        assert_eq!(escape_route(&mesh, NodeId(6), NodeId(7), EAST, dead), EAST);
        let local = mesh.local_port(NodeId(5));
        assert_eq!(
            escape_route(&mesh, NodeId(5), NodeId(5), local, dead),
            local
        );
    }

    #[test]
    fn escape_walks_deliver_around_a_dead_link() {
        // Every (src, dst) pair still reaches its destination under
        // XY + escape with one dead East link, except pairs that must
        // cross a dead *West* link (none here).
        let mesh = Mesh::new(4, 4).build();
        let dead = |n: NodeId, p: PortId| n == NodeId(5) && p == EAST;
        for a in 0..16 {
            for b in 0..16 {
                let mut here = NodeId(a);
                let dst = NodeId(b);
                let mut steps = 0;
                loop {
                    let primary = xy_route(&mesh, here, dst);
                    let port = escape_route(&mesh, here, dst, primary, dead);
                    if mesh.is_local(port) {
                        break;
                    }
                    assert!(!dead(here, port), "walked onto the dead link {a}->{b}");
                    here = mesh.out_link(here, port).expect("escape stays in mesh").0;
                    steps += 1;
                    assert!(steps <= 16, "escape walk loops {a}->{b}");
                }
            }
        }
    }

    #[test]
    fn escape_never_introduces_west_turns() {
        // The acyclicity argument: no escape ever returns West, so the
        // XY ∪ escape union contains no turn into the West direction.
        let mesh = Mesh::new(4, 4).build();
        let dead = |n: NodeId, _: PortId| n.0.is_multiple_of(3);
        for a in 0..16 {
            for b in 0..16 {
                let primary = xy_route(&mesh, NodeId(a), NodeId(b));
                let port = escape_route(&mesh, NodeId(a), NodeId(b), primary, dead);
                if port == WEST {
                    assert_eq!(primary, WEST, "escape invented a West hop");
                }
            }
        }
    }

    #[test]
    fn dead_west_link_has_no_escape() {
        // West-first discipline leaves no legal detour: the primary is
        // returned unchanged and the recovery layer handles the loss.
        let mesh = Mesh::new(4, 4).build();
        let dead = |n: NodeId, p: PortId| n == NodeId(1) && p == WEST;
        assert_eq!(escape_route(&mesh, NodeId(1), NodeId(0), WEST, dead), WEST);
    }

    #[test]
    fn ring_escape_reverses_once_and_delivers() {
        let ring = Ring::new(8).build();
        // Dead clockwise link at 1: 0 → 3 must reverse and go the long
        // way counter-clockwise.
        let dead = |n: NodeId, p: PortId| n == NodeId(1) && p == CLOCKWISE;
        for (a, b) in (0..8).flat_map(|a| (0..8).map(move |b| (a, b))) {
            let mut here = NodeId(a);
            let dst = NodeId(b);
            let mut directions = Vec::new();
            let mut steps = 0;
            loop {
                let primary = route(RoutingAlgorithm::Xy, &ring, here, dst, 0, |_| 0);
                let port = escape_route(&ring, here, dst, primary, dead);
                if ring.is_local(port) {
                    break;
                }
                assert!(!dead(here, port), "walked onto the dead link {a}->{b}");
                if directions.last() != Some(&port) {
                    directions.push(port);
                }
                here = ring.out_link(here, port).expect("in ring").0;
                steps += 1;
                assert!(steps <= 8, "ring escape loops {a}->{b}");
            }
            assert!(
                directions.len() <= 1,
                "{a}->{b} alternated directions {directions:?}: that is the CDG cycle \
                 the path-blocked escape exists to prevent"
            );
        }
    }

    #[test]
    fn torus_and_hring_have_no_escape() {
        let torus = Torus::new(4, 4).build();
        let all_dead = |_: NodeId, _: PortId| true;
        assert_eq!(
            escape_route(&torus, NodeId(0), NodeId(1), EAST, all_dead),
            EAST
        );
        let hring = HierarchicalRing::new(2, 4).build();
        assert_eq!(
            escape_route(&hring, NodeId(1), NodeId(3), CLOCKWISE, all_dead),
            CLOCKWISE
        );
    }

    #[test]
    fn o1turn_splits_by_salt() {
        let mesh = Mesh::new(4, 4).build();
        let even = route(
            RoutingAlgorithm::O1Turn,
            &mesh,
            NodeId(0),
            NodeId(15),
            0,
            |_| 1,
        );
        let odd = route(
            RoutingAlgorithm::O1Turn,
            &mesh,
            NodeId(0),
            NodeId(15),
            1,
            |_| 1,
        );
        assert_eq!(even, EAST);
        assert_eq!(odd, SOUTH);
    }

    #[test]
    fn mesh_keeps_the_full_vc_group() {
        let mesh = Mesh::new(4, 4).build();
        assert_eq!(
            output_vc_range(&mesh, NodeId(0), EAST, NodeId(3), 0..2),
            0..2
        );
        assert_eq!(
            output_vc_range(&mesh, NodeId(0), EAST, NodeId(3), 2..4),
            2..4
        );
    }

    #[test]
    fn ring_dateline_splits_the_group() {
        let ring = Ring::new(8).build();
        // CW from 6 to 2 wraps: pre-dateline, low half.
        assert_eq!(
            output_vc_range(&ring, NodeId(6), CLOCKWISE, NodeId(2), 2..4),
            2..3
        );
        // Same packet after the wrap (at 1, dest 2): high half.
        assert_eq!(
            output_vc_range(&ring, NodeId(1), CLOCKWISE, NodeId(2), 2..4),
            3..4
        );
        // CW without a wrap ahead: high.
        assert_eq!(
            output_vc_range(&ring, NodeId(1), CLOCKWISE, NodeId(3), 0..2),
            1..2
        );
        // CCW mirrors.
        assert_eq!(
            output_vc_range(&ring, NodeId(2), COUNTER_CLOCKWISE, NodeId(6), 0..2),
            0..1
        );
    }

    #[test]
    fn torus_dateline_is_per_dimension() {
        let torus = Torus::new(4, 4).build();
        // Eastward with a column wrap ahead (col 3 → col 1): low.
        assert_eq!(
            output_vc_range(&torus, NodeId(3), EAST, NodeId(1), 2..4),
            2..3
        );
        // Eastward, no wrap: high.
        assert_eq!(
            output_vc_range(&torus, NodeId(0), EAST, NodeId(1), 2..4),
            3..4
        );
        // Southward with a row wrap ahead (row 3 → row 0... row 1): low.
        assert_eq!(
            output_vc_range(&torus, NodeId(12), SOUTH, NodeId(4), 2..4),
            2..3
        );
    }

    #[test]
    fn hring_hub_run_is_low_and_post_hub_high() {
        let hring = HierarchicalRing::new(3, 4).build();
        // Off-hub toward another ring: heading to the hub, low.
        assert_eq!(
            output_vc_range(&hring, NodeId(1), CLOCKWISE, NodeId(6), 0..2),
            0..1
        );
        // On the destination ring past the hub: high.
        assert_eq!(
            output_vc_range(&hring, NodeId(4), CLOCKWISE, NodeId(6), 0..2),
            1..2
        );
        // Global ring with the hub dateline ahead: 2 → 1 wraps, low.
        assert_eq!(
            output_vc_range(&hring, NodeId(8), GLOBAL_CLOCKWISE, NodeId(4), 0..2),
            0..1
        );
        // Global ring without a wrap: high.
        assert_eq!(
            output_vc_range(&hring, NodeId(0), GLOBAL_CLOCKWISE, NodeId(4), 0..2),
            1..2
        );
    }

    #[test]
    fn local_ports_and_tiny_groups_keep_the_group() {
        let ring = Ring::new(8).build();
        let local = ring.local_port(NodeId(0));
        assert_eq!(
            output_vc_range(&ring, NodeId(0), local, NodeId(0), 0..2),
            0..2
        );
        assert_eq!(
            output_vc_range(&ring, NodeId(6), CLOCKWISE, NodeId(2), 0..1),
            0..1
        );
    }
}
